// Overhead harness for the profiling spans (src/obs), in two parts:
//
//   A. micro  — ns/call of TTMQO_SPAN and TTMQO_SPAN_SAMPLED against an
//               identical function without a span, with spans enabled and
//               runtime-disabled.  In the `obs_overhead_nospans` variant of
//               this binary (compiled with TTMQO_DISABLE_SPANS) the macros
//               expand to nothing, so the span arms must match the baseline.
//   B. hotpath — the broadcast steady state from bench/hotpath part C, run
//               in alternating equal sim-time windows with spans enabled and
//               runtime-disabled (best-of --reps per arm, interleaved to
//               cancel thermal/scheduler drift).  The sampled spans on
//               sim.event / net.deliver / net.complete_attempt are the only
//               instrumentation in this loop, so the events/sec delta is the
//               end-to-end cost of always-on profiling.
//
//   $ obs_overhead                          # artifact -> BENCH_obs.json
//   $ obs_overhead --max-overhead=3         # CI gate: exit 1 if hotpath
//                                           # regresses > 3% with spans on
//
// Flags:
//   --out=p.json        artifact path (default BENCH_obs.json)
//   --window-ms=N       minimum simulated duration per hotpath window
//                       (default 30000; also the calibration window)
//   --window-events=N   minimum events per hotpath window (default 1000000) —
//                       the warmup window calibrates event density and each
//                       measured window is stretched until it holds at least
//                       this many events, so the wall-clock read is well above
//                       scheduler noise
//   --reps=N            window pairs per arm (default 5)
//   --span-iters=N      micro-loop iterations (default 2000000)
//   --max-overhead=P    fail (exit 1) if hotpath overhead exceeds P percent
//                       (default: report only)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/build_info.h"
#include "obs/span.h"
#include "util/flags.h"

namespace ttmqo {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

#ifdef TTMQO_DISABLE_SPANS
constexpr bool kSpansCompiledOut = true;
#else
constexpr bool kSpansCompiledOut = false;
#endif

// ---------------------------------------------------------------------------
// Part A: per-call span cost.  The three work functions differ only in their
// instrumentation; noinline keeps the comparison at call granularity and the
// accumulator keeps the loops from being elided.

__attribute__((noinline)) std::uint64_t WorkBaseline(std::uint64_t x) {
  return x * 2654435761ull + 1;
}

__attribute__((noinline)) std::uint64_t WorkSpan(std::uint64_t x) {
  TTMQO_SPAN("bench.span");
  return x * 2654435761ull + 1;
}

__attribute__((noinline)) std::uint64_t WorkSampled(std::uint64_t x) {
  TTMQO_SPAN_SAMPLED("bench.sampled", 6);
  return x * 2654435761ull + 1;
}

// Accumulators are published here so the optimizer cannot drop the loops.
volatile std::uint64_t g_micro_sink;

template <typename Fn>
double MeasureNsPerCall(std::uint64_t iters, Fn fn) {
  std::uint64_t acc = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) acc = fn(acc);
  const double ns = ElapsedMs(start) * 1e6;
  g_micro_sink = acc;
  return ns / static_cast<double>(iters);
}

struct MicroResult {
  double baseline_ns = 0.0;
  double span_enabled_ns = 0.0;
  double span_disabled_ns = 0.0;
  double sampled_ns = 0.0;
};

MicroResult RunMicroPart(std::uint64_t iters) {
  std::printf("obs_overhead: part A — %llu-iteration span micro-loops...\n",
              static_cast<unsigned long long>(iters));
  MicroResult r;
  // Warm each path once (claims the thread's span buffer outside the
  // measured loops) before the timed passes.
  MeasureNsPerCall(1024, WorkSpan);
  r.baseline_ns = MeasureNsPerCall(iters, WorkBaseline);
  obs::SetSpansEnabled(true);
  r.span_enabled_ns = MeasureNsPerCall(iters, WorkSpan);
  r.sampled_ns = MeasureNsPerCall(iters, WorkSampled);
  obs::SetSpansEnabled(false);
  r.span_disabled_ns = MeasureNsPerCall(iters, WorkSpan);
  obs::SetSpansEnabled(true);
  return r;
}

// ---------------------------------------------------------------------------
// Part B: the steady-state event loop, alternating spans-on / spans-off
// windows.  Same traffic shape as hotpath part C: broadcast tickers on a
// clean channel with no receivers, so every event is pure engine hot path.

struct NodeTicker {
  Network* net = nullptr;
  NodeId node = 0;
  SimDuration period = 0;

  void Tick() {
    Message msg;
    msg.cls = MessageClass::kMaintenance;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = node;
    msg.payload_bytes = 24;
    net->Send(std::move(msg));
    net->sim().ScheduleAfter(period, [this] { Tick(); });
  }
};

struct HotpathResult {
  SimDuration window_sim_ms = 0;  ///< after event-density calibration
  std::uint64_t events_per_window = 0;
  double best_eps_on = 0.0;
  double best_eps_off = 0.0;

  double OverheadPercent() const {
    return (best_eps_off - best_eps_on) / best_eps_off * 100.0;
  }
};

HotpathResult RunHotpathPart(SimDuration window_ms, std::uint64_t min_events,
                             int reps) {
  const Topology topology = Topology::Grid(4);
  Network net(topology, RadioParams{}, ChannelParams{}, /*seed=*/1);
  const auto tx_ms = static_cast<SimDuration>(
      std::ceil(net.radio().TransmitDurationMs(24)));
  const SimDuration period = 8 * tx_ms;
  std::vector<NodeTicker> tickers(topology.size());
  for (NodeId node = 1; node < topology.size(); ++node) {
    tickers[node] = NodeTicker{&net, node, period};
    NodeTicker* ticker = &tickers[node];
    net.sim().ScheduleAt(static_cast<SimTime>(node) % period,
                         [ticker] { ticker->Tick(); });
  }

  // Warmup: event slab and span buffers reach their high-water marks here.
  // It doubles as density calibration — the measured windows are stretched
  // until each holds at least `min_events`, so a window's wall time is long
  // enough (tens of ms) that a few-percent delta clears scheduler noise.
  obs::SetSpansEnabled(true);
  net.sim().RunUntil(window_ms);
  const double density =  // events per simulated millisecond
      static_cast<double>(net.sim().events_executed()) /
      static_cast<double>(window_ms);
  const auto window_sim = std::max(
      window_ms, static_cast<SimDuration>(
                     std::ceil(static_cast<double>(min_events) / density)));
  std::printf("obs_overhead: part B — %d alternating %lld sim-ms windows "
              "per arm (>= %llu events each)...\n",
              reps, static_cast<long long>(window_sim),
              static_cast<unsigned long long>(min_events));

  HotpathResult result;
  result.window_sim_ms = window_sim;
  const auto run_window = [&](SimTime until, bool spans_on) {
    obs::SetSpansEnabled(spans_on);
    const std::uint64_t before = net.sim().events_executed();
    const auto start = Clock::now();
    net.sim().RunUntil(until);
    const double wall_ms = ElapsedMs(start);
    obs::SetSpansEnabled(true);
    const std::uint64_t events = net.sim().events_executed() - before;
    result.events_per_window = events;
    return static_cast<double>(events) * 1000.0 / wall_ms;
  };

  SimTime end = window_ms;
  for (int rep = 0; rep < reps; ++rep) {
    // Alternate which arm goes first so slow drift hits both equally.
    const bool on_first = (rep % 2) == 0;
    end += window_sim;
    const double first = run_window(end, on_first);
    end += window_sim;
    const double second = run_window(end, !on_first);
    const double eps_on = on_first ? first : second;
    const double eps_off = on_first ? second : first;
    result.best_eps_on = std::max(result.best_eps_on, eps_on);
    result.best_eps_off = std::max(result.best_eps_off, eps_off);
  }
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_obs.json");
  const auto window_ms = static_cast<SimDuration>(
      flags.GetInt("window-ms", 30'000));
  const auto window_events = static_cast<std::uint64_t>(
      flags.GetInt("window-events", 1'000'000));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const auto span_iters =
      static_cast<std::uint64_t>(flags.GetInt("span-iters", 2'000'000));
  const double max_overhead = flags.GetDouble("max-overhead", -1.0);
  if (ReportUnreadFlags(flags)) return 2;

  obs::WarnIfSingleCore(std::cerr);

  const MicroResult micro = RunMicroPart(span_iters);
  const HotpathResult hot = RunHotpathPart(window_ms, window_events, reps);
  const double overhead = hot.OverheadPercent();

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open output file: " + out_path);
  char buf[512];
  out << "{\n";
  out << "  \"bench\": \"obs_overhead\",\n";
  out << "  \"spans_compiled_out\": "
      << (kSpansCompiledOut ? "true" : "false") << ",\n";
  out << "  \"build\": ";
  obs::WriteBuildInfoJson(out);
  out << ",\n";
  std::snprintf(
      buf, sizeof(buf),
      "  \"span_ns\": {\"baseline\": %.2f, \"enabled\": %.2f, "
      "\"runtime_disabled\": %.2f, \"sampled_1_of_64\": %.2f, "
      "\"iters\": %llu},\n",
      micro.baseline_ns, micro.span_enabled_ns, micro.span_disabled_ns,
      micro.sampled_ns, static_cast<unsigned long long>(span_iters));
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"hotpath\": {\"window_sim_ms\": %lld, \"reps\": %d, "
      "\"events_per_window\": %llu, \"events_per_sec_spans_on\": %.0f, "
      "\"events_per_sec_spans_off\": %.0f, \"overhead_percent\": %.2f},\n",
      static_cast<long long>(hot.window_sim_ms), reps,
      static_cast<unsigned long long>(hot.events_per_window),
      hot.best_eps_on, hot.best_eps_off, overhead);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"gate\": {\"max_overhead_percent\": %.1f, "
                "\"enforced\": %s}\n",
                max_overhead, max_overhead >= 0.0 ? "true" : "false");
  out << buf;
  out << "}\n";

  std::printf(
      "obs_overhead: span %.1f ns enabled / %.1f ns disabled / %.1f ns "
      "sampled (baseline %.1f ns); hotpath %.0f events/sec on vs %.0f off "
      "(%+.2f%%); wrote %s\n",
      micro.span_enabled_ns, micro.span_disabled_ns, micro.sampled_ns,
      micro.baseline_ns, hot.best_eps_on, hot.best_eps_off, overhead,
      out_path.c_str());

  if (max_overhead >= 0.0 && overhead > max_overhead) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL — spans-on hotpath is %.2f%% slower "
                 "than spans-off (gate: %.1f%%)\n",
                 overhead, max_overhead);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) {
  try {
    return ttmqo::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs_overhead: %s\n", e.what());
    return 1;
  }
}
