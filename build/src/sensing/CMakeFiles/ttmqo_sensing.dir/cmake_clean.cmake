file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_sensing.dir/attribute.cc.o"
  "CMakeFiles/ttmqo_sensing.dir/attribute.cc.o.d"
  "CMakeFiles/ttmqo_sensing.dir/field_model.cc.o"
  "CMakeFiles/ttmqo_sensing.dir/field_model.cc.o.d"
  "CMakeFiles/ttmqo_sensing.dir/reading.cc.o"
  "CMakeFiles/ttmqo_sensing.dir/reading.cc.o.d"
  "libttmqo_sensing.a"
  "libttmqo_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
