file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_net.dir/ledger.cc.o"
  "CMakeFiles/ttmqo_net.dir/ledger.cc.o.d"
  "CMakeFiles/ttmqo_net.dir/link_quality.cc.o"
  "CMakeFiles/ttmqo_net.dir/link_quality.cc.o.d"
  "CMakeFiles/ttmqo_net.dir/message.cc.o"
  "CMakeFiles/ttmqo_net.dir/message.cc.o.d"
  "CMakeFiles/ttmqo_net.dir/network.cc.o"
  "CMakeFiles/ttmqo_net.dir/network.cc.o.d"
  "CMakeFiles/ttmqo_net.dir/simulator.cc.o"
  "CMakeFiles/ttmqo_net.dir/simulator.cc.o.d"
  "CMakeFiles/ttmqo_net.dir/topology.cc.o"
  "CMakeFiles/ttmqo_net.dir/topology.cc.o.d"
  "libttmqo_net.a"
  "libttmqo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
