file(REMOVE_RECURSE
  "CMakeFiles/semantic_tree_test.dir/semantic_tree_test.cc.o"
  "CMakeFiles/semantic_tree_test.dir/semantic_tree_test.cc.o.d"
  "semantic_tree_test"
  "semantic_tree_test.pdb"
  "semantic_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
