#include "routing/semantic_tree.h"

namespace ttmqo {

SemanticRoutingTree::SemanticRoutingTree(const Topology& topology,
                                         const RoutingTree& tree) {
  const std::size_t n = topology.size();
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  // Bottom-up: each node's ranges are its own values hulled with every
  // child subtree's ranges (leaves first in BottomUpOrder).
  for (NodeId node : tree.BottomUpOrder()) {
    Interval ids(static_cast<double>(node), static_cast<double>(node));
    const Position& pos = topology.PositionOf(node);
    Interval xs(pos.x, pos.x);
    Interval ys(pos.y, pos.y);
    for (NodeId child : tree.ChildrenOf(node)) {
      ids = ids.Hull(ids_[child]);
      xs = xs.Hull(xs_[child]);
      ys = ys.Hull(ys_[child]);
    }
    ids_[node] = ids;
    xs_[node] = xs;
    ys_[node] = ys;
  }
}

const Interval& SemanticRoutingTree::SubtreeIds(NodeId node) const {
  return ids_.at(node);
}

const Interval& SemanticRoutingTree::SubtreeX(NodeId node) const {
  return xs_.at(node);
}

const Interval& SemanticRoutingTree::SubtreeY(NodeId node) const {
  return ys_.at(node);
}

bool SemanticRoutingTree::SubtreeMayMatch(
    NodeId node, const PredicateSet& predicates) const {
  const auto ids = predicates.ConstraintOn(Attribute::kNodeId);
  if (ids.has_value() && !ids_.at(node).Intersects(*ids)) return false;
  const auto xs = predicates.ConstraintOn(Attribute::kX);
  if (xs.has_value() && !xs_.at(node).Intersects(*xs)) return false;
  const auto ys = predicates.ConstraintOn(Attribute::kY);
  if (ys.has_value() && !ys_.at(node).Intersects(*ys)) return false;
  return true;
}

bool SemanticRoutingTree::IsPrunable(const PredicateSet& predicates) {
  return predicates.ConstraintOn(Attribute::kNodeId).has_value() ||
         predicates.ConstraintOn(Attribute::kX).has_value() ||
         predicates.ConstraintOn(Attribute::kY).has_value();
}

bool NodeMayMatch(NodeId node, const Position& pos,
                  const PredicateSet& predicates) {
  const auto ids = predicates.ConstraintOn(Attribute::kNodeId);
  if (ids.has_value() && !ids->Contains(static_cast<double>(node))) {
    return false;
  }
  const auto xs = predicates.ConstraintOn(Attribute::kX);
  if (xs.has_value() && !xs->Contains(pos.x)) return false;
  const auto ys = predicates.ConstraintOn(Attribute::kY);
  if (ys.has_value() && !ys->Contains(pos.y)) return false;
  return true;
}

}  // namespace ttmqo
