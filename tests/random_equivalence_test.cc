// Randomized property sweep: for many random static workloads, every
// optimization mode must reproduce the baseline's per-user answer streams
// exactly.  This complements the hand-designed workloads of
// equivalence_test.cc with broad coverage of the query space.
#include <gtest/gtest.h>

#include <tuple>

#include "fault/fault_plan.h"
#include "sweep/sweep.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

using SweepParam = std::tuple<int /*seed*/, OptimizationMode>;

class RandomEquivalenceTest : public ::testing::TestWithParam<SweepParam> {};

std::vector<Query> RandomWorkload(std::uint64_t seed) {
  QueryModelParams params;
  params.aggregation_fraction = 0.4;
  params.attributes = {Attribute::kLight, Attribute::kTemp,
                       Attribute::kHumidity};
  params.operators = {AggregateOp::kMax, AggregateOp::kMin, AggregateOp::kSum,
                      AggregateOp::kAvg, AggregateOp::kCount,
                      AggregateOp::kVar};
  params.epochs = {4096, 6144, 8192, 12288};
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  RandomQueryModel model(params, seed);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= 6; ++i) queries.push_back(model.Next(i));
  return queries;
}

TEST_P(RandomEquivalenceTest, AnswersMatchBaseline) {
  const auto& [seed, mode] = GetParam();
  const std::vector<Query> queries =
      RandomWorkload(static_cast<std::uint64_t>(seed));
  const auto schedule = StaticSchedule(queries);

  RunConfig config;
  config.grid_side = 4;
  config.field = FieldKind::kCorrelated;
  config.duration_ms = 6 * 12288;
  config.seed = static_cast<std::uint64_t>(seed) * 31 + 7;

  config.mode = OptimizationMode::kBaseline;
  const RunResult baseline = RunExperiment(config, schedule);
  config.mode = mode;
  const RunResult optimized = RunExperiment(config, schedule);

  ASSERT_GT(baseline.results.size(), 0u);
  const auto diff = CompareResultLogs(baseline.results, optimized.results,
                                      queries, 1e-6);
  EXPECT_FALSE(diff.has_value()) << "seed " << seed << ": " << *diff;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomEquivalenceTest,
    ::testing::Combine(::testing::Range(1, 11),
                       ::testing::Values(OptimizationMode::kBaseStationOnly,
                                         OptimizationMode::kInNetworkOnly,
                                         OptimizationMode::kTwoTier)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      std::string mode;
      switch (std::get<1>(param_info.param)) {
        case OptimizationMode::kBaseStationOnly:
          mode = "BsOnly";
          break;
        case OptimizationMode::kInNetworkOnly:
          mode = "InNetOnly";
          break;
        default:
          mode = "TwoTier";
          break;
      }
      return "Seed" + std::to_string(std::get<0>(param_info.param)) + "_" + mode;
    });

// Property pass driven through the sweep engine: 20 random workloads,
// each simulated under baseline and TTMQO on the worker pool, answers
// compared exactly.  Exercises the parallel path of RunMany with real
// whole-run payloads (the determinism suite checks byte-stability; this
// checks the *semantic* property on many more seeds).
TEST(RandomEquivalenceSweepTest, TwentySeedsMatchBaselineViaSweepEngine) {
  constexpr int kSeeds = 20;
  std::vector<std::vector<Query>> workloads;
  std::vector<RunUnit> units;
  for (int seed = 101; seed <= 100 + kSeeds; ++seed) {
    const std::vector<Query> queries =
        RandomWorkload(static_cast<std::uint64_t>(seed));
    const auto schedule = StaticSchedule(queries);
    for (const OptimizationMode mode :
         {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
      RunUnit unit;
      unit.label = "seed" + std::to_string(seed);
      unit.config.grid_side = 4;
      unit.config.field = FieldKind::kCorrelated;
      unit.config.duration_ms = 4 * 12288;
      unit.config.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
      unit.config.mode = mode;
      unit.schedule = schedule;
      units.push_back(std::move(unit));
    }
    workloads.push_back(queries);
  }

  const std::vector<TimedRunResult> results = RunMany(units, 4);
  ASSERT_EQ(results.size(), units.size());
  for (int i = 0; i < kSeeds; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const RunResult& baseline = results[2 * idx].run;
    const RunResult& ttmqo = results[2 * idx + 1].run;
    ASSERT_GT(baseline.results.size(), 0u) << units[2 * idx].label;
    const auto diff = CompareResultLogs(baseline.results, ttmqo.results,
                                        workloads[idx], 1e-6);
    EXPECT_FALSE(diff.has_value()) << units[2 * idx].label << ": " << *diff;
  }
}

// The same property with a lossless fault plan: node 15 — the far corner
// of the 4x4 grid, a leaf in both the TinyDB routing tree and the tier-2
// result DAG (it is the deepest node and never anyone's parent) — goes
// dark for two epochs.  Both schemes lose exactly that node's rows for
// the window, so their answer streams must still agree row-for-row.
// Collisions stay at 0 and no link loss is configured, so the outage is
// the only perturbation.
TEST(RandomEquivalenceSweepTest, EquivalenceHoldsUnderLeafOutage) {
  constexpr int kSeeds = 10;
  FaultPlan plan;
  plan.AddOutage(/*node=*/15, /*from=*/2 * 12288, /*until=*/4 * 12288);

  std::vector<std::vector<Query>> workloads;
  std::vector<RunUnit> units;
  for (int seed = 201; seed <= 200 + kSeeds; ++seed) {
    const std::vector<Query> queries =
        RandomWorkload(static_cast<std::uint64_t>(seed));
    const auto schedule = StaticSchedule(queries);  // submits at t=16
    for (const OptimizationMode mode :
         {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
      RunUnit unit;
      unit.label = "fault-seed" + std::to_string(seed);
      unit.config.grid_side = 4;
      unit.config.field = FieldKind::kCorrelated;
      unit.config.duration_ms = 6 * 12288;
      unit.config.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
      unit.config.mode = mode;
      unit.config.faults = plan;
      unit.schedule = schedule;
      units.push_back(std::move(unit));
    }
    workloads.push_back(queries);
  }

  const std::vector<TimedRunResult> results = RunMany(units, 4);
  for (int i = 0; i < kSeeds; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const RunResult& baseline = results[2 * idx].run;
    const RunResult& ttmqo = results[2 * idx + 1].run;
    ASSERT_GT(baseline.results.size(), 0u) << units[2 * idx].label;
    const auto diff = CompareResultLogs(baseline.results, ttmqo.results,
                                        workloads[idx], 1e-6);
    EXPECT_FALSE(diff.has_value()) << units[2 * idx].label << ": " << *diff;
  }
}

}  // namespace
}  // namespace ttmqo
