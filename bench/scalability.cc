// Scalability study (extension): how the savings of each tier scale with
// network size.  The paper evaluates 16 and 64 nodes; this sweep extends
// the axis to 144 nodes and adds a query-count axis (8..32 concurrent
// static queries drawn from the random model).
//
// Usage: scalability [--duration-ms=N] [--seed=N] [--collisions=P]
#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const SimDuration duration = flags.GetInt("duration-ms", 20 * 12288);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 77));
  const double collisions = flags.GetDouble("collisions", 0.02);
  for (const std::string& unread : flags.UnreadFlags()) {
    std::fprintf(stderr, "unknown flag --%s\n", unread.c_str());
    return 2;
  }

  std::printf("Scalability of TTMQO savings (WORKLOAD_C, collisions=%.3f, "
              "%lld ms)\n\n",
              collisions, static_cast<long long>(duration));

  // Axis 1: network size.
  {
    TablePrinter table({"nodes", "baseline avg tx %", "ttmqo avg tx %",
                        "savings %"});
    for (std::size_t side : {std::size_t{4}, std::size_t{6}, std::size_t{8},
                             std::size_t{10}, std::size_t{12}}) {
      const auto schedule = StaticSchedule(WorkloadC());
      double tx[2];
      int i = 0;
      for (OptimizationMode mode :
           {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
        RunConfig config;
        config.grid_side = side;
        config.mode = mode;
        config.duration_ms = duration;
        config.seed = seed;
        config.channel.collision_prob = collisions;
        tx[i++] = RunExperiment(config, schedule)
                      .summary.avg_transmission_fraction *
                  100.0;
      }
      table.AddRow({std::to_string(side * side), TablePrinter::Num(tx[0], 4),
                    TablePrinter::Num(tx[1], 4),
                    TablePrinter::Num(SavingsPercent(tx[0], tx[1]), 1)});
    }
    std::printf("--- savings vs network size ---\n");
    table.Print(std::cout);
    std::printf("\n");
  }

  // Axis 2: number of concurrent static queries (8x8 grid).
  {
    TablePrinter table({"queries", "baseline avg tx %", "ttmqo avg tx %",
                        "savings %", "synthetic queries"});
    for (std::size_t count : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                              std::size_t{32}}) {
      QueryModelParams params;
      params.predicate_selectivity = 1.0;
      params.randomize_selectivity = true;
      RandomQueryModel model(params, seed);
      std::vector<Query> queries;
      for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
      const auto schedule = StaticSchedule(queries);
      double tx[2];
      double synthetics = 0;
      int i = 0;
      for (OptimizationMode mode :
           {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
        RunConfig config;
        config.grid_side = 8;
        config.mode = mode;
        config.duration_ms = duration;
        config.seed = seed;
        config.channel.collision_prob = collisions;
        const RunResult run = RunExperiment(config, schedule);
        tx[i++] = run.summary.avg_transmission_fraction * 100.0;
        if (mode == OptimizationMode::kTwoTier) {
          synthetics = run.avg_network_queries;
        }
      }
      table.AddRow({std::to_string(count), TablePrinter::Num(tx[0], 4),
                    TablePrinter::Num(tx[1], 4),
                    TablePrinter::Num(SavingsPercent(tx[0], tx[1]), 1),
                    TablePrinter::Num(synthetics, 2)});
    }
    std::printf("--- savings vs concurrent queries (8x8 grid) ---\n");
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
