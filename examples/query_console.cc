// An interactive (or scripted) console for the simulated sensor network.
//
//   $ query_console [--side=4] [--mode=ttmqo|baseline|bs|innet]
//
// Commands (stdin, one per line; '#' starts a comment):
//   submit <sql>        register a query; its id is printed
//   terminate <id>      stop a query
//   run <seconds>       advance simulated time; results print as they land
//   synthetics          show the synthetic queries currently running
//   stats               show radio statistics
//   help                this text
//   quit                exit
//
// Example session:
//   submit SELECT light WHERE light > 400 EPOCH DURATION 4096
//   submit SELECT MAX(light) EPOCH DURATION 8192
//   run 30
//   synthetics
//   stats
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/ttmqo_engine.h"
#include "metrics/run_summary.h"
#include "net/topology.h"
#include "query/parser.h"
#include "sensing/field_model.h"
#include "util/flags.h"

namespace {

using namespace ttmqo;

class ConsoleSink final : public ResultSink {
 public:
  void OnResult(const EpochResult& result) override {
    std::printf("  [%8.1fs] %s\n",
                static_cast<double>(result.epoch_time) / 1000.0,
                result.ToString().c_str());
  }
};

OptimizationMode ParseMode(const std::string& name) {
  if (name == "baseline") return OptimizationMode::kBaseline;
  if (name == "bs") return OptimizationMode::kBaseStationOnly;
  if (name == "innet") return OptimizationMode::kInNetworkOnly;
  if (name == "ttmqo") return OptimizationMode::kTwoTier;
  throw std::invalid_argument("unknown --mode (baseline|bs|innet|ttmqo)");
}

void PrintHelp() {
  std::printf(
      "commands: submit <sql> | terminate <id> | run <seconds> | "
      "synthetics | stats | help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 4));
  const OptimizationMode mode = ParseMode(flags.GetString("mode", "ttmqo"));

  const Topology topology = Topology::Grid(side);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  const CorrelatedFieldModel field(11, {});
  ConsoleSink sink;
  TtmqoOptions options;
  options.mode = mode;
  TtmqoEngine engine(network, field, &sink, options);

  std::printf("ttmqo console: %zu-node grid, mode=%s.  Type 'help'.\n",
              topology.size(), std::string(OptimizationModeName(mode)).c_str());

  QueryId next_id = 1;
  std::string line;
  while (std::getline(std::cin, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;
    try {
      if (command == "quit" || command == "exit") {
        break;
      } else if (command == "help") {
        PrintHelp();
      } else if (command == "submit") {
        std::string sql;
        std::getline(in, sql);
        const Query query = ParseQuery(next_id, sql);
        engine.SubmitQuery(query);
        std::printf("query %u: %s\n", next_id, query.ToSql().c_str());
        ++next_id;
      } else if (command == "terminate") {
        QueryId id = 0;
        if (!(in >> id)) throw std::invalid_argument("terminate <id>");
        engine.TerminateQuery(id);
        std::printf("query %u terminated\n", id);
      } else if (command == "run") {
        double seconds = 0;
        if (!(in >> seconds) || seconds <= 0) {
          throw std::invalid_argument("run <seconds>");
        }
        network.sim().RunUntil(network.sim().Now() +
                               static_cast<SimDuration>(seconds * 1000.0));
        std::printf("t = %.1fs\n",
                    static_cast<double>(network.sim().Now()) / 1000.0);
      } else if (command == "synthetics") {
        if (engine.optimizer() == nullptr) {
          std::printf("mode '%s' does not rewrite queries\n",
                      std::string(engine.name()).c_str());
        } else {
          for (const SyntheticQuery* sq : engine.optimizer()->Synthetics()) {
            std::printf("  #%u %s  <- serves", sq->query.id(),
                        sq->query.ToSql().c_str());
            for (const auto& [uid, uq] : sq->members) {
              std::printf(" %u", uid);
            }
            std::printf("\n");
          }
          std::printf("benefit ratio %.0f%%\n", engine.BenefitRatio() * 100);
        }
      } else if (command == "stats") {
        const auto now = std::max<SimTime>(network.sim().Now(), 1);
        std::printf("%s\n", RunSummary::FromLedger(network.ledger(), now)
                                .ToString()
                                .c_str());
      } else {
        std::printf("unknown command '%s'\n", command.c_str());
        PrintHelp();
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
