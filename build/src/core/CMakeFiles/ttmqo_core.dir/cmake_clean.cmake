file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_core.dir/bs/cost_model.cc.o"
  "CMakeFiles/ttmqo_core.dir/bs/cost_model.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/bs/integration.cc.o"
  "CMakeFiles/ttmqo_core.dir/bs/integration.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/bs/result_mapper.cc.o"
  "CMakeFiles/ttmqo_core.dir/bs/result_mapper.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/bs/rewriter.cc.o"
  "CMakeFiles/ttmqo_core.dir/bs/rewriter.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/innet/innet_engine.cc.o"
  "CMakeFiles/ttmqo_core.dir/innet/innet_engine.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/innet/payloads.cc.o"
  "CMakeFiles/ttmqo_core.dir/innet/payloads.cc.o.d"
  "CMakeFiles/ttmqo_core.dir/ttmqo_engine.cc.o"
  "CMakeFiles/ttmqo_core.dir/ttmqo_engine.cc.o.d"
  "libttmqo_core.a"
  "libttmqo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
