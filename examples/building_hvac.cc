// Building HVAC dashboard: an aggregation-heavy deployment.  Every floor
// dashboard, the energy manager and the safety system watch overlapping
// temperature aggregates.  Tier 1 merges the identical-predicate
// aggregates; tier 2 packs the remaining partial-aggregate streams into
// shared messages and aggregates early along the DAG.
//
// The example also shows base-station-side alerting built on the result
// stream: the safety threshold query trips an alert whenever MAX(temp)
// crosses a limit.
//
//   $ building_hvac [--side=6] [--minutes=30] [--limit=85]
#include <cstdio>
#include <vector>

#include "core/ttmqo_engine.h"
#include "metrics/run_summary.h"
#include "net/topology.h"
#include "query/parser.h"
#include "sensing/field_model.h"
#include "util/flags.h"

namespace {

using namespace ttmqo;

// Watches the safety query's MAX(temp) stream and raises alerts.
class AlertingSink final : public ResultSink {
 public:
  AlertingSink(QueryId safety_query, double limit)
      : safety_query_(safety_query), limit_(limit) {}

  void OnResult(const EpochResult& result) override {
    ++results_;
    if (result.query != safety_query_) return;
    for (const auto& [spec, value] : result.aggregates) {
      if (spec.op == AggregateOp::kMax && value.has_value() &&
          *value > limit_) {
        ++alerts_;
        if (alerts_ <= 5) {
          std::printf("  ALERT [%6.1fs] MAX(temp) = %.1f exceeds %.1f\n",
                      static_cast<double>(result.epoch_time) / 1000.0, *value,
                      limit_);
        }
      }
    }
  }

  std::size_t alerts() const { return alerts_; }
  std::size_t results() const { return results_; }

 private:
  QueryId safety_query_;
  double limit_;
  std::size_t alerts_ = 0;
  std::size_t results_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 6));
  const double minutes = flags.GetDouble("minutes", 30.0);
  const double limit = flags.GetDouble("limit", 85.0);
  const auto duration = static_cast<SimDuration>(minutes * 60'000.0);

  const Topology topology = Topology::Grid(side);
  Network network(topology, RadioParams{}, ChannelParams{}, 7);
  // The server room in one corner runs hot.
  HotspotFieldModel::Params hot;
  hot.center = Position{static_cast<double>(side - 1) * 20.0,
                        static_cast<double>(side - 1) * 20.0};
  hot.orbit_radius_feet = 10.0;
  hot.hotspot_radius_feet = 50.0;
  const HotspotFieldModel field(3, hot);

  const std::vector<const char*> dashboard = {
      // Floor dashboards: identical predicates, different aggregates and
      // rates -> tier 1 merges them into one synthetic aggregation query.
      "SELECT MAX(temp) FROM sensors EPOCH DURATION 4096",
      "SELECT MIN(temp) FROM sensors EPOCH DURATION 8192",
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 8192",
      // Energy manager: hot-zone load.
      "SELECT COUNT(temp) FROM sensors WHERE temp > 70 EPOCH DURATION 8192",
      "SELECT AVG(light) FROM sensors WHERE light > 300 EPOCH DURATION "
      "16384",
      // Safety system: fast threshold watch (the alert source).
      "SELECT MAX(temp) FROM sensors EPOCH DURATION 2048",
  };
  const QueryId safety_query = 6;

  AlertingSink sink(safety_query, limit);
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, &sink, options);

  std::printf("Building HVAC: %zu queries on a %zux%zu grid, %.0f minutes, "
              "alert limit %.1f\n\n",
              dashboard.size(), side, side, minutes, limit);
  QueryId id = 1;
  for (const char* sql : dashboard) {
    engine.SubmitQuery(ParseQuery(id++, sql));
  }
  std::printf("tier 1 runs %zu network queries for %zu user queries "
              "(benefit ratio %.0f%%)\n\n",
              engine.NumNetworkQueries(), engine.NumUserQueries(),
              engine.BenefitRatio() * 100);

  network.sim().RunUntil(duration);

  std::printf("\n%zu epoch results delivered, %zu alerts raised\n",
              sink.results(), sink.alerts());
  std::printf("radio: %s\n",
              RunSummary::FromLedger(network.ledger(), duration)
                  .ToString()
                  .c_str());
  return 0;
}
