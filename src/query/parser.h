// Parser for the TinyDB SQL dialect.
//
// Grammar (case-insensitive keywords):
//
//   query      := SELECT select_list [FROM sensors] [WHERE conjunction]
//                 EPOCH DURATION <int-ms>
//   select_list:= '*' | item (',' item)*
//   item       := attribute | AGG '(' attribute ')'
//   conjunction:= comparison (AND comparison)*
//   comparison := attribute op number | number op attribute
//               | attribute BETWEEN number AND number
//   op         := '<' | '<=' | '>' | '>=' | '='
//
// `SELECT *` projects every sensed attribute.  Mixing raw attributes and
// aggregates in one query is rejected, as in the paper's query model.  Over
// the continuous sensor domains the strict and non-strict comparison
// operators are treated identically (ranges are closed intervals).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "query/query.h"

namespace ttmqo {

/// Raised on malformed query text; the message pinpoints the offending
/// token.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses `sql` into a query with identifier `id`.  Throws `ParseError`.
Query ParseQuery(QueryId id, std::string_view sql);

}  // namespace ttmqo
