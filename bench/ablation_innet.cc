// Ablation study of the in-network tier (DESIGN.md): how much each
// heuristic contributes.  Runs WORKLOAD_B and WORKLOAD_C under in-network
// optimization with individual features disabled:
//
//   full        — query-aware DAG routing + shared messages + sleep
//   no-dag      — fixed routing-tree parents (packing still on)
//   no-shared   — one message per query (DAG routing still on)
//   no-sleep    — idle nodes keep listening
//   tree-only   — everything off: epoch alignment is the only tier-2 gain
//
// Usage: ablation_innet [--duration-ms=N] [--seed=N] [--side=N]
#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "query/parser.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

struct Variant {
  const char* name;
  bool dag;
  bool shared;
  bool sleep;
};

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const SimDuration duration = flags.GetInt("duration-ms", 40 * 12288);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 21));
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 8));
  if (ReportUnreadFlags(flags)) return 2;

  const Variant variants[] = {
      {"full", true, true, true},
      {"no-dag", false, true, true},
      {"no-shared", true, false, true},
      {"no-sleep", true, true, false},
      {"tree-only", false, false, false},
  };

  // A sparse workload over a moving hotspot: only a spatially-connected
  // cluster of nodes answers, so query-aware parent selection (route
  // toward neighbors that also have data) actually changes which relays
  // are involved — the Figure 2 scenario, statistically.
  const std::vector<Query> hotspot = {
      ParseQuery(1, "SELECT light WHERE light > 700 EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT light, temp WHERE light > 750 EPOCH DURATION "
                    "4096"),
      ParseQuery(3, "SELECT MAX(temp) WHERE light > 700 EPOCH DURATION 8192"),
      ParseQuery(4, "SELECT light WHERE light > 800 EPOCH DURATION 12288"),
  };

  std::printf("In-network tier ablation (%zux%zu grid, %lldms)\n\n", side,
              side, static_cast<long long>(duration));
  for (const char* workload : {"B", "C", "HOTSPOT"}) {
    const bool is_hotspot = std::string(workload) == "HOTSPOT";
    const auto schedule =
        StaticSchedule(is_hotspot ? hotspot : WorkloadByName(workload));

    RunConfig base;
    base.grid_side = side;
    base.mode = OptimizationMode::kBaseline;
    base.duration_ms = duration;
    base.seed = seed;
    if (is_hotspot) base.field = FieldKind::kHotspot;
    const double baseline =
        RunExperiment(base, schedule).summary.avg_transmission_fraction;

    TablePrinter table(
        {"variant", "avg tx %", "savings vs baseline %", "sleep %"});
    for (const Variant& v : variants) {
      RunConfig config = base;
      config.mode = OptimizationMode::kInNetworkOnly;
      config.innet.query_aware_routing = v.dag;
      config.innet.shared_messages = v.shared;
      config.innet.enable_sleep = v.sleep;
      const RunResult run = RunExperiment(config, schedule);
      table.AddRow(
          {v.name,
           TablePrinter::Num(run.summary.avg_transmission_fraction * 100, 4),
           TablePrinter::Num(
               SavingsPercent(baseline,
                              run.summary.avg_transmission_fraction),
               1),
           TablePrinter::Num(run.summary.avg_sleep_fraction * 100, 1)});
    }
    std::printf("--- WORKLOAD_%s (baseline avg tx %.4f%%) ---\n", workload,
                baseline * 100);
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
