file(REMOVE_RECURSE
  "CMakeFiles/building_hvac.dir/building_hvac.cc.o"
  "CMakeFiles/building_hvac.dir/building_hvac.cc.o.d"
  "building_hvac"
  "building_hvac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/building_hvac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
