// Aggregated per-run measurements and comparisons.
//
// `RunSummary` snapshots a `RadioLedger` into the quantities the paper
// reports: the average-transmission-time metric of Section 4.1, per-class
// message counts, and retransmissions.  `SavingsPercent` expresses one
// scheme's improvement over a baseline the way Figures 3 and 5 do.
#pragma once

#include <cstdint>
#include <string>

#include "net/ledger.h"
#include "util/time.h"

namespace ttmqo {

/// Measurements of one simulation run.
struct RunSummary {
  /// Mean over sensor nodes of (transmit time / elapsed), in [0, 1].
  double avg_transmission_fraction = 0.0;
  /// Mean over sensor nodes of (sleep time / elapsed), in [0, 1].
  double avg_sleep_fraction = 0.0;
  /// Total transmit milliseconds over all nodes (incl. retransmissions).
  double total_transmit_ms = 0.0;
  /// Simulated milliseconds the summary covers.
  SimDuration elapsed_ms = 0;
  /// First-attempt message counts.
  std::uint64_t result_messages = 0;
  std::uint64_t propagation_messages = 0;
  std::uint64_t abort_messages = 0;
  std::uint64_t maintenance_messages = 0;
  /// Retransmission attempts and abandoned messages.
  std::uint64_t retransmissions = 0;
  std::uint64_t total_messages = 0;

  /// Snapshots `ledger` over an `elapsed` window.
  static RunSummary FromLedger(const RadioLedger& ledger,
                               SimDuration elapsed);

  /// One-line rendering for logs and benches.
  std::string ToString() const;
};

/// Percentage by which `value` improves on `baseline` (positive = better,
/// i.e. smaller); 0 when the baseline is 0.
double SavingsPercent(double baseline, double value);

}  // namespace ttmqo
