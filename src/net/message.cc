#include "net/message.h"

#include "util/check.h"

namespace ttmqo {

std::string_view MessageClassName(MessageClass cls) {
  switch (cls) {
    case MessageClass::kResult:
      return "result";
    case MessageClass::kQueryPropagation:
      return "propagation";
    case MessageClass::kQueryAbort:
      return "abort";
    case MessageClass::kMaintenance:
      return "maintenance";
    case MessageClass::kControl:
      return "control";
  }
  Check(false, "unknown message class");
  return "";
}

}  // namespace ttmqo
