#include "core/bs/cost_model.h"

namespace ttmqo {
namespace {

// Query id (2) + epoch tag (2) accompanying every result payload; mirrors
// the engines' result envelope.
constexpr std::size_t kResultEnvelopeBytes = 4;

}  // namespace

CostModel::CostModel(const Topology& topology, const RadioParams& radio,
                     const SelectivityEstimator& selectivity)
    : topology_(&topology),
      radio_(radio),
      selectivity_(&selectivity),
      num_sensors_(static_cast<double>(topology.size() - 1)) {}

double CostModel::ResultRate(const Query& query, std::size_t level) const {
  const auto& per_level = topology_->NodesPerLevel();
  if (level >= per_level.size()) return 0.0;
  double nodes = static_cast<double>(per_level[level]);
  if (level == 0) nodes -= 1.0;  // the base station is not a sensor
  if (nodes <= 0.0) return 0.0;
  const double sel = selectivity_->Selectivity(query.predicates(), level);
  return sel * nodes / static_cast<double>(query.epoch());
}

double CostModel::Transmissions(const Query& query) const {
  if (query.kind() == QueryKind::kAggregation) {
    // Lower bound: every node that produces a result merges it into one
    // already-flowing message, so transmissions == generated results over
    // the whole network (Section 3.1.2).
    const double sel = selectivity_->Selectivity(query.predicates());
    return sel * num_sensors_ / static_cast<double>(query.epoch());
  }
  double total = 0.0;
  for (std::size_t k = 1; k <= topology_->MaxDepth(); ++k) {
    total += ResultRate(query, k) * static_cast<double>(k);
  }
  return total;
}

double CostModel::MessageLengthBytes(const Query& query) const {
  return static_cast<double>(radio_.header_bytes + kResultEnvelopeBytes +
                             query.ResultPayloadBytes());
}

double CostModel::Cost(const Query& query) const {
  cost_evaluations_.fetch_add(1, std::memory_order_relaxed);
  // MessageLengthBytes already includes the radio header, so the per-byte
  // term uses the raw length without re-adding it.
  const double per_message =
      radio_.start_ms + radio_.per_byte_ms * MessageLengthBytes(query);
  return Transmissions(query) * per_message;
}

std::uint64_t CostModel::StatsVersion() const {
  return selectivity_->Version();
}

double CostModel::Benefit(const Query& q1, const Query& q2,
                          const Query& integrated) const {
  benefit_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return Cost(q1) + Cost(q2) - Cost(integrated);
}

}  // namespace ttmqo
