// Radio event and decision tracing.
//
// `JsonlTraceWriter` streams one JSON object per event to an
// `std::ostream` — suitable for offline visualization or debugging of an
// experiment's message flow.  It is both a `NetworkObserver` (radio events:
// tx/drop/sleep/wake/fail) and a `TraceSink` (structured decision events
// from the optimizer tiers), so one JSONL file interleaves the network's
// physical activity with the decisions that caused it.  All string fields
// are JSON-escaped and the stream is flushed on destruction, so the output
// is always parseable line-by-line.
#pragma once

#include <ostream>

#include "net/observer.h"
#include "util/tracing.h"

namespace ttmqo {

/// Streams radio events and trace events as JSON Lines.
class JsonlTraceWriter final : public NetworkObserver, public TraceSink {
 public:
  /// `out` must outlive the writer.  Nothing is buffered beyond the
  /// stream's own buffering.
  explicit JsonlTraceWriter(std::ostream& out) : out_(&out) {}

  /// Flushes the stream so a truncated process still leaves parseable JSONL.
  ~JsonlTraceWriter() override;

  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  // NetworkObserver:
  void OnTransmit(SimTime time, const Message& msg, double duration_ms,
                  bool retransmission) override;
  void OnDrop(SimTime time, const Message& msg) override;
  void OnSleepChange(SimTime time, NodeId node, bool asleep) override;
  void OnNodeFailed(SimTime time, NodeId node) override;
  void OnNodeDown(SimTime time, NodeId node) override;
  void OnNodeRecovered(SimTime time, NodeId node, SimDuration down_ms) override;
  void OnLinkDrop(SimTime time, const Message& msg, NodeId receiver) override;

  // TraceSink:
  void Emit(const TraceEvent& event) override;

  /// Explicitly flushes the underlying stream.
  void Flush();

  /// Number of events written so far.
  std::uint64_t events() const { return events_; }

 private:
  std::ostream* out_;
  std::uint64_t events_ = 0;
};

/// A counting observer for tests and quick statistics.
class CountingObserver final : public NetworkObserver {
 public:
  void OnTransmit(SimTime, const Message&, double, bool retransmission)
      override {
    ++transmissions;
    if (retransmission) ++retransmissions;
  }
  void OnDrop(SimTime, const Message&) override { ++drops; }
  void OnSleepChange(SimTime, NodeId, bool asleep) override {
    if (asleep) ++sleeps;
  }
  void OnNodeFailed(SimTime, NodeId) override { ++failures; }
  void OnNodeDown(SimTime, NodeId) override { ++downs; }
  void OnNodeRecovered(SimTime, NodeId, SimDuration) override { ++recoveries; }
  void OnLinkDrop(SimTime, const Message&, NodeId) override { ++link_drops; }

  std::uint64_t transmissions = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t drops = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t failures = 0;
  std::uint64_t downs = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t link_drops = 0;
};

}  // namespace ttmqo
