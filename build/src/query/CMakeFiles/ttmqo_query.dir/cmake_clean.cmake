file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_query.dir/aggregate.cc.o"
  "CMakeFiles/ttmqo_query.dir/aggregate.cc.o.d"
  "CMakeFiles/ttmqo_query.dir/engine.cc.o"
  "CMakeFiles/ttmqo_query.dir/engine.cc.o.d"
  "CMakeFiles/ttmqo_query.dir/parser.cc.o"
  "CMakeFiles/ttmqo_query.dir/parser.cc.o.d"
  "CMakeFiles/ttmqo_query.dir/predicate.cc.o"
  "CMakeFiles/ttmqo_query.dir/predicate.cc.o.d"
  "CMakeFiles/ttmqo_query.dir/query.cc.o"
  "CMakeFiles/ttmqo_query.dir/query.cc.o.d"
  "CMakeFiles/ttmqo_query.dir/result.cc.o"
  "CMakeFiles/ttmqo_query.dir/result.cc.o.d"
  "libttmqo_query.a"
  "libttmqo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
