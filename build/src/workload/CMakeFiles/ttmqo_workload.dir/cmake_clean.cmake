file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_workload.dir/generator.cc.o"
  "CMakeFiles/ttmqo_workload.dir/generator.cc.o.d"
  "CMakeFiles/ttmqo_workload.dir/runner.cc.o"
  "CMakeFiles/ttmqo_workload.dir/runner.cc.o.d"
  "CMakeFiles/ttmqo_workload.dir/static_workloads.cc.o"
  "CMakeFiles/ttmqo_workload.dir/static_workloads.cc.o.d"
  "libttmqo_workload.a"
  "libttmqo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
