# Empty compiler generated dependencies file for ttmqo_routing.
# This may be replaced when dependencies are built.
