#include "util/interval.h"

#include <cstdio>
#include <limits>

namespace ttmqo {

Interval::Interval(double lo, double hi) {
  if (lo <= hi) {
    lo_ = lo;
    hi_ = hi;
    empty_ = false;
  }
}

Interval Interval::All() {
  return Interval(std::numeric_limits<double>::lowest(),
                  std::numeric_limits<double>::max());
}

bool Interval::Covers(const Interval& other) const {
  if (other.empty_) return true;
  if (empty_) return false;
  return lo_ <= other.lo_ && hi_ >= other.hi_;
}

bool Interval::Intersects(const Interval& other) const {
  return !Intersect(other).empty();
}

Interval Interval::Intersect(const Interval& other) const {
  if (empty_ || other.empty_) return Interval();
  return Interval(std::max(lo_, other.lo_), std::min(hi_, other.hi_));
}

Interval Interval::Hull(const Interval& other) const {
  if (empty_) return other;
  if (other.empty_) return *this;
  return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
}

double Interval::OverlapFraction(const Interval& other) const {
  if (empty_ || other.empty_) return 0.0;
  const double len = Length();
  if (len <= 0.0) return Contains(other.lo_) ? 1.0 : 0.0;
  return Intersect(other).Length() / len;
}

std::string Interval::ToString() const {
  if (empty_) return "(empty)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%g, %g]", lo_, hi_);
  return buf;
}

}  // namespace ttmqo
