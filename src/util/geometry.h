// Planar geometry for node placement and radio reachability.
#pragma once

#include <cmath>

namespace ttmqo {

/// A point in the deployment plane, in feet (the paper uses a 20 ft grid
/// spacing and a 50 ft radio radius, Section 4.1).
struct Position {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Position&) const = default;
};

/// Euclidean distance between two positions, in feet.
inline double Distance(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace ttmqo
