# Empty dependencies file for bs_optimizer_test.
# This may be replaced when dependencies are built.
