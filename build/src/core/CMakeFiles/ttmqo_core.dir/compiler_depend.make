# Empty compiler generated dependencies file for ttmqo_core.
# This may be replaced when dependencies are built.
