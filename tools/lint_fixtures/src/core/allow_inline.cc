// Fixture: real violations, every one suppressed by the inline escape
// hatch — on the offending line or the line directly above.  Must produce
// zero findings.
#include <chrono>
#include <cstdlib>

namespace fixture {

double Suppressed() {
  auto t = std::chrono::steady_clock::now();  // ttmqo-lint: allow(wall-clock): fixture
  // ttmqo-lint: allow(wall-clock): fixture, annotation on the line above
  int r = rand();
  (void)t;
  return static_cast<double>(r);
}

}  // namespace fixture
