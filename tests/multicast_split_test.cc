// The multicast split of Section 3.2.2: when different queries are best
// served by different parents, "one multicast message is required to send
// out the message to all these neighbors", each forwarding its own subset.
//
// Diamond topology:        BS(0,0)           (level 0)
//                         /      \.
//                     A(40,0)   B(0,40)      (level 1)
//                         \      /
//                         C(40,40)           (level 2, two parents)
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "test_helpers.h"

namespace ttmqo {
namespace {

constexpr NodeId kA = 1;
constexpr NodeId kB = 2;
constexpr NodeId kC = 3;

// A answers only q1 (light high), B answers only q2 (temp high), C answers
// both — so C's has-data table steers q1 toward A and q2 toward B.
class DiamondField final : public FieldModel {
 public:
  double Sample(NodeId node, const Position&, Attribute attr,
                SimTime) const override {
    if (attr == Attribute::kNodeId) return node;
    if (attr == Attribute::kLight) {
      return (node == kA || node == kC) ? 900.0 : 100.0;
    }
    if (attr == Attribute::kTemp) {
      return (node == kB || node == kC) ? 90.0 : 10.0;
    }
    return 0.0;
  }
};

class MulticastSplitTest : public ::testing::Test {
 protected:
  MulticastSplitTest()
      : topology_({{0, 0}, {40, 0}, {0, 40}, {40, 40}}, 50.0),
        network_(topology_, RadioParams{}, ChannelParams{}, 1) {}

  Topology topology_;
  Network network_;
  DiamondField field_;
  ResultLog log_;
};

TEST_F(MulticastSplitTest, DiamondStructure) {
  const LevelGraph graph(topology_);
  EXPECT_EQ(graph.LevelOf(kC), 2u);
  EXPECT_EQ(graph.UpperNeighbors(kC), (std::vector<NodeId>{kA, kB}));
  EXPECT_FALSE(topology_.AreNeighbors(kC, kBaseStationId));
}

TEST_F(MulticastSplitTest, SplitQueriesRideOneMulticast) {
  const Query q1 =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  const Query q2 =
      ParseQuery(2, "SELECT temp WHERE temp > 80 EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q1);
  engine.SubmitQuery(q2);
  network_.sim().RunUntil(6 * 4096);

  // Every epoch must deliver: q1 <- {A, C}, q2 <- {B, C}.
  for (SimTime t = 4096; t < 5 * 4096; t += 4096) {
    const EpochResult* r1 = log_.Find(1, t);
    const EpochResult* r2 = log_.Find(2, t);
    ASSERT_NE(r1, nullptr) << "epoch " << t;
    ASSERT_NE(r2, nullptr) << "epoch " << t;
    ASSERT_EQ(r1->rows.size(), 2u) << "epoch " << t;
    EXPECT_EQ(r1->rows[0].node(), kA);
    EXPECT_EQ(r1->rows[1].node(), kC);
    ASSERT_EQ(r2->rows.size(), 2u) << "epoch " << t;
    EXPECT_EQ(r2->rows[0].node(), kB);
    EXPECT_EQ(r2->rows[1].node(), kC);
  }
}

TEST_F(MulticastSplitTest, SteadyStateUsesFourMessagesPerEpoch) {
  // Once C has learned who holds data, an epoch costs exactly:
  //   C: one transmission (unicast or multicast split),
  //   A: one packed message (own row + C's q1 row),
  //   B: one packed message (own row + C's q2 row),
  // i.e. 3 result transmissions per epoch — against 6 for the baseline
  // (A:1, B:1, C's rows relayed separately per query: 2x2).
  const Query q1 =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  const Query q2 =
      ParseQuery(2, "SELECT temp WHERE temp > 80 EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q1);
  engine.SubmitQuery(q2);
  // Let two epochs pass (bootstrap), then measure two steady-state epochs.
  network_.sim().RunUntil(3 * 4096 - 1);
  const auto before = network_.ledger().TotalSent(MessageClass::kResult);
  network_.sim().RunUntil(5 * 4096 - 1);
  const auto steady = network_.ledger().TotalSent(MessageClass::kResult) -
                      before;
  EXPECT_LE(steady, 2 * 4u);
  EXPECT_GE(steady, 2 * 3u);
}

}  // namespace
}  // namespace ttmqo
