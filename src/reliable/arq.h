// Per-hop ARQ transport: ack / timeout / retransmit with deterministic
// backoff, bounded budgets, and flapping-node quarantine.
//
// `ArqTransport` sits between an engine and `Network`.  The engine attaches
// its receivers through the transport and routes unicast/multicast sends
// through `Send`; broadcasts and foreign payloads pass through untouched.
// Each reliable send wraps the payload in an `ArqDataPayload` carrying a
// per-sender sequence number.  Addressed receivers ack every copy (acks are
// `MessageClass::kControl`), deduplicate by (sender, seq) inside a sliding
// window, and hand exactly one copy up.  The sender keeps the message in a
// pooled pending slot and retransmits to the not-yet-acked subset on
// timeout, with RTO = base * 2^attempt + jitter, where the jitter stream is
// forked from (transport seed, sender, seq) — so retry schedules depend
// only on the run configuration, never on thread scheduling, and sweep
// reports stay byte-identical across `--jobs` counts.
//
// Budgets are twofold: a per-hop attempt cap and a hard deadline (the
// sender's epoch cutoff) after which the slot gives up.  Give-ups strike
// the destination; enough consecutive strikes quarantine the neighbor with
// a doubling, bounded backoff whose memory survives recovery (hysteresis:
// a flapping node is re-trusted more slowly each time).  The engine feeds
// quarantines into its parent blacklist and may re-route the surviving
// payload through the give-up hook.
//
// Steady state schedules no allocating events: retry timers are small
// inline captures in the PR-5 pooled slab, pending slots and ack payloads
// are recycled through free lists.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.h"
#include "util/rng.h"
#include "util/time.h"

namespace ttmqo {

/// Serialized overhead of the ARQ wrapper (sequence number + flags).
inline constexpr std::size_t kArqHeaderBytes = 2;

/// Serialized size of an ack (sequence number + sender id).
inline constexpr std::size_t kArqAckBytes = 3;

/// Tuning of the ARQ transport.  `enabled` false means the transport is
/// never constructed and the engine talks to the network directly — the
/// profile-off fast path.
struct ArqOptions {
  bool enabled = false;
  /// Seed of the jitter streams (forked per (sender, seq)).  The runner
  /// derives it from the run's master seed.
  std::uint64_t seed = 0;
  /// First retransmit timeout; doubled per attempt.
  SimDuration base_rto_ms = 256;
  /// RTO growth cap.
  SimDuration max_rto_ms = 4096;
  /// Deterministic per-(sender, seq) jitter added to every RTO, in
  /// [0, jitter_ms] — de-synchronizes retry bursts.
  SimDuration jitter_ms = 32;
  /// Transmissions per hop before giving up (first send included).
  int max_attempts = 4;
  /// Give-up strikes against one neighbor before it is quarantined.
  int quarantine_threshold = 2;
  /// First quarantine duration; doubled per quarantine (hysteresis).
  SimDuration quarantine_base_ms = 4096;
  /// Quarantine backoff cap.
  SimDuration quarantine_max_ms = 32768;
  /// Receiver-side duplicate-detection window per (receiver, sender):
  /// sequence numbers more than this far behind the newest seen are
  /// forgotten (bounded memory for long-lived runs).
  std::uint32_t dedup_window = 1024;
};

/// The reliable wrapper around an application payload.
struct ArqDataPayload final : Payload {
  ArqDataPayload(std::uint32_t s, std::shared_ptr<const Payload> p)
      : seq(s), inner(std::move(p)) {}
  std::uint32_t seq;
  std::shared_ptr<const Payload> inner;
};

/// Acknowledgement of one (sender, seq); travels as kControl.
struct ArqAckPayload final : Payload {
  explicit ArqAckPayload(std::uint32_t s) : seq(s) {}
  std::uint32_t seq;
};

/// The RTO of retry number `backoff_exponent` (0 for the first timeout):
/// min(base * 2^exponent, max) + jitter drawn from `rng`.  Exposed for the
/// backoff-arithmetic unit tests.
SimDuration ArqRto(const ArqOptions& options, int backoff_exponent, Rng& rng);

/// The jitter stream of one (sender, seq) pair under `seed` — every retry
/// schedule is a pure function of these three values.
Rng ArqJitterRng(std::uint64_t seed, NodeId sender, std::uint32_t seq);

class ArqTransport {
 public:
  /// A reliable send that exhausted its budget.  `inner` is the original
  /// application payload; `unacked` the destinations never heard from.
  struct GiveUpInfo {
    MessageClass cls = MessageClass::kResult;
    NodeId sender = 0;
    std::shared_ptr<const Payload> inner;
    std::size_t inner_bytes = 0;
    std::vector<NodeId> unacked;
    SimTime deadline = 0;
    /// How many times this payload has already been re-routed after a
    /// give-up (the engine caps re-route chains).
    int reroutes = 0;
  };
  using GiveUpHook = std::function<void(const GiveUpInfo&)>;
  using QuarantineHook =
      std::function<void(NodeId self, NodeId neighbor, SimTime until)>;

  /// `network` must outlive the transport.
  ArqTransport(Network& network, ArqOptions options);

  ArqTransport(const ArqTransport&) = delete;
  ArqTransport& operator=(const ArqTransport&) = delete;

  /// Installs the transport between `node`'s radio and `upper`: data
  /// wrappers are unwrapped/acked/deduplicated, acks consume pending
  /// slots, everything else passes through unchanged.
  void Attach(NodeId node, Network::Receiver upper);

  /// Reliably sends a unicast/multicast `msg` (any class), retrying until
  /// every destination acked, the attempt budget is spent, or `deadline`
  /// passes.  `reroutes` threads the engine's re-route count through to
  /// the give-up hook.
  void Send(Message msg, SimTime deadline, int reroutes = 0);

  /// True while `neighbor` is quarantined from `self`'s point of view.
  bool IsQuarantined(NodeId self, NodeId neighbor) const;

  /// Called when a send exhausts its budget (after the strike accounting).
  void SetGiveUpHook(GiveUpHook hook) { give_up_ = std::move(hook); }

  /// Called when a neighbor enters quarantine.
  void SetQuarantineHook(QuarantineHook hook) {
    quarantine_hook_ = std::move(hook);
  }

  // --- statistics -------------------------------------------------------
  std::uint64_t sends() const { return sends_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  std::uint64_t give_ups() const { return give_ups_; }
  std::uint64_t quarantines() const { return quarantines_; }

 private:
  /// One in-flight reliable send, recycled through a free list.
  struct PendingSlot {
    Message msg;
    std::vector<NodeId> unacked;
    SimTime deadline = 0;
    std::uint32_t seq = 0;
    int attempt = 1;
    int reroutes = 0;
    /// Bumped on release so stale timeout events no-op.
    std::uint32_t generation = 0;
    Rng rng{0};
    bool in_use = false;
  };

  /// Receiver-side duplicate detection for one (receiver, sender) pair.
  struct SeenWindow {
    std::set<std::uint32_t> seqs;
    std::uint32_t max_seen = 0;
  };

  /// Give-up strikes and quarantine state of one neighbor.  `backoff`
  /// persists across recoveries — the hysteresis that makes repeated
  /// flapping progressively more expensive.
  struct Quarantine {
    int strikes = 0;
    SimDuration backoff = 0;
    SimTime until = 0;
  };

  void OnReceive(NodeId self, const Message& msg, bool addressed);
  void OnTimeout(std::uint32_t slot, std::uint32_t generation);
  void ScheduleTimeout(std::uint32_t slot);
  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);
  void SendAck(NodeId self, NodeId to, std::uint32_t seq);
  void Strike(NodeId self, NodeId neighbor);
  void ClearStrikes(NodeId self, NodeId neighbor);

  Network& network_;
  ArqOptions options_;
  std::vector<Network::Receiver> upper_;
  std::vector<std::uint32_t> next_seq_;
  /// Per sender: live seq -> pending slot index.
  std::vector<std::map<std::uint32_t, std::uint32_t>> live_;
  std::vector<PendingSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Per receiver: dedup window per sender.
  std::vector<std::map<NodeId, SeenWindow>> seen_;
  /// Per node: quarantine state per neighbor.
  std::vector<std::map<NodeId, Quarantine>> quarantine_;
  /// Recycled ack payloads (reused when the network released its copy).
  std::vector<std::shared_ptr<ArqAckPayload>> ack_pool_;
  GiveUpHook give_up_;
  QuarantineHook quarantine_hook_;
  std::uint64_t sends_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t give_ups_ = 0;
  std::uint64_t quarantines_ = 0;
};

}  // namespace ttmqo
