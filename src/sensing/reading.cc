#include "sensing/reading.h"

#include <sstream>

#include "util/check.h"

namespace ttmqo {

Reading::Reading(NodeId node, SimTime time) : node_(node), time_(time) {
  Set(Attribute::kNodeId, static_cast<double>(node));
}

void Reading::Set(Attribute attr, double value) {
  values_[AttributeIndex(attr)] = value;
  present_[AttributeIndex(attr)] = true;
}

std::optional<double> Reading::Get(Attribute attr) const {
  if (!present_[AttributeIndex(attr)]) return std::nullopt;
  return values_[AttributeIndex(attr)];
}

double Reading::GetOrThrow(Attribute attr) const {
  Check(present_[AttributeIndex(attr)],
        "Reading::GetOrThrow: attribute not sampled");
  return values_[AttributeIndex(attr)];
}

bool Reading::Has(Attribute attr) const {
  return present_[AttributeIndex(attr)];
}

std::string Reading::ToString() const {
  std::ostringstream out;
  out << "node " << node_ << " @" << time_ << "ms {";
  bool first = true;
  for (Attribute attr : kAllAttributes) {
    if (!present_[AttributeIndex(attr)]) continue;
    if (!first) out << ", ";
    first = false;
    out << AttributeName(attr) << "=" << values_[AttributeIndex(attr)];
  }
  out << "}";
  return out.str();
}

}  // namespace ttmqo
