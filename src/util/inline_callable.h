// A move-only callable with small-buffer-optimized storage.
//
// `InlineCallable<Capacity>` stores any callable of at most `Capacity`
// bytes directly in the object (no heap allocation on construction, move,
// or invocation); larger callables transparently fall back to one heap
// allocation.  Unlike `std::function` it is move-only, so captured state
// (a `Message`, a payload handle) is moved through the event pipeline and
// never copied, and moving the wrapper itself never allocates.  The
// simulator's event slab relies on both properties for its allocation-free
// steady state; `kFitsInline<F>` lets hot paths static_assert that their
// capture actually stays inline.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ttmqo {

template <std::size_t Capacity>
class InlineCallable {
 public:
  /// Bytes of inline storage.
  static constexpr std::size_t kCapacity = Capacity;

  /// True when a callable of type `F` lives in the inline buffer, making
  /// its entire lifecycle (construct, move, invoke, destroy) heap-free.
  /// Requires a nothrow move constructor because relocation happens inside
  /// noexcept move operations and slab growth.
  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineCallable() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallable> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallable(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (kFitsInline<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
    } else {
      // Intentional heap fallback for captures that outgrow the inline
      // buffer; hot-path captures static_assert kFitsInline instead.
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(fn)));  // ttmqo-lint: allow(raw-alloc): documented heap fallback
      ops_ = &kHeapOps<Decayed>;
    }
  }

  InlineCallable(InlineCallable&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallable& operator=(InlineCallable&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { Reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the held callable is stored inline (diagnostics).
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->stored_inline;
  }

  /// Invokes the held callable; undefined when empty.
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable at `dst` from `src`, then destroys the
    /// one at `src` (relocation — used by moves and slab growth).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool stored_inline;
  };

  template <typename F>
  static F* Stored(void* storage) noexcept {
    return std::launder(reinterpret_cast<F*>(storage));
  }

  template <typename F>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*Stored<F>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        F* from = Stored<F>(src);
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      /*destroy=*/[](void* s) noexcept { Stored<F>(s)->~F(); },
      /*stored_inline=*/true,
  };

  template <typename F>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (**Stored<F*>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*Stored<F*>(src));
      },
      /*destroy=*/[](void* s) noexcept { delete *Stored<F*>(s); },
      /*stored_inline=*/false,
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace ttmqo
