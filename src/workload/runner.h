// The experiment harness: builds a deployment, runs a workload schedule
// under a chosen optimization mode, and collects the paper's measurements.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/ttmqo_engine.h"
#include "fault/fault_plan.h"
#include "metrics/epoch_sampler.h"
#include "metrics/registry.h"
#include "metrics/run_summary.h"
#include "net/observer.h"
#include "net/radio.h"
#include "query/result.h"
#include "util/tracing.h"
#include "workload/generator.h"

namespace ttmqo {

/// Which synthetic field feeds the sensors.
enum class FieldKind { kUniform, kCorrelated, kHotspot };

/// Builds the field a run with master seed `seed` observes (the runner
/// derives the field seed from the master seed; tests and benches use this
/// to reconstruct ground truth).
std::unique_ptr<FieldModel> MakeFieldModel(FieldKind kind,
                                           std::uint64_t master_seed);

/// A scheduled crash fault.
struct NodeFailure {
  SimTime time = 0;
  NodeId node = 0;
};

/// How nodes are deployed.
enum class TopologyKind {
  kGrid,    ///< the paper's n x n grid
  kRandom,  ///< uniform-random placement (base station at the corner)
};

/// Optional observability hooks of a run.  Everything is borrowed and must
/// outlive `RunExperiment`; all default to off.
struct RunObservability {
  /// When set, the run feeds per-node/per-class radio counters into the
  /// registry (via an internal `MetricsObserver`), and exports the final
  /// `RunSummary`, tier-1 decision counts, and cost-model evaluation
  /// counts as gauges/counters — all tagged with `labels`.
  MetricsRegistry* registry = nullptr;
  /// Extra labels for everything the run writes into `registry`
  /// (e.g. {{"mode","ttmqo"}} when several runs share one registry).
  MetricLabels labels;
  /// When set, receives the engines' decision events ("tier1.*",
  /// "tier2.*", "engine.*") plus "run.start"/"run.end" brackets.  To also
  /// capture radio events, add the same `JsonlTraceWriter` to `observers`.
  TraceSink* trace = nullptr;
  /// Additional network observers attached for the duration of the run.
  std::vector<NetworkObserver*> observers;
  /// When set, `sampler->Start(network, sample_period_ms)` is called before
  /// the run, producing the per-epoch time series.  A sampler can serve
  /// only one run.
  EpochSampler* sampler = nullptr;
  SimDuration sample_period_ms = kMinEpochDurationMs;
};

/// Everything a run needs.
struct RunConfig {
  TopologyKind topology = TopologyKind::kGrid;
  /// Grid side (the paper uses 4 and 8, i.e. 16 and 64 nodes).
  std::size_t grid_side = 4;
  double grid_spacing_feet = 20.0;
  /// Random deployments: node count and square side (feet).
  std::size_t random_nodes = 25;
  double random_side_feet = 100.0;
  RadioParams radio;
  ChannelParams channel;
  FieldKind field = FieldKind::kCorrelated;
  OptimizationMode mode = OptimizationMode::kTwoTier;
  /// Tier-1 alpha (Algorithm 2).
  double alpha = 0.6;
  /// Tier-1 candidate search: indexed (default) or the naive oracle scan;
  /// decisions and results are identical either way.
  bool tier1_use_index = true;
  /// In-network ablation switches (applied to modes that use tier 2).
  InNetOptions innet;
  /// Named reliability profile applied on top of `innet` (off / harden /
  /// arq).  The ARQ jitter seed is derived from the master seed unless the
  /// caller pinned one explicitly.
  ReliabilityProfile reliability = ReliabilityProfile::kOff;
  /// Simulated duration.
  SimDuration duration_ms = 20 * 60 * 1000;
  /// Periodic network maintenance beacons (0 disables them).
  SimDuration maintenance_period_ms = 30000;
  std::size_t maintenance_payload_bytes = 6;
  /// Master seed (field, link quality, channel).
  std::uint64_t seed = 1;
  /// Crash faults injected during the run (legacy shorthand; merged into
  /// `faults` as crashes before the run starts).
  std::vector<NodeFailure> failures;
  /// Declarative fault schedule (crashes, outages, link loss, partitions).
  /// Validated up front against the deployment and duration; a bad
  /// schedule fails fast with a clear error instead of mid-run.
  FaultPlan faults;
  /// Sample engine statistics every this many ms (0 disables sampling).
  SimDuration stats_sample_period_ms = kMinEpochDurationMs;
  /// Metrics / tracing / time-series hooks (all optional).
  RunObservability obs;
};

/// Measurements of one run.
struct RunResult {
  RunSummary summary;
  /// Per-user-query answers observed at the base station.
  ResultLog results;
  /// Time-averaged number of network (synthetic) queries.
  double avg_network_queries = 0.0;
  /// Time-averaged tier-1 benefit ratio (0 for non-rewriting modes).
  double avg_benefit_ratio = 0.0;
  /// Benefit ratio at the end of the run.
  double final_benefit_ratio = 0.0;
  /// Peak number of concurrently active user queries.
  std::size_t peak_user_queries = 0;
  /// Simulator events executed (diagnostics).
  std::uint64_t events_executed = 0;
};

/// Runs `schedule` under `config` and returns the measurements.  Fully
/// deterministic in the config.
RunResult RunExperiment(const RunConfig& config,
                        const std::vector<WorkloadEvent>& schedule);

/// True when `a` and `b` can share one lockstep batched event loop: the
/// engine-shared parameters — grid deployment, radio, channel, duration,
/// maintenance beacons — must match.  Per-lane parameters (seed, mode,
/// alpha, reliability, faults, workload, observability, ...) may differ.
bool BatchCompatible(const RunConfig& a, const RunConfig& b);

/// Runs `configs[l]` under `schedules[l]` for every lane `l` (1..64 lanes)
/// through one lockstep batched event loop (DESIGN.md note 21).  All
/// configs must be pairwise `BatchCompatible`.  Results are byte-identical
/// to calling `RunExperiment` once per lane.
std::vector<RunResult> RunExperimentBatch(
    const std::vector<RunConfig>& configs,
    const std::vector<std::vector<WorkloadEvent>>& schedules);

}  // namespace ttmqo
