// TinyDB's fixed collection tree.
//
// TinyDB associates one parent with each node based on link quality,
// yielding a fixed routing tree rooted at the base station that is ignorant
// of the query space (Section 3.2.2).  Our baseline engine forwards every
// result along this tree; the paper's Eq. 2 sums result counts weighted by
// tree depth.
#pragma once

#include <vector>

#include "net/link_quality.h"
#include "net/topology.h"
#include "util/ids.h"

namespace ttmqo {

/// The fixed link-quality routing tree.
class RoutingTree {
 public:
  /// Builds the tree: every non-root node picks, among its neighbors one
  /// hop level closer to the base station, the one with the best link
  /// quality (node id breaks exact ties).
  RoutingTree(const Topology& topology, const LinkQualityMap& quality);

  /// Parent of `node`; the base station has no parent (returns itself).
  NodeId ParentOf(NodeId node) const;

  /// Children of `node`, ascending by id.
  const std::vector<NodeId>& ChildrenOf(NodeId node) const;

  /// Depth of `node` in the tree (base station = 0).  Equals the hop level
  /// because parents are always one level closer.
  std::size_t DepthOf(NodeId node) const;

  /// Mean depth over all sensor nodes (the `d` of the paper's worked
  /// example, Section 3.1.3), excluding the base station.
  double AverageDepth() const;

  /// Nodes in descending depth order (leaves first); a valid schedule for
  /// bottom-up aggregation sweeps.
  const std::vector<NodeId>& BottomUpOrder() const { return bottom_up_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::size_t> depth_;
  std::vector<NodeId> bottom_up_;
};

/// The level graph used by the in-network tier's DAG (Section 3.2.2): for
/// every node, its neighbors one hop level *closer* to the base station
/// (candidate parents) and one level *farther* (candidate children).  The
/// DAG has an edge from each node to every upper-level neighbor.
class LevelGraph {
 public:
  explicit LevelGraph(const Topology& topology);

  /// Neighbors of `node` at level(node) - 1, ascending by id.
  const std::vector<NodeId>& UpperNeighbors(NodeId node) const;

  /// Neighbors of `node` at level(node) + 1, ascending by id.
  const std::vector<NodeId>& LowerNeighbors(NodeId node) const;

  /// Hop level of a node.
  std::size_t LevelOf(NodeId node) const { return levels_[node]; }

 private:
  std::vector<std::vector<NodeId>> upper_;
  std::vector<std::vector<NodeId>> lower_;
  std::vector<std::size_t> levels_;
};

}  // namespace ttmqo
