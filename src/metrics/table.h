// Fixed-width table rendering for benchmark output.
//
// The figure-reproduction benches print the paper's series as aligned text
// tables; this keeps their output diffable and easy to eyeball against the
// published figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ttmqo {

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits.
  static std::string Num(double value, int precision = 2);

  /// Writes the table (headers, separator, rows) to `out`.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ttmqo
