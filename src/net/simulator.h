// The discrete-event simulation core.
//
// A single-threaded event loop with a totally ordered queue: events fire in
// (time, insertion-sequence) order, so equal-time events run in the order
// they were scheduled and every run is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.h"
#include "util/time.h"

namespace ttmqo {

/// The event loop.  Not thread-safe (by design: determinism).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= Now()).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `delay` ms from now (delay >= 0).
  void ScheduleAfter(SimDuration delay, std::function<void()> fn);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`; afterwards Now() == `until` (events at exactly `until` run).
  void RunUntil(SimTime until);

  /// Runs a single event; returns false when the queue is empty.
  bool Step();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events waiting.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ttmqo
