// The sweep orchestrator's core guarantee: the report is a pure function
// of the spec.  Thread count, scheduling order, and repetition must not
// change a byte of the canonical output.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "sweep/spec.h"
#include "sweep/sweep.h"

namespace ttmqo {
namespace {

// Small but representative: both workload kinds, both schemes, a fault
// axis, and two replicates — 16 tasks, enough to keep 4 workers busy.
SweepSpec TestSpec() {
  return SweepSpec::Parse(
      "grids=4 workloads=A,random:4 modes=baseline,ttmqo "
      "faults=none,transient seeds=2 duration-ms=36864");
}

TEST(SweepDeterminismTest, CanonicalReportIdenticalAcrossJobCounts) {
  const SweepSpec spec = TestSpec();
  const SweepReport serial = RunSweep(spec, 1);
  const SweepReport parallel = RunSweep(spec, 4);

  ASSERT_EQ(serial.rows.size(), spec.TaskCount());
  ASSERT_EQ(parallel.rows.size(), spec.TaskCount());
  EXPECT_EQ(serial.Canonical(), parallel.Canonical());
}

TEST(SweepDeterminismTest, CanonicalReportIdenticalAcrossBatchSeeds) {
  const SweepSpec spec = TestSpec();
  const SweepReport serial = RunSweep(spec, 1);
  const SweepReport batched =
      RunSweep(spec, 1, /*registry=*/nullptr, /*batch_seeds=*/4);
  EXPECT_EQ(serial.Canonical(), batched.Canonical());
}

TEST(SweepDeterminismTest, RepeatedParallelRunsAgree) {
  const SweepSpec spec = TestSpec();
  const SweepReport first = RunSweep(spec, 4);
  const SweepReport second = RunSweep(spec, 4);
  EXPECT_EQ(first.Canonical(), second.Canonical());
}

TEST(SweepDeterminismTest, RowsCarryRealRuns) {
  const SweepReport report = RunSweep(
      SweepSpec::Parse("grids=4 workloads=A modes=ttmqo duration-ms=36864"),
      2);
  ASSERT_EQ(report.rows.size(), 1u);
  const SweepRow& row = report.rows[0];
  EXPECT_GT(row.run.results.size(), 0u);
  EXPECT_GT(row.run.summary.total_messages, 0u);
  EXPECT_GT(row.run.events_executed, 0u);
}

TEST(SweepDeterminismTest, CanonicalOutputOmitsTiming) {
  const SweepReport report = RunSweep(
      SweepSpec::Parse("grids=4 workloads=A modes=baseline "
                       "duration-ms=36864"),
      1);
  EXPECT_EQ(report.Canonical().find("wall_ms"), std::string::npos);
  std::ostringstream timed;
  report.WriteJson(timed, /*include_timing=*/true);
  EXPECT_NE(timed.str().find("wall_ms"), std::string::npos);
}

TEST(SweepDeterminismTest, SeedsDifferAcrossReplicatesNotModes) {
  const SweepReport report = RunSweep(
      SweepSpec::Parse("grids=4 workloads=A modes=baseline,ttmqo seeds=2 "
                       "duration-ms=24576"),
      2);
  ASSERT_EQ(report.rows.size(), 4u);
  // Rows expand replicate-fastest: (baseline,0) (baseline,1) (ttmqo,0)
  // (ttmqo,1).  The two schemes must see identical inputs per replicate.
  EXPECT_EQ(report.rows[0].seed, report.rows[2].seed);
  EXPECT_EQ(report.rows[1].seed, report.rows[3].seed);
  EXPECT_NE(report.rows[0].seed, report.rows[1].seed);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(hits.size(), 4,
              [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, PropagatesWorkerExceptions) {
  EXPECT_THROW(ParallelFor(8, 4,
                           [](std::size_t i) {
                             if (i == 5) {
                               throw std::runtime_error("task 5 failed");
                             }
                           }),
               std::runtime_error);
}

TEST(SweepSpecTest, RejectsUnknownKeys) {
  EXPECT_THROW(SweepSpec::Parse("grids=4 bogus=1"), std::invalid_argument);
}

TEST(SweepSpecTest, RoundTripsThroughToString) {
  const SweepSpec spec = TestSpec();
  const SweepSpec reparsed = SweepSpec::Parse(spec.ToString());
  EXPECT_EQ(spec.ToString(), reparsed.ToString());
  EXPECT_EQ(spec.TaskCount(), reparsed.TaskCount());
}

TEST(SweepSpecTest, TaskCountIsTheAxisProduct) {
  EXPECT_EQ(TestSpec().TaskCount(), 1u * 2u * 2u * 2u * 2u);
}

}  // namespace
}  // namespace ttmqo
