// Radio timing and reachability parameters.
//
// The cost model prices one transmission at `C_start + C_trans * len`
// (Section 3.1.2): a fixed startup component (preamble, MAC backoff) plus a
// per-byte component given by the radio's data rate.  Defaults model a
// Mica2-class 38.4 kbps radio with the paper's 50 ft transmission radius.
#pragma once

#include <cstddef>

#include "util/check.h"

namespace ttmqo {

/// Timing/geometry parameters of the radio.
struct RadioParams {
  /// Transmission startup cost C_start, in milliseconds.
  double start_ms = 8.0;

  /// Per-byte transmission cost C_trans, in milliseconds.  38.4 kbps
  /// (Mica2) gives 8 bits / 38.4 kbps ≈ 0.2083 ms per byte.
  double per_byte_ms = 8.0 / 38.4;

  /// Fixed radio/AM header bytes prepended to every payload.
  std::size_t header_bytes = 7;

  /// Transmission radius in feet (Section 4.1 uses 50 ft).
  double range_feet = 50.0;

  /// Milliseconds one transmission of `payload_bytes` occupies the air.
  double TransmitDurationMs(std::size_t payload_bytes) const {
    return start_ms +
           per_byte_ms * static_cast<double>(header_bytes + payload_bytes);
  }
};

/// Parameters of the optional contention/loss model.  With `collision_prob`
/// = 0 the channel is lossless, matching the paper's stated assumption; the
/// experiments additionally count retransmissions, which this model
/// produces when enabled.
struct ChannelParams {
  /// Probability that one concurrently in-flight interfering transmission
  /// corrupts a send (losses compose as 1-(1-p)^k for k interferers).
  double collision_prob = 0.0;

  /// Maximum retransmission attempts before a message is dropped.
  int max_retries = 5;

  /// Base backoff delay before a retransmission, in milliseconds; attempt i
  /// waits i * backoff_ms (deterministic linear backoff).
  double backoff_ms = 16.0;

  void Validate() const {
    CheckArg(collision_prob >= 0.0 && collision_prob < 1.0,
             "ChannelParams: collision_prob must be in [0,1)");
    CheckArg(max_retries >= 0, "ChannelParams: max_retries must be >= 0");
    CheckArg(backoff_ms >= 0.0, "ChannelParams: backoff_ms must be >= 0");
  }
};

}  // namespace ttmqo
