// Unit tests for the routing tree and the DAG level graph.
#include <gtest/gtest.h>

#include "routing/routing_tree.h"

namespace ttmqo {
namespace {

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : topology_(Topology::Grid(4)),
        quality_(topology_, 13),
        tree_(topology_, quality_) {}

  Topology topology_;
  LinkQualityMap quality_;
  RoutingTree tree_;
};

TEST_F(RoutingTest, ParentsAreOneLevelCloser) {
  for (NodeId n = 1; n < topology_.size(); ++n) {
    const NodeId parent = tree_.ParentOf(n);
    EXPECT_TRUE(topology_.AreNeighbors(n, parent));
    EXPECT_EQ(topology_.HopLevels()[parent] + 1, topology_.HopLevels()[n]);
    EXPECT_EQ(tree_.DepthOf(n), topology_.HopLevels()[n]);
  }
  EXPECT_EQ(tree_.ParentOf(kBaseStationId), kBaseStationId);
}

TEST_F(RoutingTest, ParentMaximizesLinkQuality) {
  for (NodeId n = 1; n < topology_.size(); ++n) {
    const NodeId parent = tree_.ParentOf(n);
    const double chosen = quality_.Quality(n, parent);
    for (NodeId other : topology_.NeighborsOf(n)) {
      if (topology_.HopLevels()[other] + 1 != topology_.HopLevels()[n]) {
        continue;
      }
      EXPECT_GE(chosen, quality_.Quality(n, other));
    }
  }
}

TEST_F(RoutingTest, ChildrenInverseOfParents) {
  std::size_t edges = 0;
  for (NodeId n = 0; n < topology_.size(); ++n) {
    for (NodeId child : tree_.ChildrenOf(n)) {
      EXPECT_EQ(tree_.ParentOf(child), n);
      ++edges;
    }
  }
  EXPECT_EQ(edges, topology_.size() - 1);  // spanning tree
}

TEST_F(RoutingTest, EveryPathReachesTheBaseStation) {
  for (NodeId n = 0; n < topology_.size(); ++n) {
    NodeId cur = n;
    std::size_t hops = 0;
    while (cur != kBaseStationId) {
      cur = tree_.ParentOf(cur);
      ASSERT_LE(++hops, topology_.size());
    }
    EXPECT_EQ(hops, tree_.DepthOf(n));
  }
}

TEST_F(RoutingTest, AverageDepthMatchesHandComputation) {
  double sum = 0;
  for (NodeId n = 1; n < topology_.size(); ++n) {
    sum += static_cast<double>(tree_.DepthOf(n));
  }
  EXPECT_DOUBLE_EQ(tree_.AverageDepth(),
                   sum / static_cast<double>(topology_.size() - 1));
}

TEST_F(RoutingTest, BottomUpOrderVisitsDeeperNodesFirst) {
  const auto& order = tree_.BottomUpOrder();
  ASSERT_EQ(order.size(), topology_.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(tree_.DepthOf(order[i - 1]), tree_.DepthOf(order[i]));
  }
}

TEST_F(RoutingTest, LevelGraphUpperAndLowerNeighbors) {
  const LevelGraph graph(topology_);
  for (NodeId n = 0; n < topology_.size(); ++n) {
    if (n != kBaseStationId) {
      EXPECT_FALSE(graph.UpperNeighbors(n).empty())
          << "node " << n << " must have a parent candidate";
    }
    for (NodeId upper : graph.UpperNeighbors(n)) {
      EXPECT_EQ(graph.LevelOf(upper) + 1, graph.LevelOf(n));
      EXPECT_TRUE(topology_.AreNeighbors(n, upper));
      // Symmetry: we are a lower neighbor of our upper neighbor.
      const auto& lower = graph.LowerNeighbors(upper);
      EXPECT_NE(std::find(lower.begin(), lower.end(), n), lower.end());
    }
  }
}

TEST_F(RoutingTest, TreeParentIsAlwaysAnUpperNeighbor) {
  const LevelGraph graph(topology_);
  for (NodeId n = 1; n < topology_.size(); ++n) {
    const auto& upper = graph.UpperNeighbors(n);
    EXPECT_NE(std::find(upper.begin(), upper.end(), tree_.ParentOf(n)),
              upper.end());
  }
}

}  // namespace
}  // namespace ttmqo
