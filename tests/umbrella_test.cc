// Compile-and-smoke test of the umbrella header.
#include "ttmqo.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, HeaderCompilesAndApiIsReachable) {
  const ttmqo::Topology topology = ttmqo::Topology::Grid(3);
  ttmqo::Network network(topology, {}, {}, 1);
  ttmqo::UniformFieldModel field(1);
  ttmqo::ResultLog results;
  ttmqo::TtmqoOptions options;
  options.mode = ttmqo::OptimizationMode::kTwoTier;
  ttmqo::TtmqoEngine engine(network, field, &results, options);
  engine.SubmitQuery(ttmqo::ParseQuery(1, "SELECT light EPOCH DURATION 2048"));
  network.sim().RunUntil(3 * 2048);
  EXPECT_GT(results.size(), 0u);
}

}  // namespace
