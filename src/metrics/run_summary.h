// Aggregated per-run measurements and comparisons.
//
// `RunSummary` snapshots a `RadioLedger` into the quantities the paper
// reports: the average-transmission-time metric of Section 4.1, per-class
// message counts, and retransmissions.  `SavingsPercent` expresses one
// scheme's improvement over a baseline the way Figures 3 and 5 do.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/ledger.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Delivery completeness of one query: rows actually delivered at the base
/// station versus rows an omniscient oracle expects given the fault plan
/// (nodes alive at the sample tick whose reading matches the predicate).
struct QueryDelivery {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;

  /// delivered / expected in [0, 1]; 1 when nothing was expected.
  double Completeness() const {
    if (expected == 0) return 1.0;
    const double ratio =
        static_cast<double>(delivered) / static_cast<double>(expected);
    return ratio > 1.0 ? 1.0 : ratio;
  }
};

/// Base-station epoch accounting of one query (reliability layer): how many
/// epochs closed, how many closed with less than full coverage, and the
/// coverage-fraction distribution.  Only populated when the run annotates
/// coverage (the arq reliability profile); empty otherwise.
struct QueryCoverage {
  /// Epochs that closed with a coverage annotation.
  std::uint64_t epochs = 0;
  /// Annotated epochs whose coverage was below 1 (partial answers).
  std::uint64_t partial_epochs = 0;
  /// Sum of per-epoch coverage fractions (for averaging).
  double coverage_sum = 0.0;
  /// Smallest per-epoch coverage seen (1 when no epoch closed).
  double min_coverage = 1.0;

  /// Mean per-epoch coverage (1 when no epoch closed).
  double AvgCoverage() const {
    if (epochs == 0) return 1.0;
    return coverage_sum / static_cast<double>(epochs);
  }
};

/// Measurements of one simulation run.
struct RunSummary {
  /// Mean over sensor nodes of (transmit time / elapsed), in [0, 1].
  double avg_transmission_fraction = 0.0;
  /// Mean over sensor nodes of (sleep time / elapsed), in [0, 1].
  double avg_sleep_fraction = 0.0;
  /// Total transmit milliseconds over all nodes (incl. retransmissions).
  double total_transmit_ms = 0.0;
  /// Simulated milliseconds the summary covers.
  SimDuration elapsed_ms = 0;
  /// First-attempt message counts.
  std::uint64_t result_messages = 0;
  std::uint64_t propagation_messages = 0;
  std::uint64_t abort_messages = 0;
  std::uint64_t maintenance_messages = 0;
  /// Reliability control traffic (acks, gap-repair requests/replies); 0
  /// unless the run used the arq reliability profile.
  std::uint64_t control_messages = 0;
  /// Retransmission attempts and abandoned messages.
  std::uint64_t retransmissions = 0;
  std::uint64_t total_messages = 0;
  /// Per-query delivery completeness (filled by the runner; empty when the
  /// workload has no user queries).
  std::map<QueryId, QueryDelivery> delivery;
  /// Per-query base-station coverage accounting (filled by the runner from
  /// coverage-annotated epoch results; empty unless the run annotated).
  std::map<QueryId, QueryCoverage> coverage;

  /// Snapshots `ledger` over an `elapsed` window.
  static RunSummary FromLedger(const RadioLedger& ledger,
                               SimDuration elapsed);

  /// Smallest per-query completeness (1 when `delivery` is empty).
  double MinDeliveryCompleteness() const;

  /// Mean per-query completeness (1 when `delivery` is empty).
  double AvgDeliveryCompleteness() const;

  /// Smallest annotated per-epoch coverage (1 when `coverage` is empty).
  double MinCoverage() const;

  /// Mean over queries of the average per-epoch coverage (1 when empty).
  double AvgCoverage() const;

  /// Annotated epochs that closed with coverage below 1, over all queries.
  std::uint64_t PartialEpochs() const;

  /// One-line rendering for logs and benches.
  std::string ToString() const;
};

/// Percentage by which `value` improves on `baseline` (positive = better,
/// i.e. smaller); 0 when the baseline is 0.
double SavingsPercent(double baseline, double value);

}  // namespace ttmqo
