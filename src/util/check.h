// Lightweight runtime checking.
//
// The simulator is deterministic, so invariant violations are programming
// errors; we fail fast with a descriptive exception rather than corrupting an
// experiment silently.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ttmqo {

/// Raised when a `Check`/`CheckArg` invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Called (if installed) with the full failure message just before `Check`
/// throws.  Lets the observability layer dump a postmortem flight record at
/// the moment of an invariant violation without util depending on it.  The
/// hook must not throw.
using CheckFailureHook = void (*)(const char* message);

/// Installs `hook` (nullptr uninstalls); returns the previous hook.
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

namespace check_internal {
/// Runs the installed hook, if any.
void NotifyCheckFailure(const char* message);
}  // namespace check_internal

/// Verifies an internal invariant; throws `CheckFailure` with the call site
/// location when `condition` is false.
inline void Check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    const std::string what = std::string(loc.file_name()) + ":" +
                             std::to_string(loc.line()) +
                             ": check failed: " + std::string(message);
    check_internal::NotifyCheckFailure(what.c_str());
    throw CheckFailure(what);
  }
}

/// Verifies a precondition on a public API argument; throws
/// `std::invalid_argument` when `condition` is false.
inline void CheckArg(bool condition, std::string_view message) {
  if (!condition) {
    throw std::invalid_argument(std::string(message));
  }
}

}  // namespace ttmqo
