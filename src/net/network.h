// The radio network: topology + channel + accounting + event loop.
//
// `Network` mediates every transmission.  A transmission occupies the
// sender's radio for `C_start + C_trans * len` ms (a node's sends serialize
// on its own radio); on completion it is delivered to the addressed
// neighbors and overheard by every other awake neighbor — the broadcast
// nature of the channel the in-network tier exploits (Section 3.2).  An
// optional contention model corrupts transmissions with a probability that
// grows with the number of concurrently in-flight interfering
// transmissions; failed attempts are retried with linear backoff and
// charged to the sender as retransmissions, reproducing the paper's
// "retransmission messages due to transmission failure" accounting.
//
// Since the batched multi-seed engine (DESIGN.md note 21), `Network` is a
// *lane view*: all node state lives in a `BatchedNetwork` as
// structure-of-arrays keyed [node][lane], and this class is the per-lane
// interface engine code holds a reference to.  The classic constructor
// builds a private single-lane batch, which executes the exact serial
// event/RNG sequence the pre-batching engine did (golden-checked).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/ledger.h"
#include "net/link_quality.h"
#include "net/message.h"
#include "net/observer.h"
#include "net/radio.h"
#include "net/simulator.h"
#include "net/topology.h"

namespace ttmqo {

class BatchedNetwork;

/// One lane's view of the radio channel of one deployment.
class Network {
 public:
  /// Receives a delivered or overheard message.  `addressed` is true when
  /// this node is an intended destination (broadcasts address everyone).
  using Receiver =
      std::function<void(const Message& msg, bool addressed)>;

  /// A self-contained single-lane deployment (the serial engine).
  /// `seed` drives the collision model only.
  Network(const Topology& topology, RadioParams radio, ChannelParams channel,
          std::uint64_t seed);

  /// Lane `lane`'s view of `batch` (created by `BatchedNetwork`; the batch
  /// must outlive the view).
  Network(BatchedNetwork& batch, std::uint32_t lane);

  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The event loop (scheduling, Now()) — this lane's view of it.
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// The deployment (shared by all lanes).
  const Topology& topology() const;

  /// Per-link quality estimates (for parent selection / tie breaking).
  const LinkQualityMap& link_quality() const;

  /// Radio accounting of this lane.
  RadioLedger& ledger();
  const RadioLedger& ledger() const;

  /// Radio timing parameters.
  const RadioParams& radio() const;

  /// Installs the message handler of `node` (replacing any previous one).
  void SetReceiver(NodeId node, Receiver receiver);

  /// Marks a node asleep/awake.  Asleep nodes neither receive nor overhear;
  /// sleep time is accounted in the ledger.  Sends from a sleeping node are
  /// rejected.
  void SetAsleep(NodeId node, bool asleep);

  /// True when the node is currently asleep.
  bool IsAsleep(NodeId node) const;

  /// Permanently kills a node (crash fault): it stops receiving, and its
  /// transmissions — including already queued retries — silently vanish.
  /// Used for failure-injection experiments; the base station cannot fail.
  void FailNode(NodeId node);

  /// True when the node has been failed.  Engines may consult this when
  /// selecting routes, modelling beacon-based neighbor failure detection.
  bool IsFailed(NodeId node) const;

  /// Number of failed nodes.
  std::size_t NumFailed() const;

  /// Begins a transient outage: the node neither sends, receives, nor
  /// overhears until `Recover`.  Unlike `FailNode` the outage is *silent* —
  /// engines get no failure signal and must detect it via liveness.  No-op
  /// on failed or already-down nodes; the base station cannot go down.
  void SetDown(NodeId node);

  /// Ends a transient outage (no-op unless the node is down).
  void Recover(NodeId node);

  /// True when the node is currently unreachable (failed or in an outage).
  bool IsDown(NodeId node) const;

  /// Number of nodes currently in a transient outage.
  std::size_t NumDown() const;

  /// Probability that a delivery on any link without a per-link override is
  /// lost (independent per receiver; the sender never notices).
  void SetDefaultLinkLoss(double p);

  /// Sets a per-link loss probability override for the (symmetric) link
  /// a—b; both must be radio neighbors.
  void SetLinkLoss(NodeId a, NodeId b, double p);

  /// Removes the per-link override, restoring the default loss.
  void ClearLinkLoss(NodeId a, NodeId b);

  /// Effective loss probability of the link a—b.
  double LinkLossOf(NodeId a, NodeId b) const;

  /// Deliveries lost to lossy links so far (all links, this lane).
  std::uint64_t link_drops() const;

  /// Queues `msg` for transmission from `msg.sender`.  Destinations must be
  /// radio neighbors of the sender.  The transmission starts when the
  /// sender's radio is free and is delivered (or retried) per the channel
  /// model.
  void Send(Message msg);

  /// Starts a periodic per-node maintenance broadcast (neighbor beacons /
  /// time sync) of `payload_bytes`, one per node per `period`, with node
  /// index staggering.  Models the paper's "periodical network maintenance
  /// messages".  (Beacons for this lane only; the batch harness starts the
  /// coalesced all-lane beacons through `BatchedNetwork` instead.)
  void StartMaintenanceBeacons(SimDuration period, std::size_t payload_bytes);

  /// Closes every open accounting span at `Now()` — currently the sleep
  /// spans of nodes still asleep (including nodes that failed mid-sleep),
  /// which would otherwise never reach the ledger.  Idempotent: spans
  /// reopen at `Now()`, so later state changes account only the remainder.
  /// The experiment harness calls this before summarizing a run.
  void FinalizeAccounting();

  /// Number of transmissions currently in flight (diagnostics, this lane).
  std::size_t in_flight() const;

  /// The event observer fan-out of this lane.  Any number of observers
  /// (trace writers, metric collectors, samplers) may be attached
  /// concurrently via `observers().Add(...)`; none is owned.
  ObserverMux& observers();
  const ObserverMux& observers() const;

  /// Legacy single-observer slot: replaces the previously set observer
  /// (nullptr to remove) while leaving observers added through
  /// `observers()` untouched.
  void SetObserver(NetworkObserver* observer);

  /// The batch this view belongs to.
  BatchedNetwork& batch() { return *batch_; }

  /// This view's lane index.
  std::uint32_t lane() const { return lane_; }

 private:
  /// Set only by the serial constructor.
  std::unique_ptr<BatchedNetwork> owned_;
  BatchedNetwork* batch_;
  std::uint32_t lane_;
  Simulator sim_;
  NetworkObserver* legacy_observer_ = nullptr;
};

}  // namespace ttmqo
