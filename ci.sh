#!/usr/bin/env bash
# Local CI: build and test the plain configuration, then again with
# AddressSanitizer + UBSan, then the chaos soak (with postmortem artifacts),
# the Release perf smoke + observability-overhead gate, and a report-only
# ThreadSanitizer pass.  Usage: ./ci.sh [extra ctest args...]
#
# Tests run tier by tier — unit first, then integration, then soak — each
# under its own timeout, so a broken unit test fails the build before the
# expensive whole-run tiers spend any time.  A per-test wall-clock report
# (5 slowest) prints after each configuration to keep the suite honest
# about where the time goes.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_tier() {
  local dir="$1" label="$2" timeout="$3"
  echo "=== test: ${dir} [${label}, timeout ${timeout}s] ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    -L "${label}" --timeout "${timeout}" "${CTEST_ARGS[@]}"
  # Each ctest invocation overwrites LastTest.log; accumulate the tiers
  # so the slowest-test report covers the whole configuration.
  cat "${dir}"/Testing/Temporary/LastTest.log >> \
    "${dir}"/Testing/Temporary/AllTiers.log 2>/dev/null || true
}

# The 5 slowest tests across all tiers of `dir`, from ctest's own timing
# lines ("Testing: <name>" ... "Test time = <sec> sec").
report_slowest() {
  local dir="$1"
  local log="${dir}/Testing/Temporary/AllTiers.log"
  [ -f "${log}" ] || return 0
  echo "--- 5 slowest tests (${dir}) ---"
  awk '/^[0-9]+\/[0-9]+ Testing: /{name=substr($0, index($0, "Testing: ")+9)}
       /Test time =/{printf "%10.3f sec  %s\n", $(NF-1), name}' "${log}" |
    sort -rn | head -5
  rm -f "${log}"
}

run_config() {
  local dir="$1"
  shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  run_tier "${dir}" unit 60
  run_tier "${dir}" integration 300
  run_tier "${dir}" soak 600
  report_slowest "${dir}"
}

CTEST_ARGS=("$@")

run_config build

# LeakSanitizer gates CI too: recurring events (maintenance beacons,
# samplers) now live in the simulator's pooled slab instead of the old
# self-referential shared_ptr<std::function> chains, so a leak report here
# is a real leak, not a design artifact.
run_config build-asan -DENABLE_SANITIZERS=ON

# Chaos soak under the sanitizers: random transient outages plus link loss,
# three seeds each; the binary exits non-zero on any reliability-invariant
# violation (duplicate rows, missed recovery, completeness below the floor).
# The flight recorder is armed: a violated invariant (or a crash) dumps the
# last simulator events to ci-artifacts/postmortem/, kept as the failure
# artifact.
echo "=== chaos soak (sanitized) ==="
POSTMORTEM_DIR="ci-artifacts/postmortem"
rm -rf "${POSTMORTEM_DIR}"
soak_failed=0
./build-asan/bench/chaos_soak --runs=3 --seed=1 \
  --postmortem-dir="${POSTMORTEM_DIR}" || soak_failed=1
./build-asan/bench/chaos_soak --runs=3 --seed=1 --link-loss=0.1 --floor=0.4 \
  --postmortem-dir="${POSTMORTEM_DIR}" || soak_failed=1
if [ "${soak_failed}" -ne 0 ]; then
  echo "chaos soak FAILED — postmortem dumps preserved in ${POSTMORTEM_DIR}:"
  ls -l "${POSTMORTEM_DIR}" 2>/dev/null || true
  exit 1
fi

# The sweep orchestrator's cross-thread determinism check: the same spec
# at jobs=1 and jobs=hardware must produce byte-identical canonical
# reports (run_sweep exits non-zero otherwise).
echo "=== sweep determinism (sanitized) ==="
./build-asan/examples/run_sweep \
  --spec="grids=4 workloads=A,C modes=baseline,ttmqo seeds=1 duration-ms=49152" \
  --bench-out=/tmp/ttmqo_sweep_ci.json

# Perf smoke: the hot-path benchmark (bench/hotpath) on an optimized build
# with short durations.  Report-only — the printed events/sec makes perf
# regressions visible in every CI log, but wall-clock numbers depend on
# host load, so they do not gate the build.  (The allocation probe inside
# is a correctness check and would exit non-zero, hence the fallback echo.)
echo "=== perf smoke (Release, report-only) ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}" --target hotpath
./build-release/bench/hotpath \
  --spec="grids=4,6 workloads=C modes=baseline,ttmqo seeds=1 duration-ms=49152 collisions=0.02" \
  --dense-ms=5000 --probe-ms=5000 --out=/tmp/ttmqo_hotpath_ci.json ||
  echo "perf smoke reported a problem (non-gating)"

# Observability overhead gate (Release, GATING): the always-on spans must
# cost at most 3% on the event-loop hot path against the same loop with
# spans runtime-disabled.  The nospans variant (TTMQO_DISABLE_SPANS in its
# translation unit) runs report-only and proves the macros compile to
# nothing.
echo "=== obs overhead (Release, gating at 3%) ==="
cmake --build build-release -j "${JOBS}" --target obs_overhead obs_overhead_nospans
./build-release/bench/obs_overhead --max-overhead=3 \
  --window-ms=10000 --reps=3 --out=/tmp/ttmqo_obs_ci.json
./build-release/bench/obs_overhead_nospans \
  --window-ms=5000 --reps=2 --span-iters=500000 \
  --out=/tmp/ttmqo_obs_nospans_ci.json ||
  echo "nospans overhead run reported a problem (non-gating)"

# ThreadSanitizer, report-only: the parallel sweep pool and the shared
# CostModel counters (atomic since the parallel fig4) are the only
# cross-thread surfaces; build just their drivers and let TSan watch them.
# Report-only because TSan availability varies across toolchains/kernels.
echo "=== thread sanitizer (report-only) ==="
if cmake -B build-tsan -S . -DENABLE_TSAN=ON >/dev/null 2>&1 &&
   cmake --build build-tsan -j "${JOBS}" \
     --target sweep_determinism_test fig4_adaptive 2>&1 | tail -1; then
  ./build-tsan/tests/sweep_determinism_test ||
    echo "TSan: sweep_determinism_test reported races (non-gating)"
  ./build-tsan/bench/fig4_adaptive --part=a --queries=120 --jobs=4 ||
    echo "TSan: fig4_adaptive reported races (non-gating)"
else
  echo "TSan build unavailable on this toolchain (skipped)"
fi

echo "=== all configurations passed ==="
