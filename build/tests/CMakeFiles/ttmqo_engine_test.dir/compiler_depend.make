# Empty compiler generated dependencies file for ttmqo_engine_test.
# This may be replaced when dependencies are built.
