file(REMOVE_RECURSE
  "CMakeFiles/region_query_test.dir/region_query_test.cc.o"
  "CMakeFiles/region_query_test.dir/region_query_test.cc.o.d"
  "region_query_test"
  "region_query_test.pdb"
  "region_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
