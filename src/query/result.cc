#include "query/result.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ttmqo {
namespace {

std::string Describe(QueryId query, SimTime t) {
  std::ostringstream out;
  out << "query " << query << " at epoch " << t << "ms";
  return out.str();
}

bool NearlyEqual(double a, double b, double tolerance) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tolerance * scale;
}

// Compares one query's answers in `expected` and `actual` epoch by epoch.
std::optional<std::string> CompareQueryStreams(
    const Query& query, const std::vector<const EpochResult*>& expected,
    const std::vector<const EpochResult*>& actual, double tolerance) {
  if (expected.size() != actual.size()) {
    std::ostringstream out;
    out << "query " << query.id() << ": " << expected.size()
        << " epochs expected, " << actual.size() << " observed";
    return out.str();
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const EpochResult& e = *expected[i];
    const EpochResult& a = *actual[i];
    if (e.epoch_time != a.epoch_time) {
      return Describe(query.id(), e.epoch_time) + ": epoch times diverge (" +
             std::to_string(e.epoch_time) + " vs " +
             std::to_string(a.epoch_time) + ")";
    }
    if (query.kind() == QueryKind::kAcquisition) {
      if (e.rows.size() != a.rows.size()) {
        return Describe(query.id(), e.epoch_time) + ": row counts differ (" +
               std::to_string(e.rows.size()) + " vs " +
               std::to_string(a.rows.size()) + ")";
      }
      for (std::size_t r = 0; r < e.rows.size(); ++r) {
        if (e.rows[r].node() != a.rows[r].node()) {
          return Describe(query.id(), e.epoch_time) + ": row " +
                 std::to_string(r) + " node differs";
        }
        for (Attribute attr : query.attributes()) {
          const auto ev = e.rows[r].Get(attr);
          const auto av = a.rows[r].Get(attr);
          if (ev.has_value() != av.has_value() ||
              (ev.has_value() && !NearlyEqual(*ev, *av, tolerance))) {
            return Describe(query.id(), e.epoch_time) + ": row " +
                   std::to_string(r) + " attribute " +
                   std::string(AttributeName(attr)) + " differs";
          }
        }
      }
    } else {
      if (e.aggregates.size() != a.aggregates.size()) {
        return Describe(query.id(), e.epoch_time) +
               ": aggregate counts differ";
      }
      for (std::size_t g = 0; g < e.aggregates.size(); ++g) {
        const auto& [espec, evalue] = e.aggregates[g];
        const auto& [aspec, avalue] = a.aggregates[g];
        if (!(espec == aspec)) {
          return Describe(query.id(), e.epoch_time) +
                 ": aggregate specs differ";
        }
        if (evalue.has_value() != avalue.has_value() ||
            (evalue.has_value() &&
             !NearlyEqual(*evalue, *avalue, tolerance))) {
          return Describe(query.id(), e.epoch_time) + ": " +
                 espec.ToString() + " differs";
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string EpochResult::ToString() const {
  std::ostringstream out;
  out << Describe(query, epoch_time) << ": ";
  if (kind == QueryKind::kAcquisition) {
    out << rows.size() << " rows";
  } else {
    for (std::size_t i = 0; i < aggregates.size(); ++i) {
      if (i > 0) out << ", ";
      out << aggregates[i].first.ToString() << "=";
      if (aggregates[i].second.has_value()) {
        out << *aggregates[i].second;
      } else {
        out << "null";
      }
    }
  }
  return out.str();
}

void ResultLog::OnResult(const EpochResult& result) {
  results_[{result.query, result.epoch_time}] = result;
}

std::vector<const EpochResult*> ResultLog::ResultsFor(QueryId query) const {
  std::vector<const EpochResult*> out;
  for (const auto& [key, value] : results_) {
    if (key.first == query) out.push_back(&value);
  }
  return out;
}

std::vector<const EpochResult*> ResultLog::All() const {
  std::vector<const EpochResult*> out;
  out.reserve(results_.size());
  for (const auto& [key, value] : results_) out.push_back(&value);
  return out;
}

const EpochResult* ResultLog::Find(QueryId query, SimTime epoch_time) const {
  const auto it = results_.find({query, epoch_time});
  return it == results_.end() ? nullptr : &it->second;
}

std::optional<std::string> CompareResultLogs(const ResultLog& expected,
                                             const ResultLog& actual,
                                             const std::vector<Query>& queries,
                                             double tolerance) {
  for (const Query& query : queries) {
    auto diff = CompareQueryStreams(query, expected.ResultsFor(query.id()),
                                    actual.ResultsFor(query.id()), tolerance);
    if (diff.has_value()) return diff;
  }
  return std::nullopt;
}

}  // namespace ttmqo
