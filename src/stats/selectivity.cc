#include "stats/selectivity.h"

namespace ttmqo {

AttributeDistribution::AttributeDistribution(std::size_t bins) {
  histograms_.reserve(kNumAttributes);
  for (Attribute attr : kAllAttributes) {
    histograms_.emplace_back(AttributeRange(attr), bins);
  }
}

void AttributeDistribution::Observe(const Reading& reading) {
  ++version_;
  for (Attribute attr : kAllAttributes) {
    if (attr == Attribute::kNodeId) continue;  // ids are not a distribution
    const auto value = reading.Get(attr);
    if (value.has_value()) histograms_[AttributeIndex(attr)].Add(*value);
  }
}

double AttributeDistribution::Selectivity(
    const PredicateSet& predicates) const {
  double sel = 1.0;
  for (const Predicate& p : predicates.AsList()) {
    sel *= histograms_[AttributeIndex(p.attribute)].SelectivityOf(p.range);
  }
  return sel;
}

double AttributeDistribution::WeightOf(Attribute attr) const {
  return histograms_[AttributeIndex(attr)].TotalWeight();
}

SelectivityEstimator::SelectivityEstimator(std::size_t bins)
    : bins_(bins), shared_(bins) {}

AttributeDistribution& SelectivityEstimator::ForLevel(std::size_t level) {
  auto it = per_level_.find(level);
  if (it == per_level_.end()) {
    it = per_level_.emplace(level, AttributeDistribution(bins_)).first;
    ++structure_version_;
  }
  return it->second;
}

double SelectivityEstimator::Selectivity(const PredicateSet& predicates,
                                         std::size_t level) const {
  const auto it = per_level_.find(level);
  if (it != per_level_.end()) return it->second.Selectivity(predicates);
  return shared_.Selectivity(predicates);
}

double SelectivityEstimator::Selectivity(
    const PredicateSet& predicates) const {
  return shared_.Selectivity(predicates);
}

std::uint64_t SelectivityEstimator::Version() const {
  std::uint64_t version = structure_version_ + shared_.version();
  for (const auto& [level, dist] : per_level_) version += dist.version();
  return version;
}

}  // namespace ttmqo
