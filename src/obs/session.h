// Binary-level observability wiring.
//
// `ObsSession` is the one object a `main` needs: construct it from the
// shared `--trace-chrome=FILE` / `--postmortem-dir=DIR` flags, run the
// experiment, and let the destructor (or an explicit `Finish`) export the
// Chrome trace and disarm the flight recorder.  Keeping the lifecycle in
// one RAII object is what guarantees the satellite invariant that buffers
// are flushed and postmortem triggers detached on normal exit.
#pragma once

#include <string>

#include "util/flags.h"

namespace ttmqo::obs {

class ObsSession {
 public:
  struct Options {
    /// Write a Perfetto-loadable Chrome trace here on Finish (empty: off).
    std::string trace_chrome_path;
    /// Arm the flight recorder + postmortem dumps into this directory
    /// (empty: off).
    std::string postmortem_dir;
    /// Print the span aggregate table to stderr on Finish.
    bool print_summary = false;
  };

  /// Reads `--trace-chrome` and `--postmortem-dir`.
  static Options FromFlags(const Flags& flags);

  /// Starts fresh: clears span and flight state left by earlier in-process
  /// runs, then arms per `options`.
  explicit ObsSession(Options options);

  /// Finishes the session (idempotent).
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes the Chrome trace (when configured), prints the summary (when
  /// configured), and disarms the flight recorder.  Safe to call twice.
  void Finish();

 private:
  Options options_;
  bool finished_ = false;
};

}  // namespace ttmqo::obs
