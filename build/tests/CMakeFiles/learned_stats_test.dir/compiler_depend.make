# Empty compiler generated dependencies file for learned_stats_test.
# This may be replaced when dependencies are built.
