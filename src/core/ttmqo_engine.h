// The complete TTMQO system (Figure 1): user queries enter at the base
// station, tier 1 rewrites them into synthetic queries, the network runs
// them under tier 2, and synthetic results are mapped back to per-user
// answers.
//
// The engine exposes the four configurations the evaluation compares
// (Section 4.2):
//
//   kBaseline        — TinyDB alone: user queries run uncooperatively.
//   kBaseStationOnly — tier 1 rewriting; synthetic queries run on TinyDB.
//   kInNetworkOnly   — user queries injected unchanged; tier 2 runs them.
//   kTwoTier         — both tiers (the full TTMQO scheme).
#pragma once

#include <map>
#include <memory>

#include "core/bs/cost_model.h"
#include "core/bs/result_mapper.h"
#include "core/bs/rewriter.h"
#include "core/innet/innet_engine.h"
#include "net/network.h"
#include "query/engine.h"
#include "sensing/field_model.h"
#include "stats/selectivity.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {

/// Which optimization tiers are active.
enum class OptimizationMode {
  kBaseline,
  kBaseStationOnly,
  kInNetworkOnly,
  kTwoTier,
};

/// Display name of a mode ("baseline", "bs-only", ...).
std::string_view OptimizationModeName(OptimizationMode mode);

/// Configuration of a `TtmqoEngine`.
struct TtmqoOptions {
  OptimizationMode mode = OptimizationMode::kTwoTier;
  /// Tier-1 termination aggressiveness (Algorithm 2); 0.6 per the paper.
  double alpha = 0.6;
  /// Histogram resolution of the selectivity estimator.
  std::size_t selectivity_bins = 32;
  /// Learn the data distribution from returned rows (Section 3.1.2,
  /// "Statistics").  Off by default: the paper's experiments use a single
  /// uniform-assumption distribution, "which actually biases against our
  /// techniques".  When on, an attribute's histogram is fed only by rows
  /// of synthetic queries that do NOT constrain that attribute, so the
  /// learned distribution is unbiased.
  bool learn_statistics = false;
  /// Tier-1 candidate search strategy: the synthetic-query index with
  /// memoization and pruning (default), or the naive full scan used as the
  /// differential-test oracle.  Decisions are identical either way.
  bool tier1_use_index = true;
  /// Options of the underlying engines.
  TinyDbOptions tinydb;
  InNetOptions innet;
};

/// The user-facing engine.
class TtmqoEngine final : public QueryEngine {
 public:
  /// `network`, `field` and `user_sink` must outlive the engine.
  TtmqoEngine(Network& network, const FieldModel& field,
              ResultSink* user_sink, TtmqoOptions options = {});

  /// Submits a user query (Algorithm 1 runs in rewriting modes).
  void SubmitQuery(const Query& query) override;

  /// Terminates a user query (Algorithm 2 runs in rewriting modes).
  void TerminateQuery(QueryId id) override;

  std::string_view name() const override;

  /// Routes tier-1 (rewriter) and tier-2 (inner engine) decision events to
  /// `sink`, stamped with the network's simulation time.  Pass nullptr to
  /// disable tracing.
  void SetTraceSink(TraceSink* sink) override;

  /// The tier-1 optimizer; nullptr when the mode does not rewrite.
  const BaseStationOptimizer* optimizer() const { return optimizer_.get(); }

  /// Number of network (synthetic) queries currently running.
  std::size_t NumNetworkQueries() const;

  /// Number of active user queries.
  std::size_t NumUserQueries() const { return users_.size(); }

  /// Tier-1 benefit ratio: TotalBenefit / TotalUserCost (0 when the mode
  /// does not rewrite or no queries run).
  double BenefitRatio() const;

  /// The selectivity estimator backing the cost model (uniform priors by
  /// default, per the paper's experimental setup).
  SelectivityEstimator& selectivity() { return selectivity_; }

  /// The cost model (exposes evaluation counters for observability).
  const CostModel& cost_model() const { return cost_model_; }

  /// The tier-2 in-network engine (exposes ARQ/repair counters for
  /// observability); nullptr when the inner engine is a different kind.
  const InNetworkEngine* innet_engine() const {
    return dynamic_cast<const InNetworkEngine*>(inner_.get());
  }

 private:
  /// Stamps optimizer events (which carry time 0; the optimizer has no
  /// clock) with the simulator's current time before forwarding.
  class StampingTraceSink final : public TraceSink {
   public:
    explicit StampingTraceSink(const Simulator& sim) : sim_(&sim) {}
    void SetDownstream(TraceSink* sink) { down_ = sink; }
    TraceSink* downstream() const { return down_; }
    void Emit(const TraceEvent& event) override {
      if (down_ == nullptr) return;
      TraceEvent stamped = event;
      stamped.time = sim_->Now();
      down_->Emit(stamped);
    }

   private:
    const Simulator* sim_;
    TraceSink* down_ = nullptr;
  };
  struct UserState {
    explicit UserState(Query q) : query(std::move(q)) {}
    Query query;
    SimTime submitted_at = 0;
  };

  /// Adapter: receives network-query results from the inner engine.
  class NetworkSink final : public ResultSink {
   public:
    explicit NetworkSink(TtmqoEngine* owner) : owner_(owner) {}
    void OnResult(const EpochResult& result) override {
      owner_->OnNetworkResult(result);
    }

   private:
    TtmqoEngine* owner_;
  };

  bool Rewriting() const {
    return options_.mode == OptimizationMode::kBaseStationOnly ||
           options_.mode == OptimizationMode::kTwoTier;
  }

  void ApplyActions(const BaseStationOptimizer::Actions& actions);
  void OnNetworkResult(const EpochResult& result);
  void EmitToUser(EpochResult result);

  Network& network_;
  ResultSink* user_sink_;
  TtmqoOptions options_;
  SelectivityEstimator selectivity_;
  CostModel cost_model_;
  NetworkSink network_sink_;
  StampingTraceSink trace_;
  std::unique_ptr<BaseStationOptimizer> optimizer_;
  std::unique_ptr<QueryEngine> inner_;
  std::map<QueryId, UserState> users_;
};

}  // namespace ttmqo
