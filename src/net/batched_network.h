// The lockstep multi-seed radio engine (DESIGN.md note 21).
//
// `BatchedNetwork` runs N same-topology, different-seed deployments
// ("lanes") through one event loop.  All per-node state is stored as
// structure-of-arrays keyed `[node][lane]` (`node * lanes + lane`), so the
// hot per-event updates of lanes advancing in lockstep touch contiguous
// memory.  Radio-internal events — transmission completions, collision
// retries, maintenance beacon ticks — are *group events*: one heap record
// carrying a 64-bit lane mask that dispatches across every lane whose
// schedule coincides.  Lanes whose timing diverged (a collision retry, a
// crashed node, a busy radio) simply carry smaller masks and re-coalesce
// at the next beacon tick once the sender's radio is idle again.
//
// Determinism contract: each lane's results are byte-identical to running
// that lane's seed through a serial single-lane `Network` (fingerprint-
// and golden-checked).  Two invariants make that hold:
//
//   1. Per-lane schedule order.  Group records are only created from group
//     handlers (or the pre-run setup), where every member lane logically
//     schedules the same action at the same moment; per-lane work inside a
//     group handler runs in ascending lane order, and each lane's schedules
//     keep program order.  Hence any two records containing lane `l` carry
//     global sequence numbers in the same relative order as the lane's
//     serial schedule order, and the (time, seq) heap fires lane `l`'s
//     events exactly as the serial heap would.
//   2. Per-lane stochastic state.  Every RNG (collision, link loss), every
//     ledger, every accounting array is per lane; a group fire performs the
//     per-lane draws/updates in the same program order as the serial
//     handler, so streams never cross lanes — which is also why a lane's
//     divergence (crash, retry storm) cannot corrupt a sibling lane.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace ttmqo {

/// N same-topology lanes in one event loop.  Lane `l` is driven through
/// its `Network` view (`lane(l)`), which exposes the classic serial API.
class BatchedNetwork final : public GroupDispatcher {
 public:
  /// One lane per seed (1..64 lanes).  `seeds[l]` drives lane `l`'s
  /// collision/loss models and link-quality perturbation, exactly as the
  /// serial `Network(topology, radio, channel, seed)` would.
  BatchedNetwork(const Topology& topology, RadioParams radio,
                 ChannelParams channel, std::span<const std::uint64_t> seeds);

  /// A single-lane batch with *no* lane views: the storage behind a classic
  /// serial `Network`, which itself is the lane-0 view.
  static std::unique_ptr<BatchedNetwork> MakeViewless(const Topology& topology,
                                                      RadioParams radio,
                                                      ChannelParams channel,
                                                      std::uint64_t seed);

  BatchedNetwork(const BatchedNetwork&) = delete;
  BatchedNetwork& operator=(const BatchedNetwork&) = delete;

  /// Number of lanes.
  std::uint32_t lanes() const { return lanes_; }

  /// Lane `l`'s serial-API view.
  Network& lane(std::uint32_t l) { return lane_views_.at(l); }

  /// The shared event loop core.
  SimCore& core() { return core_; }
  const SimCore& core() const { return core_; }

  /// Runs every lane in lockstep until `until`.
  void RunUntil(SimTime until) { core_.RunUntil(until); }

  /// The deployment (shared by all lanes).
  const Topology& topology() const { return *topology_; }

  /// Radio timing parameters (shared by all lanes).
  const RadioParams& radio() const { return radio_; }

  /// Starts the coalesced maintenance beacons on *all* lanes: one group
  /// tick per node per period, mask = every lane whose node is alive.
  void StartMaintenanceBeacons(SimDuration period, std::size_t payload_bytes);

  // ---- Per-lane operations (the `Network` view plumbing). ----
  const LinkQualityMap& link_quality(std::uint32_t lane) const {
    return link_quality_[lane];
  }
  RadioLedger& ledger(std::uint32_t lane) { return ledgers_[lane]; }
  ObserverMux& observers(std::uint32_t lane) { return observers_[lane]; }
  void SetReceiver(std::uint32_t lane, NodeId node, Network::Receiver recv);
  void SetAsleep(std::uint32_t lane, NodeId node, bool asleep);
  bool IsAsleep(std::uint32_t lane, NodeId node) const {
    return asleep_.at(Idx(node, lane)) != 0;
  }
  void FailNode(std::uint32_t lane, NodeId node);
  bool IsFailed(std::uint32_t lane, NodeId node) const {
    return failed_.at(Idx(node, lane)) != 0;
  }
  std::size_t NumFailed(std::uint32_t lane) const {
    return num_failed_[lane];
  }
  void SetDown(std::uint32_t lane, NodeId node);
  void Recover(std::uint32_t lane, NodeId node);
  bool IsDown(std::uint32_t lane, NodeId node) const {
    const std::size_t i = Idx(node, lane);
    return failed_.at(i) != 0 || down_.at(i) != 0;
  }
  std::size_t NumDown(std::uint32_t lane) const { return num_down_[lane]; }
  void SetDefaultLinkLoss(std::uint32_t lane, double p);
  void SetLinkLoss(std::uint32_t lane, NodeId a, NodeId b, double p);
  void ClearLinkLoss(std::uint32_t lane, NodeId a, NodeId b);
  double LinkLossOf(std::uint32_t lane, NodeId a, NodeId b) const;
  std::uint64_t link_drops(std::uint32_t lane) const {
    return link_drops_[lane];
  }
  void Send(std::uint32_t lane, Message msg);
  void StartMaintenanceBeaconsLane(std::uint32_t lane, SimDuration period,
                                   std::size_t payload_bytes);
  void FinalizeAccounting(std::uint32_t lane);
  std::size_t in_flight(std::uint32_t lane) const {
    return total_flights_[lane];
  }

  /// `GroupDispatcher`: fires one coalesced radio event.
  void DispatchGroup(std::uint32_t slot) override;

 private:
  struct ViewlessTag {};
  BatchedNetwork(ViewlessTag, const Topology& topology, RadioParams radio,
                 ChannelParams channel, std::span<const std::uint64_t> seeds);

  /// One `StartMaintenanceBeacons` call; ticks reference it by index.
  struct BeaconSet {
    SimDuration period;
    std::size_t payload_bytes;
  };

  /// One coalesced radio event: the lanes it fires for plus the payload the
  /// serial handler would have captured.  Pooled and recycled like the
  /// simulator's callable slab.
  struct GroupEvent {
    enum class Kind : std::uint8_t { kComplete, kRetry, kBeacon };
    std::uint64_t mask = 0;
    Kind kind = Kind::kComplete;
    int attempt = 0;
    SimTime started = 0;   ///< kComplete: transmission start time
    NodeId node = 0;       ///< kBeacon: beaconing node
    std::uint32_t set = 0; ///< kBeacon: beacon-set index
    Message msg;           ///< kComplete/kRetry payload (moved, never copied
                           ///< unless lanes diverged mid-group)
  };

  std::size_t Idx(NodeId node, std::uint32_t lane) const {
    return static_cast<std::size_t>(node) * lanes_ + lane;
  }
  std::uint64_t AllLanesMask() const {
    return lanes_ == 64 ? ~0ULL : (1ULL << lanes_) - 1;
  }
  std::uint32_t AllocGroup();
  void ScheduleBeacons(std::uint64_t mask, SimDuration period,
                       std::size_t payload_bytes);
  void BeginAttempt(std::uint64_t mask, Message msg, int attempt);
  void CompleteAttempt(std::uint64_t mask, Message msg, int attempt,
                       SimTime started);
  void Deliver(std::uint64_t mask, const Message& msg);
  void BeaconTick(std::uint64_t mask, NodeId node, std::uint32_t set);
  std::size_t CountInterferers(std::uint32_t lane, NodeId sender,
                               SimTime started) const;
  void AddFlight(std::uint32_t lane, NodeId sender, SimTime end);
  void RemoveFlight(std::uint32_t lane, NodeId sender, SimTime end);

  const Topology* topology_;
  RadioParams radio_;
  ChannelParams channel_;
  std::uint32_t lanes_;
  SimCore core_;
  // ---- Per-lane components (indexed by lane). ----
  std::vector<LinkQualityMap> link_quality_;
  std::vector<RadioLedger> ledgers_;
  std::vector<Rng> rng_;
  std::vector<Rng> loss_rng_;
  std::vector<ObserverMux> observers_;
  std::vector<std::size_t> num_failed_;
  std::vector<std::size_t> num_down_;
  std::vector<double> default_link_loss_;
  /// Per-link loss overrides, keyed by the normalized (low, high) pair.
  std::vector<std::map<std::pair<NodeId, NodeId>, double>> link_loss_;
  std::vector<std::uint64_t> link_drops_;
  std::vector<std::size_t> total_flights_;
  /// Compact per-lane list of senders with at least one active flight —
  /// `CountInterferers` walks only those.
  std::vector<std::vector<NodeId>> active_senders_;
  // ---- Structure-of-arrays node state (indexed `node * lanes + lane`,
  // so the lanes of one node share cache lines). ----
  std::vector<Network::Receiver> receivers_;
  std::vector<std::uint8_t> asleep_;
  std::vector<std::uint8_t> failed_;
  std::vector<std::uint8_t> down_;
  std::vector<SimTime> down_since_;
  std::vector<SimTime> sleep_since_;
  std::vector<SimTime> busy_until_;
  /// O(1) flight tracking: per-(node, lane) end times (appended at begin,
  /// swap-removed at complete; capacity is retained, so steady state never
  /// allocates) plus each lane's slot in its active-senders list.
  std::vector<std::vector<SimTime>> flight_ends_;
  std::vector<std::uint32_t> active_slot_;
  // ---- Shared plumbing. ----
  std::vector<BeaconSet> beacon_sets_;
  /// Scratch for sorted destination lookups on large multicasts (the
  /// membership answer is lane-independent, so one scratch serves all).
  std::vector<NodeId> dest_scratch_;
  /// Pooled group events + recycled slots.
  std::vector<GroupEvent> groups_;
  std::vector<std::uint32_t> free_groups_;
  /// Per-lane serial-API views (in creation order; stable addresses).
  std::deque<Network> lane_views_;
};

}  // namespace ttmqo
