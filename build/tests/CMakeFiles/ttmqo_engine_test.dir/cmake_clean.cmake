file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_engine_test.dir/ttmqo_engine_test.cc.o"
  "CMakeFiles/ttmqo_engine_test.dir/ttmqo_engine_test.cc.o.d"
  "ttmqo_engine_test"
  "ttmqo_engine_test.pdb"
  "ttmqo_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
