// Node-failure injection: the paper lists failure handling as future work;
// we implement crash faults and verify that (a) nothing breaks, (b) the
// in-network tier's dynamic DAG routes around dead relays while TinyDB's
// fixed tree loses whole subtrees.
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

TEST(NetworkFailureTest, FailedNodesNeitherSendNorReceive) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  int received = 0;
  for (NodeId n : topology.AllNodes()) {
    network.SetReceiver(n, [&received](const Message&, bool addressed) {
      if (addressed) ++received;
    });
  }
  network.FailNode(4);
  // The dead node's sends vanish...
  Message from_dead;
  from_dead.mode = AddressMode::kBroadcast;
  from_dead.sender = 4;
  network.Send(std::move(from_dead));
  network.sim().RunUntil(100);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.ledger().TotalMessages(), 0u);
  // ...and traffic addressed to it disappears silently.
  Message to_dead;
  to_dead.mode = AddressMode::kUnicast;
  to_dead.sender = 0;
  to_dead.destinations = {4};
  network.Send(std::move(to_dead));
  network.sim().RunUntil(200);
  EXPECT_EQ(received, 0);
}

TEST(NetworkFailureTest, BaseStationCannotFail) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  EXPECT_THROW(network.FailNode(kBaseStationId), std::invalid_argument);
  network.FailNode(5);
  EXPECT_TRUE(network.IsFailed(5));
  EXPECT_EQ(network.NumFailed(), 1u);
  network.FailNode(5);  // idempotent
  EXPECT_EQ(network.NumFailed(), 1u);
}

// A corner-heavy cluster field: data lives far from the base station, so
// every answer crosses relays that we can kill.
class FarClusterField final : public FieldModel {
 public:
  double Sample(NodeId node, const Position& pos, Attribute attr,
                SimTime) const override {
    if (attr == Attribute::kNodeId) return node;
    return (pos.x >= 60 && pos.y >= 60) ? 900.0 : 100.0;
  }
};

TEST(EngineFailureTest, InNetworkRoutesAroundDeadRelays) {
  // 5x5 grid; the hot cluster is the far corner (x,y >= 60).  Kill two
  // mid-grid relays after a few epochs.
  const Topology topology = Topology::Grid(5);
  const FarClusterField field;
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");

  std::size_t innet_rows_after = 0, tinydb_rows_after = 0;
  for (bool innet : {true, false}) {
    Network network(topology, RadioParams{}, ChannelParams{}, 9);
    ResultLog log;
    std::unique_ptr<QueryEngine> engine;
    if (innet) {
      engine = std::make_unique<InNetworkEngine>(network, field, &log);
    } else {
      engine = std::make_unique<TinyDbEngine>(network, field, &log);
    }
    engine->SubmitQuery(q);
    // After epoch 3, kill the two central relays.
    network.sim().ScheduleAt(3 * 4096 + 500, [&network]() {
      network.FailNode(12);
      network.FailNode(13);
    });
    network.sim().RunUntil(10 * 4096);
    // Count rows arriving after the failure settles (epochs 5..9).
    std::size_t rows_after = 0;
    for (const EpochResult* r : log.ResultsFor(1)) {
      if (r->epoch_time >= 5 * 4096) rows_after += r->rows.size();
    }
    (innet ? innet_rows_after : tinydb_rows_after) = rows_after;
  }
  // 4 cluster nodes (x,y >= 60) x 5 epochs = 20 expected rows.  The DAG
  // reroutes around the dead relays and recovers everything; the fixed
  // tree loses whatever subtree hung under them.
  EXPECT_GE(innet_rows_after, tinydb_rows_after);
  EXPECT_EQ(innet_rows_after, 20u)
      << "the DAG should recover every row after the failure";
}

TEST(EngineFailureTest, EnginesSurviveManyFailures) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(3);
  for (bool innet : {true, false}) {
    Network network(topology, RadioParams{}, ChannelParams{}, 9);
    ResultLog log;
    std::unique_ptr<QueryEngine> engine;
    if (innet) {
      engine = std::make_unique<InNetworkEngine>(network, field, &log);
    } else {
      engine = std::make_unique<TinyDbEngine>(network, field, &log);
    }
    engine->SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
    engine->SubmitQuery(
        ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192"));
    // Kill half of the sensors over time.
    for (NodeId n = 2; n < topology.size(); n += 2) {
      network.sim().ScheduleAt(static_cast<SimTime>(n) * 3000,
                               [&network, n]() { network.FailNode(n); });
    }
    network.sim().RunUntil(12 * 4096);
    EXPECT_GT(log.size(), 0u);
    // Dead sources never report (by the last epoch every even node has
    // been dead for several epochs).
    for (const EpochResult* r : log.ResultsFor(1)) {
      if (r->epoch_time < 11 * 4096) continue;
      for (const Reading& row : r->rows) {
        EXPECT_FALSE(network.IsFailed(row.node()))
            << "node " << row.node() << " at epoch " << r->epoch_time;
      }
    }
  }
}

TEST(EngineFailureTest, FailuresNeverCorruptDeliveredValues) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 9);
  ResultLog log;
  InNetworkEngine engine(network, field, &log);
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  engine.SubmitQuery(q);
  network.sim().ScheduleAt(2 * 4096 + 7, [&]() { network.FailNode(5); });
  network.sim().RunUntil(8 * 4096);
  for (const EpochResult* r : log.ResultsFor(1)) {
    const EpochResult truth =
        testing::OracleResult(q, r->epoch_time, field, topology);
    std::map<NodeId, double> expected;
    for (const Reading& row : truth.rows) {
      expected[row.node()] = row.GetOrThrow(Attribute::kLight);
    }
    for (const Reading& row : r->rows) {
      ASSERT_TRUE(expected.contains(row.node()));
      EXPECT_DOUBLE_EQ(row.GetOrThrow(Attribute::kLight),
                       expected[row.node()]);
    }
  }
}

}  // namespace
}  // namespace ttmqo
