
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/csv.cc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/csv.cc.o" "gcc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/csv.cc.o.d"
  "/root/repo/src/metrics/energy.cc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/energy.cc.o" "gcc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/energy.cc.o.d"
  "/root/repo/src/metrics/run_summary.cc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/run_summary.cc.o" "gcc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/run_summary.cc.o.d"
  "/root/repo/src/metrics/table.cc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/table.cc.o" "gcc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/table.cc.o.d"
  "/root/repo/src/metrics/trace.cc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/trace.cc.o" "gcc" "src/metrics/CMakeFiles/ttmqo_metrics.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ttmqo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
