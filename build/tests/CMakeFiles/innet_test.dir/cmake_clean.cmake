file(REMOVE_RECURSE
  "CMakeFiles/innet_test.dir/innet_test.cc.o"
  "CMakeFiles/innet_test.dir/innet_test.cc.o.d"
  "innet_test"
  "innet_test.pdb"
  "innet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
