#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <mutex>

#include "util/check.h"

namespace ttmqo::obs {

namespace flight_internal {
std::atomic<bool> g_armed{false};
}  // namespace flight_internal

namespace {

constexpr std::size_t kRingCapacity = 256;  // power of two, per thread
constexpr std::size_t kMaxRings = 256;

/// One thread's ring.  Single writer; the dump path reads racily (a torn
/// record in a crash dump is acceptable).
struct FlightRing {
  std::array<FlightEntry, kRingCapacity> ring;
  std::atomic<std::uint64_t> next{0};
  std::uint32_t tid = 0;

  void Clear() { next.store(0, std::memory_order_relaxed); }
};

/// Fixed table the signal handler can walk without locking: `count` only
/// grows, and each slot is written (released) before `count` admits it.
std::atomic<FlightRing*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_dump_counter{0};

/// Dump directory, fixed storage so the signal handler can read it.
char g_dump_dir[512] = {};
std::atomic<bool> g_dump_dir_set{false};

std::mutex g_register_mu;
std::vector<FlightRing*> g_free_rings;
std::uint32_t g_next_tid = 0;

FlightRing* ClaimRing() {
  std::lock_guard<std::mutex> lock(g_register_mu);
  FlightRing* ring;
  if (!g_free_rings.empty()) {
    ring = g_free_rings.back();
    g_free_rings.pop_back();
    ring->Clear();
  } else {
    const std::size_t slot = g_ring_count.load(std::memory_order_relaxed);
    if (slot >= kMaxRings) return nullptr;  // beyond capacity: drop records
    ring = new FlightRing();  // reachable from g_rings forever: no leak
    g_rings[slot].store(ring, std::memory_order_release);
    g_ring_count.store(slot + 1, std::memory_order_release);
  }
  ring->tid = g_next_tid++;
  return ring;
}

void ReleaseRing(FlightRing* ring) {
  if (ring == nullptr) return;
  std::lock_guard<std::mutex> lock(g_register_mu);
  g_free_rings.push_back(ring);
}

struct ThreadRingHandle {
  FlightRing* ring = ClaimRing();
  ~ThreadRingHandle() { ReleaseRing(ring); }
};

FlightRing* CurrentRing() {
  static thread_local ThreadRingHandle handle;
  return handle.ring;
}

void CopyTruncated(char* dst, std::size_t cap, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump machinery: fd + snprintf into a stack buffer only.

void WriteAll(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return;
    done += static_cast<std::size_t>(n);
  }
}

/// Appends `src` JSON-escaped (the record strings are short ASCII; anything
/// below 0x20 is replaced, which is enough for valid JSON).
std::size_t AppendEscaped(char* out, std::size_t cap, const char* src) {
  std::size_t n = 0;
  for (std::size_t i = 0; src[i] != '\0' && n + 2 < cap; ++i) {
    const char ch = src[i];
    if (ch == '"' || ch == '\\') {
      out[n++] = '\\';
      out[n++] = ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out[n++] = '?';
    } else {
      out[n++] = ch;
    }
  }
  out[n] = '\0';
  return n;
}

void WriteEntryJson(int fd, const FlightEntry& entry, bool first) {
  char kind[2 * FlightEntry::kKindLen];
  char detail[2 * FlightEntry::kDetailLen];
  AppendEscaped(kind, sizeof(kind), entry.kind);
  AppendEscaped(detail, sizeof(detail), entry.detail);
  char line[512];
  const int n = snprintf(
      line, sizeof(line),
      "%s    {\"seq\": %llu, \"kind\": \"%s\", \"t\": %lld, \"a\": %lld, "
      "\"b\": %lld, \"c\": %lld, \"tid\": %u%s%s%s}",
      first ? "" : ",\n",
      static_cast<unsigned long long>(entry.seq), kind,
      static_cast<long long>(entry.sim_time), static_cast<long long>(entry.a),
      static_cast<long long>(entry.b), static_cast<long long>(entry.c),
      entry.tid, detail[0] != '\0' ? ", \"detail\": \"" : "",
      detail, detail[0] != '\0' ? "\"" : "");
  if (n > 0) WriteAll(fd, line, std::min(sizeof(line) - 1, std::size_t(n)));
}

/// The allocation-free dump core.  Returns the fd-written path length, or 0
/// on failure.  `path_out` must hold at least 768 bytes.
std::size_t DumpCore(const char* reason, char* path_out,
                     std::size_t path_cap) {
  if (!g_dump_dir_set.load(std::memory_order_acquire)) return 0;
  // Sanitize the reason into a filename fragment.
  char safe[48];
  std::size_t s = 0;
  for (std::size_t i = 0; reason != nullptr && reason[i] != '\0' &&
                          s + 1 < sizeof(safe) && i < 40; ++i) {
    const char ch = reason[i];
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-' ||
                    ch == '.';
    safe[s++] = ok ? ch : '_';
  }
  safe[s] = '\0';
  const std::uint64_t id =
      g_dump_counter.fetch_add(1, std::memory_order_relaxed);
  const int pn =
      snprintf(path_out, path_cap, "%s/postmortem_%llu_%s.json", g_dump_dir,
               static_cast<unsigned long long>(id), safe);
  if (pn <= 0 || static_cast<std::size_t>(pn) >= path_cap) return 0;
  const int fd = ::open(path_out, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;

  char head[256];
  char reason_escaped[128];
  AppendEscaped(reason_escaped, sizeof(reason_escaped),
                reason != nullptr ? reason : "unknown");
  const int hn = snprintf(head, sizeof(head),
                          "{\n  \"reason\": \"%s\",\n  \"pid\": %d,\n"
                          "  \"records\": [\n",
                          reason_escaped, static_cast<int>(::getpid()));
  if (hn > 0) WriteAll(fd, head, static_cast<std::size_t>(hn));

  bool first = true;
  const std::size_t rings = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < rings; ++r) {
    const FlightRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(next, kRingCapacity);
    for (std::uint64_t i = next - kept; i < next; ++i) {
      WriteEntryJson(fd, ring->ring[i & (kRingCapacity - 1)], first);
      first = false;
    }
  }
  static const char kTail[] = "\n  ]\n}\n";
  WriteAll(fd, kTail, sizeof(kTail) - 1);
  ::close(fd);
  return static_cast<std::size_t>(pn);
}

// ---------------------------------------------------------------------------
// Postmortem triggers.

void OnCheckFailure(const char* message) { DumpPostmortem(message); }

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
struct sigaction g_old_actions[4];
std::atomic<bool> g_handlers_installed{false};

void FatalSignalHandler(int signo) {
  char path[768];
  char reason[32];
  snprintf(reason, sizeof(reason), "signal_%d", signo);
  DumpCore(reason, path, sizeof(path));
  if (path[0] != '\0') {
    static const char kMsg[] = "flight recorder: postmortem written to ";
    WriteAll(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
    WriteAll(STDERR_FILENO, path, strnlen(path, sizeof(path)));
    WriteAll(STDERR_FILENO, "\n", 1);
  }
  // Restore the default action and re-raise so the process still dies with
  // the original signal (core dump, nonzero wait status).
  signal(signo, SIG_DFL);
  raise(signo);
}

void InstallSignalHandlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = &FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = static_cast<int>(SA_RESETHAND);
  for (std::size_t i = 0; i < 4; ++i) {
    sigaction(kFatalSignals[i], &action, &g_old_actions[i]);
  }
}

void RemoveSignalHandlers() {
  bool expected = true;
  if (!g_handlers_installed.compare_exchange_strong(expected, false)) return;
  for (std::size_t i = 0; i < 4; ++i) {
    sigaction(kFatalSignals[i], &g_old_actions[i], nullptr);
  }
}

}  // namespace

namespace flight_internal {

void RecordSlow(const char* kind, std::int64_t sim_time, std::int64_t a,
                std::int64_t b, std::int64_t c, const char* detail) {
  FlightRing* ring = CurrentRing();
  if (ring == nullptr) return;
  const std::uint64_t next = ring->next.load(std::memory_order_relaxed);
  FlightEntry& entry = ring->ring[next & (kRingCapacity - 1)];
  entry.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  entry.sim_time = sim_time;
  entry.a = a;
  entry.b = b;
  entry.c = c;
  entry.tid = ring->tid;
  CopyTruncated(entry.kind, FlightEntry::kKindLen, kind);
  CopyTruncated(entry.detail, FlightEntry::kDetailLen, detail);
  ring->next.store(next + 1, std::memory_order_release);
}

}  // namespace flight_internal

void ArmFlightRecorder() {
  flight_internal::g_armed.store(true, std::memory_order_relaxed);
}

void DisarmFlightRecorder() {
  flight_internal::g_armed.store(false, std::memory_order_relaxed);
  SetCheckFailureHook(nullptr);
  RemoveSignalHandlers();
}

void ArmPostmortem(const std::string& dir) {
  CheckArg(!dir.empty() && dir.size() < sizeof(g_dump_dir),
           "ArmPostmortem: bad dump directory");
  ::mkdir(dir.c_str(), 0755);  // best-effort; open() reports real failures
  CopyTruncated(g_dump_dir, sizeof(g_dump_dir), dir.c_str());
  g_dump_dir_set.store(true, std::memory_order_release);
  ArmFlightRecorder();
  SetCheckFailureHook(&OnCheckFailure);
  InstallSignalHandlers();
}

std::string DumpPostmortem(const char* reason) {
  char path[768];
  path[0] = '\0';
  const std::size_t n = DumpCore(reason, path, sizeof(path));
  return n > 0 ? std::string(path, n) : std::string();
}

void ClearThreadFlightRing() {
  FlightRing* ring = CurrentRing();
  if (ring != nullptr) ring->Clear();
}

void ClearFlightRecords() {
  const std::size_t rings = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < rings; ++r) {
    FlightRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring != nullptr) ring->Clear();
  }
  g_seq.store(0, std::memory_order_relaxed);
}

std::vector<FlightEntry> CollectFlightRecords() {
  std::vector<FlightEntry> out;
  const std::size_t rings = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < rings; ++r) {
    const FlightRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t next = ring->next.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(next, kRingCapacity);
    for (std::uint64_t i = next - kept; i < next; ++i) {
      out.push_back(ring->ring[i & (kRingCapacity - 1)]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEntry& a, const FlightEntry& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace ttmqo::obs
