// A general experiment driver: every knob of the harness on the command
// line.  Useful for quick what-if studies without writing code.
//
//   $ run_experiment --workload=C --mode=ttmqo --side=8
//   $ run_experiment --workload=random --queries=40 --concurrency=12
//   $ run_experiment --workload=A --topology=random --nodes=30
//
// Prints the run summary, per-mode savings (when --compare is given), and
// the energy picture.
//
// Fault injection (all optional, deterministic):
//   --fail=<node>@<ms>         permanent crash (repeatable)
//   --down=<node>@<t0>-<t1>    transient outage [t0, t1) ms (repeatable)
//   --link-loss=<p>            independent per-delivery loss on every link
// The resolved fault plan is recorded under "fault_plan" in --metrics-out.
//
// Reliability:
//   --reliability=off|harden|arq   named profile: "harden" bundles the
//                          loss-hardening knobs (liveness failover,
//                          dissemination re-floods, duplicate suppression);
//                          "arq" adds the per-hop ack/retransmit transport
//                          with base-station gap repair and per-epoch
//                          coverage accounting.  Default: off.
//
// Observability outputs (all optional):
//   --metrics-out=m.json   per-node/per-class counters, run gauges, and the
//                          per-epoch time series as one JSON document
//   --prom-out=m.prom      the same registry in Prometheus text format
//   --trace-out=t.jsonl    radio events + tier-1/tier-2 decision events as
//                          JSON Lines
//   --epoch-csv=e.csv      the per-epoch time series as CSV
//   --trace-chrome=t.json  profiling spans (parse / tier-1 / dissemination /
//                          event loop / summarize and the sampled hot paths)
//                          as Chrome trace-event JSON for Perfetto
//   --postmortem-dir=DIR   arm the flight recorder: invariant failures and
//                          fatal signals dump the last simulator events to
//                          a postmortem JSON file in DIR
// With --compare, registry metrics are labeled mode="..." per run and the
// trace contains all four runs bracketed by run.start/run.end; the epoch
// series covers the final (ttmqo) run.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "fault/fault_plan.h"
#include "metrics/energy.h"
#include "metrics/epoch_sampler.h"
#include "metrics/registry.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "obs/session.h"
#include "obs/span.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace {

using namespace ttmqo;

OptimizationMode ParseMode(const std::string& name) {
  if (name == "baseline") return OptimizationMode::kBaseline;
  if (name == "bs") return OptimizationMode::kBaseStationOnly;
  if (name == "innet") return OptimizationMode::kInNetworkOnly;
  if (name == "ttmqo") return OptimizationMode::kTwoTier;
  throw std::invalid_argument("unknown --mode (baseline|bs|innet|ttmqo)");
}

std::ofstream OpenOutput(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open output file: " + path);
  return out;
}

/// Parses "<node>@<ms>" (for --fail) into its two numbers.
std::pair<NodeId, SimTime> ParseNodeAt(const std::string& spec,
                                       const char* flag) {
  const auto at = spec.find('@');
  if (at == std::string::npos) {
    throw std::invalid_argument(std::string("--") + flag +
                                " expects <node>@<ms>, got '" + spec + "'");
  }
  try {
    return {static_cast<NodeId>(std::stoul(spec.substr(0, at))),
            static_cast<SimTime>(std::stoll(spec.substr(at + 1)))};
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("--") + flag +
                                " expects <node>@<ms>, got '" + spec + "'");
  }
}

/// Parses "<node>@<t0>-<t1>" (for --down).
OutageEvent ParseOutage(const std::string& spec) {
  const auto at = spec.find('@');
  const auto dash = spec.find('-', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || dash == std::string::npos) {
    throw std::invalid_argument("--down expects <node>@<t0>-<t1>, got '" +
                                spec + "'");
  }
  try {
    OutageEvent outage;
    outage.node = static_cast<NodeId>(std::stoul(spec.substr(0, at)));
    outage.from = static_cast<SimTime>(
        std::stoll(spec.substr(at + 1, dash - at - 1)));
    outage.until = static_cast<SimTime>(std::stoll(spec.substr(dash + 1)));
    return outage;
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("--down expects <node>@<t0>-<t1>, got '" +
                                spec + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = Flags::Parse(argc, argv);
    const std::string workload = flags.GetString("workload", "C");
    const bool compare = flags.GetBool("compare", false);
    const std::string mode_name = flags.GetString("mode", "ttmqo");

    RunConfig config;
    config.grid_side = static_cast<std::size_t>(flags.GetInt("side", 4));
    if (flags.GetString("topology", "grid") == "random") {
      config.topology = TopologyKind::kRandom;
      config.random_nodes =
          static_cast<std::size_t>(flags.GetInt("nodes", 25));
      config.random_side_feet = flags.GetDouble("area-side", 120.0);
    }
    config.duration_ms = flags.GetInt("duration-ms", 40 * 12288);
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
    config.channel.collision_prob = flags.GetDouble("collisions", 0.02);
    config.alpha = flags.GetDouble("alpha", 0.6);
    config.reliability =
        ParseReliabilityProfile(flags.GetString("reliability", "off"));
    // Deprecated per-feature aliases, superseded by --reliability=harden.
    // Still parsed so existing scripts keep working, but intentionally
    // absent from the help text above; a profile overrides them.
    config.innet.liveness_timeout_ms = flags.GetInt(
        "liveness-timeout-ms", config.innet.liveness_timeout_ms);
    config.innet.dissemination_retries = static_cast<int>(flags.GetInt(
        "dissem-retries", config.innet.dissemination_retries));
    config.innet.duplicate_suppression = flags.GetBool(
        "dup-suppress", config.innet.duplicate_suppression);

    // Fault injection.
    for (const std::string& spec : flags.GetAll("fail")) {
      const auto [node, at] = ParseNodeAt(spec, "fail");
      config.faults.AddCrash(node, at);
    }
    for (const std::string& spec : flags.GetAll("down")) {
      const OutageEvent outage = ParseOutage(spec);
      config.faults.AddOutage(outage.node, outage.from, outage.until);
    }
    const double link_loss = flags.GetDouble("link-loss", 0.0);
    if (link_loss > 0.0) config.faults.SetDefaultLinkLoss(link_loss);

    const auto metrics_out = flags.GetOptional("metrics-out");
    const auto prom_out = flags.GetOptional("prom-out");
    const auto trace_out = flags.GetOptional("trace-out");
    const auto epoch_csv = flags.GetOptional("epoch-csv");
    obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));

    std::vector<WorkloadEvent> schedule;
    {
      TTMQO_PHASE_SPAN("phase.parse");
      if (workload == "random") {
        QueryModelParams params;
        params.predicate_selectivity = 1.0;
        params.randomize_selectivity = true;
        RandomQueryModel model(params, config.seed ^ 0xabcULL);
        const auto queries =
            static_cast<std::size_t>(flags.GetInt("queries", 40));
        const double concurrency = flags.GetDouble("concurrency", 8.0);
        schedule = DynamicSchedule(model, queries, 40'000.0,
                                   concurrency * 40'000.0, config.seed);
        SimTime end = 0;
        for (const auto& event : schedule) end = std::max(end, event.time);
        config.duration_ms = std::max(config.duration_ms, end + 4 * 24576);
      } else {
        schedule = StaticSchedule(WorkloadByName(workload));
      }
    }

    if (ReportUnreadFlags(flags)) return 2;

    const std::vector<OptimizationMode> modes =
        compare ? std::vector<OptimizationMode>{
                      OptimizationMode::kBaseline,
                      OptimizationMode::kBaseStationOnly,
                      OptimizationMode::kInNetworkOnly,
                      OptimizationMode::kTwoTier}
                : std::vector<OptimizationMode>{ParseMode(mode_name)};

    MetricsRegistry registry;
    EpochSampler sampler;
    std::ofstream trace_file;
    std::unique_ptr<JsonlTraceWriter> trace_writer;
    if (trace_out.has_value()) {
      trace_file = OpenOutput(*trace_out);
      trace_writer = std::make_unique<JsonlTraceWriter>(trace_file);
    }
    const bool want_metrics = metrics_out.has_value() || prom_out.has_value();
    const bool want_epochs = metrics_out.has_value() || epoch_csv.has_value();

    TablePrinter table({"mode", "avg tx %", "messages", "retx", "results",
                        "avg net queries", "sleep %", "delivery %",
                        "coverage %"});
    double baseline_tx = -1.0;
    for (OptimizationMode mode : modes) {
      config.mode = mode;
      config.obs = RunObservability{};
      if (want_metrics) {
        config.obs.registry = &registry;
        if (compare) {
          config.obs.labels = {
              {"mode", std::string(OptimizationModeName(mode))}};
        }
      }
      if (trace_writer != nullptr) {
        config.obs.trace = trace_writer.get();
        config.obs.observers.push_back(trace_writer.get());
      }
      // One sampler serves one run: under --compare it watches the final
      // (two-tier) run.
      if (want_epochs && mode == modes.back()) {
        config.obs.sampler = &sampler;
      }
      const RunResult run = RunExperiment(config, schedule);
      if (mode == OptimizationMode::kBaseline) {
        baseline_tx = run.summary.avg_transmission_fraction;
      }
      table.AddRow(
          {std::string(OptimizationModeName(mode)),
           TablePrinter::Num(run.summary.avg_transmission_fraction * 100, 4),
           std::to_string(run.summary.total_messages),
           std::to_string(run.summary.retransmissions),
           std::to_string(run.results.size()),
           TablePrinter::Num(run.avg_network_queries, 2),
           TablePrinter::Num(run.summary.avg_sleep_fraction * 100, 1),
           TablePrinter::Num(run.summary.AvgDeliveryCompleteness() * 100,
                             1),
           run.summary.coverage.empty()
               ? "-"
               : TablePrinter::Num(run.summary.AvgCoverage() * 100, 1)});
      if (compare && mode == OptimizationMode::kTwoTier &&
          baseline_tx > 0) {
        std::printf("TTMQO saves %.1f%% of average transmission time\n\n",
                    SavingsPercent(baseline_tx,
                                   run.summary.avg_transmission_fraction));
      }
    }
    table.Print(std::cout);

    if (metrics_out.has_value()) {
      std::ofstream out = OpenOutput(*metrics_out);
      out << "{\"workload\":";
      WriteJsonString(out, workload);
      out << ",\"fault_plan\":";
      config.faults.WriteJson(out);
      out << ",\"metrics\":";
      registry.WriteJson(out);
      out << ",\"epochs\":";
      sampler.WriteJsonArray(out);
      out << "}\n";
      std::printf("wrote metrics JSON to %s\n", metrics_out->c_str());
    }
    if (prom_out.has_value()) {
      std::ofstream out = OpenOutput(*prom_out);
      registry.WritePrometheus(out);
      std::printf("wrote Prometheus metrics to %s\n", prom_out->c_str());
    }
    if (epoch_csv.has_value()) {
      std::ofstream out = OpenOutput(*epoch_csv);
      sampler.WriteCsv(out);
      std::printf("wrote epoch series to %s\n", epoch_csv->c_str());
    }
    if (trace_writer != nullptr) {
      trace_writer->Flush();
      std::printf("wrote %llu trace events to %s\n",
                  static_cast<unsigned long long>(trace_writer->events()),
                  trace_out->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
