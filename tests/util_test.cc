// Unit tests for the util layer: intervals, epoch math, RNG, flags, time.
#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/flags.h"
#include "util/interval.h"
#include "util/mathx.h"
#include "util/rng.h"
#include "util/time.h"

namespace ttmqo {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval i;
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(i.Length(), 0.0);
  EXPECT_FALSE(i.Contains(0.0));
}

TEST(IntervalTest, InvertedBoundsNormalizeToEmpty) {
  Interval i(5.0, 1.0);
  EXPECT_TRUE(i.empty());
}

TEST(IntervalTest, ContainsIsInclusive) {
  Interval i(1.0, 2.0);
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(2.0));
  EXPECT_TRUE(i.Contains(1.5));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_FALSE(i.Contains(2.001));
}

TEST(IntervalTest, IntersectAndHull) {
  Interval a(100, 300);
  Interval b(280, 600);
  EXPECT_EQ(a.Intersect(b), Interval(280, 300));
  EXPECT_EQ(a.Hull(b), Interval(100, 600));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(IntervalTest, DisjointIntersectIsEmpty) {
  Interval a(0, 1);
  Interval b(2, 3);
  EXPECT_TRUE(a.Intersect(b).empty());
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_EQ(a.Hull(b), Interval(0, 3));
}

TEST(IntervalTest, CoversSemantics) {
  Interval outer(0, 10);
  Interval inner(2, 8);
  EXPECT_TRUE(outer.Covers(inner));
  EXPECT_FALSE(inner.Covers(outer));
  EXPECT_TRUE(outer.Covers(outer));
  EXPECT_TRUE(outer.Covers(Interval()));   // empty is covered by anything
  EXPECT_FALSE(Interval().Covers(outer));  // empty covers nothing non-empty
}

TEST(IntervalTest, HullWithEmptyIsIdentity) {
  Interval a(1, 2);
  EXPECT_EQ(a.Hull(Interval()), a);
  EXPECT_EQ(Interval().Hull(a), a);
}

TEST(IntervalTest, OverlapFraction) {
  Interval a(0, 10);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(Interval(0, 5)), 0.5);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(Interval(-5, 5)), 0.5);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(a), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(Interval(20, 30)), 0.0);
  EXPECT_DOUBLE_EQ(a.OverlapFraction(Interval()), 0.0);
}

TEST(MathxTest, GcdAll) {
  const SimDuration values[] = {8192, 12288, 20480};
  EXPECT_EQ(GcdAll(values), 4096);
  const SimDuration one[] = {6144};
  EXPECT_EQ(GcdAll(one), 6144);
}

TEST(MathxTest, GcdAllRejectsEmptyAndNonPositive) {
  EXPECT_THROW(GcdAll(std::span<const SimDuration>()), std::invalid_argument);
  const SimDuration bad[] = {2048, 0};
  EXPECT_THROW(GcdAll(bad), std::invalid_argument);
}

TEST(MathxTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 2048), 0);
  EXPECT_EQ(AlignUp(1, 2048), 2048);
  EXPECT_EQ(AlignUp(2048, 2048), 2048);
  EXPECT_EQ(AlignUp(2049, 2048), 4096);
}

TEST(MathxTest, Divides) {
  EXPECT_TRUE(Divides(2048, 8192));
  EXPECT_FALSE(Divides(4096, 6144));
  EXPECT_TRUE(Divides(2048, 6144));
  EXPECT_FALSE(Divides(0, 6144));
}

TEST(TimeTest, EpochValidity) {
  EXPECT_TRUE(IsValidEpochDuration(2048));
  EXPECT_TRUE(IsValidEpochDuration(6144));
  EXPECT_FALSE(IsValidEpochDuration(0));
  EXPECT_FALSE(IsValidEpochDuration(-2048));
  EXPECT_FALSE(IsValidEpochDuration(1000));
}

TEST(TimeTest, Format) {
  EXPECT_EQ(FormatSimTime(12345), "12.345s");
  EXPECT_EQ(FormatSimTime(0), "0.000s");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsIndependentOfConsumption) {
  Rng a(7);
  const Rng fork_before = a.Fork(1);
  (void)a.Uniform(0, 1);
  const Rng fork_after = a.Fork(1);
  Rng f1 = fork_before, f2 = fork_after;
  EXPECT_EQ(f1.UniformInt(0, 1'000'000), f2.UniformInt(0, 1'000'000));
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.5);
}

TEST(RngTest, InvalidArgsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.Uniform(2, 1), std::invalid_argument);
  EXPECT_THROW(rng.Exponential(0), std::invalid_argument);
  EXPECT_THROW(rng.Bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(rng.Index(0), std::invalid_argument);
}

TEST(FlagsTest, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "pos", "--a=1", "--b", "2", "--c"};
  const Flags flags = Flags::Parse(6, argv);
  EXPECT_EQ(flags.GetInt("a", 0), 1);
  EXPECT_EQ(flags.GetInt("b", 0), 2);
  EXPECT_TRUE(flags.GetBool("c", false));  // trailing bare flag is boolean
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(FlagsTest, FallbacksAndErrors) {
  const char* argv[] = {"prog", "--x=abc"};
  const Flags flags = Flags::Parse(2, argv);
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("x", ""), "abc");
  EXPECT_THROW(flags.GetInt("x", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetBool("x", false), std::invalid_argument);
}

TEST(FlagsTest, UnreadFlagsDetected) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Flags flags = Flags::Parse(3, argv);
  (void)flags.GetInt("used", 0);
  const auto unread = flags.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(CheckTest, ThrowsWithMessage) {
  EXPECT_THROW(Check(false, "boom"), CheckFailure);
  EXPECT_THROW(CheckArg(false, "bad arg"), std::invalid_argument);
  EXPECT_NO_THROW(Check(true, "fine"));
}

}  // namespace
}  // namespace ttmqo
