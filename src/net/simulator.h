// The discrete-event simulation core.
//
// A single-threaded event loop with a totally ordered queue: events fire in
// (time, insertion-sequence) order, so equal-time events run in the order
// they were scheduled and every run is exactly reproducible.
//
// Since the batched multi-seed engine (DESIGN.md note 21) the loop is split
// in two layers:
//
//   - `SimCore` owns the heap, the callable slab, the clock, and the
//     per-lane executed counters.  It serves 1..64 *lanes* — independent
//     simulation runs advancing in lockstep through one queue.  Records are
//     either *lane events* (a pooled callable belonging to one lane — the
//     engine/workload/fault events of that run) or *group events* (a slot
//     into the registered `GroupDispatcher`'s own slab, carrying a lane
//     mask — the radio-internal events the batched network coalesces across
//     lanes whose schedules coincide).
//   - `Simulator` is a per-lane view: the scheduling interface engine code
//     holds a reference to.  A default-constructed `Simulator` owns a
//     private single-lane core, which is exactly the pre-batching serial
//     loop — same record ordering, same counts.
//
// Internals are built for an allocation-free steady state:
//   - The priority queue is a hand-rolled binary heap of 24-byte
//     `QueuedEvent` records (time, sequence, slot, lane) — sifting moves
//     plain integers, never callables.
//   - Callables live in a slab of pooled `EventFn` slots recycled through a
//     free list; `EventFn` stores small captures inline (see
//     `InlineCallable`), so scheduling and firing an event performs no
//     heap allocation once the slab and heap have reached their high-water
//     marks.  Events are moved through the pipeline, never copied.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/inline_callable.h"
#include "util/time.h"

namespace ttmqo {

/// Handles coalesced group events.  The dispatcher owns its own slot slab;
/// the core only stores (time, seq, slot) and calls back on fire.  The
/// dispatcher must call `SimCore::AddExecuted` with the group's lane mask
/// exactly once per dispatch so per-lane counts match a serial run.
class GroupDispatcher {
 public:
  virtual ~GroupDispatcher() = default;
  virtual void DispatchGroup(std::uint32_t slot) = 0;
};

/// The shared event loop of one lane batch.  Not thread-safe (by design:
/// determinism).
class SimCore {
 public:
  /// An event handler.  The inline capacity is sized for the hot paths'
  /// largest captures (see the static_asserts at the capture sites); bigger
  /// captures still work but fall back to one heap allocation.
  using EventFn = InlineCallable<104>;

  /// Hard lane cap: group masks are one 64-bit word.
  static constexpr std::uint32_t kMaxLanes = 64;

  explicit SimCore(std::uint32_t lanes = 1);
  ~SimCore();
  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  /// Number of lanes this core serves.
  std::uint32_t lanes() const { return lanes_; }

  /// Current simulated time (shared by all lanes).
  SimTime Now() const { return now_; }

  /// Schedules `fn` for `lane` at absolute time `t` (>= Now()).
  void ScheduleLaneAt(SimTime t, std::uint32_t lane, EventFn fn);

  /// Schedules group slot `slot` of the registered dispatcher at `t`.
  void ScheduleGroupAt(SimTime t, std::uint32_t slot);

  /// Registers the group-event dispatcher (required before the first
  /// `ScheduleGroupAt`; not owned).
  void SetGroupDispatcher(GroupDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`; afterwards Now() == `until` (events at exactly `until` run).
  void RunUntil(SimTime until);

  /// Runs a single event; returns false when the queue is empty.
  bool Step();

  /// Events executed on behalf of `lane` (group fires count once per lane
  /// in the group's mask — exactly the events a serial run would execute).
  std::uint64_t lane_events_executed(std::uint32_t lane) const {
    return lane_executed_.at(lane);
  }

  /// Called by the dispatcher at group fire with the group's lane mask.
  void AddExecuted(std::uint64_t mask);

  /// Number of records waiting (all lanes).
  std::size_t pending() const { return heap_.size(); }

 private:
  /// One heap record.  The callable (or the dispatcher's group slot) stays
  /// put while this trivially-copyable record percolates through the heap.
  /// `lane` is the owning lane, or `kGroupLane` when `slot` indexes the
  /// dispatcher's group slab.
  struct QueuedEvent {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t lane;
  };
  static constexpr std::uint32_t kGroupLane = 0xffffffffu;

  static bool Earlier(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void Push(QueuedEvent event);
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::uint32_t lanes_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint64_t> lane_executed_;
  GroupDispatcher* dispatcher_ = nullptr;
  /// Min-heap on (time, seq).
  std::vector<QueuedEvent> heap_;
  /// Pooled callable storage indexed by `QueuedEvent::slot` (lane events).
  std::vector<EventFn> slab_;
  /// Recycled slab slots.
  std::vector<std::uint32_t> free_slots_;
};

/// One lane's view of the event loop: the scheduling interface engines,
/// workloads, and fault plans hold.  A default-constructed `Simulator`
/// owns a private single-lane `SimCore` — the serial configuration.
class Simulator {
 public:
  using EventFn = SimCore::EventFn;

  /// A self-contained single-lane loop (the serial engine).
  Simulator();

  /// Lane `lane`'s view of `core` (which must outlive the view).
  Simulator(SimCore& core, std::uint32_t lane);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return core_->Now(); }

  /// Schedules `fn` for this lane at absolute time `t` (>= Now()).
  void ScheduleAt(SimTime t, EventFn fn) {
    core_->ScheduleLaneAt(t, lane_, std::move(fn));
  }

  /// Schedules `fn` `delay` ms from now (delay >= 0).
  void ScheduleAfter(SimDuration delay, EventFn fn);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`.  On a shared core this advances *every* lane of the batch —
  /// lanes share one clock; the batch harness calls it exactly once.
  void RunUntil(SimTime until) { core_->RunUntil(until); }

  /// Runs a single event (any lane); returns false when the queue is empty.
  bool Step() { return core_->Step(); }

  /// Number of events executed on behalf of this lane.
  std::uint64_t events_executed() const {
    return core_->lane_events_executed(lane_);
  }

  /// Number of events waiting (all lanes of the underlying core).
  std::size_t pending() const { return core_->pending(); }

  /// The underlying core.
  SimCore& core() { return *core_; }

  /// This view's lane index.
  std::uint32_t lane() const { return lane_; }

 private:
  /// Set only by the default (serial) constructor.
  std::unique_ptr<SimCore> owned_;
  SimCore* core_;
  std::uint32_t lane_;
};

}  // namespace ttmqo
