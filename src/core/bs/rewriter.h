// Tier 1: the base-station query rewriter (Sections 3.1.3-3.1.4).
//
// Maintains the set of running *synthetic* queries.  `InsertUserQuery`
// implements Algorithm 1: find the synthetic query with the highest benefit
// rate (benefit / cost of the inserted query); a rate of 1 means the new
// query is covered and nothing changes in the network; a positive rate
// triggers integration, after which the updated synthetic query is
// recursively re-inserted to exploit chained merges (the paper's
// q1/q2/q3 example); otherwise the query becomes its own synthetic query.
// `TerminateUserQuery` implements Algorithm 2: when the leaving query was
// the only member needing some requested data, the synthetic query is
// rebuilt only if cost(q) > benefit * alpha — small leftovers are tolerated
// to spare the network churn.
//
// The rewriter is a pure decision component: it returns the abort/inject
// actions and lets the engine talk to the network.  The paper's per-field
// `count` bookkeeping is realized by keeping each member query in the
// synthetic query's `members` table and re-deriving the canonical network
// query; a difference against the current network query is exactly "some
// count dropped to 0".
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/bs/cost_model.h"
#include "core/bs/integration.h"
#include "query/query.h"
#include "util/tracing.h"

namespace ttmqo {

/// One synthetic query: the network query plus the user queries it serves
/// (the paper's from_list) and its current benefit.
struct SyntheticQuery {
  explicit SyntheticQuery(Query q) : query(std::move(q)) {}

  /// The query actually running in the sensor network.
  Query query;

  /// Member user queries, keyed by user query id.
  std::map<QueryId, Query> members;

  /// sum(cost(member)) - cost(query); maintained by the rewriter.
  double benefit = 0.0;
};

/// The tier-1 optimizer.
class BaseStationOptimizer {
 public:
  struct Options {
    /// Algorithm 2's aggressiveness knob; the paper finds 0.6 best.
    double alpha = 0.6;
    /// Synthetic query ids are allocated from here; user ids must be below.
    QueryId first_synthetic_id = 1u << 20;
  };

  /// Network operations a call produced: abort these synthetic queries,
  /// then inject those.  Ids never overlap between the two lists.
  struct Actions {
    std::vector<QueryId> abort;
    std::vector<Query> inject;

    bool Empty() const { return abort.empty() && inject.empty(); }
  };

  /// `cost` must outlive the optimizer.
  explicit BaseStationOptimizer(const CostModel& cost)
      : BaseStationOptimizer(cost, Options()) {}
  BaseStationOptimizer(const CostModel& cost, Options options);

  /// Algorithm 1.  The query id must be unused and below
  /// `first_synthetic_id`.
  Actions InsertUserQuery(const Query& query);

  /// Algorithm 2.
  Actions TerminateUserQuery(QueryId user);

  /// The synthetic query currently serving `user`, or nullptr.
  const SyntheticQuery* SyntheticOf(QueryId user) const;

  /// The synthetic query with network id `id`, or nullptr.
  const SyntheticQuery* FindSynthetic(QueryId id) const;

  /// All running synthetic queries, ascending by id.
  std::vector<const SyntheticQuery*> Synthetics() const;

  /// Number of running synthetic queries.
  std::size_t NumSynthetic() const { return synthetics_.size(); }

  /// Number of running user queries.
  std::size_t NumUserQueries() const { return user_to_synthetic_.size(); }

  /// Sum of the members' standalone costs (Eq. 3) over all synthetics.
  double TotalUserCost() const;

  /// Sum of synthetic-query benefits; TotalUserCost() - cost of what
  /// actually runs.  benefit ratio = TotalBenefit() / TotalUserCost().
  double TotalBenefit() const;

  /// The benefit rate Beneficial(q_i, q_j) of Algorithm 1: 1 for coverage,
  /// benefit/cost(q_i) when rewritable (strictly below 1), else 0 means "no
  /// benefit".  Exposed for tests and benches.
  double BenefitRate(const Query& qi, const SyntheticQuery& qj) const;

  /// Running tally of the decisions Algorithms 1 and 2 took.
  struct DecisionStats {
    /// Algorithm 1 outcomes, one per inserted bundle.
    std::uint64_t covered = 0;     ///< absorbed, network unchanged
    std::uint64_t merged = 0;      ///< integrated into an existing synthetic
    std::uint64_t standalone = 0;  ///< became its own synthetic query
    /// Algorithm 2 outcomes, one per terminated user query.
    std::uint64_t retired = 0;  ///< last member left, synthetic aborted
    std::uint64_t rebuilt = 0;  ///< cost(leaving) > benefit * alpha
    std::uint64_t kept = 0;     ///< leftover tolerated (or nothing shrank)
  };

  /// Decision counts since construction.
  const DecisionStats& decision_stats() const { return decisions_; }

  /// Installs a sink for structured decision events ("tier1.insert",
  /// "tier1.benefit_estimate", "tier1.terminate"); nullptr disables
  /// tracing.  The optimizer has no clock: events carry time 0 and callers
  /// stamp them (the engine wraps the sink in a time-stamping adapter).
  void SetTraceSink(TraceSink* sink) { trace_ = sink; }

 private:
  void InsertBundle(const Query& net_query,
                    std::map<QueryId, Query> members, Actions& actions);
  void RecomputeBenefit(SyntheticQuery& sq) const;
  QueryId NextSyntheticId() { return next_synthetic_id_++; }
  static void Deduplicate(Actions& actions);

  const CostModel* cost_;
  Options options_;
  QueryId next_synthetic_id_;
  std::map<QueryId, SyntheticQuery> synthetics_;
  std::map<QueryId, QueryId> user_to_synthetic_;
  DecisionStats decisions_;
  TraceSink* trace_ = nullptr;
};

}  // namespace ttmqo
