// Tier 1: the base-station query rewriter (Sections 3.1.3-3.1.4).
//
// Maintains the set of running *synthetic* queries.  `InsertUserQuery`
// implements Algorithm 1: find the synthetic query with the highest benefit
// rate (benefit / cost of the inserted query); a rate of 1 means the new
// query is covered and nothing changes in the network; a positive rate
// triggers integration, after which the updated synthetic query is
// re-inserted to exploit chained merges (the paper's q1/q2/q3 example);
// otherwise the query becomes its own synthetic query.
// `TerminateUserQuery` implements Algorithm 2: when the leaving query was
// the only member needing some requested data, the synthetic query is
// rebuilt only if cost(q) > benefit * alpha — small leftovers are tolerated
// to spare the network churn.
//
// The candidate search scales two ways (DESIGN.md note 20):
//
//  * `Options::use_index = true` (default) finds coverage candidates by
//    ordered-container lookup over (epoch, attribute-mask) and
//    (predicate-signature, epoch) buckets, memoizes Eq. 1-3 cost and
//    benefit-rate results by structural query signature, and prunes merge
//    candidates with an admissible upper bound on the benefit rate before
//    exact costing.  Memos are invalidated whenever the selectivity
//    statistics advance (CostModel::StatsVersion).
//  * `Options::use_index = false` runs the original full scan of
//    `synthetics_` per insertion.  It is kept as the oracle for the
//    differential suite (tests/bs_opt_equivalence_test.cc): both paths
//    produce byte-identical Actions and decision counts.
//
// The rewriter is a pure decision component: it returns the abort/inject
// actions and lets the engine talk to the network.  The paper's per-field
// `count` bookkeeping is realized by keeping each member query in the
// synthetic query's `members` table and re-deriving the canonical network
// query; a difference against the current network query is exactly "some
// count dropped to 0".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/bs/cost_model.h"
#include "core/bs/integration.h"
#include "query/query.h"
#include "util/tracing.h"

namespace ttmqo {

/// One synthetic query: the network query plus the user queries it serves
/// (the paper's from_list) and its current benefit.
struct SyntheticQuery {
  explicit SyntheticQuery(Query q) : query(std::move(q)) {}

  /// The query actually running in the sensor network.
  Query query;

  /// Member user queries, keyed by user query id.
  std::map<QueryId, Query> members;

  /// sum(cost(member)) - cost(query); maintained by the rewriter.
  double benefit = 0.0;

  /// Optimizer bookkeeping for the indexed path: the ascending-id running
  /// sum of member costs, so absorbing a member with a higher id extends
  /// the sum with the exact floating-point op sequence a full recompute
  /// would execute (the oracle and the indexed path must agree bit-for-bit
  /// on `benefit`).  Only meaningful while `member_cost_version` matches
  /// the optimizer's statistics version and `member_cost_valid` holds.
  double member_cost_sum = 0.0;
  QueryId member_cost_last_uid = kInvalidQueryId;
  std::uint64_t member_cost_version = 0;
  bool member_cost_valid = false;
};

/// The tier-1 optimizer.
class BaseStationOptimizer {
 public:
  struct Options {
    /// Algorithm 2's aggressiveness knob; the paper finds 0.6 best.
    double alpha = 0.6;
    /// Synthetic query ids are allocated from here; user ids must be below.
    QueryId first_synthetic_id = 1u << 20;
    /// Candidate search strategy: indexed + memoized + pruned (default) or
    /// the original naive scan (the differential-test oracle).  Decisions
    /// are identical either way; only the work done to find them differs.
    bool use_index = true;
  };

  /// Network operations a call produced: abort these synthetic queries,
  /// then inject those.  Ids never overlap between the two lists.
  struct Actions {
    std::vector<QueryId> abort;
    std::vector<Query> inject;

    bool Empty() const { return abort.empty() && inject.empty(); }
  };

  /// `cost` must outlive the optimizer.
  explicit BaseStationOptimizer(const CostModel& cost)
      : BaseStationOptimizer(cost, Options()) {}
  BaseStationOptimizer(const CostModel& cost, Options options);

  /// Algorithm 1.  The query id must be unused and below
  /// `first_synthetic_id`.
  Actions InsertUserQuery(const Query& query);

  /// Batched Algorithm 1: sorts the arrivals by (epoch, structural
  /// signature, id) and inserts them in that order, sharing the candidate
  /// search across structurally identical queries — once a group's first
  /// query is placed, every later member of the group is covered by the
  /// synthetic query now serving it, so the coverage-bucket probe and merge
  /// scan are skipped (counted in `index_stats().batch_shared_probes`).
  ///
  /// Element i of the result is the (user id, Actions) pair that
  /// `InsertUserQuery` would have produced for that query at that position
  /// of the sorted order; decision counts and all optimizer state are
  /// byte-identical to the equivalent sequence of one-at-a-time inserts
  /// (tests/bs_opt_equivalence_test.cc checks this differentially).
  std::vector<std::pair<QueryId, Actions>> InsertBatch(
      const std::vector<Query>& queries);

  /// Algorithm 2.
  Actions TerminateUserQuery(QueryId user);

  /// The synthetic query currently serving `user`, or nullptr.
  const SyntheticQuery* SyntheticOf(QueryId user) const;

  /// The synthetic query with network id `id`, or nullptr.
  const SyntheticQuery* FindSynthetic(QueryId id) const;

  /// All running synthetic queries, ascending by id.
  std::vector<const SyntheticQuery*> Synthetics() const;

  /// Number of running synthetic queries.
  std::size_t NumSynthetic() const { return synthetics_.size(); }

  /// Number of running user queries.
  std::size_t NumUserQueries() const { return user_to_synthetic_.size(); }

  /// Sum of the members' standalone costs (Eq. 3) over all synthetics.
  double TotalUserCost() const;

  /// Sum of synthetic-query benefits; TotalUserCost() - cost of what
  /// actually runs.  benefit ratio = TotalBenefit() / TotalUserCost().
  double TotalBenefit() const;

  /// The benefit rate Beneficial(q_i, q_j) of Algorithm 1: 1 for coverage,
  /// benefit/cost(q_i) when rewritable (strictly below 1), else 0 means "no
  /// benefit".  Exposed for tests and benches.
  double BenefitRate(const Query& qi, const SyntheticQuery& qj) const;

  /// Running tally of the decisions Algorithms 1 and 2 took.
  struct DecisionStats {
    /// Algorithm 1 outcomes, one per inserted bundle.
    std::uint64_t covered = 0;     ///< absorbed, network unchanged
    std::uint64_t merged = 0;      ///< integrated into an existing synthetic
    std::uint64_t standalone = 0;  ///< became its own synthetic query
    /// Algorithm 2 outcomes, one per terminated user query.
    std::uint64_t retired = 0;  ///< last member left, synthetic aborted
    std::uint64_t rebuilt = 0;  ///< cost(leaving) > benefit * alpha
    std::uint64_t kept = 0;     ///< leftover tolerated (or nothing shrank)
  };

  /// Decision counts since construction.
  const DecisionStats& decision_stats() const { return decisions_; }

  /// Work accounting for the indexed search path (all zero when
  /// `use_index` is off, except `batch_shared_probes`, which counts in
  /// both modes — the sharing is structural, not index-dependent).
  struct IndexStats {
    std::uint64_t coverage_hits = 0;  ///< inserts resolved by bucket lookup
    std::uint64_t memo_hits = 0;      ///< cost + benefit-rate memo hits
    std::uint64_t pruned_candidates = 0;  ///< merge candidates bound away
    std::uint64_t exact_evaluations = 0;  ///< full Eq. 1-3 rate evaluations
    std::uint64_t index_rebuilds = 0;     ///< cost-order rebuilds (stats moved)
    std::uint64_t batch_shared_probes = 0;  ///< InsertBatch searches elided
  };

  /// Index/memo/pruning counters since construction.
  const IndexStats& index_stats() const { return istats_; }

  /// Installs a sink for structured decision events ("tier1.insert",
  /// "tier1.benefit_estimate", "tier1.terminate"); nullptr disables
  /// tracing.  The optimizer has no clock: events carry time 0 and callers
  /// stamp them (the engine wraps the sink in a time-stamping adapter).
  /// The naive path traces a benefit estimate per scanned candidate; the
  /// indexed path only traces candidates it actually evaluated (pruned
  /// candidates never get a rate).
  void SetTraceSink(TraceSink* sink) { trace_ = sink; }

 private:
  /// Winner of one Algorithm 1 candidate search; `id` is meaningless when
  /// `rate` is 0 (no beneficial candidate).
  struct Best {
    double rate = 0.0;
    QueryId id = kInvalidQueryId;
  };

  void InsertBundle(Query net_query, std::map<QueryId, Query> members,
                    Actions& actions);
  // The covered branch of InsertBundle specialized to one member whose
  // cover `sid` the caller already established (InsertBatch's shared
  // probe); precondition: Covers(synthetics_.at(sid).query, query).
  Actions InsertCovered(const Query& query, QueryId sid);
  Best FindBestNaive(const Query& net_query);
  Best FindBestIndexed(const Query& net_query);
  std::optional<QueryId> CoverageLookup(const Query& net_query) const;
  double RateOf(const Query& qi, const std::string& qi_key, QueryId sid,
                const SyntheticQuery& sq);
  double CostOf(const Query& query);
  void RecomputeBenefit(SyntheticQuery& sq);
  void SyncStatsVersion();
  void RebuildCostOrder();
  void IndexAdd(QueryId sid, const SyntheticQuery& sq);
  void IndexRemove(QueryId sid, const SyntheticQuery& sq);
  QueryId NextSyntheticId() { return next_synthetic_id_++; }
  static void Deduplicate(Actions& actions);

  const CostModel* cost_;
  Options options_;
  QueryId next_synthetic_id_;
  std::map<QueryId, SyntheticQuery> synthetics_;
  std::map<QueryId, QueryId> user_to_synthetic_;
  DecisionStats decisions_;
  IndexStats istats_;
  TraceSink* trace_ = nullptr;

  // ---- Indexed-path state (empty/idle when use_index is off). ----
  // Statistics version the memos and cost order were computed under.
  std::uint64_t stats_version_ = 0;
  // Eq. 3 cost by structural query signature.
  std::map<std::string, double> cost_memo_;
  // BenefitRate by (inserted, synthetic) structural signature pair.  Rates
  // depend only on the two query structures and the statistics, never on
  // ids, so entries survive until the statistics move.
  std::map<std::pair<std::string, std::string>, double> rate_memo_;
  // Coverage buckets: acquisition synthetics by (epoch, attribute mask);
  // aggregation synthetics by (predicate signature, epoch) — aggregation
  // coverage requires exactly equal predicates (integration.cc).
  std::map<SimDuration, std::map<std::uint32_t, std::set<QueryId>>>
      acq_buckets_;
  std::map<std::pair<std::string, SimDuration>, std::set<QueryId>>
      agg_buckets_;
  // Merge-candidate scan orders, (cost descending, id descending), so the
  // monotone upper bound lets a scan stop early.  Acquisition synthetics
  // can merge with anything and are always scanned; aggregation synthetics
  // only merge with aggregation queries of exactly equal predicates, which
  // the `agg_buckets_` signature range finds directly — `agg_order_` is
  // scanned only for inserted acquisition queries.  `indexed_cost_` holds
  // each synthetic's cost under `stats_version_` for exact removal.
  std::set<std::pair<double, QueryId>, std::greater<std::pair<double, QueryId>>>
      acq_order_;
  std::set<std::pair<double, QueryId>, std::greater<std::pair<double, QueryId>>>
      agg_order_;
  std::map<QueryId, double> indexed_cost_;
  // Structural signature per synthetic id (computed once at index time).
  std::map<QueryId, std::string> synthetic_key_;
};

}  // namespace ttmqo
