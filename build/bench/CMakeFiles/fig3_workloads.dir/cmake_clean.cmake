file(REMOVE_RECURSE
  "CMakeFiles/fig3_workloads.dir/fig3_workloads.cc.o"
  "CMakeFiles/fig3_workloads.dir/fig3_workloads.cc.o.d"
  "fig3_workloads"
  "fig3_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
