// Tier 2: the in-network optimization engine (Section 3.2).
//
// Runs a set of network queries (user queries in in-network-only mode,
// synthetic queries under the full two-tier scheme) with three cooperating
// optimizations the baseline lacks:
//
//  * Sharing over time (3.2.1): every node's clock fires at the common
//    epoch grid (epoch starts are divisible by the epoch duration), so all
//    queries triggered at a tick share one sample acquisition.
//  * Sharing over space (3.2.2): one source row message answers every
//    acquisition query the reading satisfies; one partial-aggregate message
//    carries all aggregation queries of a tick, identical partial vectors
//    packed once.
//  * Query-aware DAG routing (3.2.2): instead of the fixed link-quality
//    tree, each message dynamically picks parents among the sender's
//    upper-level neighbors, preferring neighbors known (via propagation
//    piggyback and overheard result traffic) to have data for the same
//    queries — enabling earlier aggregation and shared forwarding.  When
//    different queries are best served by different parents, a single
//    multicast transmission carries the per-destination split.
//
// Nodes with nothing to send or relay drop into sleep mode between ticks.
// Sleeping nodes still receive addressed traffic (modelling low-power
// listening: the sender's preamble wakes them) but do not overhear.
#pragma once

#include <limits>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/innet/payloads.h"
#include "net/network.h"
#include "query/engine.h"
#include "routing/routing_tree.h"
#include "routing/semantic_tree.h"
#include "sensing/field_model.h"
#include "tinydb/payloads.h"

namespace ttmqo {

/// Tuning and ablation knobs of the in-network tier.
struct InNetOptions {
  /// Slot width for depth-staggered aggregate transmissions.
  SimDuration agg_slot_ms = 128;
  /// Maximum per-node jitter for source transmissions (deterministic).
  SimDuration source_jitter_ms = 64;
  /// Ablation: query-aware DAG parent selection; when false, messages
  /// follow the fixed routing-tree parent (but packing still applies).
  bool query_aware_routing = true;
  /// Ablation: multi-query packing of rows/partials; when false, one
  /// message per query (but DAG routing still applies).
  bool shared_messages = true;
  /// Idle nodes sleep between ticks.
  bool enable_sleep = true;
  /// Wake this many ms before the next scheduled tick.
  SimDuration sleep_guard_ms = 8;
  /// An overheard "neighbor has data for q" fact stays fresh for this many
  /// epochs of q.
  int has_data_ttl_epochs = 2;
  /// Semantic Routing Tree pruning for node-id-based queries (as in the
  /// baseline; Section 3.2.2).
  bool use_semantic_routing = true;
  /// Liveness-driven failover: a parent candidate silent (nothing heard on
  /// the broadcast channel) for longer than this is blacklisted and routed
  /// around.  0 disables liveness tracking entirely (the default: only
  /// known-failed nodes are avoided).  Pick a timeout larger than the
  /// maintenance-beacon period to avoid false positives.
  SimDuration liveness_timeout_ms = 0;
  /// First blacklist duration; doubled on every repeated offence.
  SimDuration blacklist_base_backoff_ms = 4096;
  /// Upper bound of the blacklist backoff (bounded re-selection: a
  /// recovered parent is re-tried within this horizon at the latest).
  SimDuration blacklist_max_backoff_ms = 32768;
  /// Re-flood each query this many times after submission so nodes that
  /// were unreachable during the initial dissemination still learn it.
  /// 0 disables retries (the default keeps message counts unchanged).
  int dissemination_retries = 0;
  /// Spacing between dissemination re-floods.
  SimDuration dissemination_retry_interval_ms = 8192;
  /// Suppress duplicate (query, epoch, source) rows at relays and the base
  /// station.
  bool duplicate_suppression = true;
};

/// The tier-2 engine.  API mirrors `TinyDbEngine`.
class InNetworkEngine final : public QueryEngine {
 public:
  InNetworkEngine(Network& network, const FieldModel& field, ResultSink* sink,
                  InNetOptions options = {});

  void SubmitQuery(const Query& query) override;
  void TerminateQuery(QueryId id) override;
  std::string_view name() const override { return "ttmqo-innet"; }

  /// Emits "tier2.submit" / "tier2.terminate" / "tier2.epoch_close" events
  /// (stamped with simulation time) to `sink`; nullptr disables tracing.
  void SetTraceSink(TraceSink* sink) override { trace_ = sink; }

  /// Level structure of the DAG.
  const LevelGraph& level_graph() const { return levels_; }

  /// Fallback fixed tree (used when query-aware routing is disabled and as
  /// the last-resort parent).
  const RoutingTree& routing_tree() const { return tree_; }

  /// Duplicate (query, epoch, source) rows dropped at relays and the base
  /// station (only counted while `duplicate_suppression` is on).
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

 private:
  /// Liveness suspicion of one parent candidate.
  struct Suspicion {
    SimTime blacklisted_until = 0;
    SimDuration backoff = 0;
  };

  struct NodeState {
    std::map<QueryId, Query> active;
    /// Highest dissemination round seen per query (absent = never seen).
    std::map<QueryId, int> prop_round;
    std::set<QueryId> seen_abort;
    /// Queries whose propagation this node forwarded (abort floods follow
    /// the same prune).
    std::set<QueryId> relayed_propagation;
    /// neighbor -> (query -> tick the neighbor was last known to have data).
    std::map<NodeId, std::map<QueryId, SimTime>> has_data;
    /// Per tick: partial state per query, merged until the slot fires.
    std::map<SimTime, std::map<QueryId, std::vector<PartialAggregate>>>
        agg_buffer;
    /// Per tick: own + relayed rows packed at the slot.
    std::map<SimTime, std::vector<RowEntry>> row_buffer;
    std::set<SimTime> slot_scheduled;
    std::set<SimTime> slot_done;
    /// Guard for the single pending tick event (-1 = none).
    SimTime tick_scheduled_for = -1;
    /// Last time this node forwarded someone else's traffic.
    SimTime last_relay = std::numeric_limits<SimTime>::min();
    /// Whether the node produced data at its last tick.
    bool matched_last_tick = false;
    /// Liveness: last time anything was heard from each neighbor (only
    /// maintained when `liveness_timeout_ms > 0`).
    std::map<NodeId, SimTime> last_heard;
    /// Currently / previously blacklisted parent candidates.
    std::map<NodeId, Suspicion> suspicion;
    /// (query, epoch, source) row keys already relayed (duplicate
    /// suppression); pruned with the per-tick horizon.
    std::set<std::tuple<QueryId, SimTime, NodeId>> seen_rows;
  };

  struct BsQueryState {
    explicit BsQueryState(Query q) : query(std::move(q)) {}
    Query query;
    bool terminated = false;
    /// Rows per epoch keyed by source node — at most one row per source
    /// (duplicate deliveries are dropped on arrival).
    std::map<SimTime, std::map<NodeId, Reading>> rows;
    std::map<SimTime, std::vector<PartialAggregate>> partials;
  };

  // --- node-side -------------------------------------------------------
  void HandleMessage(NodeId self, const Message& msg, bool addressed);
  /// SRT gates (mirror the baseline's).
  bool ShouldInstall(NodeId self, const Query& query) const;
  bool ShouldForwardPropagation(NodeId self, const Query& query) const;
  void InstallQuery(NodeId self, const Query& query);
  void RemoveQuery(NodeId self, QueryId id);
  void ScheduleTick(NodeId self);
  void OnTick(NodeId self, SimTime t);
  void OnSlot(NodeId self, SimTime t);
  /// Groups `entries` by their next-hop choice and transmits one packed
  /// message per group.
  void SendRows(NodeId self, SimTime t, std::vector<RowEntry> entries);
  void SendAgg(NodeId self, SimTime t,
               std::map<QueryId, std::vector<PartialAggregate>> partials);
  std::map<NodeId, std::vector<QueryId>> ChooseParents(
      NodeId self, std::vector<QueryId> queries);
  void NoteHasData(NodeId self, NodeId sender,
                   const std::vector<QueryId>& queries, SimTime when);
  /// Liveness tracking: records that `self` heard from `sender` now and
  /// clears any suspicion of it.
  void NoteAlive(NodeId self, NodeId sender);
  /// True when `self` should avoid routing through `candidate` because it
  /// has been silent past the liveness timeout.  Blacklists with bounded
  /// exponential backoff; the candidate is optimistically re-tried when the
  /// blacklist expires.
  bool SuspectParent(NodeId self, NodeId candidate);
  void MaybeSleep(NodeId self, SimTime t);
  SimDuration SourceJitter(NodeId node) const;
  SimDuration SlotOffset(NodeId node) const;

  // --- base-station-side -----------------------------------------------
  void BsAccept(const Message& msg);
  void ScheduleEpochClose(QueryId id, SimTime epoch_time);
  void CloseEpoch(QueryId id, SimTime epoch_time);

  /// Builds a time-stamped event when tracing is on (trace_ != nullptr).
  void EmitTrace(TraceEvent event);

  Network& network_;
  const FieldModel& field_;
  ResultSink* sink_;
  TraceSink* trace_ = nullptr;
  InNetOptions options_;
  RoutingTree tree_;
  SemanticRoutingTree srt_;
  LevelGraph levels_;
  std::vector<NodeState> nodes_;
  std::map<QueryId, BsQueryState> bs_queries_;
  std::uint64_t duplicates_suppressed_ = 0;
};

}  // namespace ttmqo
