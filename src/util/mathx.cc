#include "util/mathx.h"

namespace ttmqo {

SimDuration GcdAll(std::span<const SimDuration> values) {
  CheckArg(!values.empty(), "GcdAll: range must be non-empty");
  SimDuration g = 0;
  for (SimDuration v : values) {
    CheckArg(v > 0, "GcdAll: durations must be positive");
    g = std::gcd(g, v);
  }
  return g;
}

}  // namespace ttmqo
