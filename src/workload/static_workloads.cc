#include "workload/static_workloads.h"

#include "query/parser.h"
#include "util/check.h"

namespace ttmqo {
namespace {

std::vector<Query> Parse(const std::vector<std::string>& sql) {
  std::vector<Query> queries;
  queries.reserve(sql.size());
  for (std::size_t i = 0; i < sql.size(); ++i) {
    queries.push_back(ParseQuery(static_cast<QueryId>(i + 1), sql[i]));
  }
  return queries;
}

}  // namespace

std::vector<Query> WorkloadA() {
  // Overlapping acquisition queries on compatible epochs plus aggregation
  // queries with identical predicates: both tiers can eliminate most of the
  // redundancy.
  return Parse({
      "SELECT light FROM sensors WHERE light BETWEEN 200 AND 700 "
      "EPOCH DURATION 4096",
      "SELECT light FROM sensors WHERE light BETWEEN 300 AND 800 "
      "EPOCH DURATION 4096",
      "SELECT light, temp FROM sensors WHERE light BETWEEN 250 AND 750 "
      "EPOCH DURATION 8192",
      "SELECT light FROM sensors EPOCH DURATION 8192",
      "SELECT MAX(light) FROM sensors WHERE temp BETWEEN 20 AND 80 "
      "EPOCH DURATION 4096",
      "SELECT MIN(light) FROM sensors WHERE temp BETWEEN 20 AND 80 "
      "EPOCH DURATION 4096",
      "SELECT MAX(light) FROM sensors WHERE temp BETWEEN 20 AND 80 "
      "EPOCH DURATION 8192",
      "SELECT temp FROM sensors WHERE temp BETWEEN 30 AND 60 "
      "EPOCH DURATION 4096",
  });
}

std::vector<Query> WorkloadB() {
  // Aggregation queries with pairwise different predicates (tier 1 cannot
  // rewrite them, Section 3.1.2) and acquisition pairs whose epoch
  // durations (4096 vs 6144) make the GCD merge unbeneficial.  The
  // acquisition predicates constrain a different attribute than the
  // aggregation predicates, so merging an aggregation query into an
  // acquisition query would drop the predicates entirely — never
  // beneficial.  Only tier 2 shares this workload: coinciding epoch ticks,
  // query-aware routes, and packed partial aggregates.
  return Parse({
      "SELECT MAX(light) FROM sensors WHERE light BETWEEN 0 AND 500 "
      "EPOCH DURATION 4096",
      "SELECT MAX(light) FROM sensors WHERE light BETWEEN 400 AND 900 "
      "EPOCH DURATION 4096",
      "SELECT MIN(temp) FROM sensors WHERE temp BETWEEN 10 AND 60 "
      "EPOCH DURATION 6144",
      "SELECT MAX(temp) FROM sensors WHERE temp BETWEEN 40 AND 90 "
      "EPOCH DURATION 6144",
      "SELECT MIN(light) FROM sensors WHERE light BETWEEN 200 AND 600 "
      "EPOCH DURATION 8192",
      "SELECT MAX(light) FROM sensors WHERE light BETWEEN 500 AND 1000 "
      "EPOCH DURATION 8192",
      "SELECT light FROM sensors WHERE temp BETWEEN 10 AND 70 "
      "EPOCH DURATION 4096",
      "SELECT light FROM sensors WHERE temp BETWEEN 20 AND 80 "
      "EPOCH DURATION 6144",
  });
}

std::vector<Query> WorkloadC() {
  // A mix: a broad acquisition query covers several aggregation queries
  // (tier 1 suppresses them from the network entirely), while epoch-
  // incompatible queries are left for tier 2 to share.
  return Parse({
      "SELECT light, temp FROM sensors EPOCH DURATION 4096",
      "SELECT MAX(light) FROM sensors WHERE light BETWEEN 300 AND 800 "
      "EPOCH DURATION 8192",
      "SELECT MIN(temp) FROM sensors WHERE temp BETWEEN 20 AND 70 "
      "EPOCH DURATION 4096",
      "SELECT light FROM sensors WHERE light BETWEEN 100 AND 600 "
      "EPOCH DURATION 6144",
      "SELECT temp FROM sensors WHERE temp BETWEEN 10 AND 50 "
      "EPOCH DURATION 10240",
      "SELECT MAX(temp) FROM sensors WHERE temp BETWEEN 0 AND 40 "
      "EPOCH DURATION 6144",
      "SELECT light FROM sensors WHERE light BETWEEN 350 AND 750 "
      "EPOCH DURATION 4096",
      "SELECT MIN(light) FROM sensors WHERE light BETWEEN 300 AND 800 "
      "EPOCH DURATION 8192",
  });
}

std::vector<Query> WorkloadByName(std::string_view name) {
  if (name == "A" || name == "a") return WorkloadA();
  if (name == "B" || name == "b") return WorkloadB();
  if (name == "C" || name == "c") return WorkloadC();
  CheckArg(false, "unknown workload name (expected A, B or C)");
  return {};
}

}  // namespace ttmqo
