// The interface all query-processing engines implement.
//
// An engine owns the in-network execution of a set of continuous queries
// and delivers per-epoch answers to a `ResultSink` at the base station.
// Implementations: the TinyDB baseline (`TinyDbEngine`), and the TTMQO
// engine in its three configurations (base-station tier only, in-network
// tier only, both).
#pragma once

#include "query/query.h"
#include "query/result.h"
#include "util/tracing.h"

namespace ttmqo {

/// A running query processor for one sensor network.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Registers a user query at the current simulation time.  The query's id
  /// must be unique among queries ever submitted to this engine.
  virtual void SubmitQuery(const Query& query) = 0;

  /// Terminates a previously submitted user query.
  virtual void TerminateQuery(QueryId id) = 0;

  /// Human-readable engine name for reports.
  virtual std::string_view name() const = 0;

  /// Installs a sink for the engine's structured decision events (nullptr
  /// disables tracing).  Engines without decision points may ignore it.
  virtual void SetTraceSink(TraceSink* /*sink*/) {}
};

/// Serialized size of a query descriptor inside a propagation message:
/// id, kind, epoch, projected attributes or aggregates, and predicates.
std::size_t PropagationPayloadBytes(const Query& query);

}  // namespace ttmqo
