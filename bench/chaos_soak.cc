// Chaos soak harness (robustness extension; the paper defers failures to
// future work, Section 5).  Draws a seed-deterministic random fault plan —
// transient outages on up to --down-frac of the sensors plus optional
// uniform link loss — and runs the TinyDB baseline and the full two-tier
// scheme (liveness failover + dissemination retries enabled) under the
// *same* plan, checking reliability invariants on every run:
//
//   1. no duplicate rows: the base station never reports one node twice in
//      one (query, epoch) answer;
//   2. accounting conservation: per-class message counts sum to the total
//      and every scheduled outage both begins and recovers;
//   3. completeness floor: the hardened two-tier scheme delivers at least
//      --floor of the oracle-expected rows despite the chaos;
//   4. no spurious link drops when no loss was injected.
//
// Exits non-zero on the first violated invariant, so the soak can gate CI.
//
// Usage: chaos_soak [--side=6] [--seed=7] [--runs=3] [--epochs=24]
//                   [--outages=6] [--down-frac=0.2] [--link-loss=0.0]
//                   [--floor=0.5] [--postmortem-dir=DIR]
//
// With --postmortem-dir the flight recorder is armed; every violated
// invariant (and any fatal signal) dumps the last simulator events, fault
// transitions, and engine decisions to a postmortem JSON in DIR — the
// artifact CI attaches when the soak gate fails.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "metrics/table.h"
#include "metrics/trace.h"
#include "obs/flight_recorder.h"
#include "obs/session.h"
#include "query/parser.h"
#include "util/flags.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;

/// Rows reported twice for one node in one (query, epoch) answer.
std::size_t DuplicateRows(const ResultLog& log) {
  std::size_t duplicates = 0;
  for (const EpochResult* r : log.All()) {
    std::map<NodeId, int> seen;
    for (const Reading& row : r->rows) {
      if (++seen[row.node()] > 1) ++duplicates;
    }
  }
  return duplicates;
}

struct SoakOutcome {
  RunResult run;
  CountingObserver counts;
};

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 6));
  const auto first_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const auto runs = static_cast<std::uint64_t>(flags.GetInt("runs", 3));
  const auto epochs = flags.GetInt("epochs", 24);
  RandomFaultParams params;
  params.max_outages = static_cast<std::size_t>(flags.GetInt("outages", 6));
  params.max_down_fraction = flags.GetDouble("down-frac", 0.2);
  params.link_loss = flags.GetDouble("link-loss", 0.0);
  const double floor = flags.GetDouble("floor", 0.5);
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  const SimDuration duration = epochs * kEpoch;
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096"),
       ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192")});

  std::printf("Chaos soak: %zux%zu grid, %lld ms, <=%zu outages "
              "(<=%.0f%% of sensors), link loss %.2f, %llu seed(s)\n\n",
              side, side, static_cast<long long>(duration),
              params.max_outages, params.max_down_fraction * 100,
              params.link_loss, static_cast<unsigned long long>(runs));

  TablePrinter table({"seed", "outages", "mode", "completeness %",
                      "dup rows", "link drops", "messages"});
  int violations = 0;
  const auto violate = [&violations](const char* what, std::uint64_t seed) {
    std::fprintf(stderr, "INVARIANT VIOLATED (seed %llu): %s\n",
                 static_cast<unsigned long long>(seed), what);
    // With --postmortem-dir set, preserve the events leading up to the
    // violation (the simulator is torn down before we get here, so the
    // thread ring still holds this run's tail).
    const std::string dump = obs::DumpPostmortem(what);
    if (!dump.empty()) {
      std::fprintf(stderr, "postmortem written to %s\n", dump.c_str());
    }
    ++violations;
  };

  for (std::uint64_t seed = first_seed; seed < first_seed + runs; ++seed) {
    const FaultPlan plan =
        FaultPlan::RandomTransient(params, side * side, duration, seed);

    std::map<OptimizationMode, SoakOutcome> outcomes;
    for (OptimizationMode mode :
         {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
      SoakOutcome& outcome = outcomes[mode];
      RunConfig config;
      config.grid_side = side;
      config.mode = mode;
      config.duration_ms = duration;
      config.seed = seed;
      config.faults = plan;
      if (mode == OptimizationMode::kTwoTier) {
        // The hardening under test: overheard-traffic liveness with parent
        // blacklisting, and retried dissemination for nodes that were down
        // when a query first flooded.
        config.innet.liveness_timeout_ms = 2 * kEpoch;
        config.innet.dissemination_retries = 2;
      }
      config.obs.observers.push_back(&outcome.counts);
      outcome.run = RunExperiment(config, schedule);

      const RunResult& run = outcome.run;
      const CountingObserver& counts = outcome.counts;
      const std::size_t duplicates = DuplicateRows(run.results);
      if (duplicates > 0) violate("duplicate rows at the base station", seed);
      const std::uint64_t by_class =
          run.summary.result_messages + run.summary.propagation_messages +
          run.summary.abort_messages + run.summary.maintenance_messages;
      if (by_class != run.summary.total_messages) {
        violate("per-class message counts do not sum to the total", seed);
      }
      if (counts.downs != plan.outages().size()) {
        violate("an outage never began", seed);
      }
      if (counts.recoveries != counts.downs) {
        violate("an outage never recovered", seed);
      }
      if (params.link_loss == 0.0 && counts.link_drops != 0) {
        violate("link drops without injected loss", seed);
      }
      if (mode == OptimizationMode::kTwoTier &&
          run.summary.MinDeliveryCompleteness() < floor) {
        violate("two-tier completeness below the floor", seed);
      }

      table.AddRow({std::to_string(seed),
                    std::to_string(plan.outages().size()),
                    std::string(OptimizationModeName(mode)),
                    TablePrinter::Num(
                        run.summary.AvgDeliveryCompleteness() * 100, 1),
                    std::to_string(duplicates),
                    std::to_string(counts.link_drops),
                    std::to_string(run.summary.total_messages)});
    }
  }
  table.Print(std::cout);
  if (violations > 0) {
    std::fprintf(stderr, "\n%d invariant violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall invariants held across %llu seed(s)\n",
              static_cast<unsigned long long>(runs));
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
