#include "util/check.h"

#include <atomic>

namespace ttmqo {
namespace {
std::atomic<CheckFailureHook> g_hook{nullptr};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_hook.exchange(hook, std::memory_order_acq_rel);
}

namespace check_internal {

void NotifyCheckFailure(const char* message) {
  CheckFailureHook hook = g_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(message);
}

}  // namespace check_internal
}  // namespace ttmqo
