file(REMOVE_RECURSE
  "CMakeFiles/bs_optimizer_test.dir/bs_optimizer_test.cc.o"
  "CMakeFiles/bs_optimizer_test.dir/bs_optimizer_test.cc.o.d"
  "bs_optimizer_test"
  "bs_optimizer_test.pdb"
  "bs_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
