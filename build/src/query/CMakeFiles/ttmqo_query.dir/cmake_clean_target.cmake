file(REMOVE_RECURSE
  "libttmqo_query.a"
)
