#include "core/bs/rewriter.h"

#include <algorithm>

#include "obs/span.h"
#include "util/check.h"

namespace ttmqo {
namespace {

// Structural equality of two network queries, ignoring the id.
bool SameRequest(const Query& a, const Query& b) {
  return a.kind() == b.kind() && a.epoch() == b.epoch() &&
         a.attributes() == b.attributes() && a.aggregates() == b.aggregates() &&
         a.predicates() == b.predicates();
}

}  // namespace

BaseStationOptimizer::BaseStationOptimizer(const CostModel& cost,
                                           Options options)
    : cost_(&cost),
      options_(options),
      next_synthetic_id_(options.first_synthetic_id) {
  CheckArg(options.alpha >= 0.0, "BaseStationOptimizer: alpha must be >= 0");
}

double BaseStationOptimizer::BenefitRate(const Query& qi,
                                         const SyntheticQuery& qj) const {
  if (Covers(qj.query, qi)) return 1.0;
  if (!IsRewritable(qj.query, qi)) return 0.0;
  const Query members[] = {qj.query, qi};
  const Query integrated = BuildNetworkQuery(qj.query.id(), members);
  const double cost_qi = cost_->Cost(qi);
  if (cost_qi <= 0.0) return 0.0;
  const double rate =
      cost_->Benefit(qi, qj.query, integrated) / cost_qi;
  // Exactly 1.0 is reserved for structural coverage; a non-covering merge
  // always changes the network query, so keep it strictly below.
  return std::min(rate, 1.0 - 1e-9);
}

void BaseStationOptimizer::InsertBundle(const Query& net_query,
                                        std::map<QueryId, Query> members,
                                        Actions& actions) {
  // Algorithm 1, lines 4-10: find the most beneficial synthetic query.
  double best_rate = 0.0;
  QueryId best_id = kInvalidQueryId;
  for (const auto& [id, sq] : synthetics_) {
    const double rate = BenefitRate(net_query, sq);
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.benefit_estimate")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("candidate", static_cast<std::int64_t>(id))
                       .With("rate", rate));
    }
    if (rate > best_rate) {
      best_rate = rate;
      best_id = id;
      if (rate >= 1.0) break;  // covered; cannot do better
    }
  }

  if (best_rate >= 1.0) {
    // Lines 11-12: covered — absorb the members, network unchanged.
    ++decisions_.covered;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.insert")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("action", std::string("covered"))
                       .With("synthetic", static_cast<std::int64_t>(best_id))
                       .With("rate", best_rate));
    }
    SyntheticQuery& sq = synthetics_.at(best_id);
    for (auto& [uid, uq] : members) {
      user_to_synthetic_[uid] = best_id;
      sq.members.emplace(uid, std::move(uq));
    }
    RecomputeBenefit(sq);
    return;
  }

  if (best_rate > 0.0) {
    ++decisions_.merged;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.insert")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("action", std::string("merged"))
                       .With("synthetic", static_cast<std::int64_t>(best_id))
                       .With("rate", best_rate)
                       .With("members",
                             static_cast<std::int64_t>(members.size())));
    }
    // Lines 13-14: integrate with the best synthetic query, then re-insert
    // the merged bundle to exploit chained rewrites.
    auto node = synthetics_.extract(best_id);
    SyntheticQuery& sq = node.mapped();
    actions.abort.push_back(best_id);
    for (auto& [uid, uq] : sq.members) {
      members.emplace(uid, std::move(uq));
    }
    std::vector<Query> member_queries;
    member_queries.reserve(members.size());
    for (const auto& [uid, uq] : members) member_queries.push_back(uq);
    const Query merged =
        BuildNetworkQuery(NextSyntheticId(), member_queries);
    InsertBundle(merged, std::move(members), actions);
    return;
  }

  // Lines 15-16 (and 1-2): no beneficial rewrite — run the bundle as its
  // own synthetic query.
  const QueryId sid =
      net_query.id() >= options_.first_synthetic_id
          ? net_query.id()
          : NextSyntheticId();
  ++decisions_.standalone;
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("tier1.insert")
                     .With("query", static_cast<std::int64_t>(net_query.id()))
                     .With("action", std::string("standalone"))
                     .With("synthetic", static_cast<std::int64_t>(sid))
                     .With("members",
                           static_cast<std::int64_t>(members.size())));
  }
  SyntheticQuery sq(net_query.WithId(sid));
  for (auto& [uid, uq] : members) {
    user_to_synthetic_[uid] = sid;
    sq.members.emplace(uid, std::move(uq));
  }
  RecomputeBenefit(sq);
  actions.inject.push_back(sq.query);
  synthetics_.emplace(sid, std::move(sq));
}

BaseStationOptimizer::Actions BaseStationOptimizer::InsertUserQuery(
    const Query& query) {
  TTMQO_SPAN("tier1.insert");
  CheckArg(query.id() < options_.first_synthetic_id,
           "InsertUserQuery: user id collides with the synthetic id space");
  CheckArg(!user_to_synthetic_.contains(query.id()),
           "InsertUserQuery: duplicate user query id");
  Actions actions;
  std::map<QueryId, Query> members;
  members.emplace(query.id(), query);
  InsertBundle(query, std::move(members), actions);
  Deduplicate(actions);
  return actions;
}

BaseStationOptimizer::Actions BaseStationOptimizer::TerminateUserQuery(
    QueryId user) {
  TTMQO_SPAN("tier1.terminate");
  const auto user_it = user_to_synthetic_.find(user);
  CheckArg(user_it != user_to_synthetic_.end(),
           "TerminateUserQuery: unknown user query");
  const QueryId sid = user_it->second;
  SyntheticQuery& sq = synthetics_.at(sid);

  Actions actions;
  const Query leaving = sq.members.at(user);
  user_to_synthetic_.erase(user_it);
  sq.members.erase(user);

  if (sq.members.empty()) {
    // Last member gone: retire the synthetic query.
    ++decisions_.retired;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.terminate")
                       .With("query", static_cast<std::int64_t>(user))
                       .With("action", std::string("retire"))
                       .With("synthetic", static_cast<std::int64_t>(sid)));
    }
    actions.abort.push_back(sid);
    synthetics_.erase(sid);
    Deduplicate(actions);
    return actions;
  }

  // "Some count decreased to 0" <=> the canonical query of the remaining
  // members no longer requests everything the running one does.
  std::vector<Query> remaining;
  remaining.reserve(sq.members.size());
  for (const auto& [uid, uq] : sq.members) remaining.push_back(uq);
  const Query rebuilt = BuildNetworkQuery(sq.query.id(), remaining);
  const bool requirements_shrank = !SameRequest(rebuilt, sq.query);

  // Algorithm 2, line 5: rebuild only when the leaving query's cost
  // outweighs the synthetic query's benefit, scaled by alpha.
  const double leaving_cost = cost_->Cost(leaving);
  const bool rebuild =
      requirements_shrank && leaving_cost > sq.benefit * options_.alpha;
  if (rebuild) {
    ++decisions_.rebuilt;
  } else {
    ++decisions_.kept;
  }
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("tier1.terminate")
                     .With("query", static_cast<std::int64_t>(user))
                     .With("action",
                           std::string(rebuild ? "rebuild" : "keep"))
                     .With("synthetic", static_cast<std::int64_t>(sid))
                     .With("leaving_cost", leaving_cost)
                     .With("benefit", sq.benefit)
                     .With("alpha", options_.alpha)
                     .With("shrank", requirements_shrank));
  }
  if (rebuild) {
    actions.abort.push_back(sid);
    auto node = synthetics_.extract(sid);
    for (auto& [uid, uq] : node.mapped().members) {
      user_to_synthetic_.erase(uid);
      std::map<QueryId, Query> members;
      members.emplace(uid, uq);
      InsertBundle(uq, std::move(members), actions);
    }
    Deduplicate(actions);
    return actions;
  }

  // Keep the (possibly over-wide) synthetic query; just update its benefit.
  RecomputeBenefit(sq);
  return actions;
}

void BaseStationOptimizer::RecomputeBenefit(SyntheticQuery& sq) const {
  double member_cost = 0.0;
  for (const auto& [uid, uq] : sq.members) member_cost += cost_->Cost(uq);
  sq.benefit = member_cost - cost_->Cost(sq.query);
}

const SyntheticQuery* BaseStationOptimizer::SyntheticOf(QueryId user) const {
  const auto it = user_to_synthetic_.find(user);
  if (it == user_to_synthetic_.end()) return nullptr;
  return &synthetics_.at(it->second);
}

const SyntheticQuery* BaseStationOptimizer::FindSynthetic(QueryId id) const {
  const auto it = synthetics_.find(id);
  return it == synthetics_.end() ? nullptr : &it->second;
}

std::vector<const SyntheticQuery*> BaseStationOptimizer::Synthetics() const {
  std::vector<const SyntheticQuery*> out;
  out.reserve(synthetics_.size());
  for (const auto& [id, sq] : synthetics_) out.push_back(&sq);
  return out;
}

double BaseStationOptimizer::TotalUserCost() const {
  double total = 0.0;
  for (const auto& [id, sq] : synthetics_) {
    for (const auto& [uid, uq] : sq.members) total += cost_->Cost(uq);
  }
  return total;
}

double BaseStationOptimizer::TotalBenefit() const {
  double total = 0.0;
  for (const auto& [id, sq] : synthetics_) {
    double member_cost = 0.0;
    for (const auto& [uid, uq] : sq.members) member_cost += cost_->Cost(uq);
    total += member_cost - cost_->Cost(sq.query);
  }
  return total;
}

void BaseStationOptimizer::Deduplicate(Actions& actions) {
  // A synthetic query injected and aborted within the same call never
  // reaches the network; cancel the pair.
  for (auto it = actions.inject.begin(); it != actions.inject.end();) {
    const auto abort_it = std::find(actions.abort.begin(),
                                    actions.abort.end(), it->id());
    if (abort_it != actions.abort.end()) {
      actions.abort.erase(abort_it);
      it = actions.inject.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ttmqo
