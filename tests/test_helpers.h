// Shared fixtures for engine-level tests.
#pragma once

#include <memory>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "query/query.h"
#include "query/result.h"
#include "sensing/field_model.h"

namespace ttmqo::testing {

/// Computes the ground-truth answer of `query` at epoch `t` directly from
/// the field model, bypassing the network entirely.  This is an independent
/// oracle: every engine must reproduce it on a lossless channel.
inline EpochResult OracleResult(const Query& query, SimTime t,
                                const FieldModel& field,
                                const Topology& topology) {
  EpochResult expected;
  expected.query = query.id();
  expected.epoch_time = t;
  expected.kind = query.kind();
  std::vector<PartialAggregate> partials;
  for (const AggregateSpec& spec : query.aggregates()) {
    partials.emplace_back(spec);
  }
  for (NodeId node = 1; node < topology.size(); ++node) {
    const Reading sample = field.SampleReading(
        node, topology.PositionOf(node), query.AcquiredAttributes(), t);
    if (!query.predicates().Matches(sample)) continue;
    if (query.kind() == QueryKind::kAcquisition) {
      Reading row(node, t);
      for (Attribute attr : query.attributes()) {
        row.Set(attr, sample.GetOrThrow(attr));
      }
      expected.rows.push_back(std::move(row));
    } else {
      for (PartialAggregate& p : partials) {
        p.Accumulate(sample.GetOrThrow(p.spec().attribute));
      }
    }
  }
  for (const PartialAggregate& p : partials) {
    expected.aggregates.emplace_back(p.spec(), p.Finalize());
  }
  return expected;
}

/// Fills a `ResultLog` with oracle results for `query` at every epoch in
/// (0, until].
inline void FillOracle(ResultLog& log, const Query& query, SimTime until,
                       const FieldModel& field, const Topology& topology) {
  for (SimTime t = query.epoch(); t + query.epoch() <= until;
       t += query.epoch()) {
    log.OnResult(OracleResult(query, t, field, topology));
  }
}

}  // namespace ttmqo::testing
