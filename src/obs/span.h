// Always-on profiling spans.
//
// A span measures the wall time of a scope and records it into a
// thread-local, fixed-capacity ring buffer — no allocation, no locking, and
// a few nanoseconds per span, so instrumentation can stay in the hot paths
// permanently.  Spans nest (RAII), carry a depth so exports can rebuild the
// call structure, and optionally sample thread CPU time for coarse "phase"
// spans (parse, optimize, event loop, summarize).
//
// Usage:
//
//   void Simulator::Step() {
//     TTMQO_SPAN_SAMPLED("sim.event", 8);   // times 1 of every 256 events
//     ...
//   }
//   RunResult RunExperiment(...) {
//     TTMQO_PHASE_SPAN("phase.event_loop"); // wall + thread-CPU time
//     ...
//   }
//
// Three layers of control:
//   - `TTMQO_DISABLE_SPANS` (compile time): every macro expands to nothing;
//     the instrumentation has exactly zero cost.
//   - `SetSpansEnabled(false)` (runtime): spans collapse to one relaxed
//     atomic load and a branch.  Spans are enabled by default ("always on").
//   - `TTMQO_SPAN_SAMPLED(name, shift)`: times only 1 of every 2^shift
//     executions of the call site (a per-site thread-local tick counter);
//     skipped executions cost an increment and a mask test.  Aggregated
//     counts are scaled back up by the sampling rate.
//
// Per-thread state lives in a `ThreadSpanBuffer` registered with a global
// registry on first use; buffers of exited threads are parked on a free
// list and recycled by later threads (their records are archived first, so
// a sweep worker's spans survive the worker).  `CollectSpans` snapshots
// everything for export — see chrome_trace.h for the Perfetto-loadable
// rendering.  Snapshot reads of *live* foreign threads are racy by design
// (profiling data, torn records are tolerable); snapshot after joining
// workers for exact results.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ttmqo::obs {

/// Monotonic wall clock, nanoseconds since an arbitrary process-local epoch.
std::uint64_t NowNs();

/// CPU time consumed by the calling thread, in nanoseconds.
std::uint64_t ThreadCpuNs();

namespace span_internal {
extern std::atomic<bool> g_enabled;
}  // namespace span_internal

/// True when spans record (the default).  One relaxed load.
inline bool SpansEnabled() {
  return span_internal::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime kill switch; affects every thread.
void SetSpansEnabled(bool enabled);

/// One completed span, as stored in the per-thread ring.
struct SpanRecord {
  const char* name = nullptr;   ///< static string literal from the macro
  std::uint64_t start_ns = 0;   ///< NowNs() at entry
  std::uint64_t dur_ns = 0;     ///< wall duration
  std::uint64_t cpu_ns = 0;     ///< thread-CPU duration (phase spans; else 0)
  std::uint32_t depth = 0;      ///< nesting depth at entry (0 = top level)
  std::uint8_t sample_shift = 0;  ///< this record stands for 2^shift hits
  bool has_cpu = false;         ///< whether cpu_ns was measured
};

/// Aggregated statistics of one span name.
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;      ///< estimated executions (sampled are scaled)
  std::uint64_t records = 0;    ///< actually timed executions
  std::uint64_t total_ns = 0;   ///< wall time over the timed executions
  std::uint64_t total_cpu_ns = 0;  ///< CPU time over records that carried it
  /// Wall time scaled up by the sampling rate — the estimate of the true
  /// total when the site is sampled (equal to total_ns at shift 0).
  std::uint64_t estimated_total_ns = 0;
};

/// Everything one thread recorded.
struct ThreadSpans {
  std::uint32_t tid = 0;        ///< registration index, stable per buffer use
  bool live = false;            ///< thread still running at snapshot time
  std::uint64_t dropped = 0;    ///< records overwritten by ring wrap-around
  std::vector<SpanRecord> records;  ///< oldest first
};

/// A point-in-time copy of every thread's spans plus merged per-name stats.
struct SpanSnapshot {
  std::vector<ThreadSpans> threads;
  std::vector<SpanStat> totals;  ///< merged by name, descending total_ns
};

/// Copies all span state (live threads, parked buffers, archived records of
/// recycled buffers).  Thread-safe; see the racy-read caveat above.
SpanSnapshot CollectSpans();

/// Discards all recorded spans and archived records (stats and rings of
/// every registered buffer).  The buffers themselves stay registered.
void ResetSpans();

/// RAII span.  Prefer the macros; they compile out under
/// `TTMQO_DISABLE_SPANS`.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (SpansEnabled()) Begin(name, /*with_cpu=*/false);
  }
  SpanScope(const char* name, bool with_cpu) {
    if (SpansEnabled()) Begin(name, with_cpu);
  }
  ~SpanScope() {
    if (name_ != nullptr) End();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void Begin(const char* name, bool with_cpu);
  void End();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t start_cpu_ns_ = 0;
  bool with_cpu_ = false;
};

/// RAII span that times 1 of every 2^shift constructions per call site.
class SampledSpanScope {
 public:
  SampledSpanScope(const char* name, unsigned shift, std::uint32_t& tick) {
    // Tick test first: skipped executions (the overwhelming majority) touch
    // only the site's thread-local counter, never the shared enabled flag.
    if ((tick++ & ((1u << shift) - 1u)) != 0u) return;  // skipped execution
    if (!SpansEnabled()) return;
    Begin(name, shift);
  }
  ~SampledSpanScope() {
    if (name_ != nullptr) End();
  }

  SampledSpanScope(const SampledSpanScope&) = delete;
  SampledSpanScope& operator=(const SampledSpanScope&) = delete;

 private:
  void Begin(const char* name, unsigned shift);
  void End();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint8_t shift_ = 0;
};

}  // namespace ttmqo::obs

#define TTMQO_OBS_CAT2(a, b) a##b
#define TTMQO_OBS_CAT(a, b) TTMQO_OBS_CAT2(a, b)

#ifndef TTMQO_DISABLE_SPANS

/// Times the enclosing scope under `name` (a string literal).
#define TTMQO_SPAN(name) \
  ::ttmqo::obs::SpanScope TTMQO_OBS_CAT(ttmqo_span_, __LINE__)(name)

/// A coarse phase span: wall time plus thread-CPU time.
#define TTMQO_PHASE_SPAN(name)                                  \
  ::ttmqo::obs::SpanScope TTMQO_OBS_CAT(ttmqo_span_, __LINE__)( \
      name, /*with_cpu=*/true)

/// Times 1 of every 2^shift executions of this call site; the rest cost a
/// counter increment.  For per-event hot paths.
#define TTMQO_SPAN_SAMPLED(name, shift)                                      \
  static thread_local std::uint32_t TTMQO_OBS_CAT(ttmqo_span_tick_,          \
                                                  __LINE__) = 0;             \
  ::ttmqo::obs::SampledSpanScope TTMQO_OBS_CAT(ttmqo_span_, __LINE__)(       \
      name, shift, TTMQO_OBS_CAT(ttmqo_span_tick_, __LINE__))

#else  // TTMQO_DISABLE_SPANS

#define TTMQO_SPAN(name) ((void)0)
#define TTMQO_PHASE_SPAN(name) ((void)0)
#define TTMQO_SPAN_SAMPLED(name, shift) ((void)0)

#endif  // TTMQO_DISABLE_SPANS
