// End-to-end tests of the TinyDB baseline engine against the field oracle.
#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

using ::ttmqo::testing::FillOracle;

class TinyDbEngineTest : public ::testing::Test {
 protected:
  TinyDbEngineTest()
      : topology_(Topology::Grid(4)),
        network_(topology_, RadioParams{}, ChannelParams{}, 42),
        field_(7) {}

  void RunWith(const std::vector<Query>& queries, SimTime until) {
    TinyDbEngine engine(network_, field_, &log_);
    for (const Query& q : queries) engine.SubmitQuery(q);
    network_.sim().RunUntil(until);
  }

  Topology topology_;
  Network network_;
  UniformFieldModel field_;
  ResultLog log_;
};

TEST_F(TinyDbEngineTest, AcquisitionMatchesOracle) {
  const Query q = ParseQuery(
      1, "SELECT light WHERE light > 300 EPOCH DURATION 4096");
  RunWith({q}, 10 * 4096);
  ResultLog oracle;
  FillOracle(oracle, q, 10 * 4096, field_, topology_);
  EXPECT_GT(log_.size(), 0u);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(TinyDbEngineTest, AggregationMatchesOracle) {
  const Query q = ParseQuery(
      2, "SELECT MAX(light), MIN(temp), AVG(light) EPOCH DURATION 4096");
  RunWith({q}, 10 * 4096);
  ResultLog oracle;
  FillOracle(oracle, q, 10 * 4096, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(TinyDbEngineTest, AggregationWithPredicateMatchesOracle) {
  const Query q = ParseQuery(
      3,
      "SELECT MAX(light) WHERE temp BETWEEN 20 AND 80 EPOCH DURATION 8192");
  RunWith({q}, 8 * 8192);
  ResultLog oracle;
  FillOracle(oracle, q, 8 * 8192, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(TinyDbEngineTest, UnselectiveQueryReturnsAllSensorRows) {
  const Query q = ParseQuery(4, "SELECT light EPOCH DURATION 4096");
  RunWith({q}, 3 * 4096);
  const EpochResult* first = log_.Find(4, 4096);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->rows.size(), topology_.size() - 1);  // all but the BS
}

TEST_F(TinyDbEngineTest, ConcurrentQueriesAreIndependent) {
  const Query a = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  const Query b =
      ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192");
  RunWith({a, b}, 6 * 8192);
  ResultLog oracle;
  FillOracle(oracle, a, 6 * 8192, field_, topology_);
  FillOracle(oracle, b, 6 * 8192, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {a, b});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(TinyDbEngineTest, TerminationStopsResultsAndCleansUp) {
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  TinyDbEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  network_.sim().ScheduleAt(5 * 4096 + 100,
                            [&] { engine.TerminateQuery(1); });
  network_.sim().RunUntil(10 * 4096);
  // Epochs 1..4 closed (epoch t closes at t+4096 <= termination time).
  EXPECT_NE(log_.Find(1, 4 * 4096), nullptr);
  EXPECT_EQ(log_.Find(1, 6 * 4096), nullptr);
  EXPECT_TRUE(engine.ActiveQueries().empty());
  // The abort flood reached the network.
  EXPECT_GT(network_.ledger().TotalSent(MessageClass::kQueryAbort), 0u);
}

TEST_F(TinyDbEngineTest, DuplicateOrUnknownIdsRejected) {
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  TinyDbEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  EXPECT_THROW(engine.SubmitQuery(q), std::invalid_argument);
  EXPECT_THROW(engine.TerminateQuery(99), std::invalid_argument);
}

TEST_F(TinyDbEngineTest, EachQueryPaysItsOwnTraffic) {
  // Two identical queries double the result traffic: the defining weakness
  // of the baseline that TTMQO removes.
  const Query a = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  RunWith({a}, 8 * 4096);
  const auto solo = network_.ledger().TotalSent(MessageClass::kResult);

  Network network2(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log2;
  TinyDbEngine engine2(network2, field_, &log2);
  engine2.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  engine2.SubmitQuery(ParseQuery(2, "SELECT light EPOCH DURATION 4096"));
  network2.sim().RunUntil(8 * 4096);
  const auto duo = network2.ledger().TotalSent(MessageClass::kResult);
  EXPECT_EQ(duo, 2 * solo);
}

TEST_F(TinyDbEngineTest, ResultTrafficScalesWithSelectivity) {
  const Query narrow = ParseQuery(
      1, "SELECT light WHERE light < 200 EPOCH DURATION 4096");
  RunWith({narrow}, 8 * 4096);
  const auto narrow_msgs = network_.ledger().TotalSent(MessageClass::kResult);

  Network network2(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log2;
  TinyDbEngine engine2(network2, field_, &log2);
  engine2.SubmitQuery(ParseQuery(2, "SELECT light EPOCH DURATION 4096"));
  network2.sim().RunUntil(8 * 4096);
  const auto full_msgs = network2.ledger().TotalSent(MessageClass::kResult);
  EXPECT_LT(narrow_msgs, full_msgs);
}

TEST_F(TinyDbEngineTest, InNetworkAggregationReducesMessagesVsAcquisition) {
  const Query agg = ParseQuery(1, "SELECT MAX(light) EPOCH DURATION 4096");
  RunWith({agg}, 8 * 4096);
  const auto agg_msgs = network_.ledger().TotalSent(MessageClass::kResult);

  Network network2(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log2;
  TinyDbEngine engine2(network2, field_, &log2);
  engine2.SubmitQuery(ParseQuery(2, "SELECT light EPOCH DURATION 4096"));
  network2.sim().RunUntil(8 * 4096);
  const auto acq_msgs = network2.ledger().TotalSent(MessageClass::kResult);
  // TAG partial aggregation: at most one result message per node per epoch,
  // while acquisition relays every row hop by hop.
  EXPECT_LT(agg_msgs, acq_msgs);
}

}  // namespace
}  // namespace ttmqo
