// The transmission-cost model of Section 3.1.2 (Eq. 1-3).
//
// For a query q over a routing tree whose level k holds |N_k| nodes:
//
//   result(q, N_k) = sel(q, N_k) * |N_k| / epoch(q)                  (Eq. 1)
//   trans(q)       = sum_k result(q, N_k) * k        (acquisition)   (Eq. 2)
//   trans(q)       = result(q, N)             (aggregation lower bound)
//   cost(q)        = trans(q) * (C_start + C_trans * len(q))         (Eq. 3)
//
// The aggregation lower bound makes integrating an aggregation query with
// an acquisition query conservative: it only happens when guaranteed
// beneficial.  Costs are airtime per millisecond (dimensionless rates);
// only relative values matter for rewriting decisions.
#pragma once

#include <atomic>
#include <cstdint>

#include "net/radio.h"
#include "net/topology.h"
#include "query/query.h"
#include "stats/selectivity.h"

namespace ttmqo {

/// Evaluates Eq. 1-3 against a topology, radio parameters, and a
/// selectivity estimator.
class CostModel {
 public:
  /// All references must outlive the model.  `C_start`/`C_trans` are taken
  /// from `radio` (the paper periodically measures C_start; our simulator's
  /// startup time is constant, so the configured value is exact).
  CostModel(const Topology& topology, const RadioParams& radio,
            const SelectivityEstimator& selectivity);

  /// Eq. 1: result messages per millisecond generated at level `k`.
  double ResultRate(const Query& query, std::size_t level) const;

  /// Eq. 2 (with the aggregation lower bound): transmissions per ms.
  double Transmissions(const Query& query) const;

  /// Eq. 3: expected airtime per millisecond.
  double Cost(const Query& query) const;

  /// benefit(q1, q2) = cost(q1) + cost(q2) - cost(q12); `integrated` is the
  /// already-built q12.
  double Benefit(const Query& q1, const Query& q2,
                 const Query& integrated) const;

  /// Result message length (radio header + envelope + payload), in bytes.
  double MessageLengthBytes(const Query& query) const;

  /// The selectivity estimator in use.
  const SelectivityEstimator& selectivity() const { return *selectivity_; }

  /// Number of Eq. 3 evaluations since construction (observability: the
  /// rewriter's work is proportional to these).
  std::uint64_t cost_evaluations() const {
    return cost_evaluations_.load(std::memory_order_relaxed);
  }

  /// Number of benefit evaluations (one per candidate merge considered).
  std::uint64_t benefit_evaluations() const {
    return benefit_evaluations_.load(std::memory_order_relaxed);
  }

  /// Version of the statistics feeding Eq. 1; any cached Cost/Benefit value
  /// is stale once this moves (see SelectivityEstimator::Version).
  std::uint64_t StatsVersion() const;

 private:
  const Topology* topology_;
  RadioParams radio_;
  const SelectivityEstimator* selectivity_;
  double num_sensors_;  // |N| excluding the base station
  // Atomic so a model shared across replay tasks (bench/fig4_adaptive runs
  // them under ParallelFor) counts race-free; relaxed is enough for
  // monotonic counters.
  mutable std::atomic<std::uint64_t> cost_evaluations_{0};
  mutable std::atomic<std::uint64_t> benefit_evaluations_{0};
};

}  // namespace ttmqo
