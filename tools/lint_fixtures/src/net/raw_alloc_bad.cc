// Fixture: src/net is a hot-path glob, so the raw allocations below must
// trigger `raw-alloc`; the placement new and the #include must not.
#include <cstdlib>
#include <new>

namespace fixture {

struct Event {
  int payload;
};

void Violations() {
  Event* a = new Event{1};
  void* b = malloc(sizeof(Event));
  void* c = calloc(1, sizeof(Event));
  alignas(Event) unsigned char buf[sizeof(Event)];
  Event* d = ::new (static_cast<void*>(buf)) Event{2};  // placement: fine
  d->~Event();
  delete a;
  free(b);
  free(c);
}

}  // namespace fixture
