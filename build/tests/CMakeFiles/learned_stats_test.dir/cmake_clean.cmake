file(REMOVE_RECURSE
  "CMakeFiles/learned_stats_test.dir/learned_stats_test.cc.o"
  "CMakeFiles/learned_stats_test.dir/learned_stats_test.cc.o.d"
  "learned_stats_test"
  "learned_stats_test.pdb"
  "learned_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
