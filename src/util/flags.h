// A tiny command-line flag parser for benchmark and example binaries.
//
// Accepts `--name=value` and `--name value`; unknown flags are an error so
// that experiment scripts fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ttmqo {

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv.  Throws `std::invalid_argument` on malformed input.
  static Flags Parse(int argc, const char* const* argv);

  /// Returns the flag value or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Returns the flag value, or nullopt when absent.  For output-path
  /// flags (`--metrics-out=`, `--trace-out=`) where absence means "off"
  /// and the empty string is not a usable sentinel.
  std::optional<std::string> GetOptional(const std::string& name) const;

  /// Returns the flag as int64 or `fallback` when absent; throws when the
  /// value is present but not numeric.
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;

  /// Returns the flag as double or `fallback` when absent.
  double GetDouble(const std::string& name, double fallback) const;

  /// Returns the flag as bool ("true"/"false"/"1"/"0"); bare `--name` is true.
  bool GetBool(const std::string& name, bool fallback) const;

  /// Every occurrence of a repeatable flag, in command-line order (e.g.
  /// `--fail=3@5000 --fail=7@9000`); empty when the flag is absent.  The
  /// single-value getters see the last occurrence.
  std::vector<std::string> GetAll(const std::string& name) const;

  /// True when the flag was supplied.
  bool Has(const std::string& name) const;

  /// Flag names that were supplied but never read; used to reject typos.
  std::vector<std::string> UnreadFlags() const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
  /// Every occurrence per flag, for repeatable flags.
  std::map<std::string, std::vector<std::string>> repeated_;
  std::vector<std::string> positional_;
};

/// Prints "unknown flag --name" to stderr for every flag that was supplied
/// but never read.  Returns true when any were present, so a `main` can
/// end its flag-reading block with
///   if (ReportUnreadFlags(flags)) return 2;
/// instead of re-implementing the rejection loop.
bool ReportUnreadFlags(const Flags& flags);

}  // namespace ttmqo
