#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ttmqo {

Histogram::Histogram(Interval domain, std::size_t bins) : domain_(domain) {
  CheckArg(!domain.empty() && domain.Length() > 0,
           "Histogram: domain must be non-empty with positive length");
  CheckArg(bins > 0, "Histogram: bins must be positive");
  counts_.assign(bins, 0.0);
}

void Histogram::Add(double value) { AddDecayed(value, 1.0); }

void Histogram::AddDecayed(double value, double decay) {
  CheckArg(decay >= 0.0 && decay <= 1.0, "Histogram: decay must be in [0,1]");
  if (decay < 1.0) {
    for (double& c : counts_) c *= decay;
    total_ *= decay;
  }
  const double width = domain_.Length() / static_cast<double>(counts_.size());
  const double clamped = std::clamp(value, domain_.lo(), domain_.hi());
  auto bin = static_cast<std::size_t>((clamped - domain_.lo()) / width);
  bin = std::min(bin, counts_.size() - 1);
  counts_[bin] += 1.0;
  total_ += 1.0;
}

double Histogram::SelectivityOf(const Interval& range) const {
  const Interval overlap = domain_.Intersect(range);
  if (overlap.empty()) return 0.0;
  if (total_ <= 0.0) {
    // Uniform prior over the domain.
    return overlap.Length() / domain_.Length();
  }
  const double width = domain_.Length() / static_cast<double>(counts_.size());
  double mass = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0.0) continue;
    const double lo = domain_.lo() + static_cast<double>(i) * width;
    const Interval bucket(lo, lo + width);
    // Within-bucket uniform share of the queried range.
    mass += counts_[i] * bucket.OverlapFraction(overlap);
  }
  return mass / total_;
}

}  // namespace ttmqo
