// Randomized property sweep: for many random static workloads, every
// optimization mode must reproduce the baseline's per-user answer streams
// exactly.  This complements the hand-designed workloads of
// equivalence_test.cc with broad coverage of the query space.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/runner.h"

namespace ttmqo {
namespace {

using SweepParam = std::tuple<int /*seed*/, OptimizationMode>;

class RandomEquivalenceTest : public ::testing::TestWithParam<SweepParam> {};

std::vector<Query> RandomWorkload(std::uint64_t seed) {
  QueryModelParams params;
  params.aggregation_fraction = 0.4;
  params.attributes = {Attribute::kLight, Attribute::kTemp,
                       Attribute::kHumidity};
  params.operators = {AggregateOp::kMax, AggregateOp::kMin, AggregateOp::kSum,
                      AggregateOp::kAvg, AggregateOp::kCount,
                      AggregateOp::kVar};
  params.epochs = {4096, 6144, 8192, 12288};
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  RandomQueryModel model(params, seed);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= 6; ++i) queries.push_back(model.Next(i));
  return queries;
}

TEST_P(RandomEquivalenceTest, AnswersMatchBaseline) {
  const auto& [seed, mode] = GetParam();
  const std::vector<Query> queries =
      RandomWorkload(static_cast<std::uint64_t>(seed));
  const auto schedule = StaticSchedule(queries);

  RunConfig config;
  config.grid_side = 4;
  config.field = FieldKind::kCorrelated;
  config.duration_ms = 6 * 12288;
  config.seed = static_cast<std::uint64_t>(seed) * 31 + 7;

  config.mode = OptimizationMode::kBaseline;
  const RunResult baseline = RunExperiment(config, schedule);
  config.mode = mode;
  const RunResult optimized = RunExperiment(config, schedule);

  ASSERT_GT(baseline.results.size(), 0u);
  const auto diff = CompareResultLogs(baseline.results, optimized.results,
                                      queries, 1e-6);
  EXPECT_FALSE(diff.has_value()) << "seed " << seed << ": " << *diff;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomEquivalenceTest,
    ::testing::Combine(::testing::Range(1, 11),
                       ::testing::Values(OptimizationMode::kBaseStationOnly,
                                         OptimizationMode::kInNetworkOnly,
                                         OptimizationMode::kTwoTier)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string mode;
      switch (std::get<1>(info.param)) {
        case OptimizationMode::kBaseStationOnly:
          mode = "BsOnly";
          break;
        case OptimizationMode::kInNetworkOnly:
          mode = "InNetOnly";
          break;
        default:
          mode = "TwoTier";
          break;
      }
      return "Seed" + std::to_string(std::get<0>(info.param)) + "_" + mode;
    });

}  // namespace
}  // namespace ttmqo
