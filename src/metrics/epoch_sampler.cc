#include "metrics/epoch_sampler.h"

#include "util/check.h"

namespace ttmqo {

void EpochSampler::Start(Network& network, SimDuration period_ms) {
  CheckArg(period_ms > 0, "EpochSampler: period must be positive");
  CheckArg(period_ms_ == 0, "EpochSampler: already started");
  period_ms_ = period_ms;
  network_ = &network;
  previous_ = Capture(network.ledger());
  // The tick reschedules itself through the pooled event slab; the [this]
  // capture stays inline, so sampling never allocates per epoch.
  network.sim().ScheduleAfter(period_ms_, [this] { Tick(); });
}

void EpochSampler::Tick() {
  Sample(*network_);
  network_->sim().ScheduleAfter(period_ms_, [this] { Tick(); });
}

EpochSampler::Snapshot EpochSampler::Capture(const RadioLedger& ledger) {
  Snapshot snap;
  snap.node_tx_ms.resize(ledger.size(), 0.0);
  for (NodeId node = 0; node < ledger.size(); ++node) {
    const NodeRadioStats& stats = ledger.StatsOf(node);
    snap.node_tx_ms[node] = stats.TotalTransmitMs();
    snap.retx_ms += stats.retransmit_ms;
    snap.sleep_ms += stats.sleep_ms;
    snap.retransmissions += stats.retransmissions;
    snap.drops += stats.drops;
    for (std::size_t cls = 0; cls < kNumMessageClasses; ++cls) {
      snap.tx_ms += stats.transmit_ms_by_class[cls];
      snap.sent_by_class[cls] += stats.sent_by_class[cls];
    }
  }
  return snap;
}

void EpochSampler::Sample(Network& network) {
  Snapshot now = Capture(network.ledger());
  EpochRow row;
  row.epoch = static_cast<std::int64_t>(rows_.size());
  row.time = network.sim().Now();
  row.tx_ms = now.tx_ms - previous_.tx_ms;
  row.retx_ms = now.retx_ms - previous_.retx_ms;
  row.sleep_ms = now.sleep_ms - previous_.sleep_ms;
  row.retransmissions = now.retransmissions - previous_.retransmissions;
  row.drops = now.drops - previous_.drops;
  for (std::size_t cls = 0; cls < kNumMessageClasses; ++cls) {
    row.sent_by_class[cls] =
        now.sent_by_class[cls] - previous_.sent_by_class[cls];
  }
  row.node_tx_ms.resize(now.node_tx_ms.size(), 0.0);
  for (std::size_t i = 0; i < now.node_tx_ms.size(); ++i) {
    const double prev =
        i < previous_.node_tx_ms.size() ? previous_.node_tx_ms[i] : 0.0;
    row.node_tx_ms[i] = now.node_tx_ms[i] - prev;
  }
  rows_.push_back(std::move(row));
  previous_ = std::move(now);
}

void EpochSampler::WriteCsv(std::ostream& out) const {
  out << "epoch,t_ms,tx_ms,retx_ms,sleep_ms";
  for (std::size_t cls = 0; cls < kNumMessageClasses; ++cls) {
    out << ',' << MessageClassName(static_cast<MessageClass>(cls)) << "_msgs";
  }
  out << ",retransmissions,drops\n";
  for (const EpochRow& row : rows_) {
    out << row.epoch << ',' << row.time << ',' << row.tx_ms << ','
        << row.retx_ms << ',' << row.sleep_ms;
    for (std::size_t cls = 0; cls < kNumMessageClasses; ++cls) {
      out << ',' << row.sent_by_class[cls];
    }
    out << ',' << row.retransmissions << ',' << row.drops << '\n';
  }
}

void EpochSampler::WriteRowJson(std::ostream& out, const EpochRow& row) const {
  out << "{\"epoch\":" << row.epoch << ",\"t\":" << row.time
      << ",\"tx_ms\":" << row.tx_ms << ",\"retx_ms\":" << row.retx_ms
      << ",\"sleep_ms\":" << row.sleep_ms;
  for (std::size_t cls = 0; cls < kNumMessageClasses; ++cls) {
    out << ",\"" << MessageClassName(static_cast<MessageClass>(cls))
        << "_msgs\":" << row.sent_by_class[cls];
  }
  out << ",\"retransmissions\":" << row.retransmissions
      << ",\"drops\":" << row.drops << ",\"node_tx_ms\":[";
  for (std::size_t i = 0; i < row.node_tx_ms.size(); ++i) {
    if (i > 0) out << ',';
    out << row.node_tx_ms[i];
  }
  out << "]}";
}

void EpochSampler::WriteJsonl(std::ostream& out) const {
  for (const EpochRow& row : rows_) {
    WriteRowJson(out, row);
    out << '\n';
  }
}

void EpochSampler::WriteJsonArray(std::ostream& out) const {
  out << '[';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out << ',';
    WriteRowJson(out, rows_[i]);
  }
  out << ']';
}

}  // namespace ttmqo
