// Environmental monitoring: the paper's motivating scenario.  Several
// research groups monitor an instrumented habitat; their queries come and
// go over a day of simulated time, overlapping heavily.  The example runs
// the same query diary with and without TTMQO and reports how much radio
// time multi-query optimization saved.
//
//   $ environment_monitoring [--side=6] [--hours=2]
#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "metrics/run_summary.h"
#include "query/parser.h"
#include "util/flags.h"
#include "workload/runner.h"

namespace {

using namespace ttmqo;

// The diary: (arrival minute, departure minute, SQL).
struct DiaryEntry {
  double arrive_min;
  double depart_min;  // < 0: runs until the end
  const char* sql;
};

constexpr DiaryEntry kDiary[] = {
    // The long-running base observation stream.
    {0, -1, "SELECT light, temp FROM sensors EPOCH DURATION 8192"},
    // A microclimate team watches warm spots at a faster rate.
    {5, -1, "SELECT temp FROM sensors WHERE temp > 60 EPOCH DURATION 4096"},
    // A student project polls bright areas for an hour.
    {10, 70,
     "SELECT light FROM sensors WHERE light > 600 EPOCH DURATION 8192"},
    // Dashboard gauges: aggregates over the same data.
    {12, -1, "SELECT MAX(temp), MIN(temp) FROM sensors EPOCH DURATION 8192"},
    {15, -1,
     "SELECT AVG(light) FROM sensors WHERE light > 100 EPOCH DURATION 16384"},
    // A burst of ad-hoc queries during a field visit.
    {30, 55,
     "SELECT light FROM sensors WHERE light BETWEEN 200 AND 700 "
     "EPOCH DURATION 8192"},
    {32, 58, "SELECT MAX(light) FROM sensors EPOCH DURATION 8192"},
    {35, 50,
     "SELECT temp, humidity FROM sensors WHERE temp > 40 EPOCH DURATION "
     "12288"},
};

std::vector<WorkloadEvent> MakeDiary(SimDuration duration_ms) {
  std::vector<WorkloadEvent> events;
  QueryId id = 1;
  for (const DiaryEntry& entry : kDiary) {
    WorkloadEvent submit;
    submit.kind = WorkloadEvent::Kind::kSubmit;
    submit.time = static_cast<SimTime>(entry.arrive_min * 60'000.0);
    submit.id = id;
    submit.query = ParseQuery(id, entry.sql);
    events.push_back(std::move(submit));
    if (entry.depart_min >= 0) {
      WorkloadEvent terminate;
      terminate.kind = WorkloadEvent::Kind::kTerminate;
      terminate.time = static_cast<SimTime>(entry.depart_min * 60'000.0);
      terminate.id = id;
      events.push_back(std::move(terminate));
    }
    ++id;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });
  for (const auto& e : events) {
    if (e.time >= duration_ms) {
      throw std::invalid_argument(
          "diary does not fit in the simulated window; increase --hours");
    }
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) try {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 6));
  const double hours = flags.GetDouble("hours", 2.0);
  const auto duration = static_cast<SimDuration>(hours * 3'600'000.0);

  std::printf("Environmental monitoring on a %zux%zu grid, %.1f simulated "
              "hours, %zu queries in the diary\n\n",
              side, side, hours, std::size(kDiary));

  const auto diary = MakeDiary(duration);
  RunSummary baseline;
  for (OptimizationMode mode :
       {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
    RunConfig config;
    config.grid_side = side;
    config.mode = mode;
    config.field = FieldKind::kHotspot;  // a warm front moves through
    config.duration_ms = duration;
    config.channel.collision_prob = 0.02;
    config.seed = 2026;
    const RunResult run = RunExperiment(config, diary);
    std::printf("%-10s %s\n", std::string(OptimizationModeName(mode)).c_str(),
                run.summary.ToString().c_str());
    if (mode == OptimizationMode::kBaseline) {
      baseline = run.summary;
    } else {
      std::printf("\nTTMQO saved %.1f%% of average radio transmission time\n",
                  SavingsPercent(baseline.avg_transmission_fraction,
                                 run.summary.avg_transmission_fraction));
      std::printf("(avg %.2f network queries served %zu user queries; "
                  "idle nodes slept %.1f%% of the time)\n",
                  run.avg_network_queries, std::size(kDiary),
                  run.summary.avg_sleep_fraction * 100);
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
