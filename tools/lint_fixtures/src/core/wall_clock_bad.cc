// Fixture: every line below must trigger the `wall-clock` rule.
// Mentioning system_clock or rand() in this comment must NOT trigger it.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

long Violations() {
  auto a = std::chrono::system_clock::now();
  auto b = std::chrono::steady_clock::now();
  auto c = std::chrono::high_resolution_clock::now();
  long d = time(NULL);
  int e = rand();
  srand(42);
  const char* f = getenv("HOME");
  (void)a; (void)b; (void)c; (void)e; (void)f;
  const char* msg = "calling rand() in a string literal is fine";
  (void)msg;
  return d;
}

}  // namespace fixture
