// Per-epoch time series of radio activity.
//
// The paper reports a single end-of-run scalar (average transmission time,
// Section 4.1); `EpochSampler` additionally snapshots the `RadioLedger`
// every simulated epoch and records the *delta* — per message class and per
// node — so a run yields a time series showing where inside the run each
// tier spends or saves transmissions.  Rows export as CSV (one row per
// epoch, network-wide columns) or JSONL (same plus the per-node breakdown).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "net/network.h"

namespace ttmqo {

/// Radio activity during one sampling epoch (deltas, not cumulative).
struct EpochRow {
  /// Zero-based epoch index.
  std::int64_t epoch = 0;
  /// End of the epoch window (simulation ms).
  SimTime time = 0;
  /// Total transmit milliseconds (first attempts, all nodes).
  double tx_ms = 0.0;
  /// Retransmission-attempt milliseconds.
  double retx_ms = 0.0;
  /// Sleep milliseconds booked to the ledger during the window.
  double sleep_ms = 0.0;
  /// First-attempt message counts, indexed by `MessageClass`.
  std::array<std::uint64_t, kNumMessageClasses> sent_by_class{};
  std::uint64_t retransmissions = 0;
  std::uint64_t drops = 0;
  /// Per-node transmit milliseconds (incl. retransmissions) this epoch.
  std::vector<double> node_tx_ms;
};

/// Samples a network's ledger on a fixed simulated period.
class EpochSampler {
 public:
  /// Begins sampling `network` every `period_ms` (default: the minimum
  /// TinyDB epoch).  Must be called before the simulation runs; the sampler
  /// must outlive the run.  May be called once per sampler.
  void Start(Network& network, SimDuration period_ms = kMinEpochDurationMs);

  /// Collected rows, one per completed epoch.
  const std::vector<EpochRow>& rows() const { return rows_; }

  /// The sampling period (0 before `Start`).
  SimDuration period_ms() const { return period_ms_; }

  /// CSV with a header row and one row per epoch (network-wide columns).
  void WriteCsv(std::ostream& out) const;

  /// One JSON object per line, including the per-node breakdown.
  void WriteJsonl(std::ostream& out) const;

  /// The same rows as one JSON array (for embedding in a larger document).
  void WriteJsonArray(std::ostream& out) const;

 private:
  struct Snapshot {
    double tx_ms = 0.0;
    double retx_ms = 0.0;
    double sleep_ms = 0.0;
    std::array<std::uint64_t, kNumMessageClasses> sent_by_class{};
    std::uint64_t retransmissions = 0;
    std::uint64_t drops = 0;
    std::vector<double> node_tx_ms;
  };

  void Sample(Network& network);
  void Tick();
  static Snapshot Capture(const RadioLedger& ledger);
  void WriteRowJson(std::ostream& out, const EpochRow& row) const;

  Network* network_ = nullptr;
  SimDuration period_ms_ = 0;
  Snapshot previous_;
  std::vector<EpochRow> rows_;
};

}  // namespace ttmqo
