#include "net/simulator.h"

#include <limits>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace ttmqo {

Simulator::~Simulator() {
  // Drop this thread's flight records: a postmortem from the *next*
  // in-process run (e.g. the following sweep task) must not show this
  // run's tail as if it led up to the failure.
  obs::ClearThreadFlightRing();
}

void Simulator::ScheduleAt(SimTime t, EventFn fn) {
  CheckArg(t >= now_, "Simulator::ScheduleAt: cannot schedule in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    Check(slab_.size() < std::numeric_limits<std::uint32_t>::max(),
          "Simulator: event slab exhausted");
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot] = std::move(fn);
  heap_.push_back(QueuedEvent{t, next_seq_++, slot});
  SiftUp(heap_.size() - 1);
}

void Simulator::ScheduleAfter(SimDuration delay, EventFn fn) {
  CheckArg(delay >= 0, "Simulator::ScheduleAfter: delay must be >= 0");
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::RunUntil(SimTime until) {
  CheckArg(until >= now_, "Simulator::RunUntil: until must be >= Now()");
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
  }
  now_ = until;
}

bool Simulator::Step() {
  if (heap_.empty()) return false;
  const QueuedEvent event = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  // Move the callable out and recycle its slot *before* invoking: the
  // handler may schedule new events, which can reuse the slot or grow the
  // slab (invalidating slab references, never this local).
  EventFn fn = std::move(slab_[event.slot]);
  free_slots_.push_back(event.slot);
  now_ = event.time;
  ++events_executed_;
  obs::RecordFlight("sim.event", event.time,
                    static_cast<std::int64_t>(event.seq),
                    static_cast<std::int64_t>(event.slot));
  TTMQO_SPAN_SAMPLED("sim.event", 8);
  fn();
  return true;
}

void Simulator::SiftUp(std::size_t i) {
  const QueuedEvent e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::SiftDown(std::size_t i) {
  const QueuedEvent e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) ++child;
    if (!Earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

}  // namespace ttmqo
