// Chrome trace-event export of span snapshots.
//
// Renders a `SpanSnapshot` as the Chrome trace-event JSON object format —
// `{"traceEvents": [...]}` — loadable in Perfetto (ui.perfetto.dev) or
// `chrome://tracing`.  Each span record becomes one complete ("X") event
// with microsecond timestamps; per-thread metadata ("M") events name the
// tracks.  Sampled records carry their sampling shift in `args` so a reader
// knows one slice stands for 2^shift executions.
#pragma once

#include <ostream>
#include <string>

#include "obs/span.h"

namespace ttmqo::obs {

/// Writes `snapshot` as a Chrome trace-event JSON object.
void WriteChromeTrace(std::ostream& out, const SpanSnapshot& snapshot);

/// Collects the current spans and writes them to `path`.  Throws
/// `std::invalid_argument` when the file cannot be opened.
void WriteChromeTraceFile(const std::string& path);

/// Writes a human-readable per-name aggregate table (descending wall time):
/// count, records, wall, CPU where measured, and the sampling-scaled
/// estimate.  For end-of-run summaries on stderr and bench reports.
void WriteSpanSummary(std::ostream& out, const SpanSnapshot& snapshot);

}  // namespace ttmqo::obs
