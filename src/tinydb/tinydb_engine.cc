#include "tinydb/tinydb_engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {
namespace {

// Extra bytes a result payload carries besides the values: query id (2) and
// an epoch tag (2).
constexpr std::size_t kResultEnvelopeBytes = 4;

// Payload bytes of an abort notice: query id only.
constexpr std::size_t kAbortPayloadBytes = 2;

// Merges `from` into `into` element-wise (same spec order).
void MergePartialVectors(std::vector<PartialAggregate>& into,
                         const std::vector<PartialAggregate>& from) {
  Check(into.size() == from.size(),
        "partial aggregate vectors must align by spec");
  for (std::size_t i = 0; i < into.size(); ++i) into[i].Merge(from[i]);
}

}  // namespace

std::size_t AggPayloadBytes(const std::vector<PartialAggregate>& partials) {
  std::size_t bytes = kResultEnvelopeBytes;
  for (const PartialAggregate& p : partials) bytes += p.SerializedSizeBytes();
  return bytes;
}

TinyDbEngine::TinyDbEngine(Network& network, const FieldModel& field,
                           ResultSink* sink, TinyDbOptions options)
    : network_(network),
      field_(field),
      sink_(sink),
      options_(options),
      tree_(network.topology(), network.link_quality()),
      srt_(network.topology(), tree_),
      nodes_(network.topology().size()) {
  for (NodeId node : network_.topology().AllNodes()) {
    network_.SetReceiver(node, [this, node](const Message& msg,
                                            bool addressed) {
      HandleMessage(node, msg, addressed);
    });
  }
}

std::vector<QueryId> TinyDbEngine::ActiveQueries() const {
  std::vector<QueryId> ids;
  for (const auto& [id, state] : bs_queries_) {
    if (!state.terminated) ids.push_back(id);
  }
  return ids;
}

void TinyDbEngine::SubmitQuery(const Query& query) {
  CheckArg(!bs_queries_.contains(query.id()),
           "TinyDbEngine: duplicate query id");
  bs_queries_.emplace(query.id(), BsQueryState(query));
  nodes_[kBaseStationId].seen_propagation.insert(query.id());

  Message msg;
  msg.cls = MessageClass::kQueryPropagation;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = kBaseStationId;
  msg.payload_bytes = PropagationPayloadBytes(query);
  msg.payload = std::make_shared<QueryPropagationPayload>(query);
  network_.Send(std::move(msg));

  const SimTime first = AlignUp(network_.sim().Now() + 1, query.epoch());
  ScheduleEpochClose(query.id(), first);
}

void TinyDbEngine::TerminateQuery(QueryId id) {
  auto it = bs_queries_.find(id);
  CheckArg(it != bs_queries_.end() && !it->second.terminated,
           "TinyDbEngine: terminating unknown or finished query");
  it->second.terminated = true;
  it->second.rows.clear();
  it->second.partials.clear();
  nodes_[kBaseStationId].seen_abort.insert(id);

  Message msg;
  msg.cls = MessageClass::kQueryAbort;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = kBaseStationId;
  msg.payload_bytes = kAbortPayloadBytes;
  msg.payload = std::make_shared<QueryAbortPayload>(id);
  network_.Send(std::move(msg));
}

SimDuration TinyDbEngine::SourceJitter(NodeId node) const {
  if (options_.source_jitter_ms <= 0) return 0;
  return (static_cast<SimDuration>(node) * 37) %
         (options_.source_jitter_ms + 1);
}

// ---------------------------------------------------------------------
// Node-side logic
// ---------------------------------------------------------------------

void TinyDbEngine::HandleMessage(NodeId self, const Message& msg,
                                 bool addressed) {
  if (!addressed) return;  // the baseline never exploits overhearing

  if (const auto* prop =
          dynamic_cast<const QueryPropagationPayload*>(msg.payload.get())) {
    NodeState& state = nodes_[self];
    if (state.seen_propagation.contains(prop->query.id())) return;
    state.seen_propagation.insert(prop->query.id());
    if (self != kBaseStationId) {
      if (ShouldInstall(self, prop->query)) {
        InstallQuery(self, prop->query);
      }
      if (ShouldForwardPropagation(self, prop->query)) {
        state.relayed_propagation.insert(prop->query.id());
        // Re-broadcast to continue the dissemination, staggered to limit
        // contention.
        network_.sim().ScheduleAfter(SourceJitter(self) + 1,
                                     [this, self, msg]() {
                                       Message fwd = msg;
                                       fwd.sender = self;
                                       network_.Send(std::move(fwd));
                                     });
      }
    }
    return;
  }

  if (const auto* abort =
          dynamic_cast<const QueryAbortPayload*>(msg.payload.get())) {
    NodeState& state = nodes_[self];
    if (state.seen_abort.contains(abort->query)) return;
    state.seen_abort.insert(abort->query);
    if (self != kBaseStationId) {
      RemoveQuery(self, abort->query);
      // The abort follows the propagation's prune: only nodes that carried
      // the query into their subtree need to carry its termination.
      if (state.relayed_propagation.contains(abort->query)) {
        state.relayed_propagation.erase(abort->query);
        network_.sim().ScheduleAfter(SourceJitter(self) + 1,
                                     [this, self, msg]() {
                                       Message fwd = msg;
                                       fwd.sender = self;
                                       network_.Send(std::move(fwd));
                                     });
      }
    }
    return;
  }

  if (self == kBaseStationId) {
    BsAccept(msg);
    return;
  }

  if (const auto* row = dynamic_cast<const RowPayload*>(msg.payload.get())) {
    ForwardRow(self, *row);
    return;
  }

  if (const auto* agg = dynamic_cast<const AggPayload*>(msg.payload.get())) {
    NodeState& state = nodes_[self];
    const auto key = std::make_pair(agg->query, agg->epoch_time);
    if (state.agg_slot_done.contains(key) || !state.active.contains(agg->query)) {
      // Our slot already passed (or we no longer run the query): forward the
      // partial unchanged so no data is lost.
      ForwardPartials(self, agg->query, agg->epoch_time, agg->partials);
      return;
    }
    auto [it, inserted] = state.agg_buffer.try_emplace(key, agg->partials);
    if (!inserted) MergePartialVectors(it->second, agg->partials);
  }
}

bool TinyDbEngine::ShouldInstall(NodeId self, const Query& query) const {
  if (!options_.use_semantic_routing) return true;
  // Value-based predicates cannot exclude a node in advance; constraints
  // on the constant attributes (nodeid, position) can.
  return NodeMayMatch(self, network_.topology().PositionOf(self),
                      query.predicates());
}

bool TinyDbEngine::ShouldForwardPropagation(NodeId self,
                                            const Query& query) const {
  if (!options_.use_semantic_routing) return true;
  if (!SemanticRoutingTree::IsPrunable(query.predicates())) return true;
  for (NodeId child : tree_.ChildrenOf(self)) {
    if (srt_.SubtreeMayMatch(child, query.predicates())) return true;
  }
  return false;
}

void TinyDbEngine::InstallQuery(NodeId self, const Query& query) {
  NodeState& state = nodes_[self];
  state.active.emplace(query.id(), query);
  ScheduleNextEpoch(self, query.id());
}

void TinyDbEngine::RemoveQuery(NodeId self, QueryId id) {
  NodeState& state = nodes_[self];
  state.active.erase(id);
  std::erase_if(state.agg_buffer,
                [id](const auto& entry) { return entry.first.first == id; });
  std::erase_if(state.agg_slot_done,
                [id](const auto& key) { return key.first == id; });
}

void TinyDbEngine::ScheduleNextEpoch(NodeId self, QueryId id) {
  const auto it = nodes_[self].active.find(id);
  if (it == nodes_[self].active.end()) return;
  const SimTime t = AlignUp(network_.sim().Now() + 1, it->second.epoch());
  network_.sim().ScheduleAt(t, [this, self, id, t]() { OnEpoch(self, id, t); });
}

void TinyDbEngine::OnEpoch(NodeId self, QueryId id, SimTime epoch_time) {
  if (network_.IsFailed(self)) return;
  NodeState& state = nodes_[self];
  const auto it = state.active.find(id);
  if (it == state.active.end()) return;  // aborted in the meantime
  const Query& query = it->second;

  // Acquisitional sampling: each query samples on its own (the baseline
  // shares nothing, Section 1).
  const Reading sample = field_.SampleReading(
      self, network_.topology().PositionOf(self), query.AcquiredAttributes(),
      epoch_time);
  const bool matches = query.predicates().Matches(sample);

  if (query.kind() == QueryKind::kAcquisition) {
    if (matches) {
      // Project the selected attributes into the result row.
      Reading row(self, epoch_time);
      for (Attribute attr : query.attributes()) {
        row.Set(attr, sample.GetOrThrow(attr));
      }
      auto payload =
          std::make_shared<RowPayload>(id, epoch_time, std::move(row));
      const std::size_t bytes =
          query.ResultPayloadBytes() + kResultEnvelopeBytes;
      network_.sim().ScheduleAfter(
          SourceJitter(self), [this, self, payload, bytes]() {
            if (!nodes_[self].active.contains(payload->query)) return;
            Message msg;
            msg.cls = MessageClass::kResult;
            msg.mode = AddressMode::kUnicast;
            msg.sender = self;
            msg.destinations = {tree_.ParentOf(self)};
            msg.payload_bytes = bytes;
            msg.payload = payload;
            network_.Send(std::move(msg));
          });
    }
  } else {
    if (matches) {
      std::vector<PartialAggregate> own;
      own.reserve(query.aggregates().size());
      for (const AggregateSpec& spec : query.aggregates()) {
        own.push_back(PartialAggregate::OfValue(
            spec, sample.GetOrThrow(spec.attribute)));
      }
      const auto key = std::make_pair(id, epoch_time);
      auto [buf, inserted] = state.agg_buffer.try_emplace(key, std::move(own));
      if (!inserted) MergePartialVectors(buf->second, own);
    }
    // Stagger the merge-and-send slot bottom-up: deeper nodes send first.
    const SimDuration offset =
        static_cast<SimDuration>(network_.topology().MaxDepth() -
                                 tree_.DepthOf(self)) *
            options_.agg_slot_ms +
        SourceJitter(self);
    network_.sim().ScheduleAt(epoch_time + offset,
                              [this, self, id, epoch_time]() {
                                OnAggSlot(self, id, epoch_time);
                              });
  }

  // Prune stale per-epoch bookkeeping.
  const SimTime horizon = epoch_time - 4 * query.epoch();
  std::erase_if(state.agg_slot_done, [id, horizon](const auto& key) {
    return key.first == id && key.second < horizon;
  });

  ScheduleNextEpoch(self, id);
}

void TinyDbEngine::OnAggSlot(NodeId self, QueryId id, SimTime epoch_time) {
  if (network_.IsFailed(self)) return;
  NodeState& state = nodes_[self];
  const auto key = std::make_pair(id, epoch_time);
  state.agg_slot_done.insert(key);
  const auto it = state.agg_buffer.find(key);
  if (it == state.agg_buffer.end()) return;  // nothing matched in the subtree
  std::vector<PartialAggregate> merged = std::move(it->second);
  state.agg_buffer.erase(it);
  if (merged.empty() || merged.front().count() == 0) return;
  ForwardPartials(self, id, epoch_time, std::move(merged));
}

void TinyDbEngine::ForwardRow(NodeId self, const RowPayload& payload) {
  // Rows travel unchanged toward the base station; each query's rows are
  // separate messages (no cross-query packing in the baseline).
  Message msg;
  msg.cls = MessageClass::kResult;
  msg.mode = AddressMode::kUnicast;
  msg.sender = self;
  msg.destinations = {tree_.ParentOf(self)};
  const auto it = bs_queries_.find(payload.query);
  msg.payload_bytes = (it != bs_queries_.end()
                           ? it->second.query.ResultPayloadBytes()
                           : std::size_t{8}) +
                      kResultEnvelopeBytes;
  msg.payload = std::make_shared<RowPayload>(payload);
  network_.Send(std::move(msg));
}

void TinyDbEngine::ForwardPartials(NodeId self, QueryId id,
                                   SimTime epoch_time,
                                   std::vector<PartialAggregate> partials) {
  Message msg;
  msg.cls = MessageClass::kResult;
  msg.mode = AddressMode::kUnicast;
  msg.sender = self;
  msg.destinations = {tree_.ParentOf(self)};
  msg.payload_bytes = AggPayloadBytes(partials);
  msg.payload =
      std::make_shared<AggPayload>(id, epoch_time, std::move(partials));
  network_.Send(std::move(msg));
}

// ---------------------------------------------------------------------
// Base-station-side logic
// ---------------------------------------------------------------------

void TinyDbEngine::BsAccept(const Message& msg) {
  if (const auto* row = dynamic_cast<const RowPayload*>(msg.payload.get())) {
    auto it = bs_queries_.find(row->query);
    if (it == bs_queries_.end() || it->second.terminated) return;
    it->second.rows[row->epoch_time].try_emplace(row->row.node(), row->row);
    return;
  }
  if (const auto* agg = dynamic_cast<const AggPayload*>(msg.payload.get())) {
    auto it = bs_queries_.find(agg->query);
    if (it == bs_queries_.end() || it->second.terminated) return;
    auto& buffer = it->second.partials[agg->epoch_time];
    if (buffer.empty()) {
      buffer = agg->partials;
    } else {
      MergePartialVectors(buffer, agg->partials);
    }
  }
}

void TinyDbEngine::ScheduleEpochClose(QueryId id, SimTime epoch_time) {
  const auto it = bs_queries_.find(id);
  if (it == bs_queries_.end() || it->second.terminated) return;
  network_.sim().ScheduleAt(epoch_time + it->second.query.epoch(),
                            [this, id, epoch_time]() {
                              CloseEpoch(id, epoch_time);
                            });
}

void TinyDbEngine::CloseEpoch(QueryId id, SimTime epoch_time) {
  auto it = bs_queries_.find(id);
  if (it == bs_queries_.end() || it->second.terminated) return;
  BsQueryState& state = it->second;

  EpochResult result;
  result.query = id;
  result.epoch_time = epoch_time;
  result.kind = state.query.kind();
  if (state.query.kind() == QueryKind::kAcquisition) {
    auto rows_it = state.rows.find(epoch_time);
    if (rows_it != state.rows.end()) {
      // The per-epoch map is keyed by source node, so rows come out
      // deduplicated and already in node order.
      result.rows.reserve(rows_it->second.size());
      for (auto& [node, row] : rows_it->second) {
        result.rows.push_back(std::move(row));
      }
      state.rows.erase(rows_it);
    }
  } else {
    std::vector<PartialAggregate> merged;
    auto agg_it = state.partials.find(epoch_time);
    if (agg_it != state.partials.end()) {
      merged = std::move(agg_it->second);
      state.partials.erase(agg_it);
    }
    for (std::size_t i = 0; i < state.query.aggregates().size(); ++i) {
      const AggregateSpec& spec = state.query.aggregates()[i];
      if (i < merged.size()) {
        result.aggregates.emplace_back(spec, merged[i].Finalize());
      } else {
        result.aggregates.emplace_back(spec,
                                       PartialAggregate(spec).Finalize());
      }
    }
  }
  if (sink_ != nullptr) sink_->OnResult(result);
  ScheduleEpochClose(id, epoch_time + state.query.epoch());
}

}  // namespace ttmqo
