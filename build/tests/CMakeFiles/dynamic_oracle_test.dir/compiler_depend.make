# Empty compiler generated dependencies file for dynamic_oracle_test.
# This may be replaced when dependencies are built.
