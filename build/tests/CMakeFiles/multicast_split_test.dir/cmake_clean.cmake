file(REMOVE_RECURSE
  "CMakeFiles/multicast_split_test.dir/multicast_split_test.cc.o"
  "CMakeFiles/multicast_split_test.dir/multicast_split_test.cc.o.d"
  "multicast_split_test"
  "multicast_split_test.pdb"
  "multicast_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
