// Dynamic-workload correctness: under query churn (arrivals/terminations
// triggering tier-1 rewrites, aborts and injections), every answer the
// two-tier engine DOES deliver must be exactly right.  Epochs may be
// skipped around synthetic-query transitions (documented in DESIGN.md),
// but a delivered epoch is complete and value-exact on a lossless channel.
#include <gtest/gtest.h>

#include "test_helpers.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

class DynamicOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(DynamicOracleTest, DeliveredEpochsAreExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  QueryModelParams params;
  params.aggregation_fraction = 0.4;
  params.epochs = {4096, 8192, 12288};
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  RandomQueryModel model(params, seed);
  const auto schedule =
      DynamicSchedule(model, 20, 8'000.0, 60'000.0, seed ^ 0x77ULL);
  SimTime end = 0;
  std::map<QueryId, Query> queries;
  for (const WorkloadEvent& event : schedule) {
    end = std::max(end, event.time);
    if (event.query.has_value()) queries.emplace(event.id, *event.query);
  }

  RunConfig config;
  config.grid_side = 4;
  config.mode = OptimizationMode::kTwoTier;
  config.duration_ms = end + 4 * 12288;
  config.seed = seed * 13 + 1;
  const RunResult run = RunExperiment(config, schedule);
  const auto field = MakeFieldModel(config.field, config.seed);
  const Topology topology = Topology::Grid(4);

  ASSERT_GT(run.results.size(), 0u);
  std::size_t checked = 0;
  for (const EpochResult* r : run.results.All()) {
    const Query& query = queries.at(r->query);
    const EpochResult truth =
        testing::OracleResult(query, r->epoch_time, *field, topology);
    ResultLog expected, actual;
    expected.OnResult(truth);
    actual.OnResult(*r);
    const auto diff = CompareResultLogs(expected, actual, {query}, 1e-6);
    EXPECT_FALSE(diff.has_value()) << *diff;
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicOracleTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace ttmqo
