#include "query/query.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace ttmqo {
namespace {

template <typename T>
void SortUnique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  return kind == QueryKind::kAcquisition ? "acquisition" : "aggregation";
}

Query Query::Acquisition(QueryId id, std::vector<Attribute> attributes,
                         PredicateSet predicates, SimDuration epoch) {
  CheckArg(!attributes.empty(),
           "Query::Acquisition: attribute list must be non-empty");
  CheckArg(IsValidEpochDuration(epoch),
           "Query: epoch duration must be a positive multiple of 2048 ms");
  Query q;
  q.id_ = id;
  q.kind_ = QueryKind::kAcquisition;
  attributes.push_back(Attribute::kNodeId);
  SortUnique(attributes);
  q.attributes_ = std::move(attributes);
  q.predicates_ = std::move(predicates);
  q.epoch_ = epoch;
  return q;
}

Query Query::Aggregation(QueryId id, std::vector<AggregateSpec> aggregates,
                         PredicateSet predicates, SimDuration epoch) {
  CheckArg(!aggregates.empty(),
           "Query::Aggregation: aggregate list must be non-empty");
  CheckArg(IsValidEpochDuration(epoch),
           "Query: epoch duration must be a positive multiple of 2048 ms");
  Query q;
  q.id_ = id;
  q.kind_ = QueryKind::kAggregation;
  SortUnique(aggregates);
  q.aggregates_ = std::move(aggregates);
  q.predicates_ = std::move(predicates);
  q.epoch_ = epoch;
  return q;
}

std::vector<Attribute> Query::AcquiredAttributes() const {
  std::vector<Attribute> attrs = attributes_;
  for (const AggregateSpec& agg : aggregates_) {
    attrs.push_back(agg.attribute);
  }
  for (Attribute attr : predicates_.ReferencedAttributes()) {
    attrs.push_back(attr);
  }
  SortUnique(attrs);
  return attrs;
}

std::size_t Query::ResultPayloadBytes() const {
  std::size_t bytes = 0;
  if (kind_ == QueryKind::kAcquisition) {
    for (Attribute attr : attributes_) bytes += AttributeSizeBytes(attr);
  } else {
    for (const AggregateSpec& agg : aggregates_) {
      bytes += PartialAggregate(agg).SerializedSizeBytes();
    }
  }
  return bytes;
}

Query Query::WithId(QueryId id) const {
  Query q = *this;
  q.id_ = id;
  return q;
}

Query Query::WithLifetime(SimDuration lifetime) const {
  CheckArg(lifetime == 0 || lifetime >= epoch_,
           "Query::WithLifetime: a finite lifetime must cover one epoch");
  Query q = *this;
  q.lifetime_ = lifetime;
  return q;
}

std::string Query::ToSql() const {
  std::ostringstream out;
  out << "SELECT ";
  if (kind_ == QueryKind::kAcquisition) {
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      if (i > 0) out << ", ";
      out << AttributeName(attributes_[i]);
    }
  } else {
    for (std::size_t i = 0; i < aggregates_.size(); ++i) {
      if (i > 0) out << ", ";
      out << aggregates_[i].ToString();
    }
  }
  out << " FROM sensors";
  if (!predicates_.IsUnconstrained()) {
    out << " WHERE " << predicates_.ToString();
  }
  out << " EPOCH DURATION " << epoch_;
  if (lifetime_ > 0) out << " FOR " << lifetime_;
  return out.str();
}

}  // namespace ttmqo
