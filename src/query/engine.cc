#include "query/engine.h"

namespace ttmqo {

std::size_t PropagationPayloadBytes(const Query& query) {
  // id (2) + kind/flags (1) + epoch duration in base ticks (2).
  std::size_t bytes = 5;
  // Projection: one byte per attribute; aggregates: op + attribute.
  bytes += 1 + (query.kind() == QueryKind::kAcquisition
                    ? query.attributes().size()
                    : 2 * query.aggregates().size());
  // Predicates: attribute (1) + min (2) + max (2) each.
  bytes += 1 + 5 * query.predicates().AsList().size();
  return bytes;
}

}  // namespace ttmqo
