// Workload generation.
//
// `RandomQueryModel` reproduces the random query model of Section 4.3:
// queries randomly select attributes (nodeid, light, temp), aggregations
// (MAX, MIN), predicates and epoch durations (8192 ms to 24576 ms, all
// divisible by 4096 ms).  The predicate selectivity knob fixes each
// predicate's range coverage, as in the Figure 5 experiment.
// `DynamicSchedule` turns the model into an arrival/termination event list
// with a given mean inter-arrival time and mean duration (the paper keeps
// arrivals at one query per 40 s and varies duration to control the number
// of concurrent queries).
#pragma once

#include <vector>

#include "query/query.h"
#include "util/rng.h"
#include "util/time.h"

namespace ttmqo {

/// Parameters of the Section 4.3 random query model.
struct QueryModelParams {
  /// Probability that a generated query is an aggregation query.
  double aggregation_fraction = 0.5;
  /// Attributes a query may project / aggregate over.
  std::vector<Attribute> attributes = {Attribute::kLight, Attribute::kTemp};
  /// Operators an aggregation query may use.
  std::vector<AggregateOp> operators = {AggregateOp::kMax, AggregateOp::kMin};
  /// Candidate epoch durations (ms); the paper uses 8192..24576 step 4096.
  std::vector<SimDuration> epochs = {8192, 12288, 16384, 20480, 24576};
  /// Probability that a query carries a predicate at all.
  double predicate_probability = 1.0;
  /// Range coverage of each predicate (the Figure 5 selectivity knob);
  /// 1.0 means the predicate spans the whole attribute range.
  double predicate_selectivity = 0.6;
  /// When true, each predicate's coverage is drawn uniformly from
  /// (0.1, predicate_selectivity] instead of being fixed — the "randomly
  /// select predicates" model of Section 4.3.
  bool randomize_selectivity = false;
  /// Maximum number of range predicates per query (distinct attributes);
  /// the actual count is uniform in [0/1, max] depending on
  /// `predicate_probability`.
  std::size_t max_predicates = 1;
  /// Skewed workloads (Section 4.3 conjectures their similarity — and thus
  /// TTMQO's benefit — is greater): when > 0, queries are drawn from a
  /// fixed pool of this many templates with an 80/20 skew (80 % of queries
  /// come from the hottest 20 % of templates) instead of being fresh
  /// random draws.  0 disables the pool.
  std::size_t template_pool = 0;
  /// When true, acquisition queries project every sensed attribute
  /// (the Figure 5 setup); otherwise they project 1-2 random attributes.
  bool acquisition_selects_all = false;
};

/// Draws queries from the random model.  Deterministic in the seed.
class RandomQueryModel {
 public:
  RandomQueryModel(QueryModelParams params, std::uint64_t seed);

  /// Generates the next random query with identifier `id`.
  Query Next(QueryId id);

  const QueryModelParams& params() const { return params_; }

 private:
  PredicateSet RandomPredicates();
  Query FreshQuery(QueryId id);

  QueryModelParams params_;
  Rng rng_;
  std::vector<Query> templates_;
};

/// One submit/terminate event of a workload schedule.
struct WorkloadEvent {
  enum class Kind { kSubmit, kTerminate };
  SimTime time = 0;
  Kind kind = Kind::kSubmit;
  /// Valid for kSubmit.
  std::optional<Query> query;
  /// The affected query id (also set for kSubmit).
  QueryId id = kInvalidQueryId;
};

/// Builds a dynamic schedule: `count` queries arriving with exponential
/// inter-arrival times (mean `mean_interarrival_ms`), each running for an
/// exponential duration (mean `mean_duration_ms`, at least one epoch).
/// Events are sorted by time.  The expected number of concurrent queries is
/// mean_duration / mean_interarrival (Little's law).
std::vector<WorkloadEvent> DynamicSchedule(RandomQueryModel& model,
                                           std::size_t count,
                                           double mean_interarrival_ms,
                                           double mean_duration_ms,
                                           std::uint64_t seed,
                                           QueryId first_id = 1);

/// Builds a static schedule: every query submitted at `at` (before the
/// first epoch boundary), never terminated.
std::vector<WorkloadEvent> StaticSchedule(const std::vector<Query>& queries,
                                          SimTime at = 16);

}  // namespace ttmqo
