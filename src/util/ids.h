// Identifier types shared across layers.
#pragma once

#include <cstdint>

namespace ttmqo {

/// A sensor node address.  TinyOS motes use 16-bit addresses; node 0 is the
/// base station (Section 4.1 places it at the upper-left grid corner).
using NodeId = std::uint16_t;

/// The reserved address of the base station / sink.
inline constexpr NodeId kBaseStationId = 0;

/// A user query identifier, unique within a base station's lifetime.
using QueryId = std::uint32_t;

/// An invalid/absent query id.
inline constexpr QueryId kInvalidQueryId = 0;

}  // namespace ttmqo
