
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/attribute.cc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/attribute.cc.o" "gcc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/attribute.cc.o.d"
  "/root/repo/src/sensing/field_model.cc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/field_model.cc.o" "gcc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/field_model.cc.o.d"
  "/root/repo/src/sensing/reading.cc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/reading.cc.o" "gcc" "src/sensing/CMakeFiles/ttmqo_sensing.dir/reading.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
