#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace ttmqo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, std::string_view component,
             std::string_view message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

Logger::~Logger() { LogLine(level_, component_, stream_.str()); }

}  // namespace ttmqo
