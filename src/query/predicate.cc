#include "query/predicate.h"

#include <sstream>

namespace ttmqo {
namespace {

// A constraint equal to (or wider than) the physical range is vacuous.
bool IsVacuous(Attribute attr, const Interval& range) {
  return range.Covers(AttributeRange(attr));
}

}  // namespace

bool Predicate::Matches(const Reading& reading) const {
  const std::optional<double> value = reading.Get(attribute);
  return value.has_value() && range.Contains(*value);
}

std::string Predicate::ToString() const {
  std::ostringstream out;
  out << range.lo() << " <= " << AttributeName(attribute)
      << " <= " << range.hi();
  return out.str();
}

PredicateSet PredicateSet::Of(const std::vector<Predicate>& predicates) {
  PredicateSet set;
  for (const Predicate& p : predicates) {
    set.Constrain(p.attribute, p.range);
  }
  return set;
}

void PredicateSet::Constrain(Attribute attribute, const Interval& range) {
  auto& slot = constraints_[AttributeIndex(attribute)];
  const Interval combined = slot.has_value() ? slot->Intersect(range) : range;
  if (IsVacuous(attribute, combined)) {
    slot.reset();
  } else {
    slot = combined;
  }
}

bool PredicateSet::IsUnconstrained() const {
  for (const auto& c : constraints_) {
    if (c.has_value()) return false;
  }
  return true;
}

bool PredicateSet::IsUnsatisfiable() const {
  for (const auto& c : constraints_) {
    if (c.has_value() && c->empty()) return true;
  }
  return false;
}

std::optional<Interval> PredicateSet::ConstraintOn(Attribute attribute) const {
  return constraints_[AttributeIndex(attribute)];
}

std::vector<Predicate> PredicateSet::AsList() const {
  std::vector<Predicate> list;
  for (Attribute attr : kAllAttributes) {
    const auto& c = constraints_[AttributeIndex(attr)];
    if (c.has_value()) list.push_back(Predicate{attr, *c});
  }
  return list;
}

std::vector<Attribute> PredicateSet::ReferencedAttributes() const {
  std::vector<Attribute> attrs;
  for (Attribute attr : kAllAttributes) {
    if (constraints_[AttributeIndex(attr)].has_value()) attrs.push_back(attr);
  }
  return attrs;
}

bool PredicateSet::Matches(const Reading& reading) const {
  for (Attribute attr : kAllAttributes) {
    const auto& c = constraints_[AttributeIndex(attr)];
    if (!c.has_value()) continue;
    const std::optional<double> value = reading.Get(attr);
    if (!value.has_value() || !c->Contains(*value)) return false;
  }
  return true;
}

bool PredicateSet::CoversSetOf(const PredicateSet& other) const {
  for (Attribute attr : kAllAttributes) {
    const auto& mine = constraints_[AttributeIndex(attr)];
    if (!mine.has_value()) continue;  // we are unconstrained here
    const auto& theirs = other.constraints_[AttributeIndex(attr)];
    // `other` is unconstrained on an attribute we constrain: their matching
    // readings can fall outside our interval.
    if (!theirs.has_value()) return false;
    if (!mine->Covers(*theirs)) return false;
  }
  return true;
}

PredicateSet PredicateSet::IntegrationUnion(const PredicateSet& a,
                                            const PredicateSet& b) {
  PredicateSet result;
  for (Attribute attr : kAllAttributes) {
    const auto& ca = a.constraints_[AttributeIndex(attr)];
    const auto& cb = b.constraints_[AttributeIndex(attr)];
    if (ca.has_value() && cb.has_value()) {
      result.Constrain(attr, ca->Hull(*cb));
    }
    // Constrained in only one input: the union must relax the constraint.
  }
  return result;
}

std::string PredicateSet::ToString() const {
  const std::vector<Predicate> list = AsList();
  if (list.empty()) return "(none)";
  std::ostringstream out;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out << " AND ";
    out << list[i].ToString();
  }
  return out.str();
}

}  // namespace ttmqo
