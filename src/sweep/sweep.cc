#include "sweep/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace ttmqo {

unsigned HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs == 0) jobs = HardwareJobs();
  if (jobs == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> workers;
  const std::size_t n =
      std::min<std::size_t>(jobs, count);
  workers.reserve(n);
  for (std::size_t t = 0; t < n; ++t) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<TimedRunResult> RunMany(const std::vector<RunUnit>& units,
                                    unsigned jobs) {
  std::vector<TimedRunResult> results(units.size());
  ParallelFor(units.size(), jobs, [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    results[i].run = RunExperiment(units[i].config, units[i].schedule);
    results[i].wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
  });
  return results;
}

}  // namespace ttmqo
