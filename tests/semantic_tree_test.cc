// Tests for the Semantic Routing Tree and its dissemination pruning.
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "routing/semantic_tree.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

class SemanticTreeTest : public ::testing::Test {
 protected:
  SemanticTreeTest()
      : topology_(Topology::Grid(4)),
        quality_(topology_, 13),
        tree_(topology_, quality_),
        srt_(topology_, tree_) {}

  Topology topology_;
  LinkQualityMap quality_;
  RoutingTree tree_;
  SemanticRoutingTree srt_;
};

TEST_F(SemanticTreeTest, SubtreeRangesContainEveryDescendant) {
  for (NodeId node = 0; node < topology_.size(); ++node) {
    // Walk each node up to the root; every ancestor's range contains it.
    NodeId cur = node;
    while (true) {
      EXPECT_TRUE(
          srt_.SubtreeIds(cur).Contains(static_cast<double>(node)))
          << "ancestor " << cur << " misses " << node;
      EXPECT_TRUE(srt_.SubtreeX(cur).Contains(topology_.PositionOf(node).x));
      EXPECT_TRUE(srt_.SubtreeY(cur).Contains(topology_.PositionOf(node).y));
      if (cur == kBaseStationId) break;
      cur = tree_.ParentOf(cur);
      if (!srt_.SubtreeIds(cur).Contains(static_cast<double>(node))) break;
    }
  }
}

TEST_F(SemanticTreeTest, RootCoversEverything) {
  EXPECT_TRUE(srt_.SubtreeIds(kBaseStationId).Contains(0));
  EXPECT_TRUE(srt_.SubtreeIds(kBaseStationId)
                  .Contains(static_cast<double>(topology_.size() - 1)));
}

TEST_F(SemanticTreeTest, LeafCoversOnlyItself) {
  for (NodeId node = 0; node < topology_.size(); ++node) {
    if (!tree_.ChildrenOf(node).empty()) continue;
    const Interval& ids = srt_.SubtreeIds(node);
    EXPECT_DOUBLE_EQ(ids.lo(), static_cast<double>(node));
    EXPECT_DOUBLE_EQ(ids.hi(), static_cast<double>(node));
  }
}

TEST_F(SemanticTreeTest, MatchGates) {
  PredicateSet node5 =
      PredicateSet::Of({{Attribute::kNodeId, Interval(5, 5)}});
  PredicateSet value_based =
      PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  EXPECT_TRUE(SemanticRoutingTree::IsPrunable(node5));
  EXPECT_FALSE(SemanticRoutingTree::IsPrunable(value_based));
  EXPECT_TRUE(srt_.SubtreeMayMatch(kBaseStationId, node5));
  // Value-based constraints never prune.
  for (NodeId node = 0; node < topology_.size(); ++node) {
    EXPECT_TRUE(srt_.SubtreeMayMatch(node, value_based));
  }
  // A leaf other than 5 cannot match nodeid = 5.
  for (NodeId node = 1; node < topology_.size(); ++node) {
    if (tree_.ChildrenOf(node).empty() && node != 5) {
      EXPECT_FALSE(srt_.SubtreeMayMatch(node, node5));
    }
  }
}

class SrtEngineTest : public ::testing::TestWithParam<bool> {
 protected:
  SrtEngineTest() : topology_(Topology::Grid(6)), field_(7) {}

  Topology topology_;
  UniformFieldModel field_;
};

TEST_P(SrtEngineTest, NodeIdQueryAnswersIdenticallyWithAndWithoutSrt) {
  const bool innet = GetParam();
  const Query q = ParseQuery(
      1, "SELECT light WHERE nodeid = 17 EPOCH DURATION 4096");
  ResultLog with_srt, without_srt;
  for (bool use_srt : {true, false}) {
    Network network(topology_, RadioParams{}, ChannelParams{}, 42);
    ResultLog& log = use_srt ? with_srt : without_srt;
    std::unique_ptr<QueryEngine> engine;
    if (innet) {
      InNetOptions options;
      options.use_semantic_routing = use_srt;
      engine = std::make_unique<InNetworkEngine>(network, field_, &log,
                                                 options);
    } else {
      TinyDbOptions options;
      options.use_semantic_routing = use_srt;
      engine =
          std::make_unique<TinyDbEngine>(network, field_, &log, options);
    }
    engine->SubmitQuery(q);
    network.sim().RunUntil(8 * 4096);
  }
  const auto diff = CompareResultLogs(without_srt, with_srt, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
  // And the answers are exactly node 17's readings.
  const auto results = with_srt.ResultsFor(1);
  ASSERT_FALSE(results.empty());
  for (const EpochResult* r : results) {
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0].node(), 17);
  }
}

TEST_P(SrtEngineTest, SrtCutsPropagationTraffic) {
  const bool innet = GetParam();
  const Query q = ParseQuery(
      1, "SELECT light WHERE nodeid = 35 EPOCH DURATION 4096");
  std::uint64_t prop[2];
  for (int i = 0; i < 2; ++i) {
    const bool use_srt = i == 0;
    Network network(topology_, RadioParams{}, ChannelParams{}, 42);
    ResultLog log;
    std::unique_ptr<QueryEngine> engine;
    if (innet) {
      InNetOptions options;
      options.use_semantic_routing = use_srt;
      engine = std::make_unique<InNetworkEngine>(network, field_, &log,
                                                 options);
    } else {
      TinyDbOptions options;
      options.use_semantic_routing = use_srt;
      engine =
          std::make_unique<TinyDbEngine>(network, field_, &log, options);
    }
    engine->SubmitQuery(q);
    network.sim().RunUntil(4 * 4096);
    prop[i] = network.ledger().TotalSent(MessageClass::kQueryPropagation);
  }
  // Without SRT every node rebroadcasts (36 messages); with it only the
  // path toward node 35's subtree does.
  EXPECT_LT(prop[0], prop[1] / 2)
      << "with SRT: " << prop[0] << ", flood: " << prop[1];
}

TEST_P(SrtEngineTest, ValueBasedQueriesStillFloodEverywhere) {
  const bool innet = GetParam();
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 900 EPOCH DURATION 4096");
  Network network(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log;
  std::unique_ptr<QueryEngine> engine;
  if (innet) {
    engine = std::make_unique<InNetworkEngine>(network, field_, &log);
  } else {
    engine = std::make_unique<TinyDbEngine>(network, field_, &log);
  }
  engine->SubmitQuery(q);
  network.sim().RunUntil(2 * 4096);
  // One rebroadcast per node (including the base station's initial send).
  EXPECT_EQ(network.ledger().TotalSent(MessageClass::kQueryPropagation),
            topology_.size());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SrtEngineTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "InNetwork" : "TinyDb";
                         });

}  // namespace
}  // namespace ttmqo
