#include "net/simulator.h"

#include <bit>
#include <limits>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace ttmqo {

SimCore::SimCore(std::uint32_t lanes)
    : lanes_(lanes), lane_executed_(lanes, 0) {
  CheckArg(lanes >= 1 && lanes <= kMaxLanes,
           "SimCore: lanes must be in [1, 64]");
}

SimCore::~SimCore() {
  // Drop this thread's flight records: a postmortem from the *next*
  // in-process run (e.g. the following sweep task) must not show this
  // run's tail as if it led up to the failure.
  obs::ClearThreadFlightRing();
}

void SimCore::ScheduleLaneAt(SimTime t, std::uint32_t lane, EventFn fn) {
  CheckArg(t >= now_, "SimCore::ScheduleLaneAt: cannot schedule in the past");
  CheckArg(lane < lanes_, "SimCore::ScheduleLaneAt: bad lane");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    Check(slab_.size() < std::numeric_limits<std::uint32_t>::max(),
          "SimCore: event slab exhausted");
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot] = std::move(fn);
  Push(QueuedEvent{t, next_seq_++, slot, lane});
}

void SimCore::ScheduleGroupAt(SimTime t, std::uint32_t slot) {
  CheckArg(t >= now_, "SimCore::ScheduleGroupAt: cannot schedule in the past");
  Check(dispatcher_ != nullptr,
        "SimCore::ScheduleGroupAt: no group dispatcher registered");
  Push(QueuedEvent{t, next_seq_++, slot, kGroupLane});
}

void SimCore::RunUntil(SimTime until) {
  CheckArg(until >= now_, "SimCore::RunUntil: until must be >= Now()");
  while (!heap_.empty() && heap_.front().time <= until) {
    Step();
  }
  now_ = until;
}

void SimCore::AddExecuted(std::uint64_t mask) {
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    ++lane_executed_[static_cast<std::uint32_t>(std::countr_zero(m))];
  }
}

bool SimCore::Step() {
  if (heap_.empty()) return false;
  const QueuedEvent event = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  now_ = event.time;
  obs::RecordFlight("sim.event", event.time,
                    static_cast<std::int64_t>(event.seq),
                    static_cast<std::int64_t>(event.slot));
  TTMQO_SPAN_SAMPLED("sim.event", 8);
  if (event.lane == kGroupLane) {
    // The dispatcher recycles the group slot itself (mirroring the slab
    // discipline below) and bumps each member lane's executed count.
    dispatcher_->DispatchGroup(event.slot);
    return true;
  }
  // Move the callable out and recycle its slot *before* invoking: the
  // handler may schedule new events, which can reuse the slot or grow the
  // slab (invalidating slab references, never this local).
  EventFn fn = std::move(slab_[event.slot]);
  free_slots_.push_back(event.slot);
  ++lane_executed_[event.lane];
  fn();
  return true;
}

void SimCore::Push(QueuedEvent event) {
  heap_.push_back(event);
  SiftUp(heap_.size() - 1);
}

void SimCore::SiftUp(std::size_t i) {
  const QueuedEvent e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void SimCore::SiftDown(std::size_t i) {
  const QueuedEvent e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) ++child;
    if (!Earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

Simulator::Simulator()
    : owned_(std::make_unique<SimCore>(1)), core_(owned_.get()), lane_(0) {}

Simulator::Simulator(SimCore& core, std::uint32_t lane)
    : core_(&core), lane_(lane) {
  CheckArg(lane < core.lanes(), "Simulator: lane out of range");
}

void Simulator::ScheduleAfter(SimDuration delay, EventFn fn) {
  CheckArg(delay >= 0, "Simulator::ScheduleAfter: delay must be >= 0");
  ScheduleAt(Now() + delay, std::move(fn));
}

}  // namespace ttmqo
