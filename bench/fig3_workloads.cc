// Reproduces Figure 3: average transmission time of WORKLOAD_A/B/C under
// {baseline, base-station-only, in-network-only, two-tier} on 16- and
// 64-node grids.
//
// Paper shapes to reproduce (Section 4.2):
//  * WORKLOAD_A: both tiers save substantially (paper: ~61% at 16 nodes,
//    ~75% at 64 vs baseline);
//  * WORKLOAD_B: in-network optimization considerably better than
//    base-station optimization, with the in-network advantage growing with
//    network size;
//  * WORKLOAD_C: the two tiers are mutually complementary; TTMQO beats
//    either alone (paper: up to ~82% savings);
//  * at 16 nodes base-station optimization is more effective than
//    in-network optimization; at 64 nodes the contrary holds.
//
// The contention model defaults ON (collision probability 0.02 per
// concurrently interfering transmission): the paper's TOSSIM runs include a
// real CSMA stack and explicitly count retransmissions, and the chattier a
// scheme the more it pays.  Pass --collisions=0 for a lossless channel.
//
// The 24 (grid, workload, mode) cells are independent simulations; they
// run on the sweep orchestrator's thread pool (--jobs) and are collected
// by task index, so the tables are identical for any job count.  A shared
// --trace-out writer is not thread-safe, so tracing forces --jobs=1.
//
// Usage: fig3_workloads [--duration-ms=N] [--seed=N] [--collisions=P]
//                       [--jobs=N] [--metrics-out=fig3.json]
//                       [--trace-out=fig3.jsonl]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "metrics/registry.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const SimDuration duration = flags.GetInt("duration-ms", 40 * 12288);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 99));
  const double collisions = flags.GetDouble("collisions", 0.02);
  auto jobs = static_cast<unsigned>(flags.GetInt("jobs", 0));
  const auto metrics_out = flags.GetOptional("metrics-out");
  const auto trace_out = flags.GetOptional("trace-out");
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  MetricsRegistry registry;
  std::ofstream trace_file;
  std::unique_ptr<JsonlTraceWriter> trace_writer;
  if (trace_out.has_value()) {
    trace_file.open(*trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s\n", trace_out->c_str());
      return 1;
    }
    trace_writer = std::make_unique<JsonlTraceWriter>(trace_file);
    if (jobs != 1) {
      std::fprintf(stderr,
                   "note: --trace-out shares one writer across runs; "
                   "forcing --jobs=1\n");
      jobs = 1;
    }
  }

  std::printf("Figure 3: average transmission time (%% of time transmitting "
              "per node)\n");
  std::printf("duration=%lldms seed=%llu collision_prob=%.3f\n\n",
              static_cast<long long>(duration),
              static_cast<unsigned long long>(seed), collisions);

  const std::size_t sides[] = {4, 8};
  const char* workloads[] = {"A", "B", "C"};
  const OptimizationMode modes[] = {
      OptimizationMode::kBaseline, OptimizationMode::kBaseStationOnly,
      OptimizationMode::kInNetworkOnly, OptimizationMode::kTwoTier};

  std::vector<RunUnit> units;
  for (const std::size_t side : sides) {
    for (const char* workload : workloads) {
      for (const OptimizationMode mode : modes) {
        RunUnit unit;
        unit.config.grid_side = side;
        unit.config.mode = mode;
        unit.config.field = FieldKind::kCorrelated;
        unit.config.duration_ms = duration;
        unit.config.seed = seed;
        unit.config.channel.collision_prob = collisions;
        if (metrics_out.has_value()) {
          unit.config.obs.registry = &registry;  // thread-safe by contract
          unit.config.obs.labels = {
              {"nodes", std::to_string(side * side)},
              {"workload", workload},
              {"mode", std::string(OptimizationModeName(mode))}};
        }
        if (trace_writer != nullptr) {
          unit.config.obs.trace = trace_writer.get();
        }
        unit.schedule = StaticSchedule(WorkloadByName(workload));
        units.push_back(std::move(unit));
      }
    }
  }

  const std::vector<TimedRunResult> results = RunMany(units, jobs);

  std::size_t next = 0;
  for (const std::size_t side : sides) {
    TablePrinter table({"workload", "baseline", "bs-only", "innet-only",
                        "ttmqo", "bs save%", "innet save%", "ttmqo save%"});
    for (const char* workload : workloads) {
      double fractions[4] = {0, 0, 0, 0};
      for (double& fraction : fractions) {
        fraction =
            results[next++].run.summary.avg_transmission_fraction * 100.0;
      }
      table.AddRow({std::string("WORKLOAD_") + workload,
                    TablePrinter::Num(fractions[0], 4),
                    TablePrinter::Num(fractions[1], 4),
                    TablePrinter::Num(fractions[2], 4),
                    TablePrinter::Num(fractions[3], 4),
                    TablePrinter::Num(SavingsPercent(fractions[0], fractions[1]), 1),
                    TablePrinter::Num(SavingsPercent(fractions[0], fractions[2]), 1),
                    TablePrinter::Num(SavingsPercent(fractions[0], fractions[3]), 1)});
    }
    std::printf("--- %zu nodes (%zux%zu grid) ---\n", side * side, side, side);
    table.Print(std::cout);
    std::printf("\n");
  }
  if (metrics_out.has_value()) {
    std::ofstream out(*metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out->c_str());
      return 1;
    }
    registry.WriteJson(out);
    out << "\n";
    std::printf("wrote metrics JSON to %s\n", metrics_out->c_str());
  }
  if (trace_writer != nullptr) {
    trace_writer->Flush();
    std::printf("wrote %llu trace events to %s\n",
                static_cast<unsigned long long>(trace_writer->events()),
                trace_out->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
