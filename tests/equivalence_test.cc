// The repo's central property test: multi-query optimization must never
// change query semantics.  For every static workload, optimization mode and
// field model, the per-user answer streams must equal the TinyDB baseline's
// streams exactly (aggregates within floating-point merge tolerance).
#include <gtest/gtest.h>

#include <tuple>

#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

using EquivalenceParam =
    std::tuple<std::string /*workload*/, OptimizationMode, FieldKind>;

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceParam> {};

RunConfig BaseConfig(FieldKind field, OptimizationMode mode) {
  RunConfig config;
  config.grid_side = 4;
  config.field = field;
  config.mode = mode;
  config.duration_ms = 8 * 12288;  // several epochs of every duration used
  config.maintenance_period_ms = 30000;
  config.seed = 99;
  return config;
}

TEST_P(EquivalenceTest, UserAnswerStreamsMatchBaseline) {
  const auto& [workload, mode, field] = GetParam();
  const std::vector<Query> queries = WorkloadByName(workload);
  const auto schedule = StaticSchedule(queries);

  const RunResult baseline =
      RunExperiment(BaseConfig(field, OptimizationMode::kBaseline), schedule);
  const RunResult optimized = RunExperiment(BaseConfig(field, mode), schedule);

  ASSERT_GT(baseline.results.size(), 0u);
  const auto diff = CompareResultLogs(baseline.results, optimized.results,
                                      queries, 1e-6);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, EquivalenceTest,
    ::testing::Combine(
        ::testing::Values("A", "B", "C"),
        ::testing::Values(OptimizationMode::kBaseStationOnly,
                          OptimizationMode::kInNetworkOnly,
                          OptimizationMode::kTwoTier),
        ::testing::Values(FieldKind::kUniform, FieldKind::kCorrelated)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& param_info) {
      std::string mode;
      switch (std::get<1>(param_info.param)) {
        case OptimizationMode::kBaseStationOnly:
          mode = "BsOnly";
          break;
        case OptimizationMode::kInNetworkOnly:
          mode = "InNetOnly";
          break;
        default:
          mode = "TwoTier";
          break;
      }
      return "Workload" + std::get<0>(param_info.param) + "_" + mode +
             (std::get<2>(param_info.param) == FieldKind::kUniform ? "_Uniform"
                                                             : "_Correlated");
    });

// The headline claim of the paper as a test: on a lossless channel the
// optimized modes never transmit more than the baseline, and the two-tier
// scheme saves substantially on the shared-savings workloads.
class SavingsTest : public ::testing::TestWithParam<std::string> {};

RunConfig LongConfig(OptimizationMode mode) {
  // Long enough to amortize the one-off rewrite churn (abort/inject
  // floods) over steady-state result traffic, as in the paper's runs.
  RunConfig config = BaseConfig(FieldKind::kCorrelated, mode);
  config.duration_ms = 40 * 12288;
  return config;
}

TEST_P(SavingsTest, OptimizedModesDoNotExceedBaselineTraffic) {
  const std::vector<Query> queries = WorkloadByName(GetParam());
  const auto schedule = StaticSchedule(queries);
  const RunResult baseline =
      RunExperiment(LongConfig(OptimizationMode::kBaseline), schedule);
  for (OptimizationMode mode :
       {OptimizationMode::kBaseStationOnly, OptimizationMode::kInNetworkOnly,
        OptimizationMode::kTwoTier}) {
    const RunResult optimized = RunExperiment(LongConfig(mode), schedule);
    EXPECT_LT(optimized.summary.total_transmit_ms,
              1.02 * baseline.summary.total_transmit_ms)
        << OptimizationModeName(mode);
  }
}

TEST_P(SavingsTest, TwoTierSavesSubstantially) {
  const std::vector<Query> queries = WorkloadByName(GetParam());
  const auto schedule = StaticSchedule(queries);
  const RunResult baseline =
      RunExperiment(LongConfig(OptimizationMode::kBaseline), schedule);
  const RunResult two_tier =
      RunExperiment(LongConfig(OptimizationMode::kTwoTier), schedule);
  EXPECT_LT(two_tier.summary.avg_transmission_fraction,
            0.75 * baseline.summary.avg_transmission_fraction);
}

TEST(SavingsShapeTest, WorkloadBFavorsInNetworkOverBaseStation) {
  // The defining property of WORKLOAD_B (Section 4.2): in-network
  // optimization beats base-station optimization.
  const auto schedule = StaticSchedule(WorkloadB());
  const RunResult bs =
      RunExperiment(LongConfig(OptimizationMode::kBaseStationOnly), schedule);
  const RunResult innet =
      RunExperiment(LongConfig(OptimizationMode::kInNetworkOnly), schedule);
  EXPECT_LT(innet.summary.avg_transmission_fraction,
            bs.summary.avg_transmission_fraction);
}

TEST(SavingsShapeTest, WorkloadCTwoTierBeatsEitherTierAlone) {
  // The defining property of WORKLOAD_C: the tiers are mutually
  // complementary.
  const auto schedule = StaticSchedule(WorkloadC());
  const RunResult bs =
      RunExperiment(LongConfig(OptimizationMode::kBaseStationOnly), schedule);
  const RunResult innet =
      RunExperiment(LongConfig(OptimizationMode::kInNetworkOnly), schedule);
  const RunResult two =
      RunExperiment(LongConfig(OptimizationMode::kTwoTier), schedule);
  EXPECT_LT(two.summary.avg_transmission_fraction,
            bs.summary.avg_transmission_fraction);
  EXPECT_LT(two.summary.avg_transmission_fraction,
            innet.summary.avg_transmission_fraction);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SavingsTest,
                         ::testing::Values("A", "B", "C"));

}  // namespace
}  // namespace ttmqo
