#include "sensing/field_model.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace ttmqo {
namespace {

// Stateless 64-bit mix (SplitMix64 finalizer): the basis of pure sampling.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashKey(std::uint64_t seed, NodeId node, Attribute attr,
                      std::int64_t time_bucket) {
  std::uint64_t h = Mix(seed);
  h = Mix(h ^ node);
  h = Mix(h ^ static_cast<std::uint64_t>(AttributeIndex(attr) + 1));
  h = Mix(h ^ static_cast<std::uint64_t>(time_bucket));
  return h;
}

// Uniform double in [0, 1) from a hash.
double UnitUniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

double ClampToRange(double v, const Interval& range) {
  if (v < range.lo()) return range.lo();
  if (v > range.hi()) return range.hi();
  return v;
}

}  // namespace

UniformFieldModel::UniformFieldModel(std::uint64_t seed,
                                     SimDuration resample_period)
    : seed_(seed), resample_period_(resample_period) {
  CheckArg(resample_period > 0,
           "UniformFieldModel: resample_period must be positive");
}

double UniformFieldModel::Sample(NodeId node, const Position& pos,
                                 Attribute attr, SimTime time) const {
  if (attr == Attribute::kNodeId) return static_cast<double>(node);
  if (attr == Attribute::kX) return pos.x;
  if (attr == Attribute::kY) return pos.y;
  const Interval range = AttributeRange(attr);
  const std::int64_t bucket = time / resample_period_;
  const double u = UnitUniform(HashKey(seed_, node, attr, bucket));
  return range.lo() + u * range.Length();
}

CorrelatedFieldModel::CorrelatedFieldModel(std::uint64_t seed, Params params)
    : seed_(seed), params_(params) {
  CheckArg(params.temporal_period > 0,
           "CorrelatedFieldModel: temporal_period must be positive");
  CheckArg(params.field_extent_feet > 0,
           "CorrelatedFieldModel: field_extent_feet must be positive");
}

double CorrelatedFieldModel::Sample(NodeId node, const Position& pos,
                                    Attribute attr, SimTime time) const {
  if (attr == Attribute::kNodeId) return static_cast<double>(node);
  if (attr == Attribute::kX) return pos.x;
  if (attr == Attribute::kY) return pos.y;
  const Interval range = AttributeRange(attr);
  const double span = range.Length();

  // Gradient direction is fixed per (seed, attr) so different attributes are
  // decorrelated but each is spatially smooth.
  const std::uint64_t dir_hash = HashKey(seed_, 0, attr, -1);
  const double angle = UnitUniform(dir_hash) * 2.0 * std::numbers::pi;
  const double along =
      (pos.x * std::cos(angle) + pos.y * std::sin(angle)) /
      params_.field_extent_feet;
  const double spatial =
      params_.spatial_amplitude * span * 0.5 * (1.0 + std::sin(along * 2.0));

  const double phase = 2.0 * std::numbers::pi * static_cast<double>(time) /
                       static_cast<double>(params_.temporal_period);
  const double temporal = params_.temporal_amplitude * span * 0.5 *
                          (1.0 + std::sin(phase + UnitUniform(dir_hash) * 6.0));

  const std::int64_t bucket = time / kMinEpochDurationMs;
  const double noise = params_.noise_amplitude * span *
                       (UnitUniform(HashKey(seed_, node, attr, bucket)) - 0.5);

  const double base = range.lo() +
                      0.15 * span;  // keep away from the floor of the range
  return ClampToRange(base + spatial + temporal + noise, range);
}

HotspotFieldModel::HotspotFieldModel(std::uint64_t seed, Params params)
    : base_(seed, CorrelatedFieldModel::Params{}), params_(params) {
  CheckArg(params.hotspot_radius_feet > 0,
           "HotspotFieldModel: hotspot_radius_feet must be positive");
  CheckArg(params.orbit_period > 0,
           "HotspotFieldModel: orbit_period must be positive");
}

double HotspotFieldModel::Sample(NodeId node, const Position& pos,
                                 Attribute attr, SimTime time) const {
  const double background = base_.Sample(node, pos, attr, time);
  if (IsConstantAttribute(attr)) return background;

  const double phase = 2.0 * std::numbers::pi * static_cast<double>(time) /
                       static_cast<double>(params_.orbit_period);
  const Position hotspot{
      params_.center.x + params_.orbit_radius_feet * std::cos(phase),
      params_.center.y + params_.orbit_radius_feet * std::sin(phase)};
  const double d = Distance(pos, hotspot);
  if (d >= params_.hotspot_radius_feet) return background;

  const Interval range = AttributeRange(attr);
  const double boost = params_.intensity * range.Length() *
                       (1.0 - d / params_.hotspot_radius_feet);
  return ClampToRange(background + boost, range);
}

}  // namespace ttmqo
