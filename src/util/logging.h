// Minimal leveled logging to stderr.
//
// The simulator is run inside tests and benchmarks, so logging defaults to
// `kWarning` and is globally adjustable.  Log lines carry the simulation
// component and are flushed per line.
#pragma once

#include <sstream>
#include <string_view>

namespace ttmqo {

/// Severity of a log statement.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

/// Emits one log line (if `level` passes the global filter).
void LogLine(LogLevel level, std::string_view component,
             std::string_view message);

/// Stream-style log statement builder:
///   Logger(LogLevel::kInfo, "net") << "node " << id << " joined";
/// The line is emitted when the temporary is destroyed.
class Logger {
 public:
  Logger(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace ttmqo
