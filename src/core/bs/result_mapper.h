// Mapping synthetic-query results back to user-query results.
//
// "After the sensor network returns results for the synthetic queries,
// corresponding results for user queries can be easily obtained through
// mapping and calculation" (Section 1).  For each member user query whose
// epoch fires at the synthetic result's epoch time:
//
//  * acquisition member over an acquisition synthetic: re-filter the rows
//    with the member's own predicates and project its attribute list;
//  * aggregation member over an aggregation synthetic: select the member's
//    aggregate subset (predicates are identical by construction);
//  * aggregation member over an acquisition synthetic: re-filter the raw
//    rows and compute the aggregates at the base station.
#pragma once

#include <vector>

#include "core/bs/rewriter.h"
#include "query/result.h"

namespace ttmqo {

/// Derives the per-user results implied by one synthetic epoch result.
/// Only members whose epoch divides the result's epoch time are answered
/// (the synthetic query runs at the GCD of the member epochs, so it also
/// fires at instants no member needs).
std::vector<EpochResult> MapSyntheticResult(const EpochResult& synthetic,
                                            const SyntheticQuery& sq);

}  // namespace ttmqo
