// A sensor reading: one node's attribute values at one sample instant.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "sensing/attribute.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// The values a node observed when it sampled its sensors.  A reading always
/// carries the node id; sensed attributes are present only if sampled.
class Reading {
 public:
  Reading() = default;

  /// Creates a reading for `node` at `time` with `nodeid` pre-populated.
  Reading(NodeId node, SimTime time);

  /// The node that produced the reading.
  NodeId node() const { return node_; }

  /// The sample instant.
  SimTime time() const { return time_; }

  /// Stores an attribute value (overwrites any previous value).
  void Set(Attribute attr, double value);

  /// The value of `attr`, or nullopt when it was not sampled.
  std::optional<double> Get(Attribute attr) const;

  /// The value of `attr`; throws when absent.
  double GetOrThrow(Attribute attr) const;

  /// True when `attr` was sampled.
  bool Has(Attribute attr) const;

  /// Human-readable rendering for logs.
  std::string ToString() const;

 private:
  NodeId node_ = 0;
  SimTime time_ = 0;
  std::array<double, kNumAttributes> values_{};
  std::array<bool, kNumAttributes> present_{};
};

}  // namespace ttmqo
