file(REMOVE_RECURSE
  "CMakeFiles/innet_packing_test.dir/innet_packing_test.cc.o"
  "CMakeFiles/innet_packing_test.dir/innet_packing_test.cc.o.d"
  "innet_packing_test"
  "innet_packing_test.pdb"
  "innet_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
