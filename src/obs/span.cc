#include "obs/span.h"

#include <time.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace ttmqo::obs {

std::uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

namespace span_internal {
std::atomic<bool> g_enabled{true};
}  // namespace span_internal

void SetSpansEnabled(bool enabled) {
  span_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Per-site aggregate slot, keyed by the name literal's address (two call
/// sites sharing one literal may or may not share a slot; the snapshot
/// merges by string content anyway).
struct StatSlot {
  const char* name = nullptr;
  std::uint64_t count = 0;         // scaled (estimated) executions
  std::uint64_t records = 0;       // timed executions
  std::uint64_t total_ns = 0;
  std::uint64_t total_cpu_ns = 0;
  std::uint64_t estimated_total_ns = 0;
};

/// One thread's span state: a wrapping record ring plus an open-addressed
/// aggregate table.  Single writer (the owning thread); snapshot readers
/// copy racily under the registry lock.
struct ThreadSpanBuffer {
  static constexpr std::size_t kCapacity = 4096;  // power of two
  static constexpr std::size_t kStatSlots = 256;  // power of two

  std::array<SpanRecord, kCapacity> ring;
  std::uint64_t next = 0;  ///< total records ever pushed
  std::array<StatSlot, kStatSlots> stats;
  std::uint64_t stat_overflow = 0;  ///< spans dropped from a full table
  std::uint32_t depth = 0;
  std::uint32_t tid = 0;
  std::atomic<bool> live{false};

  void Push(const SpanRecord& record) {
    ring[next & (kCapacity - 1)] = record;
    ++next;
  }

  StatSlot* FindStat(const char* name) {
    const auto key = reinterpret_cast<std::uintptr_t>(name);
    std::size_t i = (key >> 4) * 0x9e3779b9u & (kStatSlots - 1);
    for (std::size_t probes = 0; probes < kStatSlots; ++probes) {
      StatSlot& slot = stats[i];
      if (slot.name == name) return &slot;
      if (slot.name == nullptr) {
        slot.name = name;
        return &slot;
      }
      i = (i + 1) & (kStatSlots - 1);
    }
    ++stat_overflow;
    return nullptr;
  }

  void Account(const char* name, std::uint64_t dur_ns, std::uint64_t cpu_ns,
               bool has_cpu, unsigned shift) {
    StatSlot* slot = FindStat(name);
    if (slot == nullptr) return;
    slot->count += 1ull << shift;
    slot->records += 1;
    slot->total_ns += dur_ns;
    slot->estimated_total_ns += dur_ns << shift;
    if (has_cpu) slot->total_cpu_ns += cpu_ns;
  }

  void Reset() {
    next = 0;
    depth = 0;
    stat_overflow = 0;
    stats.fill(StatSlot{});
  }
};

/// Records archived from recycled buffers, with their original tid.
struct ArchivedRecord {
  std::uint32_t tid;
  SpanRecord record;
};

/// Buffers are owned here and never destroyed (always reachable, so a
/// LeakSanitizer-gated CI stays clean); exited threads park their buffer on
/// the free list and later threads recycle it after its records are
/// archived.
struct SpanRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadSpanBuffer>> buffers;
  std::vector<ThreadSpanBuffer*> free_list;
  std::vector<ArchivedRecord> archive;
  std::uint64_t archive_dropped = 0;
  std::uint32_t next_tid = 0;

  static constexpr std::size_t kMaxArchive = 32768;

  ThreadSpanBuffer* Claim() {
    std::lock_guard<std::mutex> lock(mu);
    ThreadSpanBuffer* buffer;
    if (!free_list.empty()) {
      buffer = free_list.back();
      free_list.pop_back();
      ArchiveLocked(*buffer);
      buffer->Reset();
    } else {
      buffers.push_back(std::make_unique<ThreadSpanBuffer>());
      buffer = buffers.back().get();
    }
    buffer->tid = next_tid++;
    buffer->live.store(true, std::memory_order_relaxed);
    return buffer;
  }

  void Release(ThreadSpanBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mu);
    buffer->live.store(false, std::memory_order_relaxed);
    free_list.push_back(buffer);
  }

  /// Preserves a recycled buffer's records so a joined worker's spans stay
  /// visible in later snapshots.  Bounded: the oldest half is dropped when
  /// the archive outgrows kMaxArchive.
  void ArchiveLocked(const ThreadSpanBuffer& buffer) {
    const std::uint64_t kept =
        std::min<std::uint64_t>(buffer.next, ThreadSpanBuffer::kCapacity);
    for (std::uint64_t i = buffer.next - kept; i < buffer.next; ++i) {
      archive.push_back(
          {buffer.tid, buffer.ring[i & (ThreadSpanBuffer::kCapacity - 1)]});
    }
    if (archive.size() > kMaxArchive) {
      const std::size_t excess = archive.size() - kMaxArchive / 2;
      archive_dropped += excess;
      archive.erase(archive.begin(),
                    archive.begin() + static_cast<std::ptrdiff_t>(excess));
    }
  }
};

SpanRegistry& Registry() {
  static SpanRegistry* registry = new SpanRegistry();  // never destroyed
  return *registry;
}

/// Claims a buffer on first use and parks it when the thread exits.
struct ThreadSpanHandle {
  ThreadSpanBuffer* buffer = Registry().Claim();
  ~ThreadSpanHandle() { Registry().Release(buffer); }
};

ThreadSpanBuffer& CurrentBuffer() {
  static thread_local ThreadSpanHandle handle;
  return *handle.buffer;
}

}  // namespace

void SpanScope::Begin(const char* name, bool with_cpu) {
  name_ = name;
  with_cpu_ = with_cpu;
  ++CurrentBuffer().depth;
  if (with_cpu) start_cpu_ns_ = ThreadCpuNs();
  start_ns_ = NowNs();
}

void SpanScope::End() {
  const std::uint64_t end_ns = NowNs();
  ThreadSpanBuffer& buffer = CurrentBuffer();
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = end_ns - start_ns_;
  record.depth = --buffer.depth;
  if (with_cpu_) {
    record.cpu_ns = ThreadCpuNs() - start_cpu_ns_;
    record.has_cpu = true;
  }
  buffer.Push(record);
  buffer.Account(name_, record.dur_ns, record.cpu_ns, record.has_cpu,
                 /*shift=*/0);
}

void SampledSpanScope::Begin(const char* name, unsigned shift) {
  name_ = name;
  shift_ = static_cast<std::uint8_t>(shift);
  ++CurrentBuffer().depth;
  start_ns_ = NowNs();
}

void SampledSpanScope::End() {
  const std::uint64_t end_ns = NowNs();
  ThreadSpanBuffer& buffer = CurrentBuffer();
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = end_ns - start_ns_;
  record.depth = --buffer.depth;
  record.sample_shift = shift_;
  buffer.Push(record);
  buffer.Account(name_, record.dur_ns, 0, false, shift_);
}

namespace {

void MergeStat(std::map<std::string, SpanStat>& totals, const StatSlot& slot) {
  if (slot.name == nullptr || slot.count == 0) return;
  SpanStat& stat = totals[slot.name];
  if (stat.name.empty()) stat.name = slot.name;
  stat.count += slot.count;
  stat.records += slot.records;
  stat.total_ns += slot.total_ns;
  stat.total_cpu_ns += slot.total_cpu_ns;
  stat.estimated_total_ns += slot.estimated_total_ns;
}

}  // namespace

SpanSnapshot CollectSpans() {
  SpanRegistry& registry = Registry();
  SpanSnapshot snapshot;
  std::map<std::string, SpanStat> totals;
  std::lock_guard<std::mutex> lock(registry.mu);
  // Archived records of recycled buffers first, grouped by their old tid.
  std::map<std::uint32_t, ThreadSpans> archived;
  for (const ArchivedRecord& entry : registry.archive) {
    ThreadSpans& thread = archived[entry.tid];
    thread.tid = entry.tid;
    thread.records.push_back(entry.record);
  }
  for (auto& [tid, thread] : archived) {
    snapshot.threads.push_back(std::move(thread));
  }
  for (const auto& buffer : registry.buffers) {
    ThreadSpans thread;
    thread.tid = buffer->tid;
    thread.live = buffer->live.load(std::memory_order_relaxed);
    const std::uint64_t next = buffer->next;
    const std::uint64_t kept =
        std::min<std::uint64_t>(next, ThreadSpanBuffer::kCapacity);
    thread.dropped = next - kept;
    thread.records.reserve(static_cast<std::size_t>(kept));
    for (std::uint64_t i = next - kept; i < next; ++i) {
      thread.records.push_back(
          buffer->ring[i & (ThreadSpanBuffer::kCapacity - 1)]);
    }
    for (const StatSlot& slot : buffer->stats) MergeStat(totals, slot);
    snapshot.threads.push_back(std::move(thread));
  }
  // Archived records still contribute to the merged totals: their stats
  // were merged when the buffer was recycled?  No — stats are reset with
  // the buffer, so re-derive the archive's contribution from its records.
  for (const ArchivedRecord& entry : registry.archive) {
    StatSlot slot;
    slot.name = entry.record.name;
    slot.count = 1ull << entry.record.sample_shift;
    slot.records = 1;
    slot.total_ns = entry.record.dur_ns;
    slot.estimated_total_ns = entry.record.dur_ns
                              << entry.record.sample_shift;
    if (entry.record.has_cpu) slot.total_cpu_ns = entry.record.cpu_ns;
    MergeStat(totals, slot);
  }
  snapshot.totals.reserve(totals.size());
  for (auto& [name, stat] : totals) snapshot.totals.push_back(std::move(stat));
  std::sort(snapshot.totals.begin(), snapshot.totals.end(),
            [](const SpanStat& a, const SpanStat& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return snapshot;
}

void ResetSpans() {
  SpanRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) buffer->Reset();
  registry.archive.clear();
  registry.archive_dropped = 0;
}

}  // namespace ttmqo::obs
