
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/ttmqo_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/query/CMakeFiles/ttmqo_query.dir/engine.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/engine.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/ttmqo_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/ttmqo_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/ttmqo_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/query.cc.o.d"
  "/root/repo/src/query/result.cc" "src/query/CMakeFiles/ttmqo_query.dir/result.cc.o" "gcc" "src/query/CMakeFiles/ttmqo_query.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/ttmqo_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
