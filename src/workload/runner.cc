#include "workload/runner.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

#include "metrics/metrics_observer.h"
#include "net/batched_network.h"
#include "net/topology.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {
namespace {

/// Copies the run's end-of-run measurements into the registry.
void ExportRunMetrics(MetricsRegistry& registry, const MetricLabels& labels,
                      const RunResult& run, const TtmqoEngine& engine) {
  registry.GetGauge("run_avg_transmission_fraction", labels)
      .Set(run.summary.avg_transmission_fraction);
  registry.GetGauge("run_avg_sleep_fraction", labels)
      .Set(run.summary.avg_sleep_fraction);
  registry.GetGauge("run_total_transmit_ms", labels)
      .Set(run.summary.total_transmit_ms);
  registry.GetGauge("run_elapsed_ms", labels)
      .Set(static_cast<double>(run.summary.elapsed_ms));
  registry.GetGauge("run_avg_network_queries", labels)
      .Set(run.avg_network_queries);
  registry.GetGauge("run_avg_benefit_ratio", labels)
      .Set(run.avg_benefit_ratio);
  registry.GetGauge("run_peak_user_queries", labels)
      .Set(static_cast<double>(run.peak_user_queries));
  registry.GetCounter("run_messages_total", labels)
      .Add(static_cast<double>(run.summary.total_messages));
  registry.GetCounter("run_retransmissions_total", labels)
      .Add(static_cast<double>(run.summary.retransmissions));
  registry.GetGauge("run_delivery_completeness_avg", labels)
      .Set(run.summary.AvgDeliveryCompleteness());
  registry.GetGauge("run_delivery_completeness_min", labels)
      .Set(run.summary.MinDeliveryCompleteness());
  double expected = 0.0;
  double delivered = 0.0;
  for (const auto& [id, d] : run.summary.delivery) {
    expected += static_cast<double>(d.expected);
    delivered += static_cast<double>(d.delivered);
  }
  registry.GetGauge("run_rows_expected", labels).Set(expected);
  registry.GetGauge("run_rows_delivered", labels).Set(delivered);
  // Reliability metrics appear only when the run produced them, so a
  // registry shared with off/harden runs keeps its pre-reliability shape.
  if (!run.summary.coverage.empty()) {
    registry.GetGauge("run_coverage_avg", labels)
        .Set(run.summary.AvgCoverage());
    registry.GetGauge("run_coverage_min", labels)
        .Set(run.summary.MinCoverage());
    registry.GetGauge("run_epochs_partial", labels)
        .Set(static_cast<double>(run.summary.PartialEpochs()));
  }
  if (run.summary.control_messages > 0) {
    registry.GetCounter("run_control_messages_total", labels)
        .Add(static_cast<double>(run.summary.control_messages));
  }
  const InNetworkEngine* innet = engine.innet_engine();
  if (innet != nullptr && innet->arq() != nullptr) {
    const ArqTransport& arq = *innet->arq();
    registry.GetCounter("arq_sends_total", labels)
        .Add(static_cast<double>(arq.sends()));
    registry.GetCounter("arq_retransmits_total", labels)
        .Add(static_cast<double>(arq.retransmits()));
    registry.GetCounter("arq_acks_sent_total", labels)
        .Add(static_cast<double>(arq.acks_sent()));
    registry.GetCounter("arq_duplicates_dropped_total", labels)
        .Add(static_cast<double>(arq.duplicates_dropped()));
    registry.GetCounter("arq_give_ups_total", labels)
        .Add(static_cast<double>(arq.give_ups()));
    registry.GetCounter("arq_quarantines_total", labels)
        .Add(static_cast<double>(arq.quarantines()));
    registry.GetCounter("arq_repair_requests_total", labels)
        .Add(static_cast<double>(innet->repair_requests()));
    registry.GetCounter("arq_repair_replies_total", labels)
        .Add(static_cast<double>(innet->repair_replies()));
    registry.GetCounter("arq_late_drops_total", labels)
        .Add(static_cast<double>(innet->late_drops()));
  }

  registry.GetCounter("tier1_cost_evaluations_total", labels)
      .Add(static_cast<double>(engine.cost_model().cost_evaluations()));
  registry.GetCounter("tier1_benefit_evaluations_total", labels)
      .Add(static_cast<double>(engine.cost_model().benefit_evaluations()));
  if (engine.optimizer() != nullptr) {
    const auto& d = engine.optimizer()->decision_stats();
    const auto decision = [&](const char* action, std::uint64_t count) {
      MetricLabels with_action = labels;
      with_action.emplace_back("action", action);
      registry.GetCounter("tier1_decisions_total", with_action)
          .Add(static_cast<double>(count));
    };
    decision("covered", d.covered);
    decision("merged", d.merged);
    decision("standalone", d.standalone);
    decision("retired", d.retired);
    decision("rebuilt", d.rebuilt);
    decision("kept", d.kept);
    const auto& ix = engine.optimizer()->index_stats();
    registry.GetCounter("tier1_index_coverage_hits_total", labels)
        .Add(static_cast<double>(ix.coverage_hits));
    registry.GetCounter("tier1_index_memo_hits_total", labels)
        .Add(static_cast<double>(ix.memo_hits));
    registry.GetCounter("tier1_index_pruned_candidates_total", labels)
        .Add(static_cast<double>(ix.pruned_candidates));
    registry.GetCounter("tier1_index_exact_evaluations_total", labels)
        .Add(static_cast<double>(ix.exact_evaluations));
    registry.GetCounter("tier1_index_rebuilds_total", labels)
        .Add(static_cast<double>(ix.index_rebuilds));
  }
}

/// Fills `run.summary.delivery` from an omniscient oracle: for each user
/// query and epoch tick inside its lifetime, a row is *expected* from every
/// node that is reachable under the fault plan at the tick and whose field
/// reading matches the predicates — exactly the engines' own production
/// criterion.  Delivered counts come from the base station's answer log.
/// Nodes that are up but never learned a query (disseminated during their
/// outage) therefore count against completeness, which is the point.
void FillDeliveryCompleteness(RunResult& run, const RunConfig& config,
                              const std::vector<WorkloadEvent>& schedule,
                              const FaultPlan& plan,
                              const Topology& topology,
                              const FieldModel& field) {
  std::map<QueryId, SimTime> terminate_at;
  for (const WorkloadEvent& event : schedule) {
    if (event.kind == WorkloadEvent::Kind::kTerminate) {
      terminate_at[event.id] = event.time;
    }
  }
  for (const WorkloadEvent& event : schedule) {
    if (event.kind != WorkloadEvent::Kind::kSubmit) continue;
    const Query& query = *event.query;
    QueryDelivery delivery;
    const auto tt = terminate_at.find(query.id());
    const auto attrs = query.AcquiredAttributes();
    for (SimTime t = AlignUp(event.time + 1, query.epoch());
         t + query.epoch() <= config.duration_ms &&
         (tt == terminate_at.end() || t + query.epoch() < tt->second);
         t += query.epoch()) {
      const EpochResult* result = run.results.Find(query.id(), t);
      if (query.kind() == QueryKind::kAcquisition) {
        for (NodeId node = 1; node < topology.size(); ++node) {
          if (!plan.AliveAt(node, t)) continue;
          const Reading sample = field.SampleReading(
              node, topology.PositionOf(node), attrs, t);
          if (query.predicates().Matches(sample)) ++delivery.expected;
        }
        if (result != nullptr) {
          delivery.delivered +=
              static_cast<std::uint64_t>(result->rows.size());
        }
      } else {
        bool any_match = false;
        for (NodeId node = 1; node < topology.size() && !any_match; ++node) {
          if (!plan.AliveAt(node, t)) continue;
          const Reading sample = field.SampleReading(
              node, topology.PositionOf(node), attrs, t);
          any_match = query.predicates().Matches(sample);
        }
        if (any_match) ++delivery.expected;
        if (result != nullptr) {
          for (const auto& [spec, value] : result->aggregates) {
            if (value.has_value()) {
              ++delivery.delivered;
              break;
            }
          }
        }
      }
    }
    run.summary.delivery[query.id()] = delivery;
  }
}

}  // namespace

std::unique_ptr<FieldModel> MakeFieldModel(FieldKind kind,
                                           std::uint64_t master_seed) {
  const std::uint64_t seed = master_seed ^ 0xf1e1dULL;
  switch (kind) {
    case FieldKind::kUniform:
      return std::make_unique<UniformFieldModel>(seed);
    case FieldKind::kCorrelated:
      return std::make_unique<CorrelatedFieldModel>(
          seed, CorrelatedFieldModel::Params{});
    case FieldKind::kHotspot:
      return std::make_unique<HotspotFieldModel>(seed,
                                                 HotspotFieldModel::Params{});
  }
  Check(false, "unknown field kind");
  return nullptr;
}

RunResult RunExperiment(const RunConfig& config,
                        const std::vector<WorkloadEvent>& schedule) {
  CheckArg(config.duration_ms > 0, "RunExperiment: duration must be positive");
  obs::RecordFlight("run.start", 0,
                    static_cast<std::int64_t>(config.seed),
                    static_cast<std::int64_t>(schedule.size()), 0,
                    OptimizationModeName(config.mode).data());

  // The setup phase ends mid-function (everything before RunUntil), so it
  // cannot be a plain scoped macro; the optional closes it explicitly.
#ifndef TTMQO_DISABLE_SPANS
  std::optional<obs::SpanScope> setup_span;
  setup_span.emplace("phase.setup", /*with_cpu=*/true);
#endif

  // Merge the legacy crash list into the declarative plan and validate the
  // whole schedule up front: a fault targeting the base station, a dead
  // node, or a window outside the run fails here with a clear message
  // instead of throwing from inside the event loop.
  FaultPlan faults = config.faults;
  for (const NodeFailure& failure : config.failures) {
    faults.AddCrash(failure.node, failure.time);
  }

  const Topology topology =
      config.topology == TopologyKind::kGrid
          ? Topology::Grid(config.grid_side, config.grid_spacing_feet,
                           config.radio.range_feet)
          : Topology::RandomUniform(config.random_nodes,
                                    config.random_side_feet,
                                    config.radio.range_feet,
                                    config.seed ^ 0x70b0ULL);
  faults.Validate(topology, config.duration_ms);
  Network network(topology, config.radio, config.channel, config.seed);
  const std::unique_ptr<FieldModel> field =
      MakeFieldModel(config.field, config.seed);

  // Observability hooks: extra observers, registry-fed radio counters, the
  // per-epoch sampler, and decision tracing.
  for (NetworkObserver* observer : config.obs.observers) {
    network.observers().Add(observer);
  }
  std::optional<MetricsObserver> metrics_observer;
  if (config.obs.registry != nullptr) {
    metrics_observer.emplace(*config.obs.registry, config.obs.labels);
    network.observers().Add(&*metrics_observer);
  }
  if (config.obs.sampler != nullptr) {
    config.obs.sampler->Start(network, config.obs.sample_period_ms);
  }

  RunResult run;
  TtmqoOptions options;
  options.mode = config.mode;
  options.alpha = config.alpha;
  options.tier1_use_index = config.tier1_use_index;
  options.innet = config.innet;
  ApplyReliabilityProfile(config.reliability, options.innet);
  if (options.innet.arq.seed == 0) {
    // Fork the ARQ jitter streams off the master seed so retry schedules
    // are a pure function of the run configuration.
    options.innet.arq.seed = config.seed ^ 0xa59aULL;
  }
  TtmqoEngine engine(network, *field, &run.results, options);
  if (config.obs.trace != nullptr) {
    engine.SetTraceSink(config.obs.trace);
    config.obs.trace->Emit(
        TraceEvent("run.start")
            .With("mode", std::string(OptimizationModeName(config.mode)))
            .With("nodes", static_cast<std::int64_t>(topology.size()))
            .With("duration_ms", config.duration_ms)
            .With("seed", static_cast<std::int64_t>(config.seed)));
  }

  if (config.maintenance_period_ms > 0) {
    network.StartMaintenanceBeacons(config.maintenance_period_ms,
                                    config.maintenance_payload_bytes);
  }

  // Schedule the workload.
  std::size_t active_users = 0;
  for (const WorkloadEvent& event : schedule) {
    CheckArg(event.time >= 0 && event.time < config.duration_ms,
             "RunExperiment: workload event outside the run window");
    if (event.kind == WorkloadEvent::Kind::kSubmit) {
      CheckArg(event.query.has_value(),
               "RunExperiment: submit event without a query");
      const Query query = *event.query;
      network.sim().ScheduleAt(event.time, [&engine, query, &active_users,
                                            &run]() {
        engine.SubmitQuery(query);
        ++active_users;
        run.peak_user_queries = std::max(run.peak_user_queries, active_users);
      });
    } else {
      const QueryId id = event.id;
      network.sim().ScheduleAt(event.time, [&engine, id, &active_users]() {
        engine.TerminateQuery(id);
        --active_users;
      });
    }
  }

  // Fault injection (crashes, outages, link loss, partitions).
  faults.ScheduleOn(network, config.obs.trace);

  // Periodic statistics sampler (time-weighted averages).  The recurring
  // tick lives on this stack frame and reschedules itself through the
  // pooled event slab — one small [this] capture per tick, no allocation.
  struct StatsSampler {
    TtmqoEngine& engine;
    Simulator& sim;
    SimDuration period;
    double sum_network_queries = 0.0;
    double sum_benefit_ratio = 0.0;
    std::uint64_t samples = 0;

    void Tick() {
      if (engine.NumUserQueries() > 0) {
        sum_network_queries += static_cast<double>(engine.NumNetworkQueries());
        sum_benefit_ratio += engine.BenefitRatio();
        ++samples;
      }
      sim.ScheduleAfter(period, [this] { Tick(); });
    }
  };
  StatsSampler stats{engine, network.sim(), config.stats_sample_period_ms};
  if (config.stats_sample_period_ms > 0) {
    network.sim().ScheduleAfter(config.stats_sample_period_ms,
                                [&stats] { stats.Tick(); });
  }

#ifndef TTMQO_DISABLE_SPANS
  setup_span.reset();
#endif
  {
    TTMQO_PHASE_SPAN("phase.event_loop");
    network.sim().RunUntil(config.duration_ms);
  }

  TTMQO_PHASE_SPAN("phase.summarize");
  // Flush open accounting spans (e.g. a node still asleep, or failed while
  // asleep) so the summary sees the whole run.
  network.FinalizeAccounting();

  run.summary =
      RunSummary::FromLedger(network.ledger(), config.duration_ms);
  run.avg_network_queries =
      stats.samples > 0
          ? stats.sum_network_queries / static_cast<double>(stats.samples)
          : 0.0;
  run.avg_benefit_ratio =
      stats.samples > 0
          ? stats.sum_benefit_ratio / static_cast<double>(stats.samples)
          : 0.0;
  run.final_benefit_ratio = engine.BenefitRatio();
  run.events_executed = network.sim().events_executed();
  FillDeliveryCompleteness(run, config, schedule, faults, topology, *field);

  // Coverage accounting: only epochs the engine annotated (arq profile)
  // contribute, so off/harden summaries stay byte-identical to the seed.
  for (const EpochResult* result : run.results.All()) {
    if (result->coverage < 0) continue;
    QueryCoverage& coverage = run.summary.coverage[result->query];
    ++coverage.epochs;
    if (result->coverage < 1.0) ++coverage.partial_epochs;
    coverage.coverage_sum += result->coverage;
    coverage.min_coverage = std::min(coverage.min_coverage, result->coverage);
  }

  if (config.obs.registry != nullptr) {
    ExportRunMetrics(*config.obs.registry, config.obs.labels, run, engine);
  }
  if (config.obs.trace != nullptr) {
    TraceEvent end("run.end");
    end.time = config.duration_ms;
    config.obs.trace->Emit(
        end.With("mode", std::string(OptimizationModeName(config.mode)))
            .With("avg_tx_fraction", run.summary.avg_transmission_fraction)
            .With("messages",
                  static_cast<std::int64_t>(run.summary.total_messages))
            .With("retransmissions",
                  static_cast<std::int64_t>(run.summary.retransmissions))
            .With("results", static_cast<std::int64_t>(run.results.size())));
  }
  obs::RecordFlight("run.end", config.duration_ms,
                    static_cast<std::int64_t>(run.events_executed),
                    static_cast<std::int64_t>(run.summary.total_messages));
  return run;
}

bool BatchCompatible(const RunConfig& a, const RunConfig& b) {
  return a.topology == TopologyKind::kGrid &&
         b.topology == TopologyKind::kGrid && a.grid_side == b.grid_side &&
         a.grid_spacing_feet == b.grid_spacing_feet &&
         a.radio.start_ms == b.radio.start_ms &&
         a.radio.per_byte_ms == b.radio.per_byte_ms &&
         a.radio.header_bytes == b.radio.header_bytes &&
         a.radio.range_feet == b.radio.range_feet &&
         a.channel.collision_prob == b.channel.collision_prob &&
         a.channel.max_retries == b.channel.max_retries &&
         a.channel.backoff_ms == b.channel.backoff_ms &&
         a.duration_ms == b.duration_ms &&
         a.maintenance_period_ms == b.maintenance_period_ms &&
         a.maintenance_payload_bytes == b.maintenance_payload_bytes;
}

namespace {

/// The batch twin of `RunExperiment`'s stack-local sampler: one per lane,
/// address-stable in the lane deque so the self-rescheduling tick can hold
/// a plain pointer.
struct BatchStatsSampler {
  TtmqoEngine* engine = nullptr;
  Simulator* sim = nullptr;
  SimDuration period = 0;
  double sum_network_queries = 0.0;
  double sum_benefit_ratio = 0.0;
  std::uint64_t samples = 0;

  void Tick() {
    if (engine->NumUserQueries() > 0) {
      sum_network_queries += static_cast<double>(engine->NumNetworkQueries());
      sum_benefit_ratio += engine->BenefitRatio();
      ++samples;
    }
    sim->ScheduleAfter(period, [this] { Tick(); });
  }
};

/// Everything one lane owns for the duration of a batched run.
struct LaneRun {
  const RunConfig* config = nullptr;
  const std::vector<WorkloadEvent>* schedule = nullptr;
  FaultPlan faults;
  std::unique_ptr<FieldModel> field;
  std::optional<MetricsObserver> metrics_observer;
  RunResult run;
  std::unique_ptr<TtmqoEngine> engine;
  std::size_t active_users = 0;
  BatchStatsSampler stats;
};

}  // namespace

std::vector<RunResult> RunExperimentBatch(
    const std::vector<RunConfig>& configs,
    const std::vector<std::vector<WorkloadEvent>>& schedules) {
  CheckArg(!configs.empty() && configs.size() <= SimCore::kMaxLanes,
           "RunExperimentBatch: lane count must be in [1, 64]");
  CheckArg(configs.size() == schedules.size(),
           "RunExperimentBatch: one schedule per config");
  const RunConfig& shared = configs.front();
  CheckArg(shared.topology == TopologyKind::kGrid,
           "RunExperimentBatch: batching requires a grid topology (random "
           "deployments derive node placement from the per-lane seed)");
  for (const RunConfig& config : configs) {
    CheckArg(config.duration_ms > 0,
             "RunExperiment: duration must be positive");
    CheckArg(BatchCompatible(shared, config),
             "RunExperimentBatch: configs are not batch-compatible");
  }

#ifndef TTMQO_DISABLE_SPANS
  std::optional<obs::SpanScope> setup_span;
  setup_span.emplace("phase.setup", /*with_cpu=*/true);
#endif

  const Topology topology = Topology::Grid(
      shared.grid_side, shared.grid_spacing_feet, shared.radio.range_feet);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(configs.size());
  for (const RunConfig& config : configs) seeds.push_back(config.seed);
  BatchedNetwork batch(topology, shared.radio, shared.channel, seeds);

  // Per-lane setup, in exactly the serial `RunExperiment` order so each
  // lane's event sequence numbers keep their serial relative order:
  // observability/sampler first, then (below, batch-wide) maintenance
  // beacons, then the workload, then faults, then the stats tick.
  std::deque<LaneRun> lane_runs;
  for (std::uint32_t l = 0; l < configs.size(); ++l) {
    const RunConfig& config = configs[l];
    LaneRun& lane = lane_runs.emplace_back();
    lane.config = &config;
    lane.schedule = &schedules[l];
    obs::RecordFlight("run.start", 0, static_cast<std::int64_t>(config.seed),
                      static_cast<std::int64_t>(lane.schedule->size()), 0,
                      OptimizationModeName(config.mode).data());
    lane.faults = config.faults;
    for (const NodeFailure& failure : config.failures) {
      lane.faults.AddCrash(failure.node, failure.time);
    }
    lane.faults.Validate(topology, config.duration_ms);
    lane.field = MakeFieldModel(config.field, config.seed);

    Network& network = batch.lane(l);
    for (NetworkObserver* observer : config.obs.observers) {
      network.observers().Add(observer);
    }
    if (config.obs.registry != nullptr) {
      lane.metrics_observer.emplace(*config.obs.registry, config.obs.labels);
      network.observers().Add(&*lane.metrics_observer);
    }
    if (config.obs.sampler != nullptr) {
      config.obs.sampler->Start(network, config.obs.sample_period_ms);
    }

    TtmqoOptions options;
    options.mode = config.mode;
    options.alpha = config.alpha;
    options.tier1_use_index = config.tier1_use_index;
    options.innet = config.innet;
    ApplyReliabilityProfile(config.reliability, options.innet);
    if (options.innet.arq.seed == 0) {
      options.innet.arq.seed = config.seed ^ 0xa59aULL;
    }
    lane.engine = std::make_unique<TtmqoEngine>(network, *lane.field,
                                                &lane.run.results, options);
    if (config.obs.trace != nullptr) {
      lane.engine->SetTraceSink(config.obs.trace);
      config.obs.trace->Emit(
          TraceEvent("run.start")
              .With("mode", std::string(OptimizationModeName(config.mode)))
              .With("nodes", static_cast<std::int64_t>(topology.size()))
              .With("duration_ms", config.duration_ms)
              .With("seed", static_cast<std::int64_t>(config.seed)));
    }
  }

  // One coalesced beacon-tick group per node covers every lane.
  if (shared.maintenance_period_ms > 0) {
    batch.StartMaintenanceBeacons(shared.maintenance_period_ms,
                                  shared.maintenance_payload_bytes);
  }

  for (std::uint32_t l = 0; l < configs.size(); ++l) {
    LaneRun& lane = lane_runs[l];
    Network& network = batch.lane(l);
    for (const WorkloadEvent& event : *lane.schedule) {
      CheckArg(event.time >= 0 && event.time < lane.config->duration_ms,
               "RunExperiment: workload event outside the run window");
      if (event.kind == WorkloadEvent::Kind::kSubmit) {
        CheckArg(event.query.has_value(),
                 "RunExperiment: submit event without a query");
        const Query query = *event.query;
        network.sim().ScheduleAt(event.time, [&lane, query]() {
          lane.engine->SubmitQuery(query);
          ++lane.active_users;
          lane.run.peak_user_queries =
              std::max(lane.run.peak_user_queries, lane.active_users);
        });
      } else {
        const QueryId id = event.id;
        network.sim().ScheduleAt(event.time, [&lane, id]() {
          lane.engine->TerminateQuery(id);
          --lane.active_users;
        });
      }
    }
  }

  for (std::uint32_t l = 0; l < configs.size(); ++l) {
    lane_runs[l].faults.ScheduleOn(batch.lane(l), configs[l].obs.trace);
  }

  for (std::uint32_t l = 0; l < configs.size(); ++l) {
    LaneRun& lane = lane_runs[l];
    Network& network = batch.lane(l);
    lane.stats.engine = lane.engine.get();
    lane.stats.sim = &network.sim();
    lane.stats.period = lane.config->stats_sample_period_ms;
    if (lane.config->stats_sample_period_ms > 0) {
      network.sim().ScheduleAfter(lane.config->stats_sample_period_ms,
                                  [s = &lane.stats] { s->Tick(); });
    }
  }

#ifndef TTMQO_DISABLE_SPANS
  setup_span.reset();
#endif
  {
    TTMQO_PHASE_SPAN("phase.event_loop");
    batch.RunUntil(shared.duration_ms);
  }

  TTMQO_PHASE_SPAN("phase.summarize");
  std::vector<RunResult> results;
  results.reserve(configs.size());
  for (std::uint32_t l = 0; l < configs.size(); ++l) {
    LaneRun& lane = lane_runs[l];
    const RunConfig& config = configs[l];
    Network& network = batch.lane(l);
    network.FinalizeAccounting();
    RunResult& run = lane.run;
    run.summary =
        RunSummary::FromLedger(network.ledger(), config.duration_ms);
    run.avg_network_queries =
        lane.stats.samples > 0
            ? lane.stats.sum_network_queries /
                  static_cast<double>(lane.stats.samples)
            : 0.0;
    run.avg_benefit_ratio =
        lane.stats.samples > 0
            ? lane.stats.sum_benefit_ratio /
                  static_cast<double>(lane.stats.samples)
            : 0.0;
    run.final_benefit_ratio = lane.engine->BenefitRatio();
    run.events_executed = network.sim().events_executed();
    FillDeliveryCompleteness(run, config, *lane.schedule, lane.faults,
                             topology, *lane.field);

    for (const EpochResult* result : run.results.All()) {
      if (result->coverage < 0) continue;
      QueryCoverage& coverage = run.summary.coverage[result->query];
      ++coverage.epochs;
      if (result->coverage < 1.0) ++coverage.partial_epochs;
      coverage.coverage_sum += result->coverage;
      coverage.min_coverage =
          std::min(coverage.min_coverage, result->coverage);
    }

    if (config.obs.registry != nullptr) {
      ExportRunMetrics(*config.obs.registry, config.obs.labels, run,
                       *lane.engine);
    }
    if (config.obs.trace != nullptr) {
      TraceEvent end("run.end");
      end.time = config.duration_ms;
      config.obs.trace->Emit(
          end.With("mode", std::string(OptimizationModeName(config.mode)))
              .With("avg_tx_fraction", run.summary.avg_transmission_fraction)
              .With("messages",
                    static_cast<std::int64_t>(run.summary.total_messages))
              .With("retransmissions",
                    static_cast<std::int64_t>(run.summary.retransmissions))
              .With("results",
                    static_cast<std::int64_t>(run.results.size())));
    }
    obs::RecordFlight("run.end", config.duration_ms,
                      static_cast<std::int64_t>(run.events_executed),
                      static_cast<std::int64_t>(run.summary.total_messages));
    results.push_back(std::move(run));
  }
  return results;
}

}  // namespace ttmqo
