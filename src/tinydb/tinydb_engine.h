// The TinyDB baseline: single-query optimization, uncooperative concurrency.
//
// This engine reproduces the comparison baseline of Section 4.1: "each query
// is optimized by TinyDB, and multiple queries ... are all injected into the
// network to run concurrently without multi-query optimization".
// Behaviours modelled after TinyDB (Madden et al., TODS 2005):
//
//  * query dissemination by network-wide flood;
//  * a fixed routing tree whose parents are chosen by link quality,
//    ignorant of the query space (Section 3.2.2);
//  * per-query epoch scheduling — every query samples and transmits on its
//    own, so concurrent queries share nothing;
//  * acquisition results forwarded as one message per row per query, hop by
//    hop along the tree;
//  * TAG-style in-network aggregation: children's partial state records are
//    merged at each tree node and sent once per epoch, staggered bottom-up
//    by tree depth.
//
// Simplification (documented in DESIGN.md): epochs are aligned to absolute
// multiples of the epoch duration in every engine, so that answer streams
// are comparable across engines; TinyDB proper phases epochs relative to
// query injection, which changes when results arrive but not how many
// messages flow per epoch.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.h"
#include "query/engine.h"
#include "routing/routing_tree.h"
#include "routing/semantic_tree.h"
#include "sensing/field_model.h"
#include "tinydb/payloads.h"

namespace ttmqo {

/// Tuning knobs of the baseline engine.
struct TinyDbOptions {
  /// Slot width for depth-staggered aggregation transmissions.
  SimDuration agg_slot_ms = 128;
  /// Maximum per-node jitter applied to source transmissions within an
  /// epoch (decorrelates senders; deterministic per node).
  SimDuration source_jitter_ms = 64;
  /// Semantic Routing Tree: node-id-based queries descend only into
  /// subtrees that can contain answer nodes (TinyDB's SRT; Section 3.2.2).
  /// Value-based queries always flood.
  bool use_semantic_routing = true;
};

/// The baseline engine.  One instance drives the whole network (the
/// simulator is single-threaded; per-node state is kept in a vector and
/// only "local" information is used by each node's logic).
class TinyDbEngine final : public QueryEngine {
 public:
  /// The engine installs itself as every node's receiver on `network`.
  /// `sink` (owned by the caller, may be null) receives per-epoch answers.
  TinyDbEngine(Network& network, const FieldModel& field, ResultSink* sink,
               TinyDbOptions options = {});

  void SubmitQuery(const Query& query) override;
  void TerminateQuery(QueryId id) override;
  std::string_view name() const override { return "tinydb-baseline"; }

  /// The fixed routing tree the engine forwards along.
  const RoutingTree& routing_tree() const { return tree_; }

  /// Queries currently running (by id, ascending).
  std::vector<QueryId> ActiveQueries() const;

 private:
  struct NodeState {
    /// Queries installed on this node.
    std::map<QueryId, Query> active;
    /// Flood de-duplication.
    std::set<QueryId> seen_propagation;
    std::set<QueryId> seen_abort;
    /// Queries whose propagation this node forwarded (abort floods follow
    /// the same prune).
    std::set<QueryId> relayed_propagation;
    /// Buffered child partials per (query, epoch), merged at the agg slot.
    std::map<std::pair<QueryId, SimTime>, std::vector<PartialAggregate>>
        agg_buffer;
    /// (query, epoch) pairs whose aggregation slot already fired; late
    /// partials are forwarded immediately.
    std::set<std::pair<QueryId, SimTime>> agg_slot_done;
  };

  struct BsQueryState {
    explicit BsQueryState(Query q) : query(std::move(q)) {}
    Query query;
    bool terminated = false;
    /// Rows per open epoch (acquisition), keyed by source node — at most
    /// one row per source; duplicate deliveries are dropped on arrival.
    std::map<SimTime, std::map<NodeId, Reading>> rows;
    /// Partials per open epoch (aggregation).
    std::map<SimTime, std::vector<PartialAggregate>> partials;
  };

  // --- node-side logic -----------------------------------------------
  void HandleMessage(NodeId self, const Message& msg, bool addressed);
  /// SRT gates: whether this node should run the query at all, and whether
  /// it should continue the dissemination into its subtree.
  bool ShouldInstall(NodeId self, const Query& query) const;
  bool ShouldForwardPropagation(NodeId self, const Query& query) const;
  void InstallQuery(NodeId self, const Query& query);
  void RemoveQuery(NodeId self, QueryId id);
  void ScheduleNextEpoch(NodeId self, QueryId id);
  void OnEpoch(NodeId self, QueryId id, SimTime epoch_time);
  void OnAggSlot(NodeId self, QueryId id, SimTime epoch_time);
  void ForwardRow(NodeId self, const RowPayload& payload);
  void ForwardPartials(NodeId self, QueryId id, SimTime epoch_time,
                       std::vector<PartialAggregate> partials);
  SimDuration SourceJitter(NodeId node) const;

  // --- base-station-side logic ----------------------------------------
  void BsAccept(const Message& msg);
  void ScheduleEpochClose(QueryId id, SimTime epoch_time);
  void CloseEpoch(QueryId id, SimTime epoch_time);

  Network& network_;
  const FieldModel& field_;
  ResultSink* sink_;
  TinyDbOptions options_;
  RoutingTree tree_;
  SemanticRoutingTree srt_;
  std::vector<NodeState> nodes_;
  std::map<QueryId, BsQueryState> bs_queries_;
};

}  // namespace ttmqo
