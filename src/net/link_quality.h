// Deterministic per-link quality estimates.
//
// TinyDB associates a parent with each node "based on the link quality"
// (Section 3.2.2); our in-network tier breaks parent-selection ties the same
// way.  Quality is a pure function of the two endpoints' distance plus a
// symmetric per-edge perturbation, so runs are reproducible.
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "util/ids.h"

namespace ttmqo {

/// Symmetric link quality in (0, 1]; higher is better.
class LinkQualityMap {
 public:
  /// `seed` fixes the per-edge perturbation.
  LinkQualityMap(const Topology& topology, std::uint64_t seed);

  /// Quality of the link a—b (== quality of b—a).  Both nodes must be
  /// neighbors in the topology.
  double Quality(NodeId a, NodeId b) const;

 private:
  const Topology* topology_;
  std::uint64_t seed_;
};

}  // namespace ttmqo
