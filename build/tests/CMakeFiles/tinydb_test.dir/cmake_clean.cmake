file(REMOVE_RECURSE
  "CMakeFiles/tinydb_test.dir/tinydb_test.cc.o"
  "CMakeFiles/tinydb_test.dir/tinydb_test.cc.o.d"
  "tinydb_test"
  "tinydb_test.pdb"
  "tinydb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinydb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
