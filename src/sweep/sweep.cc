#include "sweep/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/span.h"
#include "util/check.h"

namespace ttmqo {

unsigned HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned NumPoolWorkers(std::size_t count, unsigned jobs) {
  if (count == 0) return 0;
  if (jobs == 0) jobs = HardwareJobs();
  return static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, jobs), count));
}

void ParallelForWorkers(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t, unsigned)>& fn) {
  if (count == 0) return;
  if (jobs == 0) jobs = HardwareJobs();
  if (jobs == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto worker = [&](unsigned worker_index) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i, worker_index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> workers;
  const unsigned n = NumPoolWorkers(count, jobs);
  workers.reserve(n);
  for (unsigned t = 0; t < n; ++t) workers.emplace_back(worker, t);
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn) {
  ParallelForWorkers(count, jobs,
                     [&fn](std::size_t i, unsigned) { fn(i); });
}

double PoolReport::Utilization() const {
  if (workers.empty() || wall_ms <= 0.0) return 0.0;
  double busy = 0.0;
  for (const WorkerStat& w : workers) busy += w.busy_ms;
  return busy / (static_cast<double>(workers.size()) * wall_ms);
}

std::vector<TimedRunResult> RunMany(const std::vector<RunUnit>& units,
                                    unsigned jobs, PoolReport* pool,
                                    std::size_t batch_lanes) {
  CheckArg(batch_lanes >= 1 && batch_lanes <= SimCore::kMaxLanes,
           "RunMany: batch_lanes must be in [1, 64]");
  std::vector<TimedRunResult> results(units.size());

  // Partition the units into groups of consecutive batch-compatible
  // configs, each at most `batch_lanes` wide.  Sweep expansion puts the
  // replicate (seed) axis innermost, so same-everything-but-seed rows are
  // adjacent and coalesce into full batches; a group is one pool task.
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // [begin, end)
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!groups.empty() && groups.back().second - groups.back().first <
                               batch_lanes &&
        BatchCompatible(units[groups.back().first].config, units[i].config)) {
      ++groups.back().second;
    } else {
      groups.emplace_back(i, i + 1);
    }
  }

  const unsigned n = NumPoolWorkers(groups.size(), jobs);
  std::vector<WorkerStat> workers(n);
  for (unsigned w = 0; w < n; ++w) workers[w].worker = w;

  // Wall-clock here feeds only the timing (non-canonical) report section,
  // never the simulated results.
  // ttmqo-lint: allow(wall-clock): pool timing metadata
  const auto pool_start = std::chrono::steady_clock::now();
  ParallelForWorkers(groups.size(), jobs, [&](std::size_t g, unsigned worker) {
    TTMQO_SPAN("sweep.task");
    const auto [begin, end] = groups[g];
    const std::size_t lanes = end - begin;
    const auto start = std::chrono::steady_clock::now();  // ttmqo-lint: allow(wall-clock): task timing
    if (lanes == 1) {
      results[begin].run =
          RunExperiment(units[begin].config, units[begin].schedule);
    } else {
      std::vector<RunConfig> configs;
      std::vector<std::vector<WorkloadEvent>> schedules;
      configs.reserve(lanes);
      schedules.reserve(lanes);
      for (std::size_t i = begin; i < end; ++i) {
        configs.push_back(units[i].config);
        schedules.push_back(units[i].schedule);
      }
      std::vector<RunResult> batch = RunExperimentBatch(configs, schedules);
      for (std::size_t l = 0; l < lanes; ++l) {
        results[begin + l].run = std::move(batch[l]);
      }
    }
    const double group_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)  // ttmqo-lint: allow(wall-clock): task timing
            .count();
    // A batched group's wall time is split evenly across its rows, so the
    // timing section stays per-row shaped.
    for (std::size_t i = begin; i < end; ++i) {
      results[i].wall_ms = group_ms / static_cast<double>(lanes);
    }
    // `workers[worker]` is touched only by the thread holding that index;
    // no synchronization needed.
    workers[worker].tasks += lanes;
    workers[worker].busy_ms += group_ms;
  });
  if (pool != nullptr) {
    pool->wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - pool_start)  // ttmqo-lint: allow(wall-clock): pool timing
                        .count();
    pool->workers = std::move(workers);
  }
  return results;
}

}  // namespace ttmqo
