#include "sweep/fingerprint.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace ttmqo {
namespace {

std::string Fixed(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct QueryTally {
  std::uint64_t epochs = 0;
  std::uint64_t rows = 0;
  std::uint64_t aggregates = 0;
};

void AppendResultLines(std::ostringstream& out, const ResultLog& results) {
  std::map<QueryId, QueryTally> per_query;
  for (const EpochResult* r : results.All()) {
    QueryTally& tally = per_query[r->query];
    ++tally.epochs;
    tally.rows += static_cast<std::uint64_t>(r->rows.size());
    for (const auto& [spec, value] : r->aggregates) {
      if (value.has_value()) ++tally.aggregates;
    }
  }
  out << "results " << results.size() << "\n";
  for (const auto& [id, tally] : per_query) {
    out << "query " << id << " epochs=" << tally.epochs << " rows="
        << tally.rows << " aggregates=" << tally.aggregates << "\n";
  }
}

void AppendSummaryLines(std::ostringstream& out, const RunSummary& summary) {
  out << "messages result=" << summary.result_messages << " propagation="
      << summary.propagation_messages << " abort=" << summary.abort_messages
      << " maintenance=" << summary.maintenance_messages;
  // The control segment appears only when control traffic exists (the arq
  // reliability profile): fingerprints of profile-off runs stay
  // byte-identical to the pre-reliability goldens.
  if (summary.control_messages > 0) {
    out << " control=" << summary.control_messages;
  }
  out << " retransmissions=" << summary.retransmissions << " total="
      << summary.total_messages << "\n";
  out << "transmit_ms=" << Fixed(summary.total_transmit_ms)
      << " avg_tx_fraction=" << Fixed(summary.avg_transmission_fraction)
      << " avg_sleep_fraction=" << Fixed(summary.avg_sleep_fraction) << "\n";
  for (const auto& [id, delivery] : summary.delivery) {
    out << "delivery " << id << " expected=" << delivery.expected
        << " delivered=" << delivery.delivered << "\n";
  }
  // Coverage lines exist only for coverage-annotated runs (same reasoning).
  for (const auto& [id, cov] : summary.coverage) {
    out << "coverage " << id << " epochs=" << cov.epochs << " partial="
        << cov.partial_epochs << " avg=" << Fixed(cov.AvgCoverage())
        << " min=" << Fixed(cov.min_coverage) << "\n";
  }
}

}  // namespace

std::string FingerprintRun(const ResultLog& results,
                           const RunSummary& summary) {
  std::ostringstream out;
  AppendResultLines(out, results);
  AppendSummaryLines(out, summary);
  return out.str();
}

std::string FingerprintRun(const RunResult& run) {
  std::ostringstream out;
  AppendResultLines(out, run.results);
  AppendSummaryLines(out, run.summary);
  out << "events_executed=" << run.events_executed << " peak_user_queries="
      << run.peak_user_queries << "\n";
  out << "avg_network_queries=" << Fixed(run.avg_network_queries)
      << " avg_benefit_ratio=" << Fixed(run.avg_benefit_ratio)
      << " final_benefit_ratio=" << Fixed(run.final_benefit_ratio) << "\n";
  return out.str();
}

}  // namespace ttmqo
