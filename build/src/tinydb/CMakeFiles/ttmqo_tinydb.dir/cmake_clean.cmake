file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_tinydb.dir/tinydb_engine.cc.o"
  "CMakeFiles/ttmqo_tinydb.dir/tinydb_engine.cc.o.d"
  "libttmqo_tinydb.a"
  "libttmqo_tinydb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_tinydb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
