// Fast fault-tolerance smoke (the ctest-sized cut of
// bench/fault_tolerance.cc): a 4x4 grid loses two relays mid-run with a
// fixed seed; the two-tier scheme's dynamic DAG must keep post-failure
// delivery at least as high as the TinyDB baseline's fixed tree, and its
// completeness accounting must reflect the crashes.
#include <gtest/gtest.h>

#include "query/parser.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;
constexpr SimTime kFailTime = 4 * kEpoch + 500;
constexpr SimDuration kDuration = 16 * kEpoch;
constexpr SimTime kMeasureFrom = 6 * kEpoch;

std::size_t RowsAfter(const ResultLog& log, QueryId query, SimTime from) {
  std::size_t rows = 0;
  for (const EpochResult* r : log.ResultsFor(query)) {
    if (r->epoch_time >= from) rows += r->rows.size();
  }
  return rows;
}

TEST(FaultSmokeTest, TwoTierSurvivesTwoMidGridCrashes) {
  const Query query =
      ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096");
  const auto schedule = StaticSchedule({query});

  std::size_t delivered[2];
  double completeness[2];
  for (int i = 0; i < 2; ++i) {
    RunConfig config;
    config.grid_side = 4;
    config.mode = i == 0 ? OptimizationMode::kBaseline
                         : OptimizationMode::kTwoTier;
    config.duration_ms = kDuration;
    config.seed = 33;
    // Two mid-grid relays crash after epoch 4 (fixed victims keep the smoke
    // deterministic and fast; the full sweep lives in the bench).
    config.faults.AddCrash(5, kFailTime).AddCrash(6, kFailTime);
    const RunResult run = RunExperiment(config, schedule);
    delivered[i] = RowsAfter(run.results, query.id(), kMeasureFrom);
    completeness[i] = run.summary.AvgDeliveryCompleteness();

    // Crashed nodes never report after the failure settles.
    for (const EpochResult* r : run.results.ResultsFor(query.id())) {
      if (r->epoch_time < kMeasureFrom) continue;
      for (const Reading& row : r->rows) {
        EXPECT_NE(row.node(), 5);
        EXPECT_NE(row.node(), 6);
      }
    }
  }
  EXPECT_GT(delivered[1], 0u);
  EXPECT_GE(delivered[1], delivered[0])
      << "the dynamic DAG should deliver at least as much as the fixed tree";
  EXPECT_GE(completeness[1], completeness[0] - 1e-9);
  // The oracle already discounts the dead sensors, so the two-tier scheme
  // should stay close to complete.
  EXPECT_GE(completeness[1], 0.8);
}

}  // namespace
}  // namespace ttmqo
