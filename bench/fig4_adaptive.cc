// Reproduces Figure 4: tier-1 behaviour under adaptive workloads.
//
// Random query model of Section 4.3 (attributes light/temp, MAX/MIN
// aggregates, random predicates, epochs 8192..24576 ms divisible by
// 4096 ms); arrivals every 40 s on average, 500 queries per workload, mean
// duration varied to control the number of concurrent queries.
//
//  (a) benefit ratio vs number of concurrent queries (paper: ~32% at 8
//      rising to ~82% at 48, alpha = 0.6);
//  (b) benefit ratio vs alpha with 8 concurrent queries (paper: best near
//      alpha = 0.6, with a shallow dependence);
//  (c) average number of synthetic queries vs concurrent queries (paper:
//      fewer than 4 even at 48, decreasing slightly as alpha grows).
//
// The figure measures tier-1 quantities (benefit ratio and synthetic-query
// counts are cost-model statistics), so the replay drives the optimizer
// directly with time-weighted sampling between workload events.
//
// The replays of each part (and the full-simulation runs of part d) are
// independent; they fan out over the sweep orchestrator's thread pool
// (--jobs) and are collected by task index, so the tables are identical
// for any job count.  Each parallel task builds its own CostModel — its
// evaluation counters are mutable and not atomic.
//
// Usage: fig4_adaptive [--part=a|b|c|all] [--queries=N] [--seed=N]
//                      [--jobs=N] [--trace-out=fig4.jsonl]
//
// --trace-out captures the tier-1 decision trace (tier1.insert /
// tier1.terminate / tier1.benefit_estimate) of the first replay of the
// first part executed — with the default --part=all that is the
// alpha=0.6, concurrency=8 run of part (a).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/bs/rewriter.h"
#include "metrics/table.h"
#include "metrics/trace.h"
#include "obs/session.h"
#include "query/engine.h"
#include "net/topology.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

struct ReplayStats {
  double avg_benefit_ratio = 0.0;
  double avg_synthetic = 0.0;
  double avg_concurrent = 0.0;
  double peak_concurrent = 0.0;
  std::size_t churn_operations = 0;
};

// Plays a dynamic schedule through the optimizer, averaging statistics
// weighted by the time between workload events.  The benefit ratio charges
// the airtime of every query abort/injection flood against the savings —
// "query abortion and injection ... are also costly operations" (Section
// 3.1.4) — which is what makes alpha an interior trade-off.
ReplayStats Replay(const std::vector<WorkloadEvent>& events,
                   const CostModel& cost, double alpha,
                   std::size_t num_nodes, TraceSink* trace = nullptr) {
  BaseStationOptimizer::Options options;
  options.alpha = alpha;
  BaseStationOptimizer optimizer(cost, options);
  optimizer.SetTraceSink(trace);

  ReplayStats stats;
  double weight = 0.0;
  double user_airtime = 0.0;
  double synthetic_airtime = 0.0;
  double churn_airtime = 0.0;
  const RadioParams radio;
  SimTime prev = 0;
  for (const WorkloadEvent& event : events) {
    const double dt = static_cast<double>(event.time - prev);
    if (dt > 0 && optimizer.NumUserQueries() > 0) {
      const double user_cost = optimizer.TotalUserCost();
      user_airtime += dt * user_cost;
      synthetic_airtime += dt * (user_cost - optimizer.TotalBenefit());
      stats.avg_synthetic +=
          dt * static_cast<double>(optimizer.NumSynthetic());
      stats.avg_concurrent +=
          dt * static_cast<double>(optimizer.NumUserQueries());
      weight += dt;
    }
    prev = event.time;
    BaseStationOptimizer::Actions actions;
    if (event.kind == WorkloadEvent::Kind::kSubmit) {
      actions = optimizer.InsertUserQuery(*event.query);
      stats.peak_concurrent =
          std::max(stats.peak_concurrent,
                   static_cast<double>(optimizer.NumUserQueries()));
    } else {
      actions = optimizer.TerminateUserQuery(event.id);
    }
    // Each abort or injection floods the whole network once.
    stats.churn_operations += actions.abort.size() + actions.inject.size();
    churn_airtime += static_cast<double>(actions.abort.size() * num_nodes) *
                     radio.TransmitDurationMs(2);
    for (const Query& injected : actions.inject) {
      churn_airtime +=
          static_cast<double>(num_nodes) *
          radio.TransmitDurationMs(PropagationPayloadBytes(injected));
    }
  }
  if (weight > 0) {
    stats.avg_synthetic /= weight;
    stats.avg_concurrent /= weight;
  }
  if (user_airtime > 0) {
    stats.avg_benefit_ratio =
        (user_airtime - synthetic_airtime - churn_airtime) / user_airtime;
  }
  return stats;
}

std::vector<WorkloadEvent> MakeSchedule(std::size_t num_queries,
                                        double target_concurrency,
                                        std::uint64_t seed,
                                        std::size_t template_pool = 0) {
  QueryModelParams params;
  params.aggregation_fraction = 0.5;
  params.attributes = {Attribute::kLight, Attribute::kTemp};
  params.operators = {AggregateOp::kMax, AggregateOp::kMin};
  params.epochs = {8192, 12288, 16384, 20480, 24576};
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;  // "randomly select ... predicates"
  params.template_pool = template_pool;
  RandomQueryModel model(params, seed);
  const double mean_interarrival = 40'000.0;  // one query per 40 s
  return DynamicSchedule(model, num_queries, mean_interarrival,
                         target_concurrency * mean_interarrival, seed ^ 0x5eedULL);
}

/// One replay with a private cost model (its evaluation counters are
/// mutable and not atomic, so concurrent replays must not share one).
ReplayStats ReplayTask(const std::vector<WorkloadEvent>& events,
                       const Topology& topology, double alpha,
                       TraceSink* trace = nullptr) {
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  return Replay(events, cost, alpha, topology.size(), trace);
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string part = flags.GetString("part", "all");
  const auto num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 500));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 17));
  const auto jobs = static_cast<unsigned>(flags.GetInt("jobs", 0));
  const auto trace_out = flags.GetOptional("trace-out");
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  std::ofstream trace_file;
  std::unique_ptr<JsonlTraceWriter> trace_writer;
  if (trace_out.has_value()) {
    trace_file.open(*trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s\n", trace_out->c_str());
      return 1;
    }
    trace_writer = std::make_unique<JsonlTraceWriter>(trace_file);
  }
  // Hands the trace sink to the first replay of the first traced part
  // only (always task index 0, so the choice does not depend on thread
  // scheduling); a full sweep would record hundreds of thousands of
  // benefit estimates.
  TraceSink* pending_trace = trace_writer.get();
  const auto take_trace = [&pending_trace]() {
    TraceSink* t = pending_trace;
    pending_trace = nullptr;
    return t;
  };

  const Topology topology = Topology::Grid(8);

  const std::vector<double> concurrency = {8, 16, 24, 32, 40, 48};
  const std::vector<double> alphas = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2};

  std::printf("Figure 4: adaptive workloads (%zu queries per run, 40s mean "
              "inter-arrival, 8x8 grid)\n\n",
              num_queries);

  if (part == "a" || part == "all") {
    std::printf("(a) benefit ratio vs concurrent queries (alpha = 0.6)\n");
    TablePrinter table({"target concurrency", "measured avg", "benefit ratio %"});
    std::vector<ReplayStats> stats(concurrency.size());
    TraceSink* const trace = take_trace();
    ParallelFor(concurrency.size(), jobs, [&](std::size_t i) {
      stats[i] = ReplayTask(MakeSchedule(num_queries, concurrency[i], seed),
                            topology, 0.6, i == 0 ? trace : nullptr);
    });
    for (std::size_t i = 0; i < concurrency.size(); ++i) {
      table.AddRow({TablePrinter::Num(concurrency[i], 0),
                    TablePrinter::Num(stats[i].avg_concurrent, 1),
                    TablePrinter::Num(stats[i].avg_benefit_ratio * 100.0, 1)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  if (part == "b" || part == "all") {
    std::printf("(b) benefit ratio vs alpha (8 concurrent queries)\n");
    TablePrinter table({"alpha", "benefit ratio %", "abort/inject ops"});
    std::vector<ReplayStats> stats(alphas.size());
    TraceSink* const trace = take_trace();
    ParallelFor(alphas.size(), jobs, [&](std::size_t i) {
      stats[i] = ReplayTask(MakeSchedule(num_queries, 8, seed), topology,
                            alphas[i], i == 0 ? trace : nullptr);
    });
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      table.AddRow({TablePrinter::Num(alphas[i], 1),
                    TablePrinter::Num(stats[i].avg_benefit_ratio * 100.0, 2),
                    std::to_string(stats[i].churn_operations)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  if (part == "e" || part == "all") {
    // Section 4.3 conjectures: "Though we do not study skewed query
    // workload, we expect the similarity to be greater among such
    // workload, and the benefit can be even bigger."  Validate it: draw
    // queries from a fixed template pool with an 80/20 skew and compare
    // the benefit ratio against fully random draws.
    std::printf("(e) benefit ratio: random vs skewed workloads "
                "(alpha = 0.6)\n");
    TablePrinter table({"target concurrency", "random %",
                        "skewed (20 templates) %", "skewed (8 templates) %"});
    const std::vector<double> targets = {8.0, 24.0, 48.0};
    const std::vector<std::size_t> pools = {0, 20, 8};
    std::vector<ReplayStats> stats(targets.size() * pools.size());
    ParallelFor(stats.size(), jobs, [&](std::size_t i) {
      const double c = targets[i / pools.size()];
      const std::size_t pool = pools[i % pools.size()];
      stats[i] = ReplayTask(MakeSchedule(num_queries, c, seed, pool),
                            topology, 0.6);
    });
    for (std::size_t r = 0; r < targets.size(); ++r) {
      std::vector<std::string> row = {TablePrinter::Num(targets[r], 0)};
      for (std::size_t p = 0; p < pools.size(); ++p) {
        row.push_back(TablePrinter::Num(
            stats[r * pools.size() + p].avg_benefit_ratio * 100, 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  if (part == "d" || part == "all") {
    // Cross-validation: the benefit ratio above is a cost-model statistic;
    // here the same dynamic workloads run through the full radio simulator
    // and we report the *measured* transmission-time savings of TTMQO over
    // the baseline.  Scaled down (fewer queries, 16 nodes) to keep the
    // bench fast.
    std::printf("(d) network-measured savings vs concurrent queries "
                "(full simulation, 4x4 grid, %d queries)\n",
                60);
    TablePrinter table({"target concurrency", "baseline avg tx %",
                        "ttmqo avg tx %", "measured savings %"});
    const std::vector<double> targets = {4.0, 8.0, 16.0};
    std::vector<RunUnit> units;
    for (const double c : targets) {
      auto schedule = MakeSchedule(60, c, seed);
      SimTime end = 0;
      for (const WorkloadEvent& event : schedule) {
        end = std::max(end, event.time);
      }
      for (OptimizationMode mode :
           {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
        RunUnit unit;
        unit.config.grid_side = 4;
        unit.config.mode = mode;
        unit.config.duration_ms = end + 4 * 24576;
        unit.config.seed = seed;
        unit.config.channel.collision_prob = 0.02;
        unit.schedule = schedule;
        units.push_back(std::move(unit));
      }
    }
    const std::vector<TimedRunResult> results = RunMany(units, jobs);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const double baseline =
          results[2 * i].run.summary.avg_transmission_fraction * 100.0;
      const double ttmqo =
          results[2 * i + 1].run.summary.avg_transmission_fraction * 100.0;
      table.AddRow({TablePrinter::Num(targets[i], 0),
                    TablePrinter::Num(baseline, 4),
                    TablePrinter::Num(ttmqo, 4),
                    TablePrinter::Num(SavingsPercent(baseline, ttmqo), 1)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  if (part == "c" || part == "all") {
    std::printf("(c) average number of synthetic queries\n");
    TablePrinter table({"target concurrency", "alpha=0.2", "alpha=0.6",
                        "alpha=1.0"});
    const std::vector<double> part_c_alphas = {0.2, 0.6, 1.0};
    std::vector<ReplayStats> stats(concurrency.size() * part_c_alphas.size());
    ParallelFor(stats.size(), jobs, [&](std::size_t i) {
      const double c = concurrency[i / part_c_alphas.size()];
      const double alpha = part_c_alphas[i % part_c_alphas.size()];
      stats[i] = ReplayTask(MakeSchedule(num_queries, c, seed), topology,
                            alpha);
    });
    for (std::size_t r = 0; r < concurrency.size(); ++r) {
      std::vector<std::string> row = {TablePrinter::Num(concurrency[r], 0)};
      for (std::size_t a = 0; a < part_c_alphas.size(); ++a) {
        row.push_back(TablePrinter::Num(
            stats[r * part_c_alphas.size() + a].avg_synthetic, 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  if (trace_writer != nullptr) {
    trace_writer->Flush();
    std::printf("wrote %llu trace events to %s\n",
                static_cast<unsigned long long>(trace_writer->events()),
                trace_out->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
