#include "obs/build_info.h"

#include <unistd.h>

#include <thread>

#include "util/tracing.h"

// Configure-time stamps, injected by src/obs/CMakeLists.txt; the fallbacks
// keep non-CMake builds (and tooling that compiles single TUs) working.
#ifndef TTMQO_GIT_SHA
#define TTMQO_GIT_SHA "unknown"
#endif
#ifndef TTMQO_COMPILER_INFO
#define TTMQO_COMPILER_INFO "unknown"
#endif
#ifndef TTMQO_BUILD_TYPE
#define TTMQO_BUILD_TYPE "unknown"
#endif
#ifndef TTMQO_CXX_FLAGS
#define TTMQO_CXX_FLAGS ""
#endif

namespace ttmqo::obs {
namespace {

BuildInfo MakeBuildInfo() {
  BuildInfo info;
  info.git_sha = TTMQO_GIT_SHA;
  info.compiler = TTMQO_COMPILER_INFO;
  info.build_type = TTMQO_BUILD_TYPE;
  info.flags = TTMQO_CXX_FLAGS;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) info.hostname = host;
  if (info.hostname.empty()) info.hostname = "unknown";
  info.hardware_concurrency = std::thread::hardware_concurrency();
#ifdef TTMQO_DISABLE_SPANS
  info.spans_compiled_out = true;
#endif
  return info;
}

void WriteField(std::ostream& out, int indent, const char* key,
                const std::string& value, bool last = false) {
  for (int i = 0; i < indent; ++i) out << ' ';
  WriteJsonString(out, key);
  out << ": ";
  WriteJsonString(out, value);
  if (!last) out << ',';
  out << '\n';
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = MakeBuildInfo();
  return info;
}

void WriteBuildInfoJson(std::ostream& out, int indent) {
  const BuildInfo& info = GetBuildInfo();
  out << "{\n";
  WriteField(out, indent, "git_sha", info.git_sha);
  WriteField(out, indent, "compiler", info.compiler);
  WriteField(out, indent, "build_type", info.build_type);
  WriteField(out, indent, "flags", info.flags);
  WriteField(out, indent, "hostname", info.hostname);
  for (int i = 0; i < indent; ++i) out << ' ';
  out << "\"hardware_concurrency\": " << info.hardware_concurrency << ",\n";
  for (int i = 0; i < indent; ++i) out << ' ';
  out << "\"spans_compiled_out\": "
      << (info.spans_compiled_out ? "true" : "false") << '\n';
  for (int i = 0; i < indent - 2; ++i) out << ' ';
  out << '}';
}

bool WarnIfSingleCore(std::ostream& err) {
  if (GetBuildInfo().hardware_concurrency > 1) return false;
  err << "\n"
         "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n"
         "!! WARNING: hardware_concurrency == 1 on this machine.     !!\n"
         "!! Parallel speedups measured here are meaningless; do not !!\n"
         "!! commit multi-core benchmark numbers from this host.     !!\n"
         "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n\n";
  return true;
}

}  // namespace ttmqo::obs
