file(REMOVE_RECURSE
  "CMakeFiles/dynamic_oracle_test.dir/dynamic_oracle_test.cc.o"
  "CMakeFiles/dynamic_oracle_test.dir/dynamic_oracle_test.cc.o.d"
  "dynamic_oracle_test"
  "dynamic_oracle_test.pdb"
  "dynamic_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
