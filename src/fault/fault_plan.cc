#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "net/network.h"
#include "util/rng.h"

namespace ttmqo {
namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

void CheckProb(double p, const char* what) {
  if (!(p >= 0.0 && p < 1.0)) {
    Fail(std::string(what) + " probability must be in [0,1), got " +
         std::to_string(p));
  }
}

void EmitFault(TraceSink* trace, SimTime now, const char* kind,
               std::initializer_list<std::pair<const char*, std::int64_t>>
                   fields) {
  if (trace == nullptr) return;
  TraceEvent event(kind);
  event.time = now;
  for (const auto& [key, value] : fields) event.With(key, value);
  trace->Emit(event);
}

}  // namespace

FaultPlan& FaultPlan::AddCrash(NodeId node, SimTime at) {
  crashes_.push_back(CrashEvent{at, node});
  return *this;
}

FaultPlan& FaultPlan::AddOutage(NodeId node, SimTime from, SimTime until) {
  outages_.push_back(OutageEvent{node, from, until});
  return *this;
}

FaultPlan& FaultPlan::AddLinkLoss(NodeId a, NodeId b, double prob,
                                  SimTime from, SimTime until) {
  link_events_.push_back(LinkLossEvent{a, b, prob, from, until});
  return *this;
}

FaultPlan& FaultPlan::AddPartition(std::vector<NodeId> nodes, SimTime from,
                                   SimTime until) {
  partitions_.push_back(PartitionEvent{std::move(nodes), from, until});
  return *this;
}

FaultPlan& FaultPlan::SetDefaultLinkLoss(double prob) {
  CheckProb(prob, "default link loss");
  default_link_loss_ = prob;
  return *this;
}

bool FaultPlan::Empty() const {
  return crashes_.empty() && outages_.empty() && link_events_.empty() &&
         partitions_.empty() && default_link_loss_ == 0.0;
}

void FaultPlan::Validate(const Topology& topology,
                         SimDuration duration_ms) const {
  const std::size_t n = topology.size();
  const auto check_node = [&](NodeId node, const char* what) {
    if (node == kBaseStationId) {
      Fail(std::string(what) + " targets the base station (node 0), which "
                               "cannot fail or go down");
    }
    if (node >= n) {
      Fail(std::string(what) + " targets node " + std::to_string(node) +
           " but the deployment has only " + std::to_string(n) + " nodes");
    }
  };

  // Crashes: in range, not the sink, at most one per node, inside the run.
  constexpr SimTime kNever = -1;
  std::vector<SimTime> crash_at(n, kNever);
  for (const CrashEvent& c : crashes_) {
    check_node(c.node, "a crash");
    if (c.time >= duration_ms) {
      Fail("crash of node " + std::to_string(c.node) + " at t=" +
           std::to_string(c.time) + " lies beyond the run duration " +
           std::to_string(duration_ms));
    }
    if (crash_at[c.node] != kNever) {
      Fail("node " + std::to_string(c.node) +
           " is crashed twice; it is already dead after the first crash");
    }
    crash_at[c.node] = c.time;
  }

  // Outages (including partition memberships): valid windows, no outage on
  // an already-crashed node, no overlapping windows per node.
  std::vector<std::vector<std::pair<SimTime, SimTime>>> windows(n);
  const auto check_window = [&](NodeId node, SimTime from, SimTime until,
                                const char* what) {
    check_node(node, what);
    if (from >= until) {
      Fail(std::string(what) + " of node " + std::to_string(node) +
           " has an empty window [" + std::to_string(from) + ", " +
           std::to_string(until) + ")");
    }
    if (until > duration_ms) {
      Fail(std::string(what) + " of node " + std::to_string(node) +
           " ends at t=" + std::to_string(until) +
           ", beyond the run duration " + std::to_string(duration_ms));
    }
    if (crash_at[node] != kNever && from >= crash_at[node]) {
      Fail(std::string(what) + " of node " + std::to_string(node) +
           " starts at t=" + std::to_string(from) +
           " but the node crashes at t=" + std::to_string(crash_at[node]));
    }
    for (const auto& [f, u] : windows[node]) {
      if (from < u && f < until) {
        Fail("node " + std::to_string(node) +
             " has overlapping down windows [" + std::to_string(f) + ", " +
             std::to_string(u) + ") and [" + std::to_string(from) + ", " +
             std::to_string(until) + ")");
      }
    }
    windows[node].emplace_back(from, until);
  };
  for (const OutageEvent& o : outages_) {
    check_window(o.node, o.from, o.until, "an outage");
  }
  for (const PartitionEvent& p : partitions_) {
    if (p.nodes.empty()) Fail("a partition lists no nodes");
    for (NodeId node : p.nodes) {
      check_window(node, p.from, p.until, "a partition");
    }
  }

  // Link events: endpoints in range and adjacent, sane windows and probs.
  CheckProb(default_link_loss_, "default link loss");
  for (const LinkLossEvent& e : link_events_) {
    CheckProb(e.prob, "link loss");
    if (e.a >= n || e.b >= n) {
      Fail("a link event references node " +
           std::to_string(std::max(e.a, e.b)) +
           " but the deployment has only " + std::to_string(n) + " nodes");
    }
    if (!topology.AreNeighbors(e.a, e.b)) {
      Fail("link event on " + std::to_string(e.a) + "-" +
           std::to_string(e.b) + ", which are not radio neighbors");
    }
    if (e.until != 0 && e.from >= e.until) {
      Fail("link event on " + std::to_string(e.a) + "-" +
           std::to_string(e.b) + " has an empty window [" +
           std::to_string(e.from) + ", " + std::to_string(e.until) + ")");
    }
    if (e.from >= duration_ms) {
      Fail("link event on " + std::to_string(e.a) + "-" +
           std::to_string(e.b) + " starts beyond the run duration");
    }
  }
}

void FaultPlan::ScheduleOn(Network& network, TraceSink* trace) const {
  Simulator& sim = network.sim();
  if (default_link_loss_ > 0.0) {
    network.SetDefaultLinkLoss(default_link_loss_);
  }
  for (const CrashEvent& c : crashes_) {
    sim.ScheduleAt(c.time, [&network, trace, c]() {
      network.FailNode(c.node);
      EmitFault(trace, network.sim().Now(), "fault.crash",
                {{"node", static_cast<std::int64_t>(c.node)}});
    });
  }
  for (const OutageEvent& o : outages_) {
    sim.ScheduleAt(o.from, [&network, trace, o]() {
      network.SetDown(o.node);
      EmitFault(trace, network.sim().Now(), "fault.down",
                {{"node", static_cast<std::int64_t>(o.node)},
                 {"until", static_cast<std::int64_t>(o.until)}});
    });
    sim.ScheduleAt(o.until, [&network, trace, o]() {
      network.Recover(o.node);
      EmitFault(trace, network.sim().Now(), "fault.recover",
                {{"node", static_cast<std::int64_t>(o.node)}});
    });
  }
  for (const LinkLossEvent& e : link_events_) {
    sim.ScheduleAt(e.from, [&network, trace, e]() {
      network.SetLinkLoss(e.a, e.b, e.prob);
      if (trace != nullptr) {
        TraceEvent event("fault.link_degrade");
        event.time = network.sim().Now();
        event.With("a", static_cast<std::int64_t>(e.a))
            .With("b", static_cast<std::int64_t>(e.b))
            .With("prob", e.prob);
        trace->Emit(event);
      }
    });
    if (e.until != 0) {
      sim.ScheduleAt(e.until, [&network, trace, e]() {
        network.ClearLinkLoss(e.a, e.b);
        EmitFault(trace, network.sim().Now(), "fault.link_restore",
                  {{"a", static_cast<std::int64_t>(e.a)},
                   {"b", static_cast<std::int64_t>(e.b)}});
      });
    }
  }
  for (const PartitionEvent& p : partitions_) {
    sim.ScheduleAt(p.from, [&network, trace, p]() {
      for (NodeId node : p.nodes) network.SetDown(node);
      EmitFault(trace, network.sim().Now(), "fault.partition",
                {{"nodes", static_cast<std::int64_t>(p.nodes.size())},
                 {"until", static_cast<std::int64_t>(p.until)}});
    });
    sim.ScheduleAt(p.until, [&network, trace, p]() {
      for (NodeId node : p.nodes) network.Recover(node);
      EmitFault(trace, network.sim().Now(), "fault.heal",
                {{"nodes", static_cast<std::int64_t>(p.nodes.size())}});
    });
  }
}

bool FaultPlan::AliveAt(NodeId node, SimTime t) const {
  for (const CrashEvent& c : crashes_) {
    if (c.node == node && c.time <= t) return false;
  }
  for (const OutageEvent& o : outages_) {
    if (o.node == node && o.from <= t && t < o.until) return false;
  }
  for (const PartitionEvent& p : partitions_) {
    if (p.from <= t && t < p.until &&
        std::find(p.nodes.begin(), p.nodes.end(), node) != p.nodes.end()) {
      return false;
    }
  }
  return true;
}

void FaultPlan::WriteJson(std::ostream& out) const {
  out << "{\"default_link_loss\":" << default_link_loss_ << ",\"crashes\":[";
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"node\":" << crashes_[i].node << ",\"t\":" << crashes_[i].time
        << '}';
  }
  out << "],\"outages\":[";
  for (std::size_t i = 0; i < outages_.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"node\":" << outages_[i].node << ",\"from\":"
        << outages_[i].from << ",\"until\":" << outages_[i].until << '}';
  }
  out << "],\"links\":[";
  for (std::size_t i = 0; i < link_events_.size(); ++i) {
    const LinkLossEvent& e = link_events_[i];
    if (i > 0) out << ',';
    out << "{\"a\":" << e.a << ",\"b\":" << e.b << ",\"prob\":" << e.prob
        << ",\"from\":" << e.from << ",\"until\":" << e.until << '}';
  }
  out << "],\"partitions\":[";
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const PartitionEvent& p = partitions_[i];
    if (i > 0) out << ',';
    out << "{\"nodes\":[";
    for (std::size_t j = 0; j < p.nodes.size(); ++j) {
      if (j > 0) out << ',';
      out << p.nodes[j];
    }
    out << "],\"from\":" << p.from << ",\"until\":" << p.until << '}';
  }
  out << "]}";
}

FaultPlan FaultPlan::RandomTransient(const RandomFaultParams& params,
                                     std::size_t num_nodes,
                                     SimDuration duration_ms,
                                     std::uint64_t seed) {
  FaultPlan plan;
  if (params.link_loss > 0.0) plan.SetDefaultLinkLoss(params.link_loss);
  if (num_nodes < 2) return plan;
  const auto cap = static_cast<std::size_t>(std::floor(
      params.max_down_fraction * static_cast<double>(num_nodes - 1)));
  const std::size_t victims = std::min(params.max_outages, cap);
  if (victims == 0) return plan;

  Rng rng(seed ^ 0x6661756c74ULL);
  // Distinct non-base-station victims via a partial Fisher-Yates shuffle.
  std::vector<NodeId> pool;
  pool.reserve(num_nodes - 1);
  for (NodeId node = 1; node < num_nodes; ++node) pool.push_back(node);
  for (std::size_t i = 0; i < victims; ++i) {
    const std::size_t j = i + rng.Index(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }

  const SimTime last_start =
      params.window_until > 0
          ? params.window_until
          : (duration_ms > params.max_outage_ms
                 ? duration_ms - params.max_outage_ms
                 : 1);
  for (std::size_t i = 0; i < victims; ++i) {
    const auto from = static_cast<SimTime>(rng.UniformInt(
        static_cast<std::int64_t>(params.window_from),
        static_cast<std::int64_t>(last_start > 0 ? last_start - 1 : 0)));
    const auto length = static_cast<SimDuration>(
        rng.UniformInt(static_cast<std::int64_t>(params.min_outage_ms),
                       static_cast<std::int64_t>(params.max_outage_ms)));
    const SimTime until = std::min<SimTime>(from + length, duration_ms);
    if (from >= until) continue;
    plan.AddOutage(pool[i], from, until);
  }
  return plan;
}

}  // namespace ttmqo
