// Exporter format tests: Prometheus exposition escaping and label layout
// from the MetricsRegistry, and the JSONL trace escaping round-trip.  The
// exposition format defines exactly three label-value escapes (backslash,
// quote, newline); JSON-style tab/unicode sequences would be rejected by a
// Prometheus scraper, so these tests pin the difference down.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "json_checker.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "util/tracing.h"

namespace ttmqo {
namespace {

using ttmqo::testing::IsValidJson;

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Decodes the JSON string escapes our writers emit (no surrogate pairs:
/// the escaper only produces \u00XX for control bytes).
std::string JsonUnescape(std::string_view escaped) {
  std::string out;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        const std::string hex(escaped.substr(i + 1, 4));
        out += static_cast<char>(std::stoi(hex, nullptr, 16));
        i += 4;
        break;
      }
      default: out += escaped[i];  // quote, backslash, slash
    }
  }
  return out;
}

/// Extracts the raw (still-escaped) JSON string value of `key` from a
/// serialized object.
std::string RawStringField(const std::string& json, const std::string& key) {
  const std::string anchor = "\"" + key + "\":\"";
  const std::size_t start = json.find(anchor);
  if (start == std::string::npos) return {};
  std::size_t pos = start + anchor.size();
  std::string raw;
  while (pos < json.size() && json[pos] != '"') {
    if (json[pos] == '\\') {
      raw += json[pos];
      ++pos;
    }
    raw += json[pos];
    ++pos;
  }
  return raw;
}

// -------------------------------------------------- prometheus format --

TEST(PrometheusTest, LabelValuesUseExpositionEscapes) {
  MetricsRegistry registry;
  registry
      .GetCounter("m_total", {{"msg", "line1\nline2"},
                              {"path", "a\\b"},
                              {"quote", "say \"hi\""}})
      .Add(1.0);
  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  // Labels are sorted by name; values escape exactly newline, backslash,
  // and double quote.
  EXPECT_NE(text.find("m_total{msg=\"line1\\nline2\",path=\"a\\\\b\","
                      "quote=\"say \\\"hi\\\"\"} 1"),
            std::string::npos)
      << text;
}

TEST(PrometheusTest, OtherBytesPassThroughRaw) {
  std::string value = "a\tb";
  value += static_cast<char>(0x01);
  value += 'c';
  MetricsRegistry registry;
  registry.GetCounter("m_total", {{"v", value}}).Add(1.0);
  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  // A tab or other control byte is legal raw inside a quoted label value;
  // JSON-style \t or \u00XX sequences are not part of the exposition
  // format and must not appear.
  EXPECT_NE(text.find("v=\"" + value + "\""), std::string::npos) << text;
  EXPECT_EQ(text.find("\\t"), std::string::npos) << text;
  EXPECT_EQ(text.find("\\u"), std::string::npos) << text;
}

TEST(PrometheusTest, SampleLineFormat) {
  MetricsRegistry registry;
  registry.GetCounter("tx_total", {{"b", "2"}, {"a", "1"}}).Add(3.0);
  registry.GetGauge("depth").Set(0.5);
  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::vector<std::string> lines = Lines(out.str());
  // name{sorted labels} value — one sample per line, TYPE comment first.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# TYPE depth gauge");
  EXPECT_EQ(lines[1], "depth 0.5");
  EXPECT_EQ(lines[2], "# TYPE tx_total counter");
  EXPECT_EQ(lines[3], "tx_total{a=\"1\",b=\"2\"} 3");
}

TEST(PrometheusTest, HistogramReusesLabelsWithLe) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.GetHistogram("dur_ms", {2.0, 8.0}, {{"mode", "ttmqo"}});
  h.Observe(1.0);
  h.Observe(100.0);
  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("dur_ms_bucket{mode=\"ttmqo\",le=\"2\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dur_ms_bucket{mode=\"ttmqo\",le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dur_ms_sum{mode=\"ttmqo\"} 101"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dur_ms_count{mode=\"ttmqo\"} 2"), std::string::npos)
      << text;
}

TEST(PrometheusTest, JsonExportStaysValidWithSpecialLabels) {
  MetricsRegistry registry;
  registry
      .GetCounter("m_total",
                  {{"v", "tab\there"}, {"w", "line\nbreak \"q\" b\\s"}})
      .Add(1.0);
  std::ostringstream out;
  registry.WriteJson(out);
  // The instrument key holds Prometheus-escaped values (and raw tabs);
  // WriteJsonString re-escapes it, so the JSON document stays valid.
  EXPECT_TRUE(IsValidJson(out.str())) << out.str();
}

// ------------------------------------------------- jsonl round-trip --

TEST(JsonlRoundTripTest, EscapedStringsSurviveParsing) {
  std::string nasty = "a\"b\\c\nd\te\rf";
  nasty += static_cast<char>(0x01);
  nasty += "g/h";
  std::ostringstream out;
  {
    JsonlTraceWriter writer(out);
    TraceEvent event("obs.test.roundtrip");
    event.time = 3;
    event.With("s", nasty);
    writer.Emit(event);
  }
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_TRUE(IsValidJson(lines[0])) << lines[0];
  EXPECT_EQ(JsonUnescape(RawStringField(lines[0], "s")), nasty);
}

TEST(JsonlRoundTripTest, EveryLineParsesIndependently) {
  std::ostringstream out;
  {
    JsonlTraceWriter writer(out);
    for (int i = 0; i < 3; ++i) {
      TraceEvent event("obs.test.multi");
      event.time = i;
      event.With("note", std::string("row \"") + std::to_string(i) + "\"");
      writer.Emit(event);
    }
  }
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
}

TEST(JsonlRoundTripTest, EscapeUnescapeIsIdentity) {
  std::vector<std::string> cases = {
      "",
      "plain",
      "quote\"backslash\\slash/",
      "\n\r\t\b\f",
      "mixed \"x\\y\"\nnext\tcol",
  };
  std::string with_controls = "nul";
  with_controls += static_cast<char>(0x01);
  with_controls += static_cast<char>(0x1f);
  with_controls += " suffix";
  cases.push_back(with_controls);
  for (const std::string& original : cases) {
    std::string escaped;
    JsonEscape(original, escaped);
    EXPECT_EQ(JsonUnescape(escaped), original) << escaped;
  }
}

}  // namespace
}  // namespace ttmqo
