// Declarative sweep specifications and aggregated sweep reports.
//
// A `SweepSpec` names the cartesian axes of an experiment matrix — grid
// sides, workloads, optimization modes, fault scenarios, and seed
// replicates — exactly the shape of the paper's evaluation (Section 4:
// grid sizes x query workloads x schemes).  `Expand` turns the spec into
// an ordered list of independent `RunUnit`s whose random streams all
// derive from (base seed, task coordinates), and `RunSweep` executes them
// on a thread pool.  The resulting `SweepReport` serializes to JSON/CSV;
// its canonical form omits wall-clock timing so that reports from runs
// with different `--jobs` compare byte-for-byte.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "reliable/profile.h"
#include "sweep/sweep.h"

namespace ttmqo {

/// The cartesian axes of one sweep.  Defaults reproduce a small
/// scalability matrix.
struct SweepSpec {
  /// Grid sides (nodes = side * side, base station at node 0).
  std::vector<std::size_t> grid_sides = {4};
  /// Workload names: "A"/"B"/"C" (the static Section 4.2 workloads) or
  /// "random:<k>" (k concurrent queries from the Section 4.3 random
  /// model, drawn per replicate).
  std::vector<std::string> workloads = {"C"};
  std::vector<OptimizationMode> modes = {OptimizationMode::kBaseline,
                                         OptimizationMode::kTwoTier};
  /// Fault scenarios: "none", "transient" (a random transient-outage plan
  /// drawn per replicate via `FaultPlan::RandomTransient`) or "loss:<p>"
  /// (uniform per-delivery link loss with probability p).
  std::vector<std::string> faults = {"none"};
  /// Reliability profiles ("off", "harden", "arq").  Run seeds derive from
  /// the replicate alone, so profiles compare like-for-like on identical
  /// inputs — the delivery-completeness-vs-loss figure's axes.
  std::vector<ReliabilityProfile> reliability = {ReliabilityProfile::kOff};
  /// Number of seed replicates.  Within one replicate every (grid,
  /// workload, mode, fault) cell uses the same run seed and the same
  /// generated workload, so modes compare like-for-like.
  std::size_t seeds = 1;
  std::uint64_t base_seed = 1;
  SimDuration duration_ms = 20 * 12288;
  double collisions = 0.0;
  double alpha = 0.6;

  /// Parses the compact spec language: whitespace- or ';'-separated
  /// `key=value[,value...]` entries, e.g.
  ///   "grids=4,8 workloads=A,C modes=baseline,ttmqo faults=none
  ///    seeds=3 base-seed=7 duration-ms=245760 collisions=0.02 alpha=0.6"
  /// Unknown keys and malformed values throw `std::invalid_argument`.
  static SweepSpec Parse(const std::string& text);

  /// The spec rendered back in the `Parse` language (canonical order).
  std::string ToString() const;

  /// Number of tasks the spec expands to.
  std::size_t TaskCount() const;

  /// Expands the axes (grid, then workload, then mode, then fault, then
  /// reliability, then replicate; the last axis varies fastest) into
  /// independent run units.
  std::vector<RunUnit> Expand() const;
};

/// One executed cell of the sweep matrix.
struct SweepRow {
  std::size_t index = 0;
  std::size_t grid_side = 0;
  std::string workload;
  std::string mode;
  std::string fault;
  std::string reliability;
  std::size_t replicate = 0;
  std::uint64_t seed = 0;
  RunResult run;
  double wall_ms = 0.0;
};

/// The aggregated outcome of one sweep execution.
struct SweepReport {
  std::string spec_text;
  unsigned jobs = 1;
  double wall_ms = 0.0;
  std::vector<SweepRow> rows;
  /// Per-worker utilization of the pool that executed the sweep.
  PoolReport pool;

  /// Row indices whose wall time exceeds `k` times the median row wall
  /// time — the stragglers that cap parallel speedup.  Empty when timing
  /// was not collected.
  std::vector<std::size_t> Stragglers(double k = 3.0) const;

  /// Writes the report as one JSON document.  With `include_timing`
  /// false, wall-clock fields (per-row `wall_ms`, the totals block, the
  /// worker/straggler/build diagnostics) are omitted and the output
  /// depends only on the spec — the canonical form the determinism tests
  /// compare byte-for-byte.
  void WriteJson(std::ostream& out, bool include_timing = true) const;

  /// The same rows as CSV (one line per task, sorted by index).
  void WriteCsv(std::ostream& out, bool include_timing = true) const;

  /// `WriteJson(out, /*include_timing=*/false)` as a string.
  std::string Canonical() const;

  /// Sum of `Simulator::events_executed` over all rows.
  std::uint64_t TotalEvents() const;
};

/// Expands `spec` and simulates every cell on up to `jobs` threads
/// (0 = hardware concurrency).  Row order is the expansion order,
/// independent of scheduling.  When `registry` is set, every run feeds
/// its metrics into it, tagged with the cell's coordinates
/// (grid/workload/mode/fault/replicate) — `MetricsRegistry` is
/// thread-safe by contract and its sorted export is deterministic even
/// though runs finish in any order.
///
/// `batch_seeds` is an execution parameter like `jobs`, not part of the
/// spec: up to that many consecutive same-cell-different-seed rows run
/// through one lockstep batched event loop, and the canonical report is
/// byte-identical for every value.
SweepReport RunSweep(const SweepSpec& spec, unsigned jobs,
                     MetricsRegistry* registry = nullptr,
                     std::size_t batch_seeds = 1);

}  // namespace ttmqo
