#include "sweep/spec.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "fault/fault_plan.h"
#include "obs/build_info.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      if (!current.empty()) parts.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(std::move(current));
  return parts;
}

OptimizationMode ParseModeName(const std::string& name) {
  if (name == "baseline") return OptimizationMode::kBaseline;
  if (name == "bs" || name == "bs-only") {
    return OptimizationMode::kBaseStationOnly;
  }
  if (name == "innet" || name == "innet-only") {
    return OptimizationMode::kInNetworkOnly;
  }
  if (name == "ttmqo") return OptimizationMode::kTwoTier;
  throw std::invalid_argument("sweep spec: unknown mode '" + name +
                              "' (baseline|bs|innet|ttmqo)");
}

std::string_view ShortModeName(OptimizationMode mode) {
  switch (mode) {
    case OptimizationMode::kBaseline:
      return "baseline";
    case OptimizationMode::kBaseStationOnly:
      return "bs";
    case OptimizationMode::kInNetworkOnly:
      return "innet";
    case OptimizationMode::kTwoTier:
      return "ttmqo";
  }
  Check(false, "unknown optimization mode");
  return "";
}

std::int64_t ParseIntValue(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t parsed = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("sweep spec: " + key +
                                " expects an integer, got '" + value + "'");
  }
}

double ParseDoubleValue(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("sweep spec: " + key +
                                " expects a number, got '" + value + "'");
  }
}

/// The workload of one (name, replicate) cell.  Static workloads ignore
/// the seed; "random:<k>" draws k queries from the Section 4.3 model.
std::vector<WorkloadEvent> MakeWorkload(const std::string& name,
                                        std::uint64_t workload_seed) {
  if (name == "A" || name == "B" || name == "C") {
    return StaticSchedule(WorkloadByName(name));
  }
  if (name.rfind("random:", 0) == 0) {
    const std::int64_t count = ParseIntValue("workloads", name.substr(7));
    CheckArg(count > 0, "sweep spec: random workload needs a positive count");
    QueryModelParams params;
    params.predicate_selectivity = 1.0;
    params.randomize_selectivity = true;
    RandomQueryModel model(params, workload_seed);
    std::vector<Query> queries;
    for (QueryId i = 1; i <= static_cast<QueryId>(count); ++i) {
      queries.push_back(model.Next(i));
    }
    return StaticSchedule(queries);
  }
  throw std::invalid_argument("sweep spec: unknown workload '" + name +
                              "' (A|B|C|random:<k>)");
}

/// The fault plan of one (scenario, grid, replicate) cell.
FaultPlan MakeFaultPlan(const std::string& scenario, std::size_t nodes,
                        SimDuration duration_ms, std::uint64_t fault_seed) {
  if (scenario == "none") return FaultPlan();
  if (scenario == "transient") {
    return FaultPlan::RandomTransient(RandomFaultParams{}, nodes, duration_ms,
                                      fault_seed);
  }
  if (scenario.rfind("loss:", 0) == 0) {
    FaultPlan plan;
    plan.SetDefaultLinkLoss(ParseDoubleValue("faults", scenario.substr(5)));
    return plan;
  }
  throw std::invalid_argument("sweep spec: unknown fault scenario '" +
                              scenario + "' (none|transient|loss:<p>)");
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Shortest-round-trip-ish double rendering, stable for equal doubles.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Total answer rows a run delivered: acquisition rows plus finalized
/// aggregate values.
std::uint64_t DeliveredRows(const RunResult& run) {
  std::uint64_t rows = 0;
  for (const EpochResult* r : run.results.All()) {
    rows += static_cast<std::uint64_t>(r->rows.size());
    for (const auto& [spec, value] : r->aggregates) {
      if (value.has_value()) ++rows;
    }
  }
  return rows;
}

void WriteRowJson(std::ostream& out, const SweepRow& row,
                  bool include_timing) {
  const RunSummary& s = row.run.summary;
  out << "{\"index\":" << row.index << ",\"grid\":" << row.grid_side
      << ",\"workload\":\"" << JsonEscape(row.workload) << "\",\"mode\":\""
      << JsonEscape(row.mode) << "\",\"fault\":\"" << JsonEscape(row.fault)
      << "\",\"reliability\":\"" << JsonEscape(row.reliability)
      << "\",\"replicate\":" << row.replicate << ",\"seed\":" << row.seed
      << ",\"avg_tx_fraction\":" << Num(s.avg_transmission_fraction)
      << ",\"avg_sleep_fraction\":" << Num(s.avg_sleep_fraction)
      << ",\"total_transmit_ms\":" << Num(s.total_transmit_ms)
      << ",\"messages\":" << s.total_messages
      << ",\"retransmissions\":" << s.retransmissions
      << ",\"control_msgs\":" << s.control_messages
      << ",\"results\":" << row.run.results.size()
      << ",\"rows\":" << DeliveredRows(row.run)
      << ",\"avg_network_queries\":" << Num(row.run.avg_network_queries)
      << ",\"avg_benefit_ratio\":" << Num(row.run.avg_benefit_ratio)
      << ",\"peak_user_queries\":" << row.run.peak_user_queries
      << ",\"delivery_avg\":" << Num(s.AvgDeliveryCompleteness())
      << ",\"delivery_min\":" << Num(s.MinDeliveryCompleteness())
      // -1 marks "not tracked" (off/harden); the arq profile reports real
      // per-epoch coverage.
      << ",\"coverage_avg\":"
      << Num(s.coverage.empty() ? -1.0 : s.AvgCoverage())
      << ",\"coverage_min\":"
      << Num(s.coverage.empty() ? -1.0 : s.MinCoverage())
      << ",\"partial_epochs\":" << s.PartialEpochs()
      << ",\"events_executed\":" << row.run.events_executed;
  if (include_timing) out << ",\"wall_ms\":" << Num(row.wall_ms);
  out << "}";
}

}  // namespace

SweepSpec SweepSpec::Parse(const std::string& text) {
  SweepSpec spec;
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ';' || c == '\n' || c == '\t') c = ' ';
  }
  for (const std::string& entry : SplitOn(normalized, ' ')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("sweep spec: expected key=value, got '" +
                                  entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    const std::vector<std::string> values = SplitOn(value, ',');
    if (values.empty()) {
      throw std::invalid_argument("sweep spec: " + key + " has no value");
    }
    if (key == "grids") {
      spec.grid_sides.clear();
      for (const std::string& v : values) {
        const std::int64_t side = ParseIntValue(key, v);
        CheckArg(side >= 2, "sweep spec: grid side must be >= 2");
        spec.grid_sides.push_back(static_cast<std::size_t>(side));
      }
    } else if (key == "workloads") {
      spec.workloads = values;
    } else if (key == "modes") {
      spec.modes.clear();
      for (const std::string& v : values) {
        spec.modes.push_back(ParseModeName(v));
      }
    } else if (key == "faults") {
      spec.faults = values;
    } else if (key == "reliability") {
      spec.reliability.clear();
      for (const std::string& v : values) {
        spec.reliability.push_back(ParseReliabilityProfile(v));
      }
    } else if (key == "seeds") {
      const std::int64_t seeds = ParseIntValue(key, value);
      CheckArg(seeds >= 1, "sweep spec: seeds must be >= 1");
      spec.seeds = static_cast<std::size_t>(seeds);
    } else if (key == "base-seed") {
      spec.base_seed = static_cast<std::uint64_t>(ParseIntValue(key, value));
    } else if (key == "duration-ms") {
      const std::int64_t duration = ParseIntValue(key, value);
      CheckArg(duration > 0, "sweep spec: duration-ms must be positive");
      spec.duration_ms = duration;
    } else if (key == "collisions") {
      spec.collisions = ParseDoubleValue(key, value);
    } else if (key == "alpha") {
      spec.alpha = ParseDoubleValue(key, value);
    } else {
      throw std::invalid_argument(
          "sweep spec: unknown key '" + key +
          "' (grids|workloads|modes|faults|reliability|seeds|base-seed|"
          "duration-ms|collisions|alpha)");
    }
  }
  CheckArg(!spec.grid_sides.empty() && !spec.workloads.empty() &&
               !spec.modes.empty() && !spec.faults.empty() &&
               !spec.reliability.empty(),
           "sweep spec: every axis needs at least one value");
  return spec;
}

std::string SweepSpec::ToString() const {
  std::ostringstream out;
  const auto join = [&out](const char* key, const auto& values,
                           const auto& render) {
    out << key << "=";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out << ",";
      out << render(values[i]);
    }
    out << " ";
  };
  join("grids", grid_sides, [](std::size_t side) { return side; });
  join("workloads", workloads, [](const std::string& w) { return w; });
  join("modes", modes, [](OptimizationMode m) { return ShortModeName(m); });
  join("faults", faults, [](const std::string& f) { return f; });
  join("reliability", reliability,
       [](ReliabilityProfile p) { return ReliabilityProfileName(p); });
  out << "seeds=" << seeds << " base-seed=" << base_seed << " duration-ms="
      << duration_ms << " collisions=" << Num(collisions) << " alpha="
      << Num(alpha);
  return out.str();
}

std::size_t SweepSpec::TaskCount() const {
  return grid_sides.size() * workloads.size() * modes.size() * faults.size() *
         reliability.size() * seeds;
}

std::vector<RunUnit> SweepSpec::Expand() const {
  std::vector<RunUnit> units;
  units.reserve(TaskCount());
  const Rng root(base_seed);
  for (const std::size_t side : grid_sides) {
    for (const std::string& workload : workloads) {
      for (const OptimizationMode mode : modes) {
        for (const std::string& fault : faults) {
          for (const ReliabilityProfile profile : reliability) {
            for (std::size_t replicate = 0; replicate < seeds; ++replicate) {
              // All streams of a replicate derive from (base seed,
              // coordinates); the run/workload/fault seeds are shared
              // across the mode and reliability axes so schemes compare
              // like-for-like on identical inputs.
              const std::uint64_t run_seed =
                  root.Fork(0x10000 + replicate).seed();
              const std::uint64_t workload_seed =
                  root.Fork(0x20000 + replicate).seed();
              const std::uint64_t fault_seed =
                  root.Fork(0x30000 + replicate).seed() ^ (side << 8);

              RunUnit unit;
              unit.config.grid_side = side;
              unit.config.mode = mode;
              unit.config.alpha = alpha;
              unit.config.duration_ms = duration_ms;
              unit.config.seed = run_seed;
              unit.config.channel.collision_prob = collisions;
              unit.config.reliability = profile;
              unit.config.faults = MakeFaultPlan(fault, side * side,
                                                 duration_ms, fault_seed);
              unit.schedule = MakeWorkload(workload, workload_seed);
              std::ostringstream label;
              label << "grid=" << side << " workload=" << workload << " mode="
                    << ShortModeName(mode) << " fault=" << fault
                    << " reliability=" << ReliabilityProfileName(profile)
                    << " replicate=" << replicate;
              unit.label = label.str();
              units.push_back(std::move(unit));
            }
          }
        }
      }
    }
  }
  return units;
}

std::vector<std::size_t> SweepReport::Stragglers(double k) const {
  std::vector<double> walls;
  walls.reserve(rows.size());
  for (const SweepRow& row : rows) {
    if (row.wall_ms > 0.0) walls.push_back(row.wall_ms);
  }
  if (walls.size() < 2) return {};
  std::sort(walls.begin(), walls.end());
  const double median = walls[walls.size() / 2];
  std::vector<std::size_t> out;
  for (const SweepRow& row : rows) {
    if (row.wall_ms > k * median) out.push_back(row.index);
  }
  return out;
}

void SweepReport::WriteJson(std::ostream& out, bool include_timing) const {
  out << "{\"spec\":\"" << JsonEscape(spec_text) << "\",\"tasks\":"
      << rows.size();
  if (include_timing) {
    out << ",\"jobs\":" << jobs << ",\"wall_ms\":" << Num(wall_ms);
    if (wall_ms > 0) {
      out << ",\"runs_per_sec\":"
          << Num(static_cast<double>(rows.size()) * 1000.0 / wall_ms)
          << ",\"events_per_sec\":"
          << Num(static_cast<double>(TotalEvents()) * 1000.0 / wall_ms);
    }
    // Pool utilization, stragglers, and build provenance live only in the
    // timed form: they depend on the machine and the moment, never on the
    // spec, so the canonical (jobs-independent) report must not see them.
    if (!pool.workers.empty()) {
      out << ",\"pool_utilization\":" << Num(pool.Utilization())
          << ",\"workers\":[";
      for (std::size_t i = 0; i < pool.workers.size(); ++i) {
        const WorkerStat& w = pool.workers[i];
        if (i > 0) out << ",";
        out << "{\"worker\":" << w.worker << ",\"tasks\":" << w.tasks
            << ",\"busy_ms\":" << Num(w.busy_ms);
        if (pool.wall_ms > 0.0) {
          out << ",\"utilization\":" << Num(w.busy_ms / pool.wall_ms);
        }
        out << "}";
      }
      out << "]";
    }
    const std::vector<std::size_t> stragglers = Stragglers();
    out << ",\"stragglers\":[";
    for (std::size_t i = 0; i < stragglers.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"index\":" << stragglers[i] << ",\"label\":\""
          << JsonEscape(rows[stragglers[i]].workload) << "\",\"wall_ms\":"
          << Num(rows[stragglers[i]].wall_ms) << "}";
    }
    out << "]";
    const obs::BuildInfo& build = obs::GetBuildInfo();
    out << ",\"build\":{\"git_sha\":\"" << JsonEscape(build.git_sha)
        << "\",\"compiler\":\"" << JsonEscape(build.compiler)
        << "\",\"build_type\":\"" << JsonEscape(build.build_type)
        << "\",\"hostname\":\"" << JsonEscape(build.hostname)
        << "\",\"hardware_concurrency\":" << build.hardware_concurrency
        << "}";
  }
  out << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n";
    WriteRowJson(out, rows[i], include_timing);
  }
  out << "\n]}";
}

void SweepReport::WriteCsv(std::ostream& out, bool include_timing) const {
  out << "index,grid,workload,mode,fault,reliability,replicate,seed,"
         "avg_tx_fraction,avg_sleep_fraction,total_transmit_ms,messages,"
         "retransmissions,control_msgs,results,rows,avg_network_queries,"
         "avg_benefit_ratio,peak_user_queries,delivery_avg,delivery_min,"
         "coverage_avg,coverage_min,partial_epochs,events_executed";
  if (include_timing) out << ",wall_ms";
  out << "\n";
  for (const SweepRow& row : rows) {
    const RunSummary& s = row.run.summary;
    out << row.index << "," << row.grid_side << "," << row.workload << ","
        << row.mode << "," << row.fault << "," << row.reliability << ","
        << row.replicate << ","
        << row.seed << "," << Num(s.avg_transmission_fraction) << ","
        << Num(s.avg_sleep_fraction) << "," << Num(s.total_transmit_ms)
        << "," << s.total_messages << "," << s.retransmissions << ","
        << s.control_messages << ","
        << row.run.results.size() << "," << DeliveredRows(row.run) << ","
        << Num(row.run.avg_network_queries) << ","
        << Num(row.run.avg_benefit_ratio) << "," << row.run.peak_user_queries
        << "," << Num(s.AvgDeliveryCompleteness()) << ","
        << Num(s.MinDeliveryCompleteness()) << ","
        << Num(s.coverage.empty() ? -1.0 : s.AvgCoverage()) << ","
        << Num(s.coverage.empty() ? -1.0 : s.MinCoverage()) << ","
        << s.PartialEpochs() << "," << row.run.events_executed;
    if (include_timing) out << "," << Num(row.wall_ms);
    out << "\n";
  }
}

std::string SweepReport::Canonical() const {
  std::ostringstream out;
  WriteJson(out, /*include_timing=*/false);
  return out.str();
}

std::uint64_t SweepReport::TotalEvents() const {
  std::uint64_t events = 0;
  for (const SweepRow& row : rows) events += row.run.events_executed;
  return events;
}

SweepReport RunSweep(const SweepSpec& spec, unsigned jobs,
                     MetricsRegistry* registry, std::size_t batch_seeds) {
  std::vector<RunUnit> units = spec.Expand();
  if (registry != nullptr) {
    std::size_t index = 0;
    for (const std::size_t side : spec.grid_sides) {
      for (const std::string& workload : spec.workloads) {
        for (const OptimizationMode mode : spec.modes) {
          for (const std::string& fault : spec.faults) {
            for (const ReliabilityProfile profile : spec.reliability) {
              for (std::size_t replicate = 0; replicate < spec.seeds;
                   ++replicate) {
                RunUnit& unit = units[index++];
                unit.config.obs.registry = registry;
                unit.config.obs.labels = {
                    {"grid", std::to_string(side)},
                    {"workload", workload},
                    {"mode", std::string(ShortModeName(mode))},
                    {"fault", fault},
                    {"reliability",
                     std::string(ReliabilityProfileName(profile))},
                    {"replicate", std::to_string(replicate)}};
              }
            }
          }
        }
      }
    }
  }
  PoolReport pool;
  // Wall-clock feeds only the timing (non-canonical) report section.
  // ttmqo-lint: allow(wall-clock): sweep timing metadata
  const auto start = std::chrono::steady_clock::now();
  std::vector<TimedRunResult> results =
      RunMany(units, jobs, &pool, batch_seeds);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)  // ttmqo-lint: allow(wall-clock): sweep timing
                             .count();

  SweepReport report;
  report.spec_text = spec.ToString();
  report.jobs = jobs == 0 ? HardwareJobs() : jobs;
  report.wall_ms = wall_ms;
  report.pool = std::move(pool);
  report.rows.reserve(units.size());
  std::size_t index = 0;
  for (const std::size_t side : spec.grid_sides) {
    for (const std::string& workload : spec.workloads) {
      for (const OptimizationMode mode : spec.modes) {
        for (const std::string& fault : spec.faults) {
          for (const ReliabilityProfile profile : spec.reliability) {
            for (std::size_t replicate = 0; replicate < spec.seeds;
                 ++replicate) {
              SweepRow row;
              row.index = index;
              row.grid_side = side;
              row.workload = workload;
              row.mode = std::string(OptimizationModeName(mode));
              row.fault = fault;
              row.reliability = std::string(ReliabilityProfileName(profile));
              row.replicate = replicate;
              row.seed = units[index].config.seed;
              row.run = std::move(results[index].run);
              row.wall_ms = results[index].wall_ms;
              report.rows.push_back(std::move(row));
              ++index;
            }
          }
        }
      }
    }
  }
  return report;
}

}  // namespace ttmqo
