// Canonical run fingerprints for golden-run regression testing.
//
// A fingerprint is a short, human-diffable text digest of everything a
// run's behavior determines: per-query answer-row counts, the
// message-class table, ledger transmission totals, and (when present)
// the delivery-completeness oracle.  It deliberately contains no wall
// clock, host name, path, or anything else that varies between equal
// runs, so a stored fingerprint stays stable until the simulated
// behavior itself changes — at which point the golden regression suite
// fails loudly and the diff shows exactly which quantity drifted.
#pragma once

#include <string>

#include "metrics/run_summary.h"
#include "query/result.h"
#include "workload/runner.h"

namespace ttmqo {

/// Fingerprints an engine-level run observed through its answer log and
/// ledger summary.
std::string FingerprintRun(const ResultLog& results,
                           const RunSummary& summary);

/// Fingerprints a harness-level run (adds simulator event counts and the
/// tier-1 statistics the harness samples).
std::string FingerprintRun(const RunResult& run);

}  // namespace ttmqo
