# Empty dependencies file for semantic_tree_test.
# This may be replaced when dependencies are built.
