#include "obs/session.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace ttmqo::obs {

ObsSession::Options ObsSession::FromFlags(const Flags& flags) {
  Options options;
  options.trace_chrome_path = flags.GetString("trace-chrome", "");
  options.postmortem_dir = flags.GetString("postmortem-dir", "");
  return options;
}

ObsSession::ObsSession(Options options) : options_(std::move(options)) {
  // Fail fast: an unwritable trace path should abort the run up front with
  // a normal error exit, not surface as a throw out of Finish() hours later
  // (or worse, out of the destructor, which would std::terminate).
  if (!options_.trace_chrome_path.empty()) {
    std::ofstream probe(options_.trace_chrome_path);
    if (!probe) {
      throw std::runtime_error("cannot open output file: " +
                               options_.trace_chrome_path);
    }
  }
  ResetSpans();
  ClearFlightRecords();
  if (!options_.postmortem_dir.empty()) {
    ArmPostmortem(options_.postmortem_dir);
  }
}

ObsSession::~ObsSession() {
  // A destructor must not throw; if the trace path became unwritable
  // mid-run (directory removed, disk full), report and carry on.
  try {
    Finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: %s\n", e.what());
  }
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!options_.trace_chrome_path.empty()) {
    WriteChromeTraceFile(options_.trace_chrome_path);
    std::printf("wrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                options_.trace_chrome_path.c_str());
  }
  if (options_.print_summary) {
    WriteSpanSummary(std::cerr, CollectSpans());
  }
  DisarmFlightRecorder();
}

}  // namespace ttmqo::obs
