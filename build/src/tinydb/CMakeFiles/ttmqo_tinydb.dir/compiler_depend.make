# Empty compiler generated dependencies file for ttmqo_tinydb.
# This may be replaced when dependencies are built.
