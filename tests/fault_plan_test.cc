// The fault-injection subsystem: plan validation, outage/link-loss
// semantics on the network, fault observability (trace events, metrics,
// recovery-latency histogram), the alive-at oracle, and the random plan
// generator.  Also covers the runner's up-front fault validation and the
// retry-exhaustion accounting invariant (a drop is charged exactly once,
// consistently across the ledger, the registry, and the epoch sampler).
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault_plan.h"
#include "metrics/epoch_sampler.h"
#include "metrics/metrics_observer.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/network.h"
#include "query/parser.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

Network MakeNetwork(const Topology& topology, std::uint64_t seed = 1) {
  return Network(topology, RadioParams{}, ChannelParams{}, seed);
}

// --- Validation ---------------------------------------------------------

TEST(FaultPlanValidateTest, RejectsBaseStationFaults) {
  const Topology topology = Topology::Grid(3);
  EXPECT_THROW(FaultPlan().AddCrash(kBaseStationId, 100).Validate(
                   topology, 10000),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan().AddOutage(kBaseStationId, 100, 200).Validate(
                   topology, 10000),
               std::invalid_argument);
}

TEST(FaultPlanValidateTest, RejectsOutOfRangeNodesAndWindows) {
  const Topology topology = Topology::Grid(3);
  EXPECT_THROW(FaultPlan().AddCrash(99, 100).Validate(topology, 10000),
               std::invalid_argument);
  // Crash outside the run.
  EXPECT_THROW(FaultPlan().AddCrash(4, 20000).Validate(topology, 10000),
               std::invalid_argument);
  // Inverted outage window.
  EXPECT_THROW(FaultPlan().AddOutage(4, 500, 400).Validate(topology, 10000),
               std::invalid_argument);
}

TEST(FaultPlanValidateTest, RejectsDuplicateCrashAndOverlappingOutages) {
  const Topology topology = Topology::Grid(3);
  EXPECT_THROW(
      FaultPlan().AddCrash(4, 100).AddCrash(4, 200).Validate(topology, 10000),
      std::invalid_argument);
  EXPECT_THROW(FaultPlan()
                   .AddOutage(4, 100, 500)
                   .AddOutage(4, 400, 800)
                   .Validate(topology, 10000),
               std::invalid_argument);
  // An outage scheduled at or after the node's crash can never recover.
  EXPECT_THROW(FaultPlan()
                   .AddCrash(4, 100)
                   .AddOutage(4, 200, 300)
                   .Validate(topology, 10000),
               std::invalid_argument);
  // Distinct nodes may overlap freely.
  EXPECT_NO_THROW(FaultPlan()
                      .AddOutage(4, 100, 500)
                      .AddOutage(5, 100, 500)
                      .Validate(topology, 10000));
}

TEST(FaultPlanValidateTest, RejectsBadLinkEvents) {
  const Topology topology = Topology::Grid(3);
  // Adjacent grid nodes are radio neighbors; opposite corners (2 and 6,
  // ~57 feet apart) are out of the 50-foot range.
  EXPECT_NO_THROW(
      FaultPlan().AddLinkLoss(1, 2, 0.5).Validate(topology, 10000));
  EXPECT_THROW(FaultPlan().AddLinkLoss(2, 6, 0.5).Validate(topology, 10000),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan().AddLinkLoss(1, 2, 1.5).Validate(topology, 10000),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan().SetDefaultLinkLoss(-0.1).Validate(topology, 10000),
               std::invalid_argument);
}

TEST(FaultPlanValidateTest, RunnerValidatesUpFront) {
  // The runner used to schedule raw FailNode lambdas that threw from inside
  // the event loop; now a bad schedule fails before the run starts.
  const auto schedule =
      StaticSchedule({ParseQuery(1, "SELECT light EPOCH DURATION 4096")});
  RunConfig config;
  config.duration_ms = 8 * 4096;
  config.failures.push_back(NodeFailure{1000, kBaseStationId});
  EXPECT_THROW(RunExperiment(config, schedule), std::invalid_argument);

  config.failures = {NodeFailure{1000, 5}, NodeFailure{2000, 5}};
  EXPECT_THROW(RunExperiment(config, schedule), std::invalid_argument);

  config.failures = {NodeFailure{1000, 5}};
  EXPECT_NO_THROW(RunExperiment(config, schedule));
}

// --- Network semantics --------------------------------------------------

TEST(NetworkOutageTest, DownNodesNeitherSendNorReceiveUntilRecovery) {
  const Topology topology = Topology::Grid(3);
  Network network = MakeNetwork(topology);
  int received = 0;
  network.SetReceiver(4, [&received](const Message&, bool) { ++received; });

  network.SetDown(4);
  EXPECT_TRUE(network.IsDown(4));
  EXPECT_FALSE(network.IsFailed(4));  // silent: no failure signal
  EXPECT_EQ(network.NumDown(), 1u);

  Message msg;
  msg.mode = AddressMode::kUnicast;
  msg.sender = 0;
  msg.destinations = {4};
  network.Send(std::move(msg));
  network.sim().RunUntil(100);
  EXPECT_EQ(received, 0);

  network.Recover(4);
  EXPECT_FALSE(network.IsDown(4));
  EXPECT_EQ(network.NumDown(), 0u);
  Message again;
  again.mode = AddressMode::kUnicast;
  again.sender = 0;
  again.destinations = {4};
  network.Send(std::move(again));
  network.sim().RunUntil(200);
  EXPECT_EQ(received, 1);

  EXPECT_THROW(network.SetDown(kBaseStationId), std::invalid_argument);
}

TEST(NetworkLinkLossTest, LossyLinksDropDeliveriesIndependently) {
  const Topology topology = Topology::Grid(3);
  Network lossless = MakeNetwork(topology);
  Network lossy = MakeNetwork(topology);
  lossy.SetDefaultLinkLoss(0.5);

  for (Network* network : {&lossless, &lossy}) {
    int received = 0;
    network->SetReceiver(1, [&received](const Message&, bool) { ++received; });
    for (int i = 0; i < 200; ++i) {
      Message msg;
      msg.mode = AddressMode::kUnicast;
      msg.sender = 0;
      msg.destinations = {1};
      network->sim().ScheduleAt(i * 50, [network, m = std::move(msg)]() {
        Message copy = m;
        network->Send(std::move(copy));
      });
    }
    network->sim().RunUntil(200 * 50 + 100);
    if (network == &lossless) {
      EXPECT_EQ(network->link_drops(), 0u);
      EXPECT_EQ(received, 200);
    } else {
      // ~50% of 200 deliveries; generous deterministic-seed bounds.
      EXPECT_GT(network->link_drops(), 50u);
      EXPECT_LT(network->link_drops(), 150u);
      EXPECT_EQ(received, 200 - static_cast<int>(network->link_drops()));
    }
  }
}

TEST(NetworkLinkLossTest, PerLinkOverrideAndClear) {
  const Topology topology = Topology::Grid(3);
  Network network = MakeNetwork(topology);
  network.SetDefaultLinkLoss(0.25);
  network.SetLinkLoss(0, 1, 0.9);
  EXPECT_DOUBLE_EQ(network.LinkLossOf(1, 0), 0.9);  // symmetric
  EXPECT_DOUBLE_EQ(network.LinkLossOf(0, 3), 0.25);
  network.ClearLinkLoss(0, 1);
  EXPECT_DOUBLE_EQ(network.LinkLossOf(0, 1), 0.25);
}

// --- Observability ------------------------------------------------------

TEST(FaultPlanScheduleTest, EmitsTraceEventsAndMetrics) {
  const Topology topology = Topology::Grid(3);
  Network network = MakeNetwork(topology);
  MetricsRegistry registry;
  MetricsObserver metrics(registry);
  network.observers().Add(&metrics);
  CollectingTraceSink trace;

  FaultPlan plan;
  plan.AddCrash(8, 5000)
      .AddOutage(4, 1000, 3000)
      .AddLinkLoss(1, 2, 0.5, 500, 1500)
      .AddPartition({5, 6}, 2000, 4000);
  plan.Validate(topology, 10000);
  plan.ScheduleOn(network, &trace);
  network.sim().RunUntil(10000);

  EXPECT_EQ(trace.CountKind("fault.crash"), 1u);
  EXPECT_EQ(trace.CountKind("fault.down"), 1u);
  EXPECT_EQ(trace.CountKind("fault.recover"), 1u);
  EXPECT_EQ(trace.CountKind("fault.link_degrade"), 1u);
  EXPECT_EQ(trace.CountKind("fault.link_restore"), 1u);
  EXPECT_EQ(trace.CountKind("fault.partition"), 1u);
  EXPECT_EQ(trace.CountKind("fault.heal"), 1u);

  EXPECT_TRUE(network.IsFailed(8));
  EXPECT_FALSE(network.IsDown(4));  // recovered
  // One plain outage + two partitioned nodes began and ended.
  EXPECT_DOUBLE_EQ(registry.GetCounter("net_node_down_total").Value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("net_node_recovered_total").Value(),
                   3.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("net_node_failures_total").Value(),
                   1.0);
  // The recovery-latency histogram saw all three outages (2000 ms each).
  auto& histogram = registry.GetHistogram(
      "net_node_recovery_latency_ms",
      {1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0});
  EXPECT_EQ(histogram.Count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 3 * 2000.0);
}

// --- AliveAt oracle -----------------------------------------------------

TEST(FaultPlanTest, AliveAtTracksCrashesOutagesAndPartitions) {
  FaultPlan plan;
  plan.AddCrash(3, 5000).AddOutage(4, 1000, 3000).AddPartition({5}, 2000,
                                                               4000);
  EXPECT_TRUE(plan.AliveAt(3, 4999));
  EXPECT_FALSE(plan.AliveAt(3, 5000));
  EXPECT_FALSE(plan.AliveAt(3, 99999));
  EXPECT_TRUE(plan.AliveAt(4, 999));
  EXPECT_FALSE(plan.AliveAt(4, 1000));
  EXPECT_FALSE(plan.AliveAt(4, 2999));
  EXPECT_TRUE(plan.AliveAt(4, 3000));
  EXPECT_FALSE(plan.AliveAt(5, 2500));
  EXPECT_TRUE(plan.AliveAt(5, 4000));
  EXPECT_TRUE(plan.AliveAt(6, 0));
}

// --- Random plans -------------------------------------------------------

TEST(FaultPlanTest, RandomTransientIsDeterministicAndBounded) {
  const Topology topology = Topology::Grid(6);
  RandomFaultParams params;
  params.max_outages = 10;
  params.max_down_fraction = 0.2;
  const SimDuration duration = 40 * 4096;

  const FaultPlan a =
      FaultPlan::RandomTransient(params, topology.size(), duration, 42);
  const FaultPlan b =
      FaultPlan::RandomTransient(params, topology.size(), duration, 42);
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].node, b.outages()[i].node);
    EXPECT_EQ(a.outages()[i].from, b.outages()[i].from);
    EXPECT_EQ(a.outages()[i].until, b.outages()[i].until);
  }
  const FaultPlan other =
      FaultPlan::RandomTransient(params, topology.size(), duration, 43);
  EXPECT_FALSE(other.outages().empty());

  // Victim count respects the fraction cap; every plan validates.
  const std::size_t cap = static_cast<std::size_t>(
      params.max_down_fraction * static_cast<double>(topology.size() - 1));
  EXPECT_LE(a.outages().size(), cap);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const FaultPlan plan =
        FaultPlan::RandomTransient(params, topology.size(), duration, seed);
    EXPECT_NO_THROW(plan.Validate(topology, duration));
    for (const OutageEvent& outage : plan.outages()) {
      EXPECT_GE(outage.until - outage.from, params.min_outage_ms);
      EXPECT_LE(outage.until - outage.from, params.max_outage_ms);
      EXPECT_LE(outage.until, duration);
    }
  }
}

TEST(FaultPlanTest, WriteJsonProducesExpectedShape) {
  FaultPlan plan;
  plan.AddCrash(3, 5000).AddOutage(4, 1000, 3000).SetDefaultLinkLoss(0.1);
  std::ostringstream out;
  plan.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"crashes\""), std::string::npos);
  EXPECT_NE(json.find("\"outages\""), std::string::npos);
  EXPECT_NE(json.find("\"default_link_loss\":0.1"), std::string::npos);
}

// --- Retry-exhaustion accounting (drop charged exactly once) ------------

TEST(FaultAccountingTest, DropsAgreeAcrossLedgerRegistryAndSampler) {
  // A harsh channel forces retry exhaustion; the same drop count must be
  // visible through every accounting surface.
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 300 EPOCH DURATION 4096")});
  RunConfig config;
  config.grid_side = 4;
  config.mode = OptimizationMode::kBaseline;
  config.duration_ms = 16 * 4096;
  config.seed = 11;
  config.channel.collision_prob = 0.55;

  MetricsRegistry registry;
  EpochSampler sampler;
  CountingObserver counts;
  config.obs.registry = &registry;
  config.obs.sampler = &sampler;
  config.obs.observers.push_back(&counts);
  const RunResult run = RunExperiment(config, schedule);

  ASSERT_GT(counts.drops, 0u) << "channel not harsh enough to exhaust retries";

  double registry_drops = 0.0;
  for (NodeId node = 0; node < 16; ++node) {
    registry_drops +=
        registry.GetCounter("net_drops_total", {{"node", std::to_string(node)}})
            .Value();
  }
  EXPECT_DOUBLE_EQ(registry_drops, static_cast<double>(counts.drops));

  std::uint64_t sampled_drops = 0;
  for (const EpochRow& row : sampler.rows()) sampled_drops += row.drops;
  EXPECT_EQ(sampled_drops, counts.drops);

  // Dropped messages were still charged as transmission attempts.
  EXPECT_GT(run.summary.retransmissions, 0u);
}

}  // namespace
}  // namespace ttmqo
