// CSV export of answer streams for offline analysis.
#pragma once

#include <ostream>

#include "query/result.h"

namespace ttmqo {

/// Writes every recorded epoch result as CSV rows:
///   acquisition: query,epoch_ms,"row",node,attr,value  (one line per value)
///   aggregation: query,epoch_ms,"agg",op(attr),value   (empty for null)
/// A header line is emitted first.
void WriteResultsCsv(const ResultLog& log, std::ostream& out);

}  // namespace ttmqo
