// Chaos-harness invariants: deterministic replay (one fault plan + seed
// reproduces a byte-identical trace and metrics export), duplicate-free
// delivery at the base station under faults, and the reliability win of
// the hardened two-tier scheme (liveness failover + dissemination retries)
// over the TinyDB baseline when relays drop out.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "fault/fault_plan.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "query/parser.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;

std::size_t DuplicateRows(const ResultLog& log) {
  std::size_t duplicates = 0;
  for (const EpochResult* r : log.All()) {
    std::map<NodeId, int> seen;
    for (const Reading& row : r->rows) {
      if (++seen[row.node()] > 1) ++duplicates;
    }
  }
  return duplicates;
}

/// A fault plan exercising every event type within a 24-epoch run.
FaultPlan MixedPlan() {
  FaultPlan plan;
  plan.AddOutage(7, 1 * kEpoch, 4 * kEpoch)
      .AddOutage(11, 8 * kEpoch, 12 * kEpoch)
      .AddCrash(23, 10 * kEpoch)
      .AddLinkLoss(1, 2, 0.3, 2 * kEpoch, 6 * kEpoch)
      .AddPartition({18, 19}, 14 * kEpoch, 17 * kEpoch);
  plan.SetDefaultLinkLoss(0.02);
  return plan;
}

RunConfig ChaosConfig(OptimizationMode mode) {
  RunConfig config;
  config.grid_side = 5;
  config.mode = mode;
  config.duration_ms = 24 * kEpoch;
  config.seed = 5;
  config.faults = MixedPlan();
  if (mode != OptimizationMode::kBaseline) {
    config.innet.liveness_timeout_ms = 2 * kEpoch;
    config.innet.dissemination_retries = 2;
  }
  return config;
}

TEST(ChaosDeterminismTest, SamePlanAndSeedReplayByteIdentically) {
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096"),
       ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192")});

  std::string traces[2];
  std::string metrics[2];
  std::size_t results[2];
  for (int round = 0; round < 2; ++round) {
    RunConfig config = ChaosConfig(OptimizationMode::kTwoTier);
    std::ostringstream trace_out;
    JsonlTraceWriter writer(trace_out);
    MetricsRegistry registry;
    config.obs.trace = &writer;
    config.obs.observers.push_back(&writer);
    config.obs.registry = &registry;
    const RunResult run = RunExperiment(config, schedule);
    writer.Flush();
    traces[round] = trace_out.str();
    std::ostringstream metrics_out;
    registry.WriteJson(metrics_out);
    metrics[round] = metrics_out.str();
    results[round] = run.results.size();
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(results[0], results[1]);
  // The trace actually recorded fault activity (not an empty replay).
  EXPECT_NE(traces[0].find("\"fault.down\""), std::string::npos);
  EXPECT_NE(traces[0].find("\"fault.crash\""), std::string::npos);
  EXPECT_NE(traces[0].find("\"linkdrop\""), std::string::npos);
}

TEST(ChaosInvariantTest, NoDuplicateRowsReachTheBaseStation) {
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096")});
  for (OptimizationMode mode :
       {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
    const RunResult run = RunExperiment(ChaosConfig(mode), schedule);
    EXPECT_EQ(DuplicateRows(run.results), 0u);
    EXPECT_GT(run.results.size(), 0u);
  }
}

TEST(ChaosInvariantTest, RandomSoakKeepsCompletenessAndUniqueness) {
  // A miniature of bench/chaos_soak: random transient outages on up to 20%
  // of the sensors; the hardened two-tier scheme must stay above a
  // completeness floor with zero duplicates, on several seeds.
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096")});
  RandomFaultParams params;
  params.max_outages = 5;
  params.max_down_fraction = 0.2;
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    RunConfig config;
    config.grid_side = 5;
    config.mode = OptimizationMode::kTwoTier;
    config.duration_ms = 24 * kEpoch;
    config.seed = seed;
    config.faults = FaultPlan::RandomTransient(params, 25, config.duration_ms,
                                               seed);
    config.innet.liveness_timeout_ms = 2 * kEpoch;
    config.innet.dissemination_retries = 2;
    const RunResult run = RunExperiment(config, schedule);
    EXPECT_EQ(DuplicateRows(run.results), 0u) << "seed " << seed;
    EXPECT_GE(run.summary.MinDeliveryCompleteness(), 0.5) << "seed " << seed;
  }
}

TEST(ChaosFailoverTest, HardenedTwoTierOutdeliversBaselineUnderOutages) {
  // Outages chosen to hurt both schemes the same way: one sensor is down
  // while the query floods (it must be re-disseminated to ever answer) and
  // two relays drop out mid-run (traffic through them must fail over).
  // The hardened two-tier engine recovers both; the baseline's fixed tree
  // and fire-and-forget dissemination cannot.  The query selects every
  // node so each outage visibly costs rows.
  const auto schedule =
      StaticSchedule({ParseQuery(1, "SELECT light EPOCH DURATION 4096")});
  FaultPlan plan;
  plan.AddOutage(24, 0, 2 * kEpoch)           // far corner, misses the flood
      .AddOutage(6, 8 * kEpoch, 12 * kEpoch)  // relay outage mid-run
      .AddOutage(12, 8 * kEpoch, 12 * kEpoch);

  double completeness[2];
  for (int i = 0; i < 2; ++i) {
    const OptimizationMode mode =
        i == 0 ? OptimizationMode::kBaseline : OptimizationMode::kTwoTier;
    RunConfig config;
    config.grid_side = 5;
    config.mode = mode;
    config.duration_ms = 24 * kEpoch;
    config.seed = 5;
    config.faults = plan;
    if (mode == OptimizationMode::kTwoTier) {
      config.innet.liveness_timeout_ms = 2 * kEpoch;
      config.innet.dissemination_retries = 2;
    }
    const RunResult run = RunExperiment(config, schedule);
    completeness[i] = run.summary.AvgDeliveryCompleteness();
    EXPECT_EQ(DuplicateRows(run.results), 0u);
  }
  EXPECT_GT(completeness[1], completeness[0])
      << "hardened two-tier should out-deliver the baseline under outages";
  EXPECT_GE(completeness[1], 0.8);
}

}  // namespace
}  // namespace ttmqo
