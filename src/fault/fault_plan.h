// Declarative, deterministic fault injection.
//
// A `FaultPlan` is a validated schedule of fault events — permanent
// crashes, transient outages with recovery, per-link loss degradation
// windows, and region partitions — applied to a `Network` before a run
// starts.  Everything is data: the same plan and master seed reproduce the
// exact same fault timeline, so chaos experiments replay byte-for-byte.
//
// The paper (Section 5) defers failure handling to future work; this
// subsystem supplies the fault model that the hardening in the engines is
// tested against.  Crashes map to `Network::FailNode` (loud: engines can
// see `IsFailed`), outages and partitions map to `SetDown`/`Recover`
// (silent: only liveness tracking can detect them), and link events map to
// `SetLinkLoss`/`ClearLinkLoss` (independent per-receiver erasure,
// orthogonal to the contention model).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/topology.h"
#include "util/ids.h"
#include "util/time.h"
#include "util/tracing.h"

namespace ttmqo {

class Network;

/// A permanent crash: `node` dies at `time` and never comes back.
struct CrashEvent {
  SimTime time = 0;
  NodeId node = 0;
};

/// A transient outage: `node` is unreachable during [from, until), then
/// recovers.  Silent — engines receive no failure signal.
struct OutageEvent {
  NodeId node = 0;
  SimTime from = 0;
  SimTime until = 0;
};

/// A link degradation window: the (symmetric) link a—b independently loses
/// each delivery with probability `prob` during [from, until).
/// `until == 0` means "for the rest of the run".
struct LinkLossEvent {
  NodeId a = 0;
  NodeId b = 0;
  double prob = 0.0;
  SimTime from = 0;
  SimTime until = 0;
};

/// A region partition: every listed node is down during [from, until).
struct PartitionEvent {
  std::vector<NodeId> nodes;
  SimTime from = 0;
  SimTime until = 0;
};

/// Parameters for `FaultPlan::RandomTransient`.
struct RandomFaultParams {
  /// Upper bound on the number of outages drawn.
  std::size_t max_outages = 6;
  /// At most this fraction of non-base-station nodes is ever a victim.
  double max_down_fraction = 0.2;
  /// Outage duration bounds (ms).
  SimDuration min_outage_ms = 2 * kMinEpochDurationMs;
  SimDuration max_outage_ms = 8 * kMinEpochDurationMs;
  /// Outages start within [window_from, window_until) of the run.
  SimTime window_from = 0;
  SimTime window_until = 0;  ///< 0 = duration - max_outage_ms
  /// Uniform link loss applied to every link for the whole run.
  double link_loss = 0.0;
};

/// A deterministic schedule of fault events for one run.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Fluent builders (all return *this for chaining).
  FaultPlan& AddCrash(NodeId node, SimTime at);
  FaultPlan& AddOutage(NodeId node, SimTime from, SimTime until);
  FaultPlan& AddLinkLoss(NodeId a, NodeId b, double prob, SimTime from = 0,
                         SimTime until = 0);
  FaultPlan& AddPartition(std::vector<NodeId> nodes, SimTime from,
                          SimTime until);

  /// Loss probability applied to every link without an override, for the
  /// whole run.  Must be in [0, 1).
  FaultPlan& SetDefaultLinkLoss(double prob);

  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<OutageEvent>& outages() const { return outages_; }
  const std::vector<LinkLossEvent>& link_events() const {
    return link_events_;
  }
  const std::vector<PartitionEvent>& partitions() const {
    return partitions_;
  }
  double default_link_loss() const { return default_link_loss_; }

  /// True when the plan schedules nothing at all.
  bool Empty() const;

  /// Checks the plan against a deployment and run duration; throws
  /// `std::invalid_argument` with a clear message on the first problem:
  /// base-station faults, out-of-range nodes, duplicate crashes, outages on
  /// crashed nodes or overlapping outages of one node, inverted or
  /// out-of-run windows, loss probabilities outside [0, 1), link events on
  /// non-neighbor pairs.
  void Validate(const Topology& topology, SimDuration duration_ms) const;

  /// Schedules every event on `network`'s simulator (call once, before the
  /// run).  Applies `default_link_loss` immediately.  When `trace` is set,
  /// each event also emits a stamped "fault.*" trace event.
  void ScheduleOn(Network& network, TraceSink* trace = nullptr) const;

  /// True when `node` is reachable at time `t` under this plan: not crashed
  /// at or before `t` and not inside any outage or partition window.
  /// (Link loss does not affect liveness.)
  bool AliveAt(NodeId node, SimTime t) const;

  /// Writes the resolved plan as one JSON object (no trailing newline).
  void WriteJson(std::ostream& out) const;

  /// Draws a random plan of transient outages (plus optional uniform link
  /// loss) for a deployment of `num_nodes` nodes and a run of
  /// `duration_ms`.  Victims are distinct non-base-station nodes, at most
  /// `max_down_fraction` of them; deterministic in `seed`.
  static FaultPlan RandomTransient(const RandomFaultParams& params,
                                   std::size_t num_nodes,
                                   SimDuration duration_ms,
                                   std::uint64_t seed);

 private:
  std::vector<CrashEvent> crashes_;
  std::vector<OutageEvent> outages_;
  std::vector<LinkLossEvent> link_events_;
  std::vector<PartitionEvent> partitions_;
  double default_link_loss_ = 0.0;
};

}  // namespace ttmqo
