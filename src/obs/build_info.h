// Build and host provenance, stamped into benchmark artifacts and sweep
// reports so a committed BENCH_*.json records *what* was measured *where*
// (the original BENCH_sweep.json was silently measured on a 1-core box —
// the blind spot this closes).
#pragma once

#include <ostream>
#include <string>

namespace ttmqo::obs {

struct BuildInfo {
  std::string git_sha;     ///< configure-time `git rev-parse HEAD` (or "unknown")
  std::string compiler;    ///< compiler id + version
  std::string build_type;  ///< CMake build type (Release, Debug, ...)
  std::string flags;       ///< CMAKE_CXX_FLAGS + per-config flags
  std::string hostname;    ///< runtime hostname
  unsigned hardware_concurrency = 0;  ///< runtime std::thread value
  bool spans_compiled_out = false;    ///< obs built with TTMQO_DISABLE_SPANS
};

/// The process's build info (host fields sampled once on first call).
const BuildInfo& GetBuildInfo();

/// Writes build info as a JSON object (no trailing newline), each field on
/// its own line indented by `indent` spaces, the braces by `indent - 2`.
/// For embedding as a `"build": {...}` block in bench artifacts.
void WriteBuildInfoJson(std::ostream& out, int indent = 4);

/// Prints a loud warning to `err` when the machine reports a single
/// hardware thread — parallel speedup numbers measured here are meaningless.
/// Returns true when the warning fired.
bool WarnIfSingleCore(std::ostream& err);

}  // namespace ttmqo::obs
