// Failure-injection tests: engines under a lossy, contended channel.
// Losses may degrade answers (rows can be dropped) but must never corrupt
// them, crash the engines, or violate accounting invariants.
#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_helpers.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

class CollisionTest : public ::testing::TestWithParam<OptimizationMode> {};

TEST_P(CollisionTest, RunsToCompletionUnderHeavyLoss) {
  RunConfig config;
  config.grid_side = 4;
  config.mode = GetParam();
  config.duration_ms = 10 * 8192;
  config.channel.collision_prob = 0.15;
  config.seed = 3;
  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadC()));
  EXPECT_GT(run.summary.retransmissions, 0u);
  EXPECT_GT(run.results.size(), 0u);
}

TEST_P(CollisionTest, AnswersAreSubsetsOfTheTruth) {
  // Under loss, an acquisition epoch may MISS rows but must never invent
  // them, and every reported value must be exact.
  const Topology topology = Topology::Grid(4);
  const auto field = MakeFieldModel(FieldKind::kUniform, 3);

  RunConfig config;
  config.grid_side = 4;
  config.mode = GetParam();
  config.duration_ms = 10 * 4096;
  config.field = FieldKind::kUniform;
  config.channel.collision_prob = 0.10;
  config.seed = 3;
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 300 EPOCH DURATION 4096");
  const RunResult run = RunExperiment(config, StaticSchedule({q}));

  for (const EpochResult* r : run.results.ResultsFor(1)) {
    const EpochResult truth =
        testing::OracleResult(q, r->epoch_time, *field, topology);
    std::map<NodeId, double> expected;
    for (const Reading& row : truth.rows) {
      expected[row.node()] = row.GetOrThrow(Attribute::kLight);
    }
    for (const Reading& row : r->rows) {
      ASSERT_TRUE(expected.contains(row.node()))
          << "invented row from node " << row.node() << " at epoch "
          << r->epoch_time;
      EXPECT_DOUBLE_EQ(row.GetOrThrow(Attribute::kLight),
                       expected[row.node()]);
    }
    EXPECT_LE(r->rows.size(), truth.rows.size());
  }
}

TEST_P(CollisionTest, LossReducesDeliveredRowsButNotMuchAtLowRates) {
  RunConfig lossless;
  lossless.grid_side = 4;
  lossless.mode = GetParam();
  lossless.duration_ms = 10 * 4096;
  lossless.seed = 3;
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  const RunResult clean = RunExperiment(lossless, StaticSchedule({q}));

  RunConfig lossy = lossless;
  lossy.channel.collision_prob = 0.05;
  const RunResult noisy = RunExperiment(lossy, StaticSchedule({q}));

  std::size_t clean_rows = 0, noisy_rows = 0;
  for (const EpochResult* r : clean.results.ResultsFor(1)) {
    clean_rows += r->rows.size();
  }
  for (const EpochResult* r : noisy.results.ResultsFor(1)) {
    noisy_rows += r->rows.size();
  }
  EXPECT_LE(noisy_rows, clean_rows);
  // Retries recover most losses at a 5% per-interferer rate.
  EXPECT_GT(noisy_rows, clean_rows / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CollisionTest,
    ::testing::Values(OptimizationMode::kBaseline,
                      OptimizationMode::kBaseStationOnly,
                      OptimizationMode::kInNetworkOnly,
                      OptimizationMode::kTwoTier),
    [](const ::testing::TestParamInfo<OptimizationMode>& param_info) {
      switch (param_info.param) {
        case OptimizationMode::kBaseline:
          return "Baseline";
        case OptimizationMode::kBaseStationOnly:
          return "BsOnly";
        case OptimizationMode::kInNetworkOnly:
          return "InNetOnly";
        default:
          return "TwoTier";
      }
    });

TEST(CollisionAccountingTest, RetransmissionTimeGrowsWithLossRate) {
  const auto schedule = StaticSchedule(WorkloadA());
  double prev_retx_ms = -1.0;
  for (double p : {0.0, 0.05, 0.15}) {
    RunConfig config;
    config.grid_side = 4;
    config.duration_ms = 10 * 8192;
    config.mode = OptimizationMode::kBaseline;
    config.channel.collision_prob = p;
    config.seed = 7;
    const RunResult run = RunExperiment(config, schedule);
    double retx_ms = 0.0;
    // Total transmit time monotonically includes more retransmissions.
    retx_ms = static_cast<double>(run.summary.retransmissions);
    EXPECT_GT(retx_ms, prev_retx_ms);
    prev_retx_ms = retx_ms;
  }
}

}  // namespace
}  // namespace ttmqo
