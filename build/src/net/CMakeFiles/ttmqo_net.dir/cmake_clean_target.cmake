file(REMOVE_RECURSE
  "libttmqo_net.a"
)
