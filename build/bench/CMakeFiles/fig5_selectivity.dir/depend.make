# Empty dependencies file for fig5_selectivity.
# This may be replaced when dependencies are built.
