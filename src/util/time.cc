#include "util/time.h"

#include <cstdio>

namespace ttmqo {

std::string FormatSimTime(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03llds",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000 < 0 ? -(t % 1000) : t % 1000));
  return buf;
}

}  // namespace ttmqo
