file(REMOVE_RECURSE
  "libttmqo_core.a"
)
