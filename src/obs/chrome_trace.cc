#include "obs/chrome_trace.h"

#include <fstream>
#include <iomanip>
#include <stdexcept>

#include "util/tracing.h"

namespace ttmqo::obs {
namespace {

/// The category is the dotted prefix ("tier1.insert" -> "tier1"); Perfetto
/// uses it for filtering.
std::string_view Category(std::string_view name) {
  const std::size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

/// Microseconds with nanosecond precision, as Chrome expects.
void WriteMicros(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
      << std::setfill(' ');
}

void WriteSpanEvent(std::ostream& out, const SpanRecord& record,
                    std::uint32_t tid, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "    {\"name\": ";
  WriteJsonString(out, record.name);
  out << ", \"cat\": ";
  WriteJsonString(out, Category(record.name));
  out << ", \"ph\": \"X\", \"ts\": ";
  WriteMicros(out, record.start_ns);
  out << ", \"dur\": ";
  WriteMicros(out, record.dur_ns);
  out << ", \"pid\": 1, \"tid\": " << tid;
  out << ", \"args\": {\"depth\": " << record.depth;
  if (record.sample_shift != 0) {
    out << ", \"sampled_1_of\": " << (1u << record.sample_shift);
  }
  if (record.has_cpu) out << ", \"cpu_ns\": " << record.cpu_ns;
  out << "}}";
}

void WriteThreadMeta(std::ostream& out, const ThreadSpans& thread,
                     bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": "
      << thread.tid << ", \"args\": {\"name\": \"obs thread " << thread.tid
      << (thread.live ? "" : " (exited)") << "\"}}";
}

}  // namespace

void WriteChromeTrace(std::ostream& out, const SpanSnapshot& snapshot) {
  out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  for (const ThreadSpans& thread : snapshot.threads) {
    if (thread.records.empty()) continue;
    WriteThreadMeta(out, thread, first);
  }
  for (const ThreadSpans& thread : snapshot.threads) {
    for (const SpanRecord& record : thread.records) {
      WriteSpanEvent(out, record, thread.tid, first);
    }
  }
  out << "\n  ]\n}\n";
}

void WriteChromeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::invalid_argument("WriteChromeTraceFile: cannot open " + path);
  }
  WriteChromeTrace(out, CollectSpans());
}

void WriteSpanSummary(std::ostream& out, const SpanSnapshot& snapshot) {
  out << "span summary (descending wall time):\n";
  if (snapshot.totals.empty()) {
    out << "  (no spans recorded)\n";
    return;
  }
  for (const SpanStat& stat : snapshot.totals) {
    out << "  " << std::left << std::setw(28) << stat.name << std::right
        << " count=" << std::setw(10) << stat.count
        << " wall_ms=" << std::setw(10) << std::fixed << std::setprecision(3)
        << static_cast<double>(stat.total_ns) / 1e6;
    if (stat.count != stat.records) {
      out << " est_wall_ms=" << std::setw(10)
          << static_cast<double>(stat.estimated_total_ns) / 1e6;
    }
    if (stat.total_cpu_ns > 0) {
      out << " cpu_ms=" << std::setw(10)
          << static_cast<double>(stat.total_cpu_ns) / 1e6;
    }
    out << '\n';
  }
  out.unsetf(std::ios::fixed);
}

}  // namespace ttmqo::obs
