#include "metrics/metrics_observer.h"

namespace ttmqo {

MetricsObserver::MetricsObserver(MetricsRegistry& registry,
                                 MetricLabels base_labels)
    : registry_(&registry), base_labels_(std::move(base_labels)) {
  failures_ = &registry_->GetCounter("net_node_failures_total", base_labels_);
  downs_ = &registry_->GetCounter("net_node_down_total", base_labels_);
  recoveries_ =
      &registry_->GetCounter("net_node_recovered_total", base_labels_);
  tx_duration_ = &registry_->GetHistogram(
      "net_tx_duration_ms", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0},
      base_labels_);
  recovery_latency_ = &registry_->GetHistogram(
      "net_node_recovery_latency_ms",
      {1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0}, base_labels_);
}

MetricLabels MetricsObserver::WithNode(NodeId node) const {
  MetricLabels labels = base_labels_;
  labels.emplace_back("node", std::to_string(node));
  return labels;
}

MetricLabels MetricsObserver::WithNodeClass(NodeId node,
                                            MessageClass cls) const {
  MetricLabels labels = WithNode(node);
  labels.emplace_back("class", std::string(MessageClassName(cls)));
  return labels;
}

void MetricsObserver::OnTransmit(SimTime /*time*/, const Message& msg,
                                 double duration_ms, bool retransmission) {
  tx_duration_->Observe(duration_ms);
  if (retransmission) {
    const MetricLabels labels = WithNode(msg.sender);
    registry_->GetCounter("net_retx_total", labels).Increment();
    registry_->GetCounter("net_retx_ms_total", labels).Add(duration_ms);
    return;
  }
  const MetricLabels labels = WithNodeClass(msg.sender, msg.cls);
  registry_->GetCounter("net_tx_total", labels).Increment();
  registry_->GetCounter("net_tx_ms_total", labels).Add(duration_ms);
}

void MetricsObserver::OnDrop(SimTime /*time*/, const Message& msg) {
  registry_->GetCounter("net_drops_total", WithNode(msg.sender)).Increment();
}

void MetricsObserver::OnSleepChange(SimTime /*time*/, NodeId node,
                                    bool asleep) {
  if (!asleep) return;
  registry_->GetCounter("net_sleep_transitions_total", WithNode(node))
      .Increment();
}

void MetricsObserver::OnNodeFailed(SimTime /*time*/, NodeId /*node*/) {
  failures_->Increment();
}

void MetricsObserver::OnNodeDown(SimTime /*time*/, NodeId /*node*/) {
  downs_->Increment();
}

void MetricsObserver::OnNodeRecovered(SimTime /*time*/, NodeId /*node*/,
                                      SimDuration down_ms) {
  recoveries_->Increment();
  recovery_latency_->Observe(static_cast<double>(down_ms));
}

void MetricsObserver::OnLinkDrop(SimTime /*time*/, const Message& /*msg*/,
                                 NodeId receiver) {
  registry_->GetCounter("net_link_drops_total", WithNode(receiver))
      .Increment();
}

}  // namespace ttmqo
