// Range predicates over sensor attributes.
//
// The paper stores predicates as `(attribute, min, max)` triples (Section
// 3.1.1) and integrates queries by widening them; a `PredicateSet` is the
// conjunction of at most one range predicate per attribute.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "sensing/attribute.h"
#include "sensing/reading.h"
#include "util/interval.h"

namespace ttmqo {

/// One range predicate: `attribute ∈ [min, max]`.
struct Predicate {
  Attribute attribute = Attribute::kLight;
  Interval range;

  /// True iff the reading's value for `attribute` lies in `range`.  Readings
  /// lacking the attribute do not match (predicates are evaluated where the
  /// attribute was acquired).
  bool Matches(const Reading& reading) const;

  /// "100 <= light <= 600".
  std::string ToString() const;

  bool operator==(const Predicate&) const = default;
};

/// A conjunction of range predicates, normalized to at most one interval per
/// attribute.  Predicates spanning an attribute's whole physical range are
/// dropped (they are vacuous), so structural equality coincides with
/// semantic equality for range conjunctions.
class PredicateSet {
 public:
  /// The empty conjunction (matches every reading).
  PredicateSet() = default;

  /// Builds from a list of predicates; multiple predicates on one attribute
  /// are intersected.
  static PredicateSet Of(const std::vector<Predicate>& predicates);

  /// Adds `attribute ∈ range` to the conjunction (intersecting with any
  /// existing constraint on the attribute).
  void Constrain(Attribute attribute, const Interval& range);

  /// True iff the conjunction has no (non-vacuous) predicates.
  bool IsUnconstrained() const;

  /// True when some constraint is an empty interval (matches nothing).
  bool IsUnsatisfiable() const;

  /// The constraint on `attribute`, or nullopt when unconstrained.
  std::optional<Interval> ConstraintOn(Attribute attribute) const;

  /// All non-vacuous predicates, in attribute order.
  std::vector<Predicate> AsList() const;

  /// Attributes referenced by any predicate, in attribute order.
  std::vector<Attribute> ReferencedAttributes() const;

  /// True iff `reading` satisfies every predicate.
  bool Matches(const Reading& reading) const;

  /// True iff every reading matching `other` also matches this set (this set
  /// is weaker, i.e. selects a superset).  For range conjunctions this holds
  /// iff each of our constraints covers the corresponding constraint of
  /// `other`.
  bool CoversSetOf(const PredicateSet& other) const;

  /// The widened conjunction used when integrating two queries (Section
  /// 3.1.2): attributes constrained in *both* inputs keep the convex hull of
  /// the two intervals; attributes constrained in only one input become
  /// unconstrained.  The result selects a superset of the union of the two
  /// inputs' answer sets.
  static PredicateSet IntegrationUnion(const PredicateSet& a,
                                       const PredicateSet& b);

  bool operator==(const PredicateSet& other) const = default;

  /// "100 <= light <= 600 AND temp <= 40" or "(none)".
  std::string ToString() const;

 private:
  std::array<std::optional<Interval>, kNumAttributes> constraints_;
};

}  // namespace ttmqo
