#include "util/flags.h"

#include <cstdio>
#include <stdexcept>

namespace ttmqo {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg.rfind("--", 0) == 0;
}

}  // namespace

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      name = std::move(arg);
      value = argv[++i];
    } else {
      name = std::move(arg);
      value = "true";  // bare boolean flag
    }
    flags.repeated_[name].push_back(value);
    flags.values_[name] = {std::move(value), false};
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return it->second.first;
}

std::optional<std::string> Flags::GetOptional(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  it->second.second = true;
  return it->second.first;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  try {
    return std::stoll(it->second.first);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second.first + "'");
  }
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  try {
    return std::stod(it->second.first);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second.first + "'");
  }
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  const std::string& v = it->second.first;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::GetAll(const std::string& name) const {
  const auto it = repeated_.find(name);
  if (it == repeated_.end()) return {};
  values_[name].second = true;
  return it->second;
}

bool Flags::Has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, entry] : values_) {
    if (!entry.second) unread.push_back(name);
  }
  return unread;
}

bool ReportUnreadFlags(const Flags& flags) {
  const std::vector<std::string> unread = flags.UnreadFlags();
  for (const std::string& name : unread) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
  }
  return !unread.empty();
}

}  // namespace ttmqo
