// Named reliability profiles of the transport layer.
//
// The per-feature hardening knobs of `InNetOptions` (liveness failover,
// dissemination re-floods, duplicate suppression) and the ARQ transport of
// `reliable/arq.h` compose into three named operating points every binary
// exposes as `--reliability=`:
//
//   off    — the paper's best-effort tier exactly as seeded: no liveness
//            tracking, no re-floods, no acks.  Byte-identical to the
//            pre-reliability goldens.
//   harden — the PR-2 best-effort hardening promoted to a profile:
//            overheard-traffic liveness with parent blacklisting,
//            dissemination re-floods, duplicate suppression.
//   arq    — harden plus the full reliability protocol: per-hop
//            ack/timeout retransmission with deterministic backoff,
//            flapping-node quarantine, base-station epoch accounting with
//            NACK-driven gap repair, and coverage-annotated partial
//            results.
#pragma once

#include <string>
#include <string_view>

namespace ttmqo {

/// Which reliability machinery a run enables.
enum class ReliabilityProfile {
  kOff,
  kHarden,
  kArq,
};

/// Display name ("off" / "harden" / "arq").
std::string_view ReliabilityProfileName(ReliabilityProfile profile);

/// Parses a profile name; throws `std::invalid_argument` on anything but
/// off|harden|arq.
ReliabilityProfile ParseReliabilityProfile(const std::string& name);

}  // namespace ttmqo
