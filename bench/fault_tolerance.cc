// Fault-tolerance experiment (extension; the paper lists node failures as
// future work).  Kills an increasing number of randomly chosen sensor
// nodes mid-run and measures the post-failure row delivery ratio (rows
// delivered at the base station / rows produced by surviving matching
// sensors) for the TinyDB baseline vs the full two-tier scheme.
//
// The in-network tier's dynamic DAG re-routes around dead relays, while
// the baseline's fixed routing tree loses every subtree hanging under a
// dead node until the network is re-provisioned.
//
// Usage: fault_tolerance [--side=8] [--failures=0,2,4,8,12] [--seed=N]
#include <cstdio>
#include <iostream>
#include <set>

#include "metrics/table.h"
#include "query/parser.h"
#include "util/flags.h"
#include "util/rng.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;
constexpr SimTime kFailTime = 4 * kEpoch + 500;
constexpr SimDuration kDuration = 16 * kEpoch;
// Post-failure measurement window: epochs whose sampling happens after
// every fault has settled.
constexpr SimTime kMeasureFrom = 6 * kEpoch;

// Rows surviving sensors should deliver in the measurement window.
std::size_t ExpectedRows(const Query& query, const Topology& topology,
                         const FieldModel& field,
                         const std::set<NodeId>& dead) {
  std::size_t expected = 0;
  for (SimTime t = kMeasureFrom; t + query.epoch() <= kDuration;
       t += query.epoch()) {
    for (NodeId node = 1; node < topology.size(); ++node) {
      if (dead.contains(node)) continue;
      const Reading sample = field.SampleReading(
          node, topology.PositionOf(node), query.AcquiredAttributes(), t);
      if (query.predicates().Matches(sample)) ++expected;
    }
  }
  return expected;
}

std::size_t DeliveredRows(const ResultLog& log, QueryId query) {
  std::size_t delivered = 0;
  for (const EpochResult* r : log.ResultsFor(query)) {
    if (r->epoch_time >= kMeasureFrom) delivered += r->rows.size();
  }
  return delivered;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 8));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 33));
  if (ReportUnreadFlags(flags)) return 2;

  const Topology topology = Topology::Grid(side);
  const auto field = MakeFieldModel(FieldKind::kCorrelated, seed);
  const Query query = ParseQuery(
      1, "SELECT light WHERE light > 400 EPOCH DURATION 4096");
  const auto schedule = StaticSchedule({query});

  std::printf("Fault tolerance: post-failure row delivery ratio "
              "(%zux%zu grid, %lld ms, failures at t=%lld ms)\n\n",
              side, side, static_cast<long long>(kDuration),
              static_cast<long long>(kFailTime));

  TablePrinter table({"failed nodes", "baseline delivery %",
                      "ttmqo delivery %"});
  for (std::size_t num_failures : {0u, 2u, 4u, 8u, 12u}) {
    // Deterministically pick distinct victims (never the base station,
    // never more than half the network).
    Rng rng(seed ^ num_failures);
    std::set<NodeId> dead;
    while (dead.size() < num_failures) {
      dead.insert(static_cast<NodeId>(
          rng.UniformInt(1, static_cast<std::int64_t>(topology.size()) - 1)));
    }
    const std::size_t expected = ExpectedRows(query, topology, *field, dead);

    std::vector<std::string> row = {std::to_string(num_failures)};
    for (OptimizationMode mode :
         {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
      RunConfig config;
      config.grid_side = side;
      config.mode = mode;
      config.field = FieldKind::kCorrelated;
      config.duration_ms = kDuration;
      config.seed = seed;
      for (NodeId n : dead) {
        config.failures.push_back(NodeFailure{kFailTime, n});
      }
      const RunResult run = RunExperiment(config, schedule);
      const std::size_t delivered = DeliveredRows(run.results, query.id());
      row.push_back(TablePrinter::Num(
          expected == 0
              ? 0.0
              : 100.0 * static_cast<double>(delivered) /
                    static_cast<double>(expected),
          1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n100%% = every row produced by a surviving matching sensor "
              "reached the base station after the failures.\n");
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
