// Radio messages.
//
// The paper's metric counts four message classes separately: query result
// transmissions, query propagation/abort messages, periodic network
// maintenance messages, and retransmissions due to failures (Section 4.1).
// A `Message` carries a typed payload (owned polymorphically) plus the
// serialized payload size used for transmission-time accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace ttmqo {

/// Accounting class of a radio message.
enum class MessageClass : std::uint8_t {
  kResult = 0,           ///< query result / partial aggregate transmissions
  kQueryPropagation = 1, ///< query dissemination flood
  kQueryAbort = 2,       ///< query termination flood
  kMaintenance = 3,      ///< periodic neighbor/beacon traffic
  kControl = 4,          ///< reliability control: acks, gap-repair requests
};

/// Number of message classes.
inline constexpr std::size_t kNumMessageClasses = 5;

/// Display name of a message class.
std::string_view MessageClassName(MessageClass cls);

/// Base class of typed message payloads; engines define concrete payloads
/// and downcast on receipt.
class Payload {
 public:
  virtual ~Payload() = default;
};

/// How a transmission addresses its receivers.
enum class AddressMode : std::uint8_t {
  kBroadcast, ///< every neighbor in radio range processes the message
  kUnicast,   ///< exactly one addressed neighbor
  kMulticast, ///< several addressed neighbors, one transmission
};

/// One radio transmission.
struct Message {
  MessageClass cls = MessageClass::kResult;
  AddressMode mode = AddressMode::kBroadcast;
  NodeId sender = kBaseStationId;
  /// Addressed receivers; empty for broadcast.
  std::vector<NodeId> destinations;
  /// Serialized payload size in bytes (excluding the fixed radio header).
  std::size_t payload_bytes = 0;
  /// Typed contents; shared because multicast delivers one payload to many.
  std::shared_ptr<const Payload> payload;
};

}  // namespace ttmqo
