#include "metrics/trace.h"

namespace ttmqo {
namespace {

void WriteDestinations(std::ostream& out, const Message& msg) {
  out << "\"dests\":[";
  for (std::size_t i = 0; i < msg.destinations.size(); ++i) {
    if (i > 0) out << ',';
    out << msg.destinations[i];
  }
  out << ']';
}

}  // namespace

JsonlTraceWriter::~JsonlTraceWriter() { Flush(); }

void JsonlTraceWriter::Flush() { out_->flush(); }

void JsonlTraceWriter::OnTransmit(SimTime time, const Message& msg,
                                  double duration_ms, bool retransmission) {
  ++events_;
  *out_ << "{\"event\":\"tx\",\"t\":" << time << ",\"from\":" << msg.sender
        << ",\"class\":";
  WriteJsonString(*out_, MessageClassName(msg.cls));
  *out_ << ",\"bytes\":" << msg.payload_bytes << ",\"ms\":" << duration_ms
        << ",\"retx\":" << (retransmission ? "true" : "false") << ',';
  WriteDestinations(*out_, msg);
  *out_ << "}\n";
}

void JsonlTraceWriter::OnDrop(SimTime time, const Message& msg) {
  ++events_;
  *out_ << "{\"event\":\"drop\",\"t\":" << time << ",\"from\":" << msg.sender
        << ",\"class\":";
  WriteJsonString(*out_, MessageClassName(msg.cls));
  *out_ << "}\n";
}

void JsonlTraceWriter::OnSleepChange(SimTime time, NodeId node, bool asleep) {
  ++events_;
  *out_ << "{\"event\":\"" << (asleep ? "sleep" : "wake") << "\",\"t\":"
        << time << ",\"node\":" << node << "}\n";
}

void JsonlTraceWriter::OnNodeFailed(SimTime time, NodeId node) {
  ++events_;
  *out_ << "{\"event\":\"fail\",\"t\":" << time << ",\"node\":" << node
        << "}\n";
}

void JsonlTraceWriter::OnNodeDown(SimTime time, NodeId node) {
  ++events_;
  *out_ << "{\"event\":\"down\",\"t\":" << time << ",\"node\":" << node
        << "}\n";
}

void JsonlTraceWriter::OnNodeRecovered(SimTime time, NodeId node,
                                       SimDuration down_ms) {
  ++events_;
  *out_ << "{\"event\":\"recover\",\"t\":" << time << ",\"node\":" << node
        << ",\"down_ms\":" << down_ms << "}\n";
}

void JsonlTraceWriter::OnLinkDrop(SimTime time, const Message& msg,
                                  NodeId receiver) {
  ++events_;
  *out_ << "{\"event\":\"linkdrop\",\"t\":" << time << ",\"from\":"
        << msg.sender << ",\"to\":" << receiver << ",\"class\":";
  WriteJsonString(*out_, MessageClassName(msg.cls));
  *out_ << "}\n";
}

void JsonlTraceWriter::Emit(const TraceEvent& event) {
  ++events_;
  WriteTraceEventJson(*out_, event);
  *out_ << '\n';
}

}  // namespace ttmqo
