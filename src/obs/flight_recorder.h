// The flight recorder: a black box for postmortems.
//
// While *armed*, instrumented sites append fixed-size records — simulator
// events, run brackets, fault transitions, optimizer decisions — to
// per-thread lock-free rings holding the last N records each.  On an
// invariant failure (`Check`), a chaos/golden assertion, or a fatal signal
// (SIGSEGV/SIGABRT/SIGBUS/SIGFPE), the rings are dumped to a postmortem
// JSON file so the events leading up to the failure are preserved.
//
// Disarmed (the default), a record call is one relaxed atomic load and a
// branch, cheap enough to leave in the simulator's per-event hot path.
//
// Signal-safety rules (see DESIGN.md):
//   - Record entries are PODs with inline char arrays — no allocation, no
//     locking on the record path (registration of a new thread's ring takes
//     a mutex once, outside any signal context).
//   - The dump path uses only `open`/`write`/`snprintf` into stack buffers;
//     it never allocates, locks, or touches iostreams, so it can run inside
//     a SIGSEGV handler on a corrupted heap.
//   - Rings are reachable from a global fixed-capacity pointer table with
//     an atomic count, so the handler can walk them without coordination.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ttmqo::obs {

/// One flight-recorder entry.  POD; strings are truncating inline copies.
struct FlightEntry {
  static constexpr std::size_t kKindLen = 24;
  static constexpr std::size_t kDetailLen = 48;

  std::uint64_t seq = 0;        ///< global order of recording
  std::int64_t sim_time = -1;   ///< simulation time (ms) or -1 if n/a
  std::int64_t a = 0;           ///< numeric payload, meaning per kind
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::uint32_t tid = 0;        ///< recording thread's obs tid
  char kind[kKindLen] = {};     ///< e.g. "sim.event", "fault.down"
  char detail[kDetailLen] = {};  ///< optional short text
};

namespace flight_internal {
extern std::atomic<bool> g_armed;
void RecordSlow(const char* kind, std::int64_t sim_time, std::int64_t a,
                std::int64_t b, std::int64_t c, const char* detail);
}  // namespace flight_internal

/// True while the recorder captures records.
inline bool FlightRecorderArmed() {
  return flight_internal::g_armed.load(std::memory_order_relaxed);
}

/// Appends a record to the calling thread's ring when armed; otherwise one
/// load and a branch.
inline void RecordFlight(const char* kind, std::int64_t sim_time = -1,
                         std::int64_t a = 0, std::int64_t b = 0,
                         std::int64_t c = 0, const char* detail = nullptr) {
  if (FlightRecorderArmed()) {
    flight_internal::RecordSlow(kind, sim_time, a, b, c, detail);
  }
}

/// Arms recording only — no signal handlers, no check hook.  For tests and
/// in-process capture.
void ArmFlightRecorder();

/// Stops recording and detaches the postmortem triggers installed by
/// `ArmPostmortem` (signal handlers restored, check hook removed).  Ring
/// contents are kept until `ClearFlightRecords`.  Safe to call when not
/// armed.
void DisarmFlightRecorder();

/// Arms the full postmortem pipeline: recording on, dumps written to `dir`
/// (created if missing), a `Check` failure hook that dumps before the
/// exception propagates, and fatal-signal handlers (SIGSEGV, SIGABRT,
/// SIGBUS, SIGFPE) that dump and then re-raise with the default action.
void ArmPostmortem(const std::string& dir);

/// Writes every thread's ring to `<dir>/postmortem_<n>_<reason>.json` and
/// returns the path (empty string when no dump directory is configured or
/// the file could not be created).  Allocation-free core; callable from the
/// installed signal handlers.
std::string DumpPostmortem(const char* reason);

/// Clears the calling thread's ring.  The simulator calls this on teardown
/// so back-to-back in-process runs (sweep tasks) don't interleave stale
/// records into the next run's postmortem.
void ClearThreadFlightRing();

/// Clears every registered ring and the global sequence counter.
void ClearFlightRecords();

/// Copies all records from all rings, oldest first (global seq order).  For
/// tests and non-signal inspection.
std::vector<FlightEntry> CollectFlightRecords();

}  // namespace ttmqo::obs
