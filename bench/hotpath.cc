// Hot-path benchmark for the discrete-event core, in three parts:
//
//   A. sweep     — the committed BENCH_sweep.json spec at jobs=1; reports
//                  serial events/sec and the speedup against the baseline
//                  recorded before the allocation-free engine landed.
//   B. dense     — a synthetic worst case the figure sweeps never reach:
//                  a 10x10 grid where every node multicasts to all of its
//                  neighbors on a fast period over a colliding (p=0.1),
//                  lossy (p=0.05) channel, so the interference-counting,
//                  retry, and per-destination loss paths dominate.
//   C. probe     — the allocation counter: a broadcast-only steady state
//                  runs a warmup (vectors reach capacity, the event slab
//                  reaches its high-water mark), then the same workload
//                  runs again under a global operator-new counter.  The
//                  engine's contract is zero heap allocations per event in
//                  steady state; the probe measures it rather than trusts
//                  it.
//
//   $ hotpath                         # full artifact -> BENCH_hotpath.json
//   $ hotpath --spec="grids=4 ..." --dense-ms=5000 --probe-ms=5000
//
// Flags:
//   --spec=<text|@...>  sweep spec for part A (default: the committed
//                       BENCH_sweep.json spec)
//   --out=p.json        artifact path (default BENCH_hotpath.json)
//   --baseline=N        pre-overhaul serial events/sec to compare against
//                       (default 735962, from the committed BENCH_sweep.json)
//   --dense-ms=N        simulated duration of part B (default 60000)
//   --probe-ms=N        simulated warmup and measurement duration of part C
//                       (default 60000 each)
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/network.h"
#include "obs/build_info.h"
#include "obs/session.h"
#include "sweep/spec.h"
#include "util/flags.h"

// ---------------------------------------------------------------------------
// Global allocation counter.  Every path into the heap in this binary goes
// through these replaceable operators; part C reads the counter around a
// measured simulation window to prove the steady-state event loop never
// touches the allocator.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ttmqo {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

double EventsPerSec(std::uint64_t events, double wall_ms) {
  return static_cast<double>(events) * 1000.0 / wall_ms;
}

/// A node that re-sends the same message shape on a fixed period through a
/// pooled, inline-captured event — the traffic generator for parts B and C.
struct NodeTicker {
  Network* net = nullptr;
  NodeId node = 0;
  SimDuration period = 0;
  AddressMode mode = AddressMode::kBroadcast;
  std::size_t payload_bytes = 0;

  void Tick() {
    Message msg;
    msg.cls = MessageClass::kMaintenance;
    msg.mode = mode;
    msg.sender = node;
    if (mode == AddressMode::kMulticast) {
      msg.destinations = net->topology().NeighborsOf(node);
    }
    msg.payload_bytes = payload_bytes;
    net->Send(std::move(msg));
    net->sim().ScheduleAfter(period, [this] { Tick(); });
  }
};

/// Starts one ticker per non-sink node, staggered by node index so the
/// radios do not phase-lock.
void StartTickers(std::vector<NodeTicker>& tickers, Network& net,
                  SimDuration period, AddressMode mode,
                  std::size_t payload_bytes) {
  const std::size_t n = net.topology().size();
  tickers.resize(n);
  for (NodeId node = 1; node < n; ++node) {
    tickers[node] = NodeTicker{&net, node, period, mode, payload_bytes};
    NodeTicker* ticker = &tickers[node];
    net.sim().ScheduleAt(static_cast<SimTime>(node) % period,
                         [ticker] { ticker->Tick(); });
  }
}

struct SweepResult {
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
};

SweepResult RunSweepPart(const SweepSpec& spec) {
  std::printf("hotpath: part A — sweep, %zu tasks at jobs=1...\n",
              spec.TaskCount());
  const SweepReport report = RunSweep(spec, 1);
  return {report.rows.size(), report.TotalEvents(), report.wall_ms};
}

struct DenseResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t link_drops = 0;
};

DenseResult RunDensePart(SimDuration duration_ms) {
  std::printf("hotpath: part B — dense contention, %lld sim ms...\n",
              static_cast<long long>(duration_ms));
  const Topology topology = Topology::Grid(10);
  ChannelParams channel;
  channel.collision_prob = 0.1;
  Network net(topology, RadioParams{}, channel, /*seed=*/1);
  net.SetDefaultLinkLoss(0.05);
  // Per-receiver loss is only rolled for neighbors that could actually
  // receive, so the lossy path needs installed receivers to be exercised.
  for (NodeId node = 0; node < topology.size(); ++node) {
    net.SetReceiver(node, [](const Message&, bool) {});
  }
  std::vector<NodeTicker> tickers;
  StartTickers(tickers, net, /*period=*/128, AddressMode::kMulticast,
               /*payload_bytes=*/24);
  const auto start = Clock::now();
  net.sim().RunUntil(duration_ms);
  DenseResult result;
  result.wall_ms = ElapsedMs(start);
  result.events = net.sim().events_executed();
  result.retransmissions = net.ledger().TotalRetransmissions();
  result.link_drops = net.link_drops();
  return result;
}

struct ProbeResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::uint64_t allocations = 0;
};

ProbeResult RunProbePart(SimDuration probe_ms) {
  std::printf("hotpath: part C — allocation probe, %lld + %lld sim ms...\n",
              static_cast<long long>(probe_ms),
              static_cast<long long>(probe_ms));
  // Clean channel, no receivers: every event is pure hot path (tick, send,
  // begin, complete, deliver-to-nobody), so any allocation counted below
  // is the event engine's own.
  const Topology topology = Topology::Grid(4);
  Network net(topology, RadioParams{}, ChannelParams{}, /*seed=*/1);
  const auto tx_ms = static_cast<SimDuration>(
      std::ceil(net.radio().TransmitDurationMs(24)));
  std::vector<NodeTicker> tickers;
  // Period >> transmit time, so the per-node radio never backlogs and the
  // pending-event count stays flat after warmup.
  StartTickers(tickers, net, /*period=*/8 * tx_ms, AddressMode::kBroadcast,
               /*payload_bytes=*/24);

  // Warmup: the event slab, free list, and per-sender flight vectors grow
  // to their high-water marks here, not in the measured window.
  net.sim().RunUntil(probe_ms);

  const std::uint64_t events_before = net.sim().events_executed();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  net.sim().RunUntil(2 * probe_ms);
  ProbeResult result;
  result.wall_ms = ElapsedMs(start);
  result.events = net.sim().events_executed() - events_before;
  result.allocations =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  return result;
}

std::string LoadSpecText(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  if (!in) throw std::runtime_error("cannot open spec file: " + arg.substr(1));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string spec_arg = flags.GetString(
      "spec",
      "grids=4,6,8,10 workloads=C modes=baseline,ttmqo faults=none seeds=1 "
      "base-seed=1 duration-ms=245760 collisions=0.02 alpha=0.6");
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");
  const double baseline = flags.GetDouble("baseline", 735962.0);
  const auto dense_ms = static_cast<SimDuration>(
      flags.GetInt("dense-ms", 60'000));
  const auto probe_ms = static_cast<SimDuration>(
      flags.GetInt("probe-ms", 60'000));
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  obs::WarnIfSingleCore(std::cerr);

  const SweepSpec spec = SweepSpec::Parse(LoadSpecText(spec_arg));
  const SweepResult sweep = RunSweepPart(spec);
  const double sweep_eps = EventsPerSec(sweep.events, sweep.wall_ms);
  const DenseResult dense = RunDensePart(dense_ms);
  const ProbeResult probe = RunProbePart(probe_ms);
  const double allocs_per_event =
      static_cast<double>(probe.allocations) /
      static_cast<double>(probe.events);

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open output file: " + out_path);
  char buf[512];
  out << "{\n";
  out << "  \"bench\": \"hotpath\",\n";
  out << "  \"spec\": \"" << spec.ToString() << "\",\n";
  out << "  \"build\": ";
  obs::WriteBuildInfoJson(out);
  out << ",\n";
  std::snprintf(buf, sizeof(buf), "  \"baseline_events_per_sec\": %.0f,\n",
                baseline);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"sweep\": {\"tasks\": %zu, \"events_executed\": %llu, "
      "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
      "\"speedup_vs_baseline\": %.3f},\n",
      sweep.tasks, static_cast<unsigned long long>(sweep.events),
      sweep.wall_ms, sweep_eps, sweep_eps / baseline);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"dense\": {\"sim_ms\": %lld, \"events_executed\": %llu, "
      "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
      "\"retransmissions\": %llu, \"link_drops\": %llu},\n",
      static_cast<long long>(dense_ms),
      static_cast<unsigned long long>(dense.events), dense.wall_ms,
      EventsPerSec(dense.events, dense.wall_ms),
      static_cast<unsigned long long>(dense.retransmissions),
      static_cast<unsigned long long>(dense.link_drops));
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"alloc_probe\": {\"sim_ms\": %lld, \"events_measured\": %llu, "
      "\"allocations\": %llu, \"allocs_per_event\": %g}\n",
      static_cast<long long>(probe_ms),
      static_cast<unsigned long long>(probe.events),
      static_cast<unsigned long long>(probe.allocations), allocs_per_event);
  out << buf;
  out << "}\n";

  std::printf(
      "hotpath: sweep %.0f events/sec (x%.2f vs baseline %.0f); dense %.0f "
      "events/sec, %llu retransmissions, %llu link drops; probe %llu allocs "
      "over %llu events (%g/event); wrote %s\n",
      sweep_eps, sweep_eps / baseline, baseline,
      EventsPerSec(dense.events, dense.wall_ms),
      static_cast<unsigned long long>(dense.retransmissions),
      static_cast<unsigned long long>(dense.link_drops),
      static_cast<unsigned long long>(probe.allocations),
      static_cast<unsigned long long>(probe.events), allocs_per_event,
      out_path.c_str());
  if (probe.allocations != 0) {
    std::fprintf(stderr,
                 "hotpath: WARNING — steady state allocated (%llu allocs); "
                 "an event capture likely outgrew the inline buffer\n",
                 static_cast<unsigned long long>(probe.allocations));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) {
  try {
    return ttmqo::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hotpath: %s\n", e.what());
    return 1;
  }
}
