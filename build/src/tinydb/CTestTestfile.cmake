# CMake generated Testfile for 
# Source directory: /root/repo/src/tinydb
# Build directory: /root/repo/build/src/tinydb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
