#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace ttmqo {

Network::Network(const Topology& topology, RadioParams radio,
                 ChannelParams channel, std::uint64_t seed)
    : topology_(&topology),
      radio_(radio),
      channel_(channel),
      link_quality_(topology, seed ^ 0x6c696e6bULL),
      ledger_(topology.size()),
      rng_(seed),
      receivers_(topology.size()),
      asleep_(topology.size(), false),
      failed_(topology.size(), false),
      down_(topology.size(), false),
      down_since_(topology.size(), 0),
      loss_rng_(seed ^ 0x6c6f7373ULL),
      sleep_since_(topology.size(), 0),
      busy_until_(topology.size(), 0),
      flight_ends_(topology.size()),
      active_slot_(topology.size(), 0) {
  channel_.Validate();
}

void Network::SetReceiver(NodeId node, Receiver receiver) {
  receivers_.at(node) = std::move(receiver);
}

void Network::SetAsleep(NodeId node, bool asleep) {
  if (failed_.at(node) || down_.at(node)) return;  // no power state while dark
  if (asleep_.at(node) == asleep) return;
  asleep_[node] = asleep;
  if (!observers_.empty()) observers_.OnSleepChange(sim_.Now(), node, asleep);
  if (asleep) {
    sleep_since_[node] = sim_.Now();
  } else {
    ledger_.AddSleep(node,
                     static_cast<double>(sim_.Now() - sleep_since_[node]));
  }
}

bool Network::IsAsleep(NodeId node) const { return asleep_.at(node); }

void Network::FailNode(NodeId node) {
  CheckArg(node != kBaseStationId, "Network::FailNode: cannot fail the sink");
  CheckArg(node < topology_->size(), "Network::FailNode: bad node");
  if (failed_[node]) return;
  if (down_[node]) {  // a crash absorbs a pending outage
    down_[node] = false;
    --num_down_;
  }
  failed_[node] = true;
  ++num_failed_;
  obs::RecordFlight("fault.crash", sim_.Now(), node);
  if (!observers_.empty()) observers_.OnNodeFailed(sim_.Now(), node);
}

bool Network::IsFailed(NodeId node) const { return failed_.at(node); }

void Network::SetDown(NodeId node) {
  CheckArg(node != kBaseStationId, "Network::SetDown: cannot down the sink");
  CheckArg(node < topology_->size(), "Network::SetDown: bad node");
  if (failed_[node] || down_[node]) return;
  if (asleep_[node]) SetAsleep(node, false);  // close the open sleep span
  down_[node] = true;
  down_since_[node] = sim_.Now();
  ++num_down_;
  obs::RecordFlight("fault.down", sim_.Now(), node);
  if (!observers_.empty()) observers_.OnNodeDown(sim_.Now(), node);
}

void Network::Recover(NodeId node) {
  CheckArg(node < topology_->size(), "Network::Recover: bad node");
  if (failed_[node] || !down_[node]) return;
  down_[node] = false;
  --num_down_;
  obs::RecordFlight("fault.recover", sim_.Now(), node,
                    sim_.Now() - down_since_[node]);
  if (!observers_.empty()) {
    observers_.OnNodeRecovered(sim_.Now(), node,
                               sim_.Now() - down_since_[node]);
  }
}

bool Network::IsDown(NodeId node) const {
  return failed_.at(node) || down_.at(node);
}

void Network::SetDefaultLinkLoss(double p) {
  CheckArg(p >= 0.0 && p < 1.0,
           "Network::SetDefaultLinkLoss: p must be in [0,1)");
  default_link_loss_ = p;
}

namespace {
std::pair<NodeId, NodeId> LinkKey(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

void Network::SetLinkLoss(NodeId a, NodeId b, double p) {
  CheckArg(p >= 0.0 && p < 1.0, "Network::SetLinkLoss: p must be in [0,1)");
  CheckArg(topology_->AreNeighbors(a, b),
           "Network::SetLinkLoss: nodes are not radio neighbors");
  link_loss_[LinkKey(a, b)] = p;
}

void Network::ClearLinkLoss(NodeId a, NodeId b) {
  link_loss_.erase(LinkKey(a, b));
}

double Network::LinkLossOf(NodeId a, NodeId b) const {
  const auto it = link_loss_.find(LinkKey(a, b));
  return it != link_loss_.end() ? it->second : default_link_loss_;
}

void Network::Send(Message msg) {
  CheckArg(msg.sender < topology_->size(), "Network::Send: bad sender");
  if (failed_[msg.sender] || down_[msg.sender]) {
    return;  // a dark radio transmits nothing
  }
  CheckArg(!asleep_[msg.sender], "Network::Send: sender is asleep");
  if (msg.mode == AddressMode::kBroadcast) {
    CheckArg(msg.destinations.empty(),
             "Network::Send: broadcast must not list destinations");
  } else {
    CheckArg(!msg.destinations.empty(),
             "Network::Send: unicast/multicast needs destinations");
    CheckArg(msg.mode != AddressMode::kUnicast || msg.destinations.size() == 1,
             "Network::Send: unicast takes exactly one destination");
    for (NodeId dest : msg.destinations) {
      CheckArg(topology_->AreNeighbors(msg.sender, dest),
               "Network::Send: destination is not a radio neighbor");
    }
  }
  BeginAttempt(std::move(msg), /*attempt=*/0);
}

void Network::AddFlight(NodeId sender, SimTime end) {
  std::vector<SimTime>& ends = flight_ends_[sender];
  if (ends.empty()) {
    active_slot_[sender] = static_cast<std::uint32_t>(active_senders_.size());
    active_senders_.push_back(sender);
  }
  ends.push_back(end);
  ++total_flights_;
}

void Network::RemoveFlight(NodeId sender, SimTime end) {
  std::vector<SimTime>& ends = flight_ends_[sender];
  for (std::size_t i = 0; i < ends.size(); ++i) {
    if (ends[i] != end) continue;
    ends[i] = ends.back();
    ends.pop_back();
    --total_flights_;
    if (ends.empty()) {
      const std::uint32_t slot = active_slot_[sender];
      const NodeId last = active_senders_.back();
      active_senders_[slot] = last;
      active_slot_[last] = slot;
      active_senders_.pop_back();
    }
    return;
  }
}

void Network::BeginAttempt(Message msg, int attempt) {
  const NodeId sender = msg.sender;
  const SimTime start = std::max(sim_.Now(), busy_until_[sender]);
  const double duration_ms = radio_.TransmitDurationMs(msg.payload_bytes);
  const auto duration = static_cast<SimDuration>(std::ceil(duration_ms));
  busy_until_[sender] = start + duration;

  ledger_.ChargeTransmit(sender, msg.cls, duration_ms,
                         /*is_retransmission=*/attempt > 0);
  if (!observers_.empty()) {
    observers_.OnTransmit(start, msg, duration_ms, attempt > 0);
  }
  AddFlight(sender, start + duration);

  auto complete = [this, msg = std::move(msg), attempt, start]() mutable {
    CompleteAttempt(std::move(msg), attempt, start);
  };
  // The steady-state radio path must never allocate: the completion event —
  // the largest hot-path capture (Message + attempt + start + this) — has to
  // fit the simulator's inline event storage.  If Message grows past the
  // slab slot size this fires at compile time instead of silently degrading
  // every schedule into a heap allocation.
  static_assert(Simulator::EventFn::kFitsInline<decltype(complete)>,
                "radio completion event no longer fits EventFn inline "
                "storage; grow Simulator::EventFn's capacity");
  sim_.ScheduleAt(start + duration, std::move(complete));
}

void Network::CompleteAttempt(Message msg, int attempt, SimTime started) {
  TTMQO_SPAN_SAMPLED("net.complete_attempt", 8);
  // Retire this flight record (even for a sender that went dark mid-air, so
  // stale flights never linger in the interference count).
  RemoveFlight(msg.sender, sim_.Now());
  if (failed_[msg.sender] || down_[msg.sender]) {
    return;  // went dark mid-air: nothing is delivered, retries die
  }

  bool collided = false;
  if (channel_.collision_prob > 0.0) {
    const std::size_t interferers = CountInterferers(msg.sender, started);
    if (interferers > 0) {
      const double survive =
          std::pow(1.0 - channel_.collision_prob,
                   static_cast<double>(interferers));
      collided = !rng_.Bernoulli(survive);
    }
  }
  if (collided) {
    if (attempt >= channel_.max_retries) {
      ledger_.CountDrop(msg.sender);
      if (!observers_.empty()) observers_.OnDrop(sim_.Now(), msg);
      return;
    }
    const auto backoff = static_cast<SimDuration>(
        std::ceil(channel_.backoff_ms * static_cast<double>(attempt + 1)));
    // The message moves through the whole retry chain — scheduling, firing,
    // re-beginning — without a single copy.
    auto retry = [this, msg = std::move(msg), attempt]() mutable {
      BeginAttempt(std::move(msg), attempt + 1);
    };
    static_assert(Simulator::EventFn::kFitsInline<decltype(retry)>,
                  "radio retry event no longer fits EventFn inline storage");
    sim_.ScheduleAfter(backoff, std::move(retry));
    return;
  }
  Deliver(msg);
}

std::size_t Network::CountInterferers(NodeId sender, SimTime started) const {
  // Transmissions overlapping [started, now] whose sender lies within the
  // precomputed interference set (twice the radio range) of `sender`: a
  // bitset membership test over the senders with active flights replaces
  // the legacy distance scan of every flight.  The `end > started` filter
  // preserves the exact legacy overlap semantics (it only differs from
  // "any active flight" for zero-duration transmissions completing in the
  // same instant).
  std::size_t count = 0;
  for (const NodeId other : active_senders_) {
    if (other == sender || !topology_->InInterferenceRange(sender, other)) {
      continue;
    }
    for (const SimTime end : flight_ends_[other]) {
      count += end > started ? 1 : 0;
    }
  }
  return count;
}

void Network::Deliver(const Message& msg) {
  TTMQO_SPAN_SAMPLED("net.deliver", 8);
  // Hot-path short circuits, hoisted out of the per-neighbor loop: skip
  // the loss lookup entirely on lossless deployments (no per-link override,
  // zero default — the common case), and pick the destination-membership
  // strategy once.  Large multicasts are answered by binary search over a
  // sorted scratch copy; small ones by a linear scan of the original.
  const bool lossy = default_link_loss_ > 0.0 || !link_loss_.empty();
  constexpr std::size_t kSmallDestinations = 8;
  const bool use_sorted = msg.mode == AddressMode::kMulticast &&
                          msg.destinations.size() > kSmallDestinations;
  if (use_sorted) {
    dest_scratch_.assign(msg.destinations.begin(), msg.destinations.end());
    std::sort(dest_scratch_.begin(), dest_scratch_.end());
  }
  for (NodeId neighbor : topology_->NeighborsOf(msg.sender)) {
    if (failed_[neighbor] || down_[neighbor]) continue;
    const Receiver& receiver = receivers_[neighbor];
    if (!receiver) continue;
    const bool addressed =
        msg.mode == AddressMode::kBroadcast ||
        (use_sorted
             ? std::binary_search(dest_scratch_.begin(), dest_scratch_.end(),
                                  neighbor)
             : std::find(msg.destinations.begin(), msg.destinations.end(),
                         neighbor) != msg.destinations.end());
    // Low-power listening: a sleeping radio still catches traffic addressed
    // to it (the sender's preamble wakes it) but cannot overhear.
    if (asleep_[neighbor] && !addressed) continue;
    // Independent per-receiver link loss (orthogonal to the contention
    // model): the sender never learns about the loss and does not retry.
    if (lossy) {
      const double loss = LinkLossOf(msg.sender, neighbor);
      if (loss > 0.0 && loss_rng_.Bernoulli(loss)) {
        ++link_drops_;
        if (!observers_.empty()) {
          observers_.OnLinkDrop(sim_.Now(), msg, neighbor);
        }
        continue;
      }
    }
    if (addressed) ledger_.CountReceive(neighbor);
    receiver(msg, addressed);
  }
}

void Network::StartMaintenanceBeacons(SimDuration period,
                                      std::size_t payload_bytes) {
  CheckArg(period > 0, "StartMaintenanceBeacons: period must be positive");
  // Each call registers one beacon set; the per-node tick events reference
  // it by index and reschedule themselves through the pooled event slab —
  // no per-node shared_ptr<std::function> chain, no per-tick allocation.
  const auto set = static_cast<std::uint32_t>(beacon_sets_.size());
  beacon_sets_.push_back(BeaconSet{period, payload_bytes});
  for (NodeId node : topology_->AllNodes()) {
    // Stagger nodes across the period so beacons do not synchronize.
    const SimDuration offset =
        static_cast<SimDuration>(node) * period /
        static_cast<SimDuration>(topology_->size());
    sim_.ScheduleAfter(offset, [this, node, set] { BeaconTick(node, set); });
  }
}

void Network::BeaconTick(NodeId node, std::uint32_t set) {
  if (failed_[node]) return;  // a dead node's beacon chain ends
  const BeaconSet& beacon = beacon_sets_[set];
  if (!asleep_[node] && !down_[node]) {
    Message msg;
    msg.cls = MessageClass::kMaintenance;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = node;
    msg.payload_bytes = beacon.payload_bytes;
    Send(std::move(msg));
  }
  sim_.ScheduleAfter(beacon.period,
                     [this, node, set] { BeaconTick(node, set); });
}

void Network::FinalizeAccounting() {
  for (NodeId node = 0; node < asleep_.size(); ++node) {
    if (!asleep_[node]) continue;
    ledger_.AddSleep(node,
                     static_cast<double>(sim_.Now() - sleep_since_[node]));
    sleep_since_[node] = sim_.Now();
  }
}

}  // namespace ttmqo
