// Reproduces Figure 5: transmission-time savings of TTMQO over the
// baseline as a function of predicate selectivity, for three workload
// compositions (100% acquisition, 50/50 mix, 100% aggregation).
//
// Setup per Section 4.3: 8 concurrent queries; acquisition queries
// retrieve all attributes; aggregation queries request MAX(light);
// "selectivity of predicates = s" constrains one randomly chosen attribute
// to a window covering fraction s of its range.  The collision model is ON
// — the paper attributes the >7/8 savings of 8 same-epoch acquisition
// queries at selectivity 1 to reduced transmission failures and
// retransmissions.
//
// Paper shapes: savings grow with selectivity for every composition; 8
// same-epoch acquisition queries at selectivity 1 reach ~89.7%; the pure
// aggregation workload improves sharply only at selectivity 1 (tier 1
// cannot merge aggregation queries with different predicates).
//
// Usage: fig5_selectivity [--duration-ms=N] [--seed=N] [--side=4]
//                         [--collisions=0.03]
#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "obs/session.h"
#include "util/flags.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

std::vector<Query> MakeQueries(double acquisition_fraction,
                               double selectivity, std::uint64_t seed) {
  QueryModelParams params;
  params.aggregation_fraction = 1.0 - acquisition_fraction;
  // The paper draws predicate attributes from {nodeid, light, temp}; our
  // catalog's nodeid range is the 16-bit address space rather than the
  // deployment size, so predicates are drawn over light/temp instead
  // (documented in EXPERIMENTS.md).
  params.attributes = {Attribute::kLight, Attribute::kTemp};
  params.operators = {AggregateOp::kMax};
  params.epochs = {8192};  // 8 same-epoch queries, as in the 89.7% claim
  params.predicate_selectivity = selectivity;
  params.acquisition_selects_all = true;
  RandomQueryModel model(params, seed);

  std::vector<Query> queries;
  std::size_t num_agg =
      static_cast<std::size_t>(8.0 * (1.0 - acquisition_fraction) + 0.5);
  for (QueryId id = 1; id <= 8; ++id) {
    Query q = model.Next(id);
    // Force the exact composition: regenerate until the kind matches the
    // remaining quota (the model draws kinds randomly).
    while ((q.kind() == QueryKind::kAggregation && num_agg == 0) ||
           (q.kind() == QueryKind::kAcquisition && (8 - id + 1) <= num_agg)) {
      q = model.Next(id);
    }
    if (q.kind() == QueryKind::kAggregation) --num_agg;
    queries.push_back(std::move(q));
  }
  return queries;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const SimDuration duration = flags.GetInt("duration-ms", 40 * 8192);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 5));
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 4));
  const double collisions = flags.GetDouble("collisions", 0.03);
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  std::printf("Figure 5: transmission-time savings vs predicate selectivity "
              "(8 queries, %zux%zu grid, collisions=%.3f)\n\n",
              side, side, collisions);

  TablePrinter table({"selectivity", "100% acquisition", "50% / 50%",
                      "100% aggregation"});
  for (double sel : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<std::string> row = {TablePrinter::Num(sel, 1)};
    for (double acq_fraction : {1.0, 0.5, 0.0}) {
      const auto queries = MakeQueries(acq_fraction, sel, seed);
      const auto schedule = StaticSchedule(queries);
      double fraction[2];
      int i = 0;
      for (OptimizationMode mode :
           {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
        RunConfig config;
        config.grid_side = side;
        config.mode = mode;
        config.field = FieldKind::kUniform;  // matches the uniform analysis
        config.duration_ms = duration;
        config.seed = seed;
        config.channel.collision_prob = collisions;
        fraction[i++] =
            RunExperiment(config, schedule).summary.avg_transmission_fraction;
      }
      row.push_back(
          TablePrinter::Num(SavingsPercent(fraction[0], fraction[1]), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nEntries are %% savings of TTMQO over the baseline in "
              "average transmission time.\n");
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
