file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_routing.dir/routing_tree.cc.o"
  "CMakeFiles/ttmqo_routing.dir/routing_tree.cc.o.d"
  "CMakeFiles/ttmqo_routing.dir/semantic_tree.cc.o"
  "CMakeFiles/ttmqo_routing.dir/semantic_tree.cc.o.d"
  "libttmqo_routing.a"
  "libttmqo_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
