#include "net/network.h"

#include <utility>

#include "net/batched_network.h"

namespace ttmqo {

Network::Network(const Topology& topology, RadioParams radio,
                 ChannelParams channel, std::uint64_t seed)
    : owned_(BatchedNetwork::MakeViewless(topology, radio, channel, seed)),
      batch_(owned_.get()),
      lane_(0),
      sim_(owned_->core(), 0) {}

Network::Network(BatchedNetwork& batch, std::uint32_t lane)
    : batch_(&batch), lane_(lane), sim_(batch.core(), lane) {}

Network::~Network() = default;

const Topology& Network::topology() const { return batch_->topology(); }

const LinkQualityMap& Network::link_quality() const {
  return batch_->link_quality(lane_);
}

RadioLedger& Network::ledger() { return batch_->ledger(lane_); }

const RadioLedger& Network::ledger() const { return batch_->ledger(lane_); }

const RadioParams& Network::radio() const { return batch_->radio(); }

void Network::SetReceiver(NodeId node, Receiver receiver) {
  batch_->SetReceiver(lane_, node, std::move(receiver));
}

void Network::SetAsleep(NodeId node, bool asleep) {
  batch_->SetAsleep(lane_, node, asleep);
}

bool Network::IsAsleep(NodeId node) const {
  return batch_->IsAsleep(lane_, node);
}

void Network::FailNode(NodeId node) { batch_->FailNode(lane_, node); }

bool Network::IsFailed(NodeId node) const {
  return batch_->IsFailed(lane_, node);
}

std::size_t Network::NumFailed() const { return batch_->NumFailed(lane_); }

void Network::SetDown(NodeId node) { batch_->SetDown(lane_, node); }

void Network::Recover(NodeId node) { batch_->Recover(lane_, node); }

bool Network::IsDown(NodeId node) const { return batch_->IsDown(lane_, node); }

std::size_t Network::NumDown() const { return batch_->NumDown(lane_); }

void Network::SetDefaultLinkLoss(double p) {
  batch_->SetDefaultLinkLoss(lane_, p);
}

void Network::SetLinkLoss(NodeId a, NodeId b, double p) {
  batch_->SetLinkLoss(lane_, a, b, p);
}

void Network::ClearLinkLoss(NodeId a, NodeId b) {
  batch_->ClearLinkLoss(lane_, a, b);
}

double Network::LinkLossOf(NodeId a, NodeId b) const {
  return batch_->LinkLossOf(lane_, a, b);
}

std::uint64_t Network::link_drops() const { return batch_->link_drops(lane_); }

void Network::Send(Message msg) { batch_->Send(lane_, std::move(msg)); }

void Network::StartMaintenanceBeacons(SimDuration period,
                                      std::size_t payload_bytes) {
  batch_->StartMaintenanceBeaconsLane(lane_, period, payload_bytes);
}

void Network::FinalizeAccounting() { batch_->FinalizeAccounting(lane_); }

std::size_t Network::in_flight() const { return batch_->in_flight(lane_); }

ObserverMux& Network::observers() { return batch_->observers(lane_); }

const ObserverMux& Network::observers() const {
  return batch_->observers(lane_);
}

void Network::SetObserver(NetworkObserver* observer) {
  ObserverMux& mux = batch_->observers(lane_);
  if (legacy_observer_ != nullptr) mux.Remove(legacy_observer_);
  legacy_observer_ = observer;
  mux.Add(observer);
}

}  // namespace ttmqo
