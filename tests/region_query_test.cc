// Region-based queries: predicates over the constant position columns
// (xpos/ypos) select a rectangle of the deployment; the SRT prunes
// dissemination to it (Section 3.2.2's "region-based query" case).
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "core/ttmqo_engine.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

class RegionQueryTest : public ::testing::Test {
 protected:
  RegionQueryTest() : topology_(Topology::Grid(5)), field_(7) {}

  Topology topology_;
  UniformFieldModel field_;
};

TEST_F(RegionQueryTest, ParserAcceptsPositionPredicates) {
  const Query q = ParseQuery(
      1,
      "SELECT light WHERE xpos >= 40 AND ypos >= 40 EPOCH DURATION 4096");
  EXPECT_TRUE(q.predicates().ConstraintOn(Attribute::kX).has_value());
  EXPECT_TRUE(q.predicates().ConstraintOn(Attribute::kY).has_value());
  EXPECT_TRUE(SemanticRoutingTree::IsPrunable(q.predicates()));
}

TEST_F(RegionQueryTest, OnlyRegionNodesAnswer) {
  const Query q = ParseQuery(
      1,
      "SELECT light WHERE xpos >= 40 AND ypos >= 40 EPOCH DURATION 4096");
  Network network(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log;
  InNetworkEngine engine(network, field_, &log);
  engine.SubmitQuery(q);
  network.sim().RunUntil(6 * 4096);
  const auto results = log.ResultsFor(1);
  ASSERT_FALSE(results.empty());
  for (const EpochResult* r : results) {
    // The region x,y >= 40 on a 5x5/20ft grid holds 3x3 = 9 nodes.
    EXPECT_EQ(r->rows.size(), 9u);
    for (const Reading& row : r->rows) {
      const Position& pos = topology_.PositionOf(row.node());
      EXPECT_GE(pos.x, 40.0);
      EXPECT_GE(pos.y, 40.0);
    }
  }
}

TEST_F(RegionQueryTest, MatchesOracleInBothEngines) {
  const Query q = ParseQuery(
      1, "SELECT light, xpos WHERE xpos BETWEEN 20 AND 60 AND light > 200 "
         "EPOCH DURATION 4096");
  ResultLog oracle;
  testing::FillOracle(oracle, q, 6 * 4096, field_, topology_);
  for (bool innet : {false, true}) {
    Network network(topology_, RadioParams{}, ChannelParams{}, 42);
    ResultLog log;
    std::unique_ptr<QueryEngine> engine;
    if (innet) {
      engine = std::make_unique<InNetworkEngine>(network, field_, &log);
    } else {
      engine = std::make_unique<TinyDbEngine>(network, field_, &log);
    }
    engine->SubmitQuery(q);
    network.sim().RunUntil(6 * 4096);
    const auto diff = CompareResultLogs(oracle, log, {q});
    EXPECT_FALSE(diff.has_value()) << (innet ? "innet: " : "tinydb: ")
                                   << *diff;
  }
}

TEST_F(RegionQueryTest, SrtPrunesRegionPropagation) {
  // A far-corner region: dissemination should touch far fewer nodes than a
  // flood.
  const Query q = ParseQuery(
      1,
      "SELECT light WHERE xpos >= 60 AND ypos >= 60 EPOCH DURATION 4096");
  std::uint64_t prop[2];
  for (int i = 0; i < 2; ++i) {
    Network network(topology_, RadioParams{}, ChannelParams{}, 42);
    ResultLog log;
    InNetOptions options;
    options.use_semantic_routing = i == 0;
    InNetworkEngine engine(network, field_, &log, options);
    engine.SubmitQuery(q);
    network.sim().RunUntil(2 * 4096);
    prop[i] = network.ledger().TotalSent(MessageClass::kQueryPropagation);
  }
  EXPECT_LT(prop[0], prop[1]);
}

TEST_F(RegionQueryTest, RegionAggregationThroughTheFullStack) {
  const Query q = ParseQuery(
      1, "SELECT MAX(light), COUNT(light) WHERE xpos <= 40 "
         "EPOCH DURATION 4096");
  Network network(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field_, &log, options);
  engine.SubmitQuery(q);
  network.sim().RunUntil(6 * 4096);
  ResultLog oracle;
  testing::FillOracle(oracle, q, 6 * 4096, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
  // COUNT over the x<=40 half-plane: 3 columns x 5 rows minus the BS.
  const EpochResult* r = log.Find(1, 4096);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->aggregates.size(), 2u);
  EXPECT_DOUBLE_EQ(*r->aggregates[0].second, *oracle.Find(1, 4096)
                                                  ->aggregates[0]
                                                  .second);
  EXPECT_DOUBLE_EQ(*r->aggregates[1].second, 14.0);
}

TEST_F(RegionQueryTest, PositionColumnsAreProjectable) {
  const Query q =
      ParseQuery(1, "SELECT xpos, ypos, light EPOCH DURATION 4096");
  Network network(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog log;
  InNetworkEngine engine(network, field_, &log);
  engine.SubmitQuery(q);
  network.sim().RunUntil(2 * 4096);
  const EpochResult* r = log.Find(1, 4096);
  ASSERT_NE(r, nullptr);
  ASSERT_FALSE(r->rows.empty());
  for (const Reading& row : r->rows) {
    EXPECT_DOUBLE_EQ(row.GetOrThrow(Attribute::kX),
                     topology_.PositionOf(row.node()).x);
    EXPECT_DOUBLE_EQ(row.GetOrThrow(Attribute::kY),
                     topology_.PositionOf(row.node()).y);
  }
}

}  // namespace
}  // namespace ttmqo
