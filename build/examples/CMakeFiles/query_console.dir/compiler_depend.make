# Empty compiler generated dependencies file for query_console.
# This may be replaced when dependencies are built.
