// Tests for tier 1: integration rules, cost model (Eq. 1-3), Algorithm 1
// (greedy insertion with recursive re-integration) and Algorithm 2
// (adaptive termination), including the paper's Section 3.1.3 worked
// example.
#include <gtest/gtest.h>

#include "core/bs/cost_model.h"
#include "core/bs/integration.h"
#include "core/bs/rewriter.h"
#include "query/parser.h"

namespace ttmqo {
namespace {

Query Acq(QueryId id, double lo, double hi, SimDuration epoch) {
  return Query::Acquisition(
      id, {Attribute::kLight},
      PredicateSet::Of({{Attribute::kLight, Interval(lo, hi)}}), epoch);
}

class BsOptimizerTest : public ::testing::Test {
 protected:
  BsOptimizerTest()
      : topology_(Topology::Grid(4)),
        estimator_(),
        cost_(topology_, RadioParams{}, estimator_) {}

  BaseStationOptimizer MakeOptimizer(double alpha = 0.6) {
    BaseStationOptimizer::Options options;
    options.alpha = alpha;
    return BaseStationOptimizer(cost_, options);
  }

  Topology topology_;
  SelectivityEstimator estimator_;
  CostModel cost_;
};

// ---------------------------------------------------------------- rules --

TEST_F(BsOptimizerTest, RewritabilityRules) {
  const Query acq1 = Acq(1, 0, 500, 4096);
  const Query acq2 = Acq(2, 400, 900, 8192);
  const Query agg1 = ParseQuery(
      3, "SELECT MAX(light) WHERE light < 500 EPOCH DURATION 4096");
  const Query agg2 = ParseQuery(
      4, "SELECT MIN(light) WHERE light < 500 EPOCH DURATION 8192");
  const Query agg3 = ParseQuery(
      5, "SELECT MAX(light) WHERE light > 600 EPOCH DURATION 4096");
  EXPECT_TRUE(IsRewritable(acq1, acq2));
  EXPECT_TRUE(IsRewritable(acq1, agg1));
  EXPECT_TRUE(IsRewritable(agg1, agg2));  // identical predicates
  EXPECT_FALSE(IsRewritable(agg1, agg3)); // different predicates
}

TEST_F(BsOptimizerTest, IntegrateAcquisitionPair) {
  const auto merged = Integrate(100, Acq(1, 100, 300, 8192),
                                Acq(2, 280, 600, 4096));
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->kind(), QueryKind::kAcquisition);
  EXPECT_EQ(merged->epoch(), 4096);
  EXPECT_EQ(merged->predicates().ConstraintOn(Attribute::kLight),
            Interval(100, 600));
}

TEST_F(BsOptimizerTest, IntegrateAggregationPairUnionsAggList) {
  const Query agg1 = ParseQuery(
      1, "SELECT MAX(light) WHERE temp < 50 EPOCH DURATION 4096");
  const Query agg2 = ParseQuery(
      2, "SELECT MIN(light) WHERE temp < 50 EPOCH DURATION 8192");
  const auto merged = Integrate(100, agg1, agg2);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->kind(), QueryKind::kAggregation);
  EXPECT_EQ(merged->aggregates().size(), 2u);
  EXPECT_EQ(merged->epoch(), 4096);
  EXPECT_EQ(merged->predicates(), agg1.predicates());
}

TEST_F(BsOptimizerTest, IntegrateMixedBecomesAcquisition) {
  const Query acq = Acq(1, 0, 800, 4096);
  const Query agg = ParseQuery(
      2, "SELECT MAX(temp) WHERE light < 500 EPOCH DURATION 8192");
  const auto merged = Integrate(100, acq, agg);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->kind(), QueryKind::kAcquisition);
  // The merged query must acquire temp (the aggregate input).
  const auto& attrs = merged->attributes();
  EXPECT_NE(std::find(attrs.begin(), attrs.end(), Attribute::kTemp),
            attrs.end());
}

TEST_F(BsOptimizerTest, CoverageRules) {
  const Query broad = Acq(1, 0, 800, 4096);
  const Query narrow = Acq(2, 100, 600, 8192);
  EXPECT_TRUE(Covers(broad, narrow));
  EXPECT_FALSE(Covers(narrow, broad));
  // Epoch must divide.
  const Query odd_epoch = Acq(3, 100, 600, 6144);
  EXPECT_FALSE(Covers(broad, odd_epoch));
  // Aggregation covered by raw data.
  const Query agg = ParseQuery(
      4, "SELECT MAX(light) WHERE light BETWEEN 100 AND 500 "
         "EPOCH DURATION 8192");
  EXPECT_TRUE(Covers(broad, agg));
  // ... but only when the acquisition acquires the aggregate's input.
  const Query temp_agg =
      ParseQuery(5, "SELECT MAX(temp) EPOCH DURATION 8192");
  EXPECT_FALSE(Covers(broad, temp_agg));
  // An aggregation query covers an aggregate subset with equal predicates.
  const Query agg_super = ParseQuery(
      6, "SELECT MAX(light), MIN(light) WHERE temp < 40 EPOCH DURATION 4096");
  const Query agg_sub = ParseQuery(
      7, "SELECT MAX(light) WHERE temp < 40 EPOCH DURATION 8192");
  EXPECT_TRUE(Covers(agg_super, agg_sub));
  EXPECT_FALSE(Covers(agg_sub, agg_super));
  // An aggregation stream can never answer an acquisition query.
  EXPECT_FALSE(Covers(agg_super, broad));
}

// ------------------------------------------------------------ cost model --

TEST_F(BsOptimizerTest, ResultRateMatchesEq1) {
  // 4x4 grid: levels per BFS; sel is uniform-prior width/L.
  const Query q = Acq(1, 0, 500, 4096);  // sel = 0.5
  const auto& per_level = topology_.NodesPerLevel();
  for (std::size_t k = 1; k < per_level.size(); ++k) {
    EXPECT_DOUBLE_EQ(
        cost_.ResultRate(q, k),
        0.5 * static_cast<double>(per_level[k]) / 4096.0);
  }
  // Level 0 holds only the base station, which is not a sensor.
  EXPECT_DOUBLE_EQ(cost_.ResultRate(q, 0), 0.0);
  EXPECT_DOUBLE_EQ(cost_.ResultRate(q, 99), 0.0);
}

TEST_F(BsOptimizerTest, TransmissionsMatchEq2) {
  const Query q = Acq(1, 0, 1000, 4096);  // sel = 1
  double expected = 0.0;
  const auto& per_level = topology_.NodesPerLevel();
  for (std::size_t k = 1; k < per_level.size(); ++k) {
    expected += static_cast<double>(per_level[k] * k) / 4096.0;
  }
  EXPECT_DOUBLE_EQ(cost_.Transmissions(q), expected);
}

TEST_F(BsOptimizerTest, AggregationUsesLowerBound) {
  const Query agg = ParseQuery(1, "SELECT MAX(light) EPOCH DURATION 4096");
  // Lower bound: one result per sensor per epoch, no depth weighting.
  EXPECT_DOUBLE_EQ(cost_.Transmissions(agg),
                   static_cast<double>(topology_.size() - 1) / 4096.0);
  const Query acq = ParseQuery(2, "SELECT light EPOCH DURATION 4096");
  EXPECT_LT(cost_.Transmissions(agg), cost_.Transmissions(acq));
}

TEST_F(BsOptimizerTest, CostScalesWithMessageLengthAndRate) {
  const Query small = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  const Query wide =
      ParseQuery(2, "SELECT light, temp, humidity EPOCH DURATION 4096");
  const Query slow = ParseQuery(3, "SELECT light EPOCH DURATION 16384");
  EXPECT_LT(cost_.Cost(small), cost_.Cost(wide));
  EXPECT_DOUBLE_EQ(cost_.Cost(small), 4.0 * cost_.Cost(slow));
}

// ------------------------------------------------- Algorithm 1 behaviour --

TEST_F(BsOptimizerTest, FirstQueryBecomesItsOwnSynthetic) {
  auto opt = MakeOptimizer();
  const auto actions = opt.InsertUserQuery(Acq(1, 100, 300, 4096));
  ASSERT_EQ(actions.inject.size(), 1u);
  EXPECT_TRUE(actions.abort.empty());
  EXPECT_EQ(opt.NumSynthetic(), 1u);
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->members.size(), 1u);
  EXPECT_DOUBLE_EQ(sq->benefit, 0.0);
}

TEST_F(BsOptimizerTest, CoveredQueryChangesNothingInTheNetwork) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 0, 800, 4096));
  const auto actions = opt.InsertUserQuery(Acq(2, 100, 600, 8192));
  EXPECT_TRUE(actions.Empty());
  EXPECT_EQ(opt.NumSynthetic(), 1u);
  EXPECT_EQ(opt.SyntheticOf(2), opt.SyntheticOf(1));
  EXPECT_GT(opt.SyntheticOf(1)->benefit, 0.0);
}

TEST_F(BsOptimizerTest, BenefitRateIsOneExactlyForCoverage) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 0, 800, 4096));
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  EXPECT_DOUBLE_EQ(opt.BenefitRate(Acq(2, 100, 600, 8192), *sq), 1.0);
  EXPECT_LT(opt.BenefitRate(Acq(3, 0, 900, 4096), *sq), 1.0);
  EXPECT_GT(opt.BenefitRate(Acq(3, 0, 900, 4096), *sq), 0.0);
}

TEST_F(BsOptimizerTest, ZeroCostQueryHasZeroBenefitRate) {
  // A 1-node "grid" is just the base station: no sensor ever transmits, so
  // every query costs 0 and Algorithm 1 must treat merging as "no benefit"
  // instead of dividing by the zero cost.
  const Topology lone = Topology::Grid(1);
  const CostModel cost(lone, RadioParams{}, estimator_);
  BaseStationOptimizer opt(cost);
  (void)opt.InsertUserQuery(Acq(1, 0, 500, 4096));
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  const Query wider = Acq(2, 0, 900, 4096);  // rewritable, not covered
  ASSERT_DOUBLE_EQ(cost.Cost(wider), 0.0);
  EXPECT_DOUBLE_EQ(opt.BenefitRate(wider, *sq), 0.0);
}

TEST_F(BsOptimizerTest, NonCoveringMergeRateStaysStrictlyBelowOne) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 0, 999.9, 4096));
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  // A barely-wider arrival: the merged query is nearly identical to the
  // synthetic, pushing the rate toward 1 — but exactly 1.0 is reserved for
  // structural coverage, so a merge must stay strictly below it.
  const double rate = opt.BenefitRate(Acq(2, 0, 1000, 4096), *sq);
  EXPECT_GT(rate, 0.9);
  EXPECT_LT(rate, 1.0);
}

TEST_F(BsOptimizerTest, CoverageTieBreaksToLowestSyntheticId) {
  // Two synthetics that both cover the arrival with rate exactly 1.0: the
  // decision must deterministically pin to the lowest synthetic id in both
  // search modes (the naive scan breaks at the first covering candidate of
  // its ascending-id walk; the index must reproduce that, not its own scan
  // order).
  for (const bool use_index : {true, false}) {
    BaseStationOptimizer::Options options;
    options.use_index = use_index;
    BaseStationOptimizer opt(cost_, options);
    (void)opt.InsertUserQuery(Acq(1, 0, 600, 4096));
    (void)opt.InsertUserQuery(Acq(2, 400, 1000, 12288));
    ASSERT_EQ(opt.NumSynthetic(), 2u)
        << "use_index=" << use_index << ": A and B must not merge";
    const Query probe = Acq(99, 450, 550, 12288);
    ASSERT_DOUBLE_EQ(opt.BenefitRate(probe, *opt.SyntheticOf(1)), 1.0);
    ASSERT_DOUBLE_EQ(opt.BenefitRate(probe, *opt.SyntheticOf(2)), 1.0);
    const auto actions = opt.InsertUserQuery(Acq(3, 450, 550, 12288));
    EXPECT_TRUE(actions.Empty()) << "use_index=" << use_index;
    EXPECT_EQ(opt.SyntheticOf(3), opt.SyntheticOf(1))
        << "use_index=" << use_index
        << ": a coverage tie must land in the lowest-id synthetic";
  }
}

TEST_F(BsOptimizerTest, PaperWorkedExample) {
  // Section 3.1.3 (epochs scaled to ms):
  //   q1: light in (280,600) epoch 4096
  //   q2: light in (100,300) epoch 8192  -> not beneficial with q1
  //   q3: light in (150,500) epoch 8192  -> merges with q2', then the
  //        merged query re-integrates with q1', ending in
  //        q1'': light in (100,600) epoch 4096 serving all three.
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 280, 600, 4096));
  (void)opt.InsertUserQuery(Acq(2, 100, 300, 8192));
  EXPECT_EQ(opt.NumSynthetic(), 2u) << "q1 and q2 must not merge";

  (void)opt.InsertUserQuery(Acq(3, 150, 500, 8192));
  ASSERT_EQ(opt.NumSynthetic(), 1u) << "chained rewrite must collapse all";
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->members.size(), 3u);
  EXPECT_EQ(sq->query.epoch(), 4096);
  EXPECT_EQ(sq->query.predicates().ConstraintOn(Attribute::kLight),
            Interval(100, 600));
}

TEST_F(BsOptimizerTest, IdenticalPredicateAggregationsAlwaysMerge) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(ParseQuery(
      1, "SELECT MAX(light) WHERE temp < 50 EPOCH DURATION 4096"));
  const auto actions = opt.InsertUserQuery(ParseQuery(
      2, "SELECT MIN(light) WHERE temp < 50 EPOCH DURATION 8192"));
  EXPECT_EQ(opt.NumSynthetic(), 1u);
  const SyntheticQuery* sq = opt.SyntheticOf(2);
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->query.kind(), QueryKind::kAggregation);
  EXPECT_EQ(sq->query.aggregates().size(), 2u);
  // The old synthetic was replaced: one abort, one inject.
  EXPECT_EQ(actions.abort.size(), 1u);
  EXPECT_EQ(actions.inject.size(), 1u);
}

TEST_F(BsOptimizerTest, DifferentPredicateAggregationsStaySeparate) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(ParseQuery(
      1, "SELECT MAX(light) WHERE light < 400 EPOCH DURATION 4096"));
  (void)opt.InsertUserQuery(ParseQuery(
      2, "SELECT MAX(light) WHERE light > 600 EPOCH DURATION 4096"));
  EXPECT_EQ(opt.NumSynthetic(), 2u);
}

TEST_F(BsOptimizerTest, AggregationCoveredByAcquisitionIsSuppressed) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(
      ParseQuery(1, "SELECT light, temp EPOCH DURATION 4096"));
  const auto actions = opt.InsertUserQuery(ParseQuery(
      2, "SELECT MAX(light) WHERE temp < 50 EPOCH DURATION 8192"));
  EXPECT_TRUE(actions.Empty());
  EXPECT_EQ(opt.NumSynthetic(), 1u);
}

TEST_F(BsOptimizerTest, UserIdInSyntheticSpaceRejected) {
  auto opt = MakeOptimizer();
  EXPECT_THROW(opt.InsertUserQuery(Acq(1u << 21, 0, 100, 4096)),
               std::invalid_argument);
}

// ------------------------------------------------- Algorithm 2 behaviour --

TEST_F(BsOptimizerTest, LastMemberTerminationRetiresTheSynthetic) {
  auto opt = MakeOptimizer();
  const auto insert = opt.InsertUserQuery(Acq(1, 100, 300, 4096));
  const QueryId sid = insert.inject.front().id();
  const auto actions = opt.TerminateUserQuery(1);
  ASSERT_EQ(actions.abort.size(), 1u);
  EXPECT_EQ(actions.abort.front(), sid);
  EXPECT_EQ(opt.NumSynthetic(), 0u);
  EXPECT_EQ(opt.NumUserQueries(), 0u);
}

TEST_F(BsOptimizerTest, CoveredMemberTerminationIsFree) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 0, 800, 4096));
  (void)opt.InsertUserQuery(Acq(2, 100, 600, 8192));  // covered
  const auto actions = opt.TerminateUserQuery(2);
  EXPECT_TRUE(actions.Empty());
  EXPECT_EQ(opt.NumSynthetic(), 1u);
}

TEST_F(BsOptimizerTest, AlphaZeroAlwaysRebuildsWhenRequirementsShrink) {
  auto opt = MakeOptimizer(/*alpha=*/0.0);
  (void)opt.InsertUserQuery(Acq(1, 0, 500, 4096));
  (void)opt.InsertUserQuery(Acq(2, 450, 950, 4096));
  ASSERT_EQ(opt.NumSynthetic(), 1u);  // merged: [0,950]
  const auto actions = opt.TerminateUserQuery(2);
  // With alpha = 0 the over-wide synthetic query must be rebuilt to the
  // remaining member's own shape.
  EXPECT_FALSE(actions.Empty());
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->query.predicates().ConstraintOn(Attribute::kLight),
            Interval(0, 500));
}

TEST_F(BsOptimizerTest, LargeAlphaHidesTerminationFromTheNetwork) {
  auto opt = MakeOptimizer(/*alpha=*/1000.0);
  (void)opt.InsertUserQuery(Acq(1, 0, 500, 4096));
  (void)opt.InsertUserQuery(Acq(2, 450, 950, 4096));
  ASSERT_EQ(opt.NumSynthetic(), 1u);
  const auto actions = opt.TerminateUserQuery(2);
  EXPECT_TRUE(actions.Empty()) << "huge alpha tolerates the over-wide query";
  const SyntheticQuery* sq = opt.SyntheticOf(1);
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(sq->query.predicates().ConstraintOn(Attribute::kLight),
            Interval(0, 950));  // unchanged
}

TEST_F(BsOptimizerTest, BenefitAccountingConsistent) {
  auto opt = MakeOptimizer();
  (void)opt.InsertUserQuery(Acq(1, 0, 500, 4096));
  (void)opt.InsertUserQuery(Acq(2, 100, 600, 4096));
  const double user_cost = opt.TotalUserCost();
  const double benefit = opt.TotalBenefit();
  double synthetic_cost = 0.0;
  for (const SyntheticQuery* sq : opt.Synthetics()) {
    synthetic_cost += cost_.Cost(sq->query);
  }
  EXPECT_NEAR(benefit, user_cost - synthetic_cost, 1e-12);
  EXPECT_GT(benefit, 0.0);
}

TEST_F(BsOptimizerTest, ManySimilarQueriesCollapseToFewSynthetics) {
  auto opt = MakeOptimizer();
  for (QueryId i = 1; i <= 16; ++i) {
    const double lo = 100.0 + 10.0 * static_cast<double>(i);
    (void)opt.InsertUserQuery(Acq(i, lo, lo + 400.0, 4096));
  }
  EXPECT_EQ(opt.NumUserQueries(), 16u);
  EXPECT_LE(opt.NumSynthetic(), 2u);
  EXPECT_GT(opt.TotalBenefit() / opt.TotalUserCost(), 0.5);
}

}  // namespace
}  // namespace ttmqo
