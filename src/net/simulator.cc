#include "net/simulator.h"

#include <utility>

namespace ttmqo {

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  CheckArg(t >= now_, "Simulator::ScheduleAt: cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  CheckArg(delay >= 0, "Simulator::ScheduleAfter: delay must be >= 0");
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::RunUntil(SimTime until) {
  CheckArg(until >= now_, "Simulator::RunUntil: until must be >= Now()");
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
  }
  now_ = until;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++events_executed_;
  event.fn();
  return true;
}

}  // namespace ttmqo
