#include "net/link_quality.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LinkQualityMap::LinkQualityMap(const Topology& topology, std::uint64_t seed)
    : topology_(&topology), seed_(seed) {}

double LinkQualityMap::Quality(NodeId a, NodeId b) const {
  CheckArg(topology_->AreNeighbors(a, b),
           "LinkQualityMap: nodes are not neighbors");
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const double d = Distance(topology_->PositionOf(lo), topology_->PositionOf(hi));
  // Base quality decays with distance: 1.0 adjacent, ~0.55 at the edge of
  // range; a deterministic per-edge jitter of up to ±0.1 breaks symmetry.
  const double base = 1.0 - 0.45 * (d / topology_->range_feet());
  const std::uint64_t h =
      Mix(seed_ ^ Mix((static_cast<std::uint64_t>(lo) << 16) | hi));
  const double jitter =
      (static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) - 0.5) * 0.2;
  return std::clamp(base + jitter, 0.05, 1.0);
}

}  // namespace ttmqo
