// Query answers delivered to the user at the base station.
//
// For an acquisition query, one epoch yields a set of rows (one per node
// whose reading satisfied the predicates).  For an aggregation query, one
// epoch yields one finalized value per requested aggregate.  `ResultLog`
// records the full answer stream of a run; the test suite uses it to check
// that multi-query optimization never changes query semantics.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/aggregate.h"
#include "query/query.h"
#include "sensing/reading.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// The answer of one query for one epoch.
struct EpochResult {
  QueryId query = kInvalidQueryId;
  SimTime epoch_time = 0;
  QueryKind kind = QueryKind::kAcquisition;

  /// Acquisition: matching rows, sorted by node id.
  std::vector<Reading> rows;

  /// Aggregation: finalized value per aggregate spec (same order as the
  /// query's aggregate list); nullopt for empty-set MAX/MIN/SUM/AVG.
  std::vector<std::pair<AggregateSpec, std::optional<double>>> aggregates;

  /// Reliability annotation, set only when the run tracks epoch coverage
  /// (the ARQ profile): the fraction of expected, still-alive contributors
  /// accounted for in this epoch — delivered data or affirmed "no data"
  /// through gap repair.  -1 when the run does not track coverage.
  double coverage = -1.0;
  /// Number of nodes whose data actually reached this answer (-1 when the
  /// run does not track coverage).
  int contributing_nodes = -1;

  /// Human-readable rendering.
  std::string ToString() const;
};

/// Receives per-epoch answers as a run progresses.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per (query, epoch) that produced an answer.
  virtual void OnResult(const EpochResult& result) = 0;
};

/// A `ResultSink` that stores everything, keyed by (query, epoch time).
class ResultLog final : public ResultSink {
 public:
  void OnResult(const EpochResult& result) override;

  /// All recorded epochs of `query`, in time order.
  std::vector<const EpochResult*> ResultsFor(QueryId query) const;

  /// Every recorded result, ordered by (query, epoch time).
  std::vector<const EpochResult*> All() const;

  /// The answer of `query` at `epoch_time`, or nullptr.
  const EpochResult* Find(QueryId query, SimTime epoch_time) const;

  /// Total number of recorded (query, epoch) answers.
  std::size_t size() const { return results_.size(); }

  /// Removes all recorded results.
  void Clear() { results_.clear(); }

 private:
  std::map<std::pair<QueryId, SimTime>, EpochResult> results_;
};

/// Compares two answer streams for semantic equality.  Rows must agree on
/// every stored attribute; aggregate values must agree within `tolerance`
/// (in-network partial aggregation may reorder floating-point sums).
/// Returns an explanation of the first difference, or nullopt when equal.
std::optional<std::string> CompareResultLogs(const ResultLog& expected,
                                             const ResultLog& actual,
                                             const std::vector<Query>& queries,
                                             double tolerance = 1e-9);

}  // namespace ttmqo
