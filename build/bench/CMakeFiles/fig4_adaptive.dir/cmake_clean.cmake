file(REMOVE_RECURSE
  "CMakeFiles/fig4_adaptive.dir/fig4_adaptive.cc.o"
  "CMakeFiles/fig4_adaptive.dir/fig4_adaptive.cc.o.d"
  "fig4_adaptive"
  "fig4_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
