// Tests for the observability layer: metrics registry, epoch sampler,
// observer fan-out, decision tracing, and the JSONL trace round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/bs/rewriter.h"
#include "json_checker.h"
#include "metrics/epoch_sampler.h"
#include "metrics/metrics_observer.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "net/network.h"
#include "query/parser.h"
#include "util/tracing.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

// The mini JSON validator lives in json_checker.h, shared with the obs and
// exporter tests.
using ttmqo::testing::IsValidJson;

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------- registry --

TEST(RegistryTest, CountersAccumulateAndIgnoreNegativeDeltas) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("messages_total");
  c.Increment();
  c.Add(4.0);
  c.Add(-10.0);  // clamped: counters never go down
  EXPECT_DOUBLE_EQ(c.Value(), 5.0);
  // Same identity returns the same instrument.
  EXPECT_EQ(&registry.GetCounter("messages_total"), &c);
}

TEST(RegistryTest, LabelsDistinguishAndNormalize) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("tx", {{"node", "1"}, {"class", "result"}});
  Counter& b = registry.GetCounter("tx", {{"class", "result"}, {"node", "1"}});
  Counter& other = registry.GetCounter("tx", {{"node", "2"}, {"class", "result"}});
  EXPECT_EQ(&a, &b);  // label order must not matter
  EXPECT_NE(&a, &other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW(registry.GetGauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("x", {1.0}), std::invalid_argument);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("queue_depth");
  g.Set(7.0);
  g.Add(-3.0);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
}

TEST(RegistryTest, HistogramBucketsAndStats) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("latency_ms", {1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 500.0}) h.Observe(v);
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + the +Inf bucket
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 560.5);
  EXPECT_THROW(HistogramMetric({3.0, 2.0}), std::invalid_argument);
}

TEST(RegistryTest, JsonExportParsesAndContainsEverything) {
  MetricsRegistry registry;
  registry.GetCounter("msgs_total", {{"mode", "ttmqo"}}).Add(3.0);
  registry.GetGauge("tx_fraction").Set(0.125);
  registry.GetHistogram("dur_ms", {2.0, 8.0}).Observe(4.0);

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("msgs_total{mode=\\\"ttmqo\\\"}"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(RegistryTest, PrometheusExportHasTypesAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("msgs_total").Add(2.0);
  HistogramMetric& h = registry.GetHistogram("dur_ms", {2.0, 8.0});
  h.Observe(1.0);
  h.Observe(4.0);
  h.Observe(100.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE msgs_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dur_ms histogram"), std::string::npos);
  // Cumulative semantics: le="8" includes the le="2" observation.
  EXPECT_NE(text.find("dur_ms_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dur_ms_bucket{le=\"8\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dur_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("dur_ms_count 3"), std::string::npos);
}

// ---------------------------------------------------------- tracing --

TEST(TracingTest, JsonEscapingHandlesSpecials) {
  std::ostringstream out;
  WriteJsonString(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  EXPECT_TRUE(IsValidJson(out.str()));
}

TEST(TracingTest, TraceEventSerializesAllValueTypes) {
  TraceEvent event("test.kind");
  event.time = 42;
  event.With("i", std::int64_t{7})
      .With("d", 0.5)
      .With("b", true)
      .With("s", std::string("x\"y"));
  std::ostringstream out;
  WriteTraceEventJson(out, event);
  const std::string json = out.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"event\":\"test.kind\""), std::string::npos);
  EXPECT_NE(json.find("\"t\":42"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"x\\\"y\""), std::string::npos);
}

TEST(TracingTest, NonFiniteDoublesBecomeNull) {
  TraceEvent event("test.inf");
  event.With("v", std::numeric_limits<double>::infinity());
  std::ostringstream out;
  WriteTraceEventJson(out, event);
  EXPECT_NE(out.str().find("\"v\":null"), std::string::npos);
  EXPECT_TRUE(IsValidJson(out.str()));
}

// ------------------------------------------------------- observer mux --

TEST(ObserverMuxTest, FansOutToAllObservers) {
  const Topology topology = Topology::Grid(3);
  ChannelParams channel;
  channel.collision_prob = 0.99;  // concurrent sends almost surely collide
  Network network(topology, RadioParams{}, channel, 11);

  CountingObserver first, second;
  network.observers().Add(&first);
  network.observers().Add(&second);
  network.observers().Add(&first);  // duplicate: ignored
  EXPECT_EQ(network.observers().size(), 2u);

  for (NodeId sender : topology.AllNodes()) {
    Message msg;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = sender;
    msg.payload_bytes = 16;
    network.Send(std::move(msg));
  }
  network.FailNode(8);
  network.sim().RunUntil(60'000);

  EXPECT_GT(first.transmissions, 0u);
  EXPECT_GT(first.drops, 0u);  // certain collision exhausts the retries
  EXPECT_EQ(first.failures, 1u);
  // Both observers saw the identical stream.
  EXPECT_EQ(first.transmissions, second.transmissions);
  EXPECT_EQ(first.drops, second.drops);
  EXPECT_EQ(first.failures, second.failures);

  EXPECT_TRUE(network.observers().Remove(&second));
  EXPECT_FALSE(network.observers().Remove(&second));
  EXPECT_EQ(network.observers().size(), 1u);
}

TEST(ObserverMuxTest, LegacySetObserverReplacesOnlyItsOwnSlot) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  CountingObserver muxed, legacy1, legacy2;
  network.observers().Add(&muxed);
  network.SetObserver(&legacy1);
  network.SetObserver(&legacy2);  // replaces legacy1, keeps muxed
  EXPECT_EQ(network.observers().size(), 2u);

  Message msg;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = 4;
  msg.payload_bytes = 8;
  network.Send(std::move(msg));
  network.sim().RunUntil(1000);

  EXPECT_EQ(muxed.transmissions, 1u);
  EXPECT_EQ(legacy1.transmissions, 0u);
  EXPECT_EQ(legacy2.transmissions, 1u);
}

// ------------------------------------------------------ epoch sampler --

TEST(EpochSamplerTest, OneRowPerEpochAndDeltasSumToLedger) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 5);
  network.StartMaintenanceBeacons(1000, 6);

  EpochSampler sampler;
  sampler.Start(network, 2048);
  EXPECT_THROW(sampler.Start(network, 2048), std::invalid_argument);

  network.sim().RunUntil(5 * 2048);
  ASSERT_EQ(sampler.rows().size(), 5u);

  double tx_sum = 0.0;
  std::uint64_t msgs = 0;
  for (std::size_t i = 0; i < sampler.rows().size(); ++i) {
    const EpochRow& row = sampler.rows()[i];
    EXPECT_EQ(row.epoch, static_cast<std::int64_t>(i));
    EXPECT_EQ(row.time, static_cast<SimTime>((i + 1) * 2048));
    EXPECT_EQ(row.node_tx_ms.size(), topology.size());
    tx_sum += row.tx_ms;
    for (std::uint64_t n : row.sent_by_class) msgs += n;
  }
  // Beacons flow in every window, so the deltas are non-trivial and total
  // to the cumulative ledger figures.
  EXPECT_GT(msgs, 0u);
  double ledger_tx = 0.0;
  for (NodeId n = 0; n < topology.size(); ++n) {
    ledger_tx += network.ledger().StatsOf(n).TotalTransmitMs();
  }
  EXPECT_NEAR(tx_sum, ledger_tx, 1e-9);
  EXPECT_EQ(msgs, network.ledger().TotalMessages());
}

TEST(EpochSamplerTest, CsvAndJsonlExports) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 5);
  network.StartMaintenanceBeacons(500, 6);
  EpochSampler sampler;
  sampler.Start(network, 1024);
  network.sim().RunUntil(3 * 1024);

  std::ostringstream csv;
  sampler.WriteCsv(csv);
  const auto csv_lines = Lines(csv.str());
  ASSERT_EQ(csv_lines.size(), 4u);  // header + 3 epochs
  EXPECT_EQ(csv_lines[0].rfind("epoch,t_ms,", 0), 0u);

  std::ostringstream jsonl;
  sampler.WriteJsonl(jsonl);
  const auto rows = Lines(jsonl.str());
  ASSERT_EQ(rows.size(), 3u);
  for (const std::string& row : rows) {
    EXPECT_TRUE(IsValidJson(row)) << row;
    EXPECT_NE(row.find("\"node_tx_ms\""), std::string::npos);
  }

  std::ostringstream array;
  sampler.WriteJsonArray(array);
  EXPECT_TRUE(IsValidJson(array.str()));
}

// -------------------------------------------------- decision tracing --

TEST(DecisionTraceTest, Tier1InsertAndTerminateEmitStructuredEvents) {
  const Topology topology = Topology::Grid(4);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost, {});
  CollectingTraceSink sink;
  optimizer.SetTraceSink(&sink);

  const Query q1 = ParseQuery(
      1, "SELECT light WHERE light < 600 EPOCH DURATION 4096");
  const Query q2 = ParseQuery(
      2, "SELECT light WHERE light < 500 EPOCH DURATION 8192");
  optimizer.InsertUserQuery(q1);
  optimizer.InsertUserQuery(q2);
  EXPECT_EQ(sink.CountKind("tier1.insert"), 2u);
  EXPECT_GE(sink.CountKind("tier1.benefit_estimate"), 1u);

  optimizer.TerminateUserQuery(1);
  EXPECT_EQ(sink.CountKind("tier1.terminate"), 1u);

  // The decision counters agree with the event stream (termination may
  // rebuild the surviving bundle, which counts as a further insert).
  const auto& d = optimizer.decision_stats();
  EXPECT_EQ(d.covered + d.merged + d.standalone,
            sink.CountKind("tier1.insert"));
  EXPECT_EQ(d.retired + d.rebuilt + d.kept, sink.CountKind("tier1.terminate"));

  // Every insert event carries an action field with a known value.
  for (const TraceEvent& event : sink.events()) {
    if (event.kind != "tier1.insert") continue;
    const auto it = std::find_if(
        event.fields.begin(), event.fields.end(),
        [](const auto& f) { return f.first == "action"; });
    ASSERT_NE(it, event.fields.end());
    const std::string& action = std::get<std::string>(it->second);
    EXPECT_TRUE(action == "covered" || action == "merged" ||
                action == "standalone")
        << action;
  }
}

// --------------------------------------------- end-to-end round trip --

TEST(ObservabilityIntegrationTest, RunExperimentProducesMetricsAndTrace) {
  std::ostringstream trace_stream;
  JsonlTraceWriter writer(trace_stream);
  MetricsRegistry registry;
  EpochSampler sampler;

  RunConfig config;
  config.grid_side = 4;
  config.duration_ms = 6 * 4096;
  config.seed = 3;
  config.mode = OptimizationMode::kTwoTier;
  config.obs.registry = &registry;
  config.obs.labels = {{"mode", "ttmqo"}};
  config.obs.trace = &writer;
  config.obs.observers.push_back(&writer);
  config.obs.sampler = &sampler;
  config.obs.sample_period_ms = 4096;

  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadC()));
  EXPECT_GT(run.summary.total_messages, 0u);

  // Every trace line is standalone JSON; the stream brackets the run and
  // contains at least one tier-1 rewriter decision.
  const std::string text = trace_stream.str();
  const auto lines = Lines(text);
  ASSERT_GT(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_NE(text.find("\"event\":\"run.start\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"run.end\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"tier1.insert\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"tx\""), std::string::npos);

  // The registry holds per-node/per-class radio counters, the run summary,
  // and the tier-1 decision counts, all labeled with the run mode.
  std::ostringstream json;
  registry.WriteJson(json);
  EXPECT_TRUE(IsValidJson(json.str())) << json.str();
  const std::string metrics = json.str();
  EXPECT_NE(metrics.find("net_tx_total{"), std::string::npos);
  EXPECT_NE(metrics.find("class=\\\"result\\\""), std::string::npos);
  EXPECT_NE(metrics.find("node=\\\"1\\\""), std::string::npos);
  EXPECT_NE(metrics.find("mode=\\\"ttmqo\\\""), std::string::npos);
  EXPECT_NE(metrics.find("run_avg_transmission_fraction"), std::string::npos);
  EXPECT_NE(metrics.find("tier1_decisions_total"), std::string::npos);

  std::ostringstream prom;
  registry.WritePrometheus(prom);
  EXPECT_NE(prom.str().find("# TYPE net_tx_total counter"), std::string::npos);

  // The sampler produced one row per sampling epoch.
  EXPECT_EQ(sampler.rows().size(),
            static_cast<std::size_t>(config.duration_ms / 4096));

  // The registry totals agree with the run summary.
  double tx_total = 0.0;
  for (NodeId n = 0; n < 16; ++n) {
    // Sum over classes for this node: read back the counters.
    for (const char* cls : {"result", "propagation", "abort", "maintenance"}) {
      tx_total += registry
                      .GetCounter("net_tx_ms_total",
                                  {{"mode", "ttmqo"},
                                   {"node", std::to_string(n)},
                                   {"class", cls}})
                      .Value();
    }
  }
  EXPECT_GT(tx_total, 0.0);
}

}  // namespace
}  // namespace ttmqo
