# Empty compiler generated dependencies file for innet_packing_test.
# This may be replaced when dependencies are built.
