#!/usr/bin/env bash
# Local CI: build and test the plain configuration, then again with
# AddressSanitizer + UBSan.  Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"
  shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}"
}

CTEST_ARGS=("$@")

run_config build

# The simulator's self-rescheduling events (maintenance beacons, samplers)
# keep themselves alive through a shared_ptr cycle by design; LeakSanitizer
# reports those as leaks at exit, so only ASan + UBSan proper gate CI.
export ASAN_OPTIONS=detect_leaks=0
run_config build-asan -DENABLE_SANITIZERS=ON

# Chaos soak under the sanitizers: random transient outages plus link loss,
# three seeds each; the binary exits non-zero on any reliability-invariant
# violation (duplicate rows, missed recovery, completeness below the floor).
echo "=== chaos soak (sanitized) ==="
./build-asan/bench/chaos_soak --runs=3 --seed=1
./build-asan/bench/chaos_soak --runs=3 --seed=1 --link-loss=0.1 --floor=0.4

echo "=== all configurations passed ==="
