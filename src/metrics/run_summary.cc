#include "metrics/run_summary.h"

#include <algorithm>
#include <cstdio>

namespace ttmqo {

RunSummary RunSummary::FromLedger(const RadioLedger& ledger,
                                  SimDuration elapsed) {
  RunSummary s;
  s.avg_transmission_fraction = ledger.AverageTransmissionTime(elapsed);
  double sleep = 0.0;
  for (NodeId n = 1; n < ledger.size(); ++n) {
    sleep += ledger.StatsOf(n).sleep_ms / static_cast<double>(elapsed);
  }
  s.avg_sleep_fraction =
      ledger.size() > 1 ? sleep / static_cast<double>(ledger.size() - 1) : 0.0;
  s.total_transmit_ms = ledger.TotalTransmitMs();
  s.elapsed_ms = elapsed;
  s.result_messages = ledger.TotalSent(MessageClass::kResult);
  s.propagation_messages = ledger.TotalSent(MessageClass::kQueryPropagation);
  s.abort_messages = ledger.TotalSent(MessageClass::kQueryAbort);
  s.maintenance_messages = ledger.TotalSent(MessageClass::kMaintenance);
  s.control_messages = ledger.TotalSent(MessageClass::kControl);
  s.retransmissions = ledger.TotalRetransmissions();
  s.total_messages = ledger.TotalMessages();
  return s;
}

double RunSummary::MinDeliveryCompleteness() const {
  double min = 1.0;
  for (const auto& [id, d] : delivery) {
    min = std::min(min, d.Completeness());
  }
  return min;
}

double RunSummary::AvgDeliveryCompleteness() const {
  if (delivery.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& [id, d] : delivery) sum += d.Completeness();
  return sum / static_cast<double>(delivery.size());
}

double RunSummary::MinCoverage() const {
  double min = 1.0;
  for (const auto& [id, c] : coverage) {
    min = std::min(min, c.min_coverage);
  }
  return min;
}

double RunSummary::AvgCoverage() const {
  if (coverage.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& [id, c] : coverage) sum += c.AvgCoverage();
  return sum / static_cast<double>(coverage.size());
}

std::uint64_t RunSummary::PartialEpochs() const {
  std::uint64_t partial = 0;
  for (const auto& [id, c] : coverage) partial += c.partial_epochs;
  return partial;
}

std::string RunSummary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "avg-tx=%.4f%% msgs=%llu (result=%llu prop=%llu abort=%llu "
                "maint=%llu retx=%llu)",
                avg_transmission_fraction * 100.0,
                static_cast<unsigned long long>(total_messages),
                static_cast<unsigned long long>(result_messages),
                static_cast<unsigned long long>(propagation_messages),
                static_cast<unsigned long long>(abort_messages),
                static_cast<unsigned long long>(maintenance_messages),
                static_cast<unsigned long long>(retransmissions));
  std::string out = buf;
  if (control_messages > 0) {
    std::snprintf(buf, sizeof(buf), " ctl=%llu",
                  static_cast<unsigned long long>(control_messages));
    out += buf;
  }
  return out;
}

double SavingsPercent(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

}  // namespace ttmqo
