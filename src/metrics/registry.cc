#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"
#include "util/tracing.h"

namespace ttmqo {
namespace {

// std::atomic<double>::fetch_add is C++20 but not universally lock-free;
// a CAS loop is portable and contention here is negligible.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// Prometheus exposition label-value escaping: exactly `\\`, `\"`, and
// `\n` — the only escape sequences the format defines.  JsonEscape would
// also emit `\t` and `\uXXXX`, which Prometheus parsers reject; any other
// byte is legal raw inside a quoted label value.  The instrument key
// doubles as the exposition sample line, so it must use this escaping;
// WriteJson re-escapes the key with WriteJsonString, which keeps the JSON
// document valid regardless.
void PrometheusLabelEscape(std::string_view raw, std::string& out) {
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

// Prometheus-safe rendering of a sample value.
void WriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << (std::isnan(value) ? "NaN" : (value > 0 ? "+Inf" : "-Inf"));
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
    return;
  }
  out << value;
}

}  // namespace

void Counter::Add(double delta) {
  if (delta <= 0.0) return;
  AtomicAdd(value_, delta);
}

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

HistogramMetric::HistogramMetric(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  CheckArg(!upper_bounds_.empty(), "HistogramMetric: needs at least one bucket");
  CheckArg(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()) &&
               std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end()) ==
                   upper_bounds_.end(),
           "HistogramMetric: bucket bounds must be strictly increasing");
}

void HistogramMetric::Observe(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

std::vector<std::uint64_t> HistogramMetric::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::uint64_t HistogramMetric::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double HistogramMetric::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::string MetricsRegistry::InstrumentKey(const std::string& name,
                                           const MetricLabels& labels) {
  if (labels.empty()) return name;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted[i].first;
    key += "=\"";
    PrometheusLabelEscape(sorted[i].second, key);
    key += '"';
  }
  key += '}';
  return key;
}

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(
    const std::string& name, const MetricLabels& labels, Kind kind) {
  const std::string key = InstrumentKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: '" + key +
                                  "' already registered as a different type");
    }
    return it->second;
  }
  Instrument instrument;
  instrument.kind = kind;
  return instruments_.emplace(key, std::move(instrument)).first->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  Instrument& instrument = GetOrCreate(name, labels, Kind::kCounter);
  if (instrument.counter == nullptr) {
    instrument.counter = std::make_unique<Counter>();
  }
  return *instrument.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  Instrument& instrument = GetOrCreate(name, labels, Kind::kGauge);
  if (instrument.gauge == nullptr) instrument.gauge = std::make_unique<Gauge>();
  return *instrument.gauge;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const MetricLabels& labels) {
  Instrument& instrument = GetOrCreate(name, labels, Kind::kHistogram);
  if (instrument.histogram == nullptr) {
    instrument.histogram = std::make_unique<HistogramMetric>(std::move(upper_bounds));
  } else {
    CheckArg(instrument.histogram->upper_bounds() == upper_bounds,
             "MetricsRegistry: histogram re-registered with different buckets");
  }
  return *instrument.histogram;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto write_section = [&](const char* title, Kind kind, bool& first) {
    if (!first) out << ',';
    first = false;
    out << '"' << title << "\":{";
    bool first_entry = true;
    for (const auto& [key, instrument] : instruments_) {
      if (instrument.kind != kind) continue;
      if (!first_entry) out << ',';
      first_entry = false;
      WriteJsonString(out, key);
      out << ':';
      if (kind == Kind::kCounter) {
        out << instrument.counter->Value();
      } else if (kind == Kind::kGauge) {
        out << instrument.gauge->Value();
      } else {
        const HistogramMetric& h = *instrument.histogram;
        const auto counts = h.BucketCounts();
        out << "{\"sum\":" << h.Sum() << ",\"count\":" << h.Count()
            << ",\"buckets\":[";
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out << ',';
          out << "{\"le\":";
          if (i < h.upper_bounds().size()) {
            out << h.upper_bounds()[i];
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"count\":" << counts[i] << '}';
        }
        out << "]}";
      }
    }
    out << '}';
  };
  out << '{';
  bool first = true;
  write_section("counters", Kind::kCounter, first);
  write_section("gauges", Kind::kGauge, first);
  write_section("histograms", Kind::kHistogram, first);
  out << '}';
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string last_typed_name;
  for (const auto& [key, instrument] : instruments_) {
    const std::string name = key.substr(0, key.find('{'));
    const std::string labels =
        key.size() > name.size() ? key.substr(name.size()) : std::string();
    if (name != last_typed_name) {
      out << "# TYPE " << name << ' '
          << (instrument.kind == Kind::kCounter
                  ? "counter"
                  : instrument.kind == Kind::kGauge ? "gauge" : "histogram")
          << '\n';
      last_typed_name = name;
    }
    if (instrument.kind == Kind::kCounter) {
      out << key << ' ';
      WriteNumber(out, instrument.counter->Value());
      out << '\n';
    } else if (instrument.kind == Kind::kGauge) {
      out << key << ' ';
      WriteNumber(out, instrument.gauge->Value());
      out << '\n';
    } else {
      const HistogramMetric& h = *instrument.histogram;
      const auto counts = h.BucketCounts();
      const std::string inner =
          labels.empty() ? std::string()
                         : labels.substr(1, labels.size() - 2) + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        out << name << "_bucket{" << inner << "le=\"";
        if (i < h.upper_bounds().size()) {
          WriteNumber(out, h.upper_bounds()[i]);
        } else {
          out << "+Inf";
        }
        out << "\"} " << cumulative << '\n';
      }
      out << name << "_sum" << labels << ' ';
      WriteNumber(out, h.Sum());
      out << '\n';
      out << name << "_count" << labels << ' ' << h.Count() << '\n';
    }
  }
}

}  // namespace ttmqo
