# Empty compiler generated dependencies file for ablation_innet.
# This may be replaced when dependencies are built.
