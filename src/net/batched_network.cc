#include "net/batched_network.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace ttmqo {

namespace {
std::pair<NodeId, NodeId> LinkKey(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

BatchedNetwork::BatchedNetwork(ViewlessTag, const Topology& topology,
                               RadioParams radio, ChannelParams channel,
                               std::span<const std::uint64_t> seeds)
    : topology_(&topology),
      radio_(radio),
      channel_(channel),
      lanes_(static_cast<std::uint32_t>(seeds.size())),
      core_(lanes_),
      num_failed_(lanes_, 0),
      num_down_(lanes_, 0),
      default_link_loss_(lanes_, 0.0),
      link_loss_(lanes_),
      link_drops_(lanes_, 0),
      total_flights_(lanes_, 0),
      active_senders_(lanes_),
      receivers_(topology.size() * lanes_),
      asleep_(topology.size() * lanes_, 0),
      failed_(topology.size() * lanes_, 0),
      down_(topology.size() * lanes_, 0),
      down_since_(topology.size() * lanes_, 0),
      sleep_since_(topology.size() * lanes_, 0),
      busy_until_(topology.size() * lanes_, 0),
      flight_ends_(topology.size() * lanes_),
      active_slot_(topology.size() * lanes_, 0) {
  CheckArg(!seeds.empty() && seeds.size() <= SimCore::kMaxLanes,
           "BatchedNetwork: lanes must be in [1, 64]");
  channel_.Validate();
  link_quality_.reserve(lanes_);
  ledgers_.reserve(lanes_);
  rng_.reserve(lanes_);
  loss_rng_.reserve(lanes_);
  observers_.resize(lanes_);
  for (std::uint32_t l = 0; l < lanes_; ++l) {
    // Exactly the serial Network's seed derivations, per lane.
    link_quality_.emplace_back(topology, seeds[l] ^ 0x6c696e6bULL);
    ledgers_.emplace_back(topology.size());
    rng_.emplace_back(seeds[l]);
    loss_rng_.emplace_back(seeds[l] ^ 0x6c6f7373ULL);
  }
  core_.SetGroupDispatcher(this);
}

BatchedNetwork::BatchedNetwork(const Topology& topology, RadioParams radio,
                               ChannelParams channel,
                               std::span<const std::uint64_t> seeds)
    : BatchedNetwork(ViewlessTag{}, topology, radio, channel, seeds) {
  for (std::uint32_t l = 0; l < lanes_; ++l) {
    lane_views_.emplace_back(*this, l);
  }
}

std::unique_ptr<BatchedNetwork> BatchedNetwork::MakeViewless(
    const Topology& topology, RadioParams radio, ChannelParams channel,
    std::uint64_t seed) {
  const std::uint64_t seeds[1] = {seed};
  // The tag constructor is private, so std::make_unique cannot reach it;
  // ownership is taken immediately.
  return std::unique_ptr<BatchedNetwork>(
      new BatchedNetwork(  // ttmqo-lint: allow(raw-alloc): private tag ctor
          ViewlessTag{}, topology, radio, channel, std::span(seeds)));
}

void BatchedNetwork::SetReceiver(std::uint32_t lane, NodeId node,
                                 Network::Receiver recv) {
  receivers_.at(Idx(node, lane)) = std::move(recv);
}

void BatchedNetwork::SetAsleep(std::uint32_t lane, NodeId node, bool asleep) {
  const std::size_t i = Idx(node, lane);
  if (failed_.at(i) || down_.at(i)) return;  // no power state while dark
  if ((asleep_.at(i) != 0) == asleep) return;
  asleep_[i] = asleep ? 1 : 0;
  if (!observers_[lane].empty()) {
    observers_[lane].OnSleepChange(core_.Now(), node, asleep);
  }
  if (asleep) {
    sleep_since_[i] = core_.Now();
  } else {
    ledgers_[lane].AddSleep(node,
                            static_cast<double>(core_.Now() - sleep_since_[i]));
  }
}

void BatchedNetwork::FailNode(std::uint32_t lane, NodeId node) {
  CheckArg(node != kBaseStationId, "Network::FailNode: cannot fail the sink");
  CheckArg(node < topology_->size(), "Network::FailNode: bad node");
  const std::size_t i = Idx(node, lane);
  if (failed_[i]) return;
  if (down_[i]) {  // a crash absorbs a pending outage
    down_[i] = 0;
    --num_down_[lane];
  }
  failed_[i] = 1;
  ++num_failed_[lane];
  obs::RecordFlight("fault.crash", core_.Now(), node);
  if (!observers_[lane].empty()) {
    observers_[lane].OnNodeFailed(core_.Now(), node);
  }
}

void BatchedNetwork::SetDown(std::uint32_t lane, NodeId node) {
  CheckArg(node != kBaseStationId, "Network::SetDown: cannot down the sink");
  CheckArg(node < topology_->size(), "Network::SetDown: bad node");
  const std::size_t i = Idx(node, lane);
  if (failed_[i] || down_[i]) return;
  if (asleep_[i]) SetAsleep(lane, node, false);  // close the open sleep span
  down_[i] = 1;
  down_since_[i] = core_.Now();
  ++num_down_[lane];
  obs::RecordFlight("fault.down", core_.Now(), node);
  if (!observers_[lane].empty()) {
    observers_[lane].OnNodeDown(core_.Now(), node);
  }
}

void BatchedNetwork::Recover(std::uint32_t lane, NodeId node) {
  CheckArg(node < topology_->size(), "Network::Recover: bad node");
  const std::size_t i = Idx(node, lane);
  if (failed_[i] || !down_[i]) return;
  down_[i] = 0;
  --num_down_[lane];
  obs::RecordFlight("fault.recover", core_.Now(), node,
                    core_.Now() - down_since_[i]);
  if (!observers_[lane].empty()) {
    observers_[lane].OnNodeRecovered(core_.Now(), node,
                                     core_.Now() - down_since_[i]);
  }
}

void BatchedNetwork::SetDefaultLinkLoss(std::uint32_t lane, double p) {
  CheckArg(p >= 0.0 && p < 1.0,
           "Network::SetDefaultLinkLoss: p must be in [0,1)");
  default_link_loss_[lane] = p;
}

void BatchedNetwork::SetLinkLoss(std::uint32_t lane, NodeId a, NodeId b,
                                 double p) {
  CheckArg(p >= 0.0 && p < 1.0, "Network::SetLinkLoss: p must be in [0,1)");
  CheckArg(topology_->AreNeighbors(a, b),
           "Network::SetLinkLoss: nodes are not radio neighbors");
  link_loss_[lane][LinkKey(a, b)] = p;
}

void BatchedNetwork::ClearLinkLoss(std::uint32_t lane, NodeId a, NodeId b) {
  link_loss_[lane].erase(LinkKey(a, b));
}

double BatchedNetwork::LinkLossOf(std::uint32_t lane, NodeId a,
                                  NodeId b) const {
  const auto it = link_loss_[lane].find(LinkKey(a, b));
  return it != link_loss_[lane].end() ? it->second : default_link_loss_[lane];
}

void BatchedNetwork::Send(std::uint32_t lane, Message msg) {
  CheckArg(msg.sender < topology_->size(), "Network::Send: bad sender");
  const std::size_t i = Idx(msg.sender, lane);
  if (failed_[i] || down_[i]) {
    return;  // a dark radio transmits nothing
  }
  CheckArg(!asleep_[i], "Network::Send: sender is asleep");
  if (msg.mode == AddressMode::kBroadcast) {
    CheckArg(msg.destinations.empty(),
             "Network::Send: broadcast must not list destinations");
  } else {
    CheckArg(!msg.destinations.empty(),
             "Network::Send: unicast/multicast needs destinations");
    CheckArg(msg.mode != AddressMode::kUnicast || msg.destinations.size() == 1,
             "Network::Send: unicast takes exactly one destination");
    for (NodeId dest : msg.destinations) {
      CheckArg(topology_->AreNeighbors(msg.sender, dest),
               "Network::Send: destination is not a radio neighbor");
    }
  }
  BeginAttempt(1ULL << lane, std::move(msg), /*attempt=*/0);
}

std::uint32_t BatchedNetwork::AllocGroup() {
  if (!free_groups_.empty()) {
    const std::uint32_t slot = free_groups_.back();
    free_groups_.pop_back();
    return slot;
  }
  Check(groups_.size() < std::numeric_limits<std::uint32_t>::max(),
        "BatchedNetwork: group slab exhausted");
  groups_.emplace_back();
  return static_cast<std::uint32_t>(groups_.size() - 1);
}

void BatchedNetwork::DispatchGroup(std::uint32_t slot) {
  // Copy the fields out and recycle the slot *before* running the handler
  // (which may allocate new groups, growing the slab) — mirroring the
  // simulator's own slab discipline.
  GroupEvent& g = groups_[slot];
  const std::uint64_t mask = g.mask;
  const GroupEvent::Kind kind = g.kind;
  const int attempt = g.attempt;
  const SimTime started = g.started;
  const NodeId node = g.node;
  const std::uint32_t set = g.set;
  Message msg = std::move(g.msg);
  free_groups_.push_back(slot);
  // One serial event per member lane, exactly as N serial loops would count.
  core_.AddExecuted(mask);
  switch (kind) {
    case GroupEvent::Kind::kComplete:
      CompleteAttempt(mask, std::move(msg), attempt, started);
      break;
    case GroupEvent::Kind::kRetry:
      // `attempt` stores the collided attempt; the retry is the next one.
      BeginAttempt(mask, std::move(msg), attempt + 1);
      break;
    case GroupEvent::Kind::kBeacon:
      BeaconTick(mask, node, set);
      break;
  }
}

void BatchedNetwork::AddFlight(std::uint32_t lane, NodeId sender, SimTime end) {
  std::vector<SimTime>& ends = flight_ends_[Idx(sender, lane)];
  if (ends.empty()) {
    active_slot_[Idx(sender, lane)] =
        static_cast<std::uint32_t>(active_senders_[lane].size());
    active_senders_[lane].push_back(sender);
  }
  ends.push_back(end);
  ++total_flights_[lane];
}

void BatchedNetwork::RemoveFlight(std::uint32_t lane, NodeId sender,
                                  SimTime end) {
  std::vector<SimTime>& ends = flight_ends_[Idx(sender, lane)];
  for (std::size_t i = 0; i < ends.size(); ++i) {
    if (ends[i] != end) continue;
    ends[i] = ends.back();
    ends.pop_back();
    --total_flights_[lane];
    if (ends.empty()) {
      std::vector<NodeId>& active = active_senders_[lane];
      const std::uint32_t slot = active_slot_[Idx(sender, lane)];
      const NodeId last = active.back();
      active[slot] = last;
      active_slot_[Idx(last, lane)] = slot;
      active.pop_back();
    }
    return;
  }
}

void BatchedNetwork::BeginAttempt(std::uint64_t mask, Message msg,
                                  int attempt) {
  const NodeId sender = msg.sender;
  const double duration_ms = radio_.TransmitDurationMs(msg.payload_bytes);
  const auto duration = static_cast<SimDuration>(std::ceil(duration_ms));
  const SimTime now = core_.Now();
  // Lanes whose radio frees at different times start (and hence complete) at
  // different times: bucket them by start and schedule one completion group
  // per distinct start.  In the lockstep steady state every lane lands in
  // one bucket and the whole batch costs a single heap record.
  SimTime starts[SimCore::kMaxLanes];
  std::uint64_t submasks[SimCore::kMaxLanes];
  std::size_t num_buckets = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
    const std::size_t i = Idx(sender, lane);
    const SimTime start = std::max(now, busy_until_[i]);
    busy_until_[i] = start + duration;
    ledgers_[lane].ChargeTransmit(sender, msg.cls, duration_ms,
                                  /*is_retransmission=*/attempt > 0);
    if (!observers_[lane].empty()) {
      observers_[lane].OnTransmit(start, msg, duration_ms, attempt > 0);
    }
    AddFlight(lane, sender, start + duration);
    std::size_t b = 0;
    while (b < num_buckets && starts[b] != start) ++b;
    if (b == num_buckets) {
      starts[b] = start;
      submasks[b] = 0;
      ++num_buckets;
    }
    submasks[b] |= 1ULL << lane;
  }
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const std::uint32_t slot = AllocGroup();
    GroupEvent& g = groups_[slot];
    g.mask = submasks[b];
    g.kind = GroupEvent::Kind::kComplete;
    g.attempt = attempt;
    g.started = starts[b];
    // The message moves into the last bucket; earlier buckets (diverged
    // lanes only) take copies.  Copy-assignment into a recycled slot reuses
    // the destination vector's capacity, so the lockstep path — one bucket,
    // one move — never allocates.
    if (b + 1 == num_buckets) {
      g.msg = std::move(msg);
    } else {
      g.msg = msg;
    }
    core_.ScheduleGroupAt(starts[b] + duration, slot);
  }
}

void BatchedNetwork::CompleteAttempt(std::uint64_t mask, Message msg,
                                     int attempt, SimTime started) {
  TTMQO_SPAN_SAMPLED("net.complete_attempt", 8);
  const NodeId sender = msg.sender;
  const SimTime now = core_.Now();
  std::uint64_t deliver_mask = 0;
  std::uint64_t retry_mask = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
    // Retire this flight record (even for a sender that went dark mid-air,
    // so stale flights never linger in the interference count).
    RemoveFlight(lane, sender, now);
    const std::size_t i = Idx(sender, lane);
    if (failed_[i] || down_[i]) {
      continue;  // went dark mid-air: nothing is delivered, retries die
    }
    bool collided = false;
    if (channel_.collision_prob > 0.0) {
      const std::size_t interferers = CountInterferers(lane, sender, started);
      if (interferers > 0) {
        const double survive = std::pow(1.0 - channel_.collision_prob,
                                        static_cast<double>(interferers));
        collided = !rng_[lane].Bernoulli(survive);
      }
    }
    if (!collided) {
      deliver_mask |= 1ULL << lane;
    } else if (attempt >= channel_.max_retries) {
      ledgers_[lane].CountDrop(sender);
      if (!observers_[lane].empty()) observers_[lane].OnDrop(now, msg);
    } else {
      retry_mask |= 1ULL << lane;
    }
  }
  // A lane either delivers or retries, never both, so handling all the
  // deliveries before scheduling the retry group only reorders work across
  // lanes — each lane's serial order is untouched.
  if (deliver_mask != 0) Deliver(deliver_mask, msg);
  if (retry_mask != 0) {
    const auto backoff = static_cast<SimDuration>(
        std::ceil(channel_.backoff_ms * static_cast<double>(attempt + 1)));
    const std::uint32_t slot = AllocGroup();
    GroupEvent& g = groups_[slot];
    g.mask = retry_mask;
    g.kind = GroupEvent::Kind::kRetry;
    g.attempt = attempt;
    g.msg = std::move(msg);
    core_.ScheduleGroupAt(now + backoff, slot);
  }
}

std::size_t BatchedNetwork::CountInterferers(std::uint32_t lane, NodeId sender,
                                             SimTime started) const {
  // Transmissions overlapping [started, now] whose sender lies within the
  // precomputed interference set (twice the radio range) of `sender`: a
  // bitset membership test over this lane's senders with active flights.
  // The `end > started` filter preserves the exact legacy overlap semantics.
  std::size_t count = 0;
  for (const NodeId other : active_senders_[lane]) {
    if (other == sender || !topology_->InInterferenceRange(sender, other)) {
      continue;
    }
    for (const SimTime end : flight_ends_[Idx(other, lane)]) {
      count += end > started ? 1 : 0;
    }
  }
  return count;
}

void BatchedNetwork::Deliver(std::uint64_t mask, const Message& msg) {
  TTMQO_SPAN_SAMPLED("net.deliver", 8);
  // Hot-path short circuits, hoisted out of the per-neighbor loop: the
  // destination-membership strategy is picked once (it is lane-independent),
  // and the loss lookup is skipped entirely for lossless lanes — the common
  // case.  Large multicasts are answered by binary search over a sorted
  // scratch copy; small ones by a linear scan of the original.
  constexpr std::size_t kSmallDestinations = 8;
  const bool use_sorted = msg.mode == AddressMode::kMulticast &&
                          msg.destinations.size() > kSmallDestinations;
  if (use_sorted) {
    dest_scratch_.assign(msg.destinations.begin(), msg.destinations.end());
    std::sort(dest_scratch_.begin(), dest_scratch_.end());
  }
  std::uint64_t lossy_mask = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
    if (default_link_loss_[lane] > 0.0 || !link_loss_[lane].empty()) {
      lossy_mask |= 1ULL << lane;
    }
  }
  // Neighbors outer, lanes inner: the inner loop walks the contiguous
  // [node][lane] stripes of the state arrays.  Per lane the receiver-call
  // order is still exactly the serial neighbor order.
  for (NodeId neighbor : topology_->NeighborsOf(msg.sender)) {
    const bool addressed =
        msg.mode == AddressMode::kBroadcast ||
        (use_sorted
             ? std::binary_search(dest_scratch_.begin(), dest_scratch_.end(),
                                  neighbor)
             : std::find(msg.destinations.begin(), msg.destinations.end(),
                         neighbor) != msg.destinations.end());
    const std::size_t base = static_cast<std::size_t>(neighbor) * lanes_;
    for (std::uint64_t m = mask; m != 0; m &= m - 1) {
      const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
      const std::size_t i = base + lane;
      if (failed_[i] || down_[i]) continue;
      const Network::Receiver& receiver = receivers_[i];
      if (!receiver) continue;
      // Low-power listening: a sleeping radio still catches traffic
      // addressed to it (the sender's preamble wakes it) but cannot
      // overhear.
      if (asleep_[i] && !addressed) continue;
      // Independent per-receiver link loss (orthogonal to the contention
      // model): the sender never learns about the loss and does not retry.
      if ((lossy_mask >> lane) & 1) {
        const double loss = LinkLossOf(lane, msg.sender, neighbor);
        if (loss > 0.0 && loss_rng_[lane].Bernoulli(loss)) {
          ++link_drops_[lane];
          if (!observers_[lane].empty()) {
            observers_[lane].OnLinkDrop(core_.Now(), msg, neighbor);
          }
          continue;
        }
      }
      if (addressed) ledgers_[lane].CountReceive(neighbor);
      receiver(msg, addressed);
    }
  }
}

void BatchedNetwork::StartMaintenanceBeacons(SimDuration period,
                                             std::size_t payload_bytes) {
  ScheduleBeacons(AllLanesMask(), period, payload_bytes);
}

void BatchedNetwork::StartMaintenanceBeaconsLane(std::uint32_t lane,
                                                 SimDuration period,
                                                 std::size_t payload_bytes) {
  ScheduleBeacons(1ULL << lane, period, payload_bytes);
}

void BatchedNetwork::ScheduleBeacons(std::uint64_t mask, SimDuration period,
                                     std::size_t payload_bytes) {
  CheckArg(period > 0, "StartMaintenanceBeacons: period must be positive");
  // Each call registers one beacon set; the per-node tick groups reference
  // it by index and reschedule themselves through the pooled group slab —
  // no per-node callable chain, no per-tick allocation.
  const auto set = static_cast<std::uint32_t>(beacon_sets_.size());
  beacon_sets_.push_back(BeaconSet{period, payload_bytes});
  for (NodeId node : topology_->AllNodes()) {
    // Stagger nodes across the period so beacons do not synchronize.
    const SimDuration offset =
        static_cast<SimDuration>(node) * period /
        static_cast<SimDuration>(topology_->size());
    const std::uint32_t slot = AllocGroup();
    GroupEvent& g = groups_[slot];
    g.mask = mask;
    g.kind = GroupEvent::Kind::kBeacon;
    g.node = node;
    g.set = set;
    core_.ScheduleGroupAt(core_.Now() + offset, slot);
  }
}

void BatchedNetwork::BeaconTick(std::uint64_t mask, NodeId node,
                                std::uint32_t set) {
  // Beacon ticks are the re-coalescing point: the tick period is fixed, so
  // the group never splits — once a lane's radio has drained its backlog,
  // its beacon sends merge right back into the shared completion groups.
  std::uint64_t alive_mask = 0;
  std::uint64_t send_mask = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto lane = static_cast<std::uint32_t>(std::countr_zero(m));
    const std::size_t i = Idx(node, lane);
    if (failed_[i]) continue;  // a dead node's beacon chain ends (this lane)
    alive_mask |= 1ULL << lane;
    if (!asleep_[i] && !down_[i]) send_mask |= 1ULL << lane;
  }
  const BeaconSet& beacon = beacon_sets_[set];
  if (send_mask != 0) {
    Message msg;
    msg.cls = MessageClass::kMaintenance;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = node;
    msg.payload_bytes = beacon.payload_bytes;
    // `Send`'s validation is pre-satisfied for a broadcast from an awake,
    // alive sender, so the attempt starts directly — one shared message.
    BeginAttempt(send_mask, std::move(msg), /*attempt=*/0);
  }
  if (alive_mask != 0) {
    const std::uint32_t slot = AllocGroup();
    GroupEvent& g = groups_[slot];
    g.mask = alive_mask;
    g.kind = GroupEvent::Kind::kBeacon;
    g.node = node;
    g.set = set;
    core_.ScheduleGroupAt(core_.Now() + beacon.period, slot);
  }
}

void BatchedNetwork::FinalizeAccounting(std::uint32_t lane) {
  for (NodeId node = 0; node < topology_->size(); ++node) {
    const std::size_t i = Idx(node, lane);
    if (!asleep_[i]) continue;
    ledgers_[lane].AddSleep(
        node, static_cast<double>(core_.Now() - sleep_since_[i]));
    sleep_since_[i] = core_.Now();
  }
}

}  // namespace ttmqo
