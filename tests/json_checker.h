// A strict recursive-descent JSON checker, enough to prove every document
// and every JSONL line the exporters produce parses on its own.  Shared by
// the observability, exporter, and obs tests.
#pragma once

#include <cctype>
#include <string_view>

namespace ttmqo::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool IsValidJson(std::string_view text) {
  return JsonChecker(text).Valid();
}

}  // namespace ttmqo::testing
