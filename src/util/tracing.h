// Structured decision tracing.
//
// A `TraceEvent` is a timestamped, named bag of typed fields; a `TraceSink`
// consumes them.  The optimizer tiers emit events such as "tier1.insert"
// (query merged / covered / run standalone, with the benefit estimate that
// drove the choice) and "tier1.terminate" (the Algorithm 2 alpha decision),
// and the runner brackets each run with "run.start"/"run.end".  Sinks live
// above this layer — `JsonlTraceWriter` in metrics streams events as JSON
// Lines next to the radio events it already records.
//
// Tracing is opt-in: emitters hold a `TraceSink*` that defaults to null and
// skip event construction entirely when no sink is installed.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/time.h"

namespace ttmqo {

/// One typed field value of a trace event.
using TraceValue = std::variant<std::int64_t, double, bool, std::string>;

/// A structured, timestamped event.
struct TraceEvent {
  /// Simulation time of the event (stamped by the emitter or an adapter).
  SimTime time = 0;
  /// Dotted event kind, e.g. "tier1.insert".
  std::string kind;
  /// Ordered key/value fields.
  std::vector<std::pair<std::string, TraceValue>> fields;

  TraceEvent() = default;
  explicit TraceEvent(std::string k) : kind(std::move(k)) {}

  /// Appends a field (chainable).
  TraceEvent& With(std::string key, TraceValue value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Consumes trace events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
};

/// A sink that stores every event; for tests and programmatic inspection.
class CollectingTraceSink final : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Number of collected events with the given kind.
  std::size_t CountKind(std::string_view kind) const;

  void Clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Appends `raw` to `out` with JSON string escaping applied (quotes,
/// backslashes, control characters); does not write surrounding quotes.
void JsonEscape(std::string_view raw, std::string& out);

/// Writes `raw` as a quoted, escaped JSON string.
void WriteJsonString(std::ostream& out, std::string_view raw);

/// Writes one `TraceValue` as a JSON scalar.
void WriteJsonValue(std::ostream& out, const TraceValue& value);

/// Writes `event` as one JSON object: {"event":kind,"t":time,fields...}.
/// No trailing newline.
void WriteTraceEventJson(std::ostream& out, const TraceEvent& event);

}  // namespace ttmqo
