#!/usr/bin/env bash
# Local CI. Static analysis first (ttmqo_lint, clang-tidy, format diff),
# then an explicit build matrix:
#
#   config         flags                                  what runs
#   -------------  -------------------------------------  -------------------------------
#   build          -DENABLE_WERROR=ON                     unit/integration/soak tiers
#   build-asan     ENABLE_SANITIZERS + ENABLE_WERROR      tiers, chaos soak, sweep determinism
#   build-release  CMAKE_BUILD_TYPE=Release               perf smoke (report-only), obs gate
#   build-tsan     ENABLE_TSAN + ENABLE_WERROR            sweep pool, batched sweep + fig4 (BLOCKING)
#
# Static-analysis policy: ttmqo_lint and TSan are blocking; clang-tidy is
# blocking whenever a clang-tidy binary exists (this container ships none,
# so the step records SKIP rather than silently passing); the clang-format
# diff is report-only until a tree-wide reformat lands. Logs land in
# ci-artifacts/ alongside the postmortem dumps, and a per-step pass/fail
# summary table prints at the end no matter how the run exits.
#
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"
CTEST_ARGS=("$@")
ARTIFACTS="ci-artifacts"
rm -rf "${ARTIFACTS}"
mkdir -p "${ARTIFACTS}"

# ---------------------------------------------------------------------------
# Step registry: every step records PASS / FAIL / WARN (report-only failure)
# / SKIP (tool unavailable); the table prints even when a blocking step
# aborts the run.

STEP_NAMES=()
STEP_RESULTS=()
record_step() { STEP_NAMES+=("$1"); STEP_RESULTS+=("$2"); }

print_summary() {
  local status=$?
  echo
  echo "=== ci summary ==="
  printf '%-28s %s\n' "step" "result"
  printf '%-28s %s\n' "----------------------------" "------------------"
  local i
  for i in "${!STEP_NAMES[@]}"; do
    printf '%-28s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
  done
  if [ "${status}" -eq 0 ]; then
    echo "=== all blocking steps passed ==="
  else
    echo "=== CI FAILED (first failing step above) ==="
  fi
}
trap print_summary EXIT

# run_step NAME blocking|report CMD...: runs CMD, records the outcome.  A
# blocking failure exits immediately (the summary still prints); a report
# failure records WARN and continues.
run_step() {
  local name="$1" mode="$2"
  shift 2
  echo "=== ${name} ==="
  if "$@"; then
    record_step "${name}" PASS
  elif [ "${mode}" = blocking ]; then
    record_step "${name}" FAIL
    exit 1
  else
    record_step "${name}" "WARN (non-gating)"
  fi
}

skip_step() {
  echo "=== ${1}: SKIPPED (${2}) ==="
  record_step "$1" "SKIP (${2})"
}

# ---------------------------------------------------------------------------
# Test tiers (unchanged shape: unit -> integration -> soak, each under its
# own timeout, with a 5-slowest report per configuration).

run_tier() {
  local dir="$1" label="$2" timeout="$3"
  echo "--- test: ${dir} [${label}, timeout ${timeout}s] ---"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    -L "${label}" --timeout "${timeout}" "${CTEST_ARGS[@]}" || return 1
  # Each ctest invocation overwrites LastTest.log; accumulate the tiers so
  # the slowest-test report covers the whole configuration.
  cat "${dir}"/Testing/Temporary/LastTest.log >> \
    "${dir}"/Testing/Temporary/AllTiers.log 2>/dev/null || true
}

report_slowest() {
  local dir="$1"
  local log="${dir}/Testing/Temporary/AllTiers.log"
  [ -f "${log}" ] || return 0
  echo "--- 5 slowest tests (${dir}) ---"
  awk '/^[0-9]+\/[0-9]+ Testing: /{name=substr($0, index($0, "Testing: ")+9)}
       /Test time =/{printf "%10.3f sec  %s\n", $(NF-1), name}' "${log}" |
    sort -rn | head -5
  rm -f "${log}"
}

# configure_and_build DIR [cmake flags...] [-- target...]: flags go to the
# configure step; everything after `--` narrows the build to those targets.
configure_and_build() {
  local dir="$1"
  shift
  local flags=() targets=()
  while [ $# -gt 0 ]; do
    if [ "$1" = "--" ]; then
      shift
      targets=("$@")
      break
    fi
    flags+=("$1")
    shift
  done
  echo "--- configure: ${dir} (${flags[*]-}) ---"
  cmake -B "${dir}" -S . "${flags[@]}" >/dev/null
  echo "--- build: ${dir} ---"
  if [ "${#targets[@]}" -gt 0 ]; then
    cmake --build "${dir}" -j "${JOBS}" --target "${targets[@]}"
  else
    cmake --build "${dir}" -j "${JOBS}"
  fi
}

run_tiers() {
  local dir="$1"
  run_tier "${dir}" unit 60 &&
    run_tier "${dir}" integration 300 &&
    run_tier "${dir}" soak 600
  local rc=$?
  report_slowest "${dir}"
  return "${rc}"
}

# ---------------------------------------------------------------------------
# Static analysis, layer 1: the project determinism linter (blocking).
# Rules, allowlists, and the escape hatch are documented in tools/ttmqo_lint.

lint_tree() {
  python3 tools/ttmqo_lint 2>&1 | tee "${ARTIFACTS}/ttmqo_lint.log"
}
run_step "ttmqo_lint" blocking lint_tree

# Static analysis, layer 2: clang-tidy over the compilation database.
# Blocking when the tool exists; this needs the plain build configured
# first, so the step runs right after that build below.
find_clang_tidy() {
  local c
  for c in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
           clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${c}" >/dev/null 2>&1; then
      echo "${c}"
      return 0
    fi
  done
  return 1
}

clang_tidy_step() {
  local tidy="$1" dir="$2"
  # The project's own translation units from the compilation database;
  # system/third-party TUs never appear there because only this tree is
  # compiled.
  python3 - "${dir}/compile_commands.json" <<'EOF' > "${ARTIFACTS}/tidy-files.txt"
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if any(s in f for s in ("/src/", "/examples/", "/bench/", "/tests/")):
        print(f)
EOF
  xargs -a "${ARTIFACTS}/tidy-files.txt" -P "${JOBS}" -n 4 \
    "${tidy}" -p "${dir}" --quiet 2>&1 | tee "${ARTIFACTS}/clang-tidy.log"
  # xargs exits non-zero if any invocation found (error-promoted) findings.
}

# Static analysis, layer 3: format diff (report-only by design — see
# .clang-format; no tree-wide reformat has landed yet).
format_diff() {
  git ls-files '*.cc' '*.h' > "${ARTIFACTS}/format-files.txt"
  xargs -a "${ARTIFACTS}/format-files.txt" clang-format --dry-run -Werror \
    2>&1 | tee "${ARTIFACTS}/format-diff.log"
}
if command -v clang-format >/dev/null 2>&1; then
  run_step "format-diff" report format_diff
else
  skip_step "format-diff" "clang-format not installed"
fi

# ---------------------------------------------------------------------------
# Matrix leg 1: plain build (warnings are errors), all test tiers, then
# clang-tidy against its compilation database.

run_step "build (werror)" blocking \
  configure_and_build build -DENABLE_WERROR=ON
run_step "tests: build" blocking run_tiers build

TIDY_BIN="$(find_clang_tidy || true)"
if [ -n "${TIDY_BIN}" ]; then
  run_step "clang-tidy" blocking clang_tidy_step "${TIDY_BIN}" build
else
  skip_step "clang-tidy" "no clang-tidy binary on this toolchain"
fi

# ---------------------------------------------------------------------------
# Matrix leg 2: ASan+UBSan (LeakSanitizer gates too: recurring events live
# in the simulator's pooled slab, so any leak report is a real leak).

run_step "build-asan (werror)" blocking \
  configure_and_build build-asan -DENABLE_SANITIZERS=ON -DENABLE_WERROR=ON
run_step "tests: build-asan" blocking run_tiers build-asan

# Chaos soak under the sanitizers: random transient outages plus link loss,
# three seeds each, the full reliability matrix (baseline, and two-tier
# under off/harden/arq) per seed; non-zero exit on any reliability-
# invariant violation — including the arq completeness floor and the
# every-epoch coverage-annotation check.  The flight recorder dumps
# postmortems into the artifacts dir on failure.
chaos_soak() {
  local dir="${ARTIFACTS}/postmortem"
  ./build-asan/bench/chaos_soak --runs=3 --seed=1 \
    --postmortem-dir="${dir}" &&
    ./build-asan/bench/chaos_soak --runs=3 --seed=1 --link-loss=0.1 \
      --floor=0.4 --postmortem-dir="${dir}"
  local rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "chaos soak FAILED — postmortem dumps preserved in ${dir}:"
    ls -l "${dir}" 2>/dev/null || true
  fi
  return "${rc}"
}
run_step "chaos-soak (asan)" blocking chaos_soak

# The committed reliability bench artifact must match what the code
# produces: regenerate the loss-axis x profile matrix and byte-compare.
# Catches both nondeterminism and a stale BENCH_reliability.json.
reliability_bench() {
  ./build-asan/bench/chaos_soak --side=6 \
    --bench-out="${ARTIFACTS}/BENCH_reliability.json" &&
    diff -u BENCH_reliability.json "${ARTIFACTS}/BENCH_reliability.json"
}
run_step "reliability-bench (asan)" blocking reliability_bench

# The tier-1 index differential suite, explicitly under ASan: the indexed
# candidate search must match the naive oracle byte-for-byte (it also runs
# in the integration tier above; this dedicated step keeps the equivalence
# gate visible in the summary even if tier labels are ever reshuffled).
bs_opt_equivalence() {
  ./build-asan/tests/bs_opt_equivalence_test
}
run_step "bs-opt-equivalence (asan)" blocking bs_opt_equivalence

# The lockstep batch engine's per-lane byte-equality contract, explicitly
# under ASan: every lane of RunExperimentBatch must fingerprint identically
# to its solo RunExperiment, including under a crash fault that diverges
# one lane while its siblings stay healthy (it also runs in the integration
# tier above; this dedicated step keeps the gate visible in the summary).
batch_equivalence() {
  ./build-asan/tests/batch_equivalence_test
}
run_step "batch-equivalence (asan)" blocking batch_equivalence

# The sweep orchestrator's cross-thread determinism check: the same spec at
# jobs=1 and jobs=hardware must produce byte-identical canonical reports.
# --batch-seeds routes the replicate axis through the lockstep batch engine
# inside the bench's third leg, so the canonical comparison also covers
# serial-vs-batched.
sweep_determinism() {
  ./build-asan/examples/run_sweep \
    --spec="grids=4 workloads=A,C modes=baseline,ttmqo seeds=1 duration-ms=49152" \
    --batch-seeds=4 --bench-out=/tmp/ttmqo_sweep_ci.json
}
run_step "sweep-determinism (asan)" blocking sweep_determinism

# ---------------------------------------------------------------------------
# Matrix leg 3: Release — perf smoke (report-only; wall-clock numbers depend
# on host load) and the observability-overhead gate (blocking at 3%).

run_step "build-release" blocking \
  configure_and_build build-release -DCMAKE_BUILD_TYPE=Release \
  -- hotpath obs_overhead obs_overhead_nospans micro_bs_opt

# The committed optimizer-scaling artifact must match what the code
# produces: regenerate the insert-throughput curve and compare the decision
# counts exactly (timings and build provenance are host-dependent and are
# stripped from both sides; the binary itself exits non-zero if the indexed
# and naive paths ever disagree on a decision).
bsopt_bench() {
  ./build-release/bench/micro_bs_opt \
    --curve-out="${ARTIFACTS}/BENCH_bsopt.json" &&
    python3 tools/strip_bench_timings.py BENCH_bsopt.json \
      > "${ARTIFACTS}/BENCH_bsopt.committed.json" &&
    python3 tools/strip_bench_timings.py "${ARTIFACTS}/BENCH_bsopt.json" \
      > "${ARTIFACTS}/BENCH_bsopt.fresh.json" &&
    diff -u "${ARTIFACTS}/BENCH_bsopt.committed.json" \
      "${ARTIFACTS}/BENCH_bsopt.fresh.json"
}
run_step "bsopt-bench (release)" blocking bsopt_bench

perf_smoke() {
  ./build-release/bench/hotpath \
    --spec="grids=4,6 workloads=C modes=baseline,ttmqo seeds=1 duration-ms=49152 collisions=0.02" \
    --dense-ms=5000 --probe-ms=5000 --batch-ms=5000 \
    --out=/tmp/ttmqo_hotpath_ci.json
}
run_step "perf-smoke (release)" report perf_smoke

# The committed hotpath artifact must match what the code produces: the
# event counts of every part — sweep, dense contention, allocation probe,
# and the 8-lane lockstep batch — are deterministic in the seeds, so CI
# regenerates the artifact with the committed parameters and diffs the
# counts exactly (wall clock and derived rates are stripped from both
# sides; the binary itself exits non-zero if any batch lane diverges from
# its solo run).
hotpath_bench() {
  ./build-release/bench/hotpath \
    --baseline-from=BENCH_hotpath.json \
    --out="${ARTIFACTS}/BENCH_hotpath.json" &&
    python3 tools/strip_bench_timings.py BENCH_hotpath.json \
      > "${ARTIFACTS}/BENCH_hotpath.committed.json" &&
    python3 tools/strip_bench_timings.py "${ARTIFACTS}/BENCH_hotpath.json" \
      > "${ARTIFACTS}/BENCH_hotpath.fresh.json" &&
    diff -u "${ARTIFACTS}/BENCH_hotpath.committed.json" \
      "${ARTIFACTS}/BENCH_hotpath.fresh.json"
}
run_step "hotpath-bench (release)" blocking hotpath_bench

obs_overhead_gate() {
  ./build-release/bench/obs_overhead --max-overhead=3 \
    --window-ms=10000 --reps=3 --out=/tmp/ttmqo_obs_ci.json
}
run_step "obs-overhead (release)" blocking obs_overhead_gate

obs_nospans() {
  ./build-release/bench/obs_overhead_nospans \
    --window-ms=5000 --reps=2 --span-iters=500000 \
    --out=/tmp/ttmqo_obs_nospans_ci.json
}
run_step "obs-nospans (release)" report obs_nospans

# ---------------------------------------------------------------------------
# Matrix leg 4: ThreadSanitizer — BLOCKING.  The parallel sweep pool and the
# shared CostModel counters (atomic since PR 6) are the cross-thread
# surfaces; their drivers run under TSan and any reported race fails CI.  A
# canary compile distinguishes "toolchain cannot TSan" (SKIP) from "the code
# races" (FAIL), so the gate can never silently rot into report-only.

tsan_canary() {
  local probe
  probe="$(mktemp -d)"
  cat > "${probe}/t.cc" <<'EOF'
#include <thread>
int x;
int main() { std::thread t([] { x = 1; }); t.join(); return x - 1; }
EOF
  local cxx="${CXX:-$(command -v c++ || command -v g++ || echo c++)}"
  "${cxx}" -fsanitize=thread -O1 "${probe}/t.cc" -o "${probe}/t" \
    >/dev/null 2>&1 && "${probe}/t" >/dev/null 2>&1
  local rc=$?
  rm -rf "${probe}"
  return "${rc}"
}

tsan_run() {
  mkdir -p "${ARTIFACTS}/tsan"
  ./build-tsan/tests/sweep_determinism_test 2>&1 |
    tee "${ARTIFACTS}/tsan/sweep_determinism_test.log" &&
    ./build-tsan/bench/fig4_adaptive --part=a --queries=120 --jobs=4 2>&1 |
      tee "${ARTIFACTS}/tsan/fig4_adaptive.log" &&
    ./build-tsan/examples/run_sweep \
      --spec="grids=4 workloads=C modes=baseline,ttmqo seeds=4 duration-ms=36864" \
      --jobs=4 --batch-seeds=4 --no-timing --out=/dev/null 2>&1 |
      tee "${ARTIFACTS}/tsan/run_sweep_batched.log"
}

if tsan_canary; then
  run_step "build-tsan (werror)" blocking \
    configure_and_build build-tsan -DENABLE_TSAN=ON -DENABLE_WERROR=ON \
    -- sweep_determinism_test fig4_adaptive run_sweep
  run_step "tsan: sweep pool + fig4" blocking tsan_run
else
  skip_step "tsan" "toolchain/kernel cannot run ThreadSanitizer"
fi
