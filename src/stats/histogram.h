// Equi-width histograms for selectivity estimation.
//
// The base-station cost model needs `sel(q, N_k)` — the fraction of nodes at
// routing level k whose readings satisfy a query's predicates (Eq. 1).  The
// paper maintains per-level data distributions, falling back to a single
// distribution for all levels in its experiments (Section 3.1.2,
// "Statistics").  A histogram with no observations assumes a uniform
// distribution over the attribute's physical range, matching the paper's
// uniform-readings analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "util/interval.h"

namespace ttmqo {

/// An equi-width histogram over a closed domain.
class Histogram {
 public:
  /// Creates a histogram with `bins` equal-width buckets over `domain`.
  Histogram(Interval domain, std::size_t bins);

  /// Records one observation (values outside the domain are clamped into
  /// the boundary buckets).
  void Add(double value);

  /// Records an observation with decayed weight: existing mass is scaled by
  /// `decay` in [0,1] first.  Used to age out stale readings.
  void AddDecayed(double value, double decay);

  /// Estimated fraction of the distribution lying inside `range`, using the
  /// continuous-uniform assumption within each bucket.  With no observations
  /// the estimate is uniform over the domain.
  double SelectivityOf(const Interval& range) const;

  /// Total recorded weight.
  double TotalWeight() const { return total_; }

  /// The histogram's domain.
  const Interval& domain() const { return domain_; }

  /// Number of buckets.
  std::size_t bins() const { return counts_.size(); }

 private:
  Interval domain_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace ttmqo
