// The radio network: topology + channel + accounting + event loop.
//
// `Network` mediates every transmission.  A transmission occupies the
// sender's radio for `C_start + C_trans * len` ms (a node's sends serialize
// on its own radio); on completion it is delivered to the addressed
// neighbors and overheard by every other awake neighbor — the broadcast
// nature of the channel the in-network tier exploits (Section 3.2).  An
// optional contention model corrupts transmissions with a probability that
// grows with the number of concurrently in-flight interfering
// transmissions; failed attempts are retried with linear backoff and
// charged to the sender as retransmissions, reproducing the paper's
// "retransmission messages due to transmission failure" accounting.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "net/ledger.h"
#include "net/link_quality.h"
#include "net/message.h"
#include "net/observer.h"
#include "net/radio.h"
#include "net/simulator.h"
#include "net/topology.h"
#include "util/rng.h"

namespace ttmqo {

/// Owns the event loop and the radio channel for one deployment.
class Network {
 public:
  /// Receives a delivered or overheard message.  `addressed` is true when
  /// this node is an intended destination (broadcasts address everyone).
  using Receiver =
      std::function<void(const Message& msg, bool addressed)>;

  /// `seed` drives the collision model only.
  Network(const Topology& topology, RadioParams radio, ChannelParams channel,
          std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The event loop (scheduling, Now()).
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

  /// The deployment.
  const Topology& topology() const { return *topology_; }

  /// Per-link quality estimates (for parent selection / tie breaking).
  const LinkQualityMap& link_quality() const { return link_quality_; }

  /// Radio accounting.
  RadioLedger& ledger() { return ledger_; }
  const RadioLedger& ledger() const { return ledger_; }

  /// Radio timing parameters.
  const RadioParams& radio() const { return radio_; }

  /// Installs the message handler of `node` (replacing any previous one).
  void SetReceiver(NodeId node, Receiver receiver);

  /// Marks a node asleep/awake.  Asleep nodes neither receive nor overhear;
  /// sleep time is accounted in the ledger.  Sends from a sleeping node are
  /// rejected.
  void SetAsleep(NodeId node, bool asleep);

  /// True when the node is currently asleep.
  bool IsAsleep(NodeId node) const;

  /// Permanently kills a node (crash fault): it stops receiving, and its
  /// transmissions — including already queued retries — silently vanish.
  /// Used for failure-injection experiments; the base station cannot fail.
  void FailNode(NodeId node);

  /// True when the node has been failed.  Engines may consult this when
  /// selecting routes, modelling beacon-based neighbor failure detection.
  bool IsFailed(NodeId node) const;

  /// Number of failed nodes.
  std::size_t NumFailed() const { return num_failed_; }

  /// Begins a transient outage: the node neither sends, receives, nor
  /// overhears until `Recover`.  Unlike `FailNode` the outage is *silent* —
  /// engines get no failure signal and must detect it via liveness.  No-op
  /// on failed or already-down nodes; the base station cannot go down.
  void SetDown(NodeId node);

  /// Ends a transient outage (no-op unless the node is down).
  void Recover(NodeId node);

  /// True when the node is currently unreachable (failed or in an outage).
  bool IsDown(NodeId node) const;

  /// Number of nodes currently in a transient outage.
  std::size_t NumDown() const { return num_down_; }

  /// Probability that a delivery on any link without a per-link override is
  /// lost (independent per receiver; the sender never notices).
  void SetDefaultLinkLoss(double p);

  /// Sets a per-link loss probability override for the (symmetric) link
  /// a—b; both must be radio neighbors.
  void SetLinkLoss(NodeId a, NodeId b, double p);

  /// Removes the per-link override, restoring the default loss.
  void ClearLinkLoss(NodeId a, NodeId b);

  /// Effective loss probability of the link a—b.
  double LinkLossOf(NodeId a, NodeId b) const;

  /// Deliveries lost to lossy links so far (all links).
  std::uint64_t link_drops() const { return link_drops_; }

  /// Queues `msg` for transmission from `msg.sender`.  Destinations must be
  /// radio neighbors of the sender.  The transmission starts when the
  /// sender's radio is free and is delivered (or retried) per the channel
  /// model.
  void Send(Message msg);

  /// Starts a periodic per-node maintenance broadcast (neighbor beacons /
  /// time sync) of `payload_bytes`, one per node per `period`, with node
  /// index staggering.  Models the paper's "periodical network maintenance
  /// messages".
  void StartMaintenanceBeacons(SimDuration period, std::size_t payload_bytes);

  /// Closes every open accounting span at `Now()` — currently the sleep
  /// spans of nodes still asleep (including nodes that failed mid-sleep),
  /// which would otherwise never reach the ledger.  Idempotent: spans
  /// reopen at `Now()`, so later state changes account only the remainder.
  /// The experiment harness calls this before summarizing a run.
  void FinalizeAccounting();

  /// Number of transmissions currently in flight (diagnostics).
  std::size_t in_flight() const { return total_flights_; }

  /// The event observer fan-out.  Any number of observers (trace writers,
  /// metric collectors, samplers) may be attached concurrently via
  /// `observers().Add(...)`; none is owned.
  ObserverMux& observers() { return observers_; }
  const ObserverMux& observers() const { return observers_; }

  /// Legacy single-observer slot: replaces the previously set observer
  /// (nullptr to remove) while leaving observers added through
  /// `observers()` untouched.
  void SetObserver(NetworkObserver* observer) {
    if (legacy_observer_ != nullptr) observers_.Remove(legacy_observer_);
    legacy_observer_ = observer;
    observers_.Add(observer);
  }

 private:
  /// One `StartMaintenanceBeacons` call; ticks reference it by index.
  struct BeaconSet {
    SimDuration period;
    std::size_t payload_bytes;
  };

  void BeginAttempt(Message msg, int attempt);
  void CompleteAttempt(Message msg, int attempt, SimTime started);
  std::size_t CountInterferers(NodeId sender, SimTime started) const;
  void Deliver(const Message& msg);
  void BeaconTick(NodeId node, std::uint32_t set);
  void AddFlight(NodeId sender, SimTime end);
  void RemoveFlight(NodeId sender, SimTime end);

  const Topology* topology_;
  RadioParams radio_;
  ChannelParams channel_;
  Simulator sim_;
  LinkQualityMap link_quality_;
  RadioLedger ledger_;
  Rng rng_;
  std::vector<Receiver> receivers_;
  std::vector<bool> asleep_;
  std::vector<bool> failed_;
  std::size_t num_failed_ = 0;
  std::vector<bool> down_;
  std::vector<SimTime> down_since_;
  std::size_t num_down_ = 0;
  double default_link_loss_ = 0.0;
  /// Per-link loss overrides, keyed by the normalized (low, high) pair.
  std::map<std::pair<NodeId, NodeId>, double> link_loss_;
  std::uint64_t link_drops_ = 0;
  Rng loss_rng_;
  std::vector<SimTime> sleep_since_;
  std::vector<SimTime> busy_until_;
  /// O(1) flight tracking: per-sender end times (appended at begin,
  /// swap-removed at complete; capacity is retained, so steady state never
  /// allocates) plus a compact list of senders with at least one active
  /// flight — `CountInterferers` walks only those.
  std::vector<std::vector<SimTime>> flight_ends_;
  std::vector<NodeId> active_senders_;
  std::vector<std::uint32_t> active_slot_;
  std::size_t total_flights_ = 0;
  std::vector<BeaconSet> beacon_sets_;
  /// Scratch for sorted destination lookups on large multicasts.
  std::vector<NodeId> dest_scratch_;
  ObserverMux observers_;
  NetworkObserver* legacy_observer_ = nullptr;
};

}  // namespace ttmqo
