// Deterministic random number generation.
//
// Every stochastic component (field models, workload generators, the
// collision model) draws from an explicitly seeded `Rng` so that each test
// and benchmark run is exactly reproducible.  Sub-streams are derived with
// `Fork` so that adding a consumer does not perturb the draws seen by
// existing consumers.
#pragma once

#include <cstdint>
#include <random>

namespace ttmqo {

/// A seeded pseudo-random source with convenience samplers.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed.  Equal seeds give equal streams.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent sub-stream; deterministic in (parent seed, salt).
  Rng Fork(std::uint64_t salt) const;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal scaled to (mean, stddev).
  double Gaussian(double mean, double stddev);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Picks an index in [0, n) uniformly; n must be positive.
  std::size_t Index(std::size_t n);

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace ttmqo
