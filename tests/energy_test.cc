// Tests for the radio energy model and its integration with the engines:
// sleep mode must translate into measurably lower energy.
#include <gtest/gtest.h>

#include "metrics/energy.h"
#include "query/parser.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

TEST(EnergyModelTest, HandComputedNode) {
  NodeRadioStats stats;
  stats.transmit_ms_by_class[0] = 100.0;
  stats.retransmit_ms = 50.0;
  stats.sleep_ms = 500.0;
  // elapsed 1000ms: tx 150, sleep 500, listen 350.
  EnergyParams params;
  params.transmit_mw = 60;
  params.listen_mw = 30;
  params.sleep_mw = 0.03;
  const double expected = (60 * 150 + 30 * 350 + 0.03 * 500) / 1000.0;
  EXPECT_DOUBLE_EQ(NodeEnergyMj(stats, 1000, params), expected);
}

TEST(EnergyModelTest, IdleListeningDominatesWithoutSleep) {
  NodeRadioStats idle;  // never transmits, never sleeps
  const double e = NodeEnergyMj(idle, 10'000);
  EXPECT_NEAR(e, 30.0 * 10'000 / 1000.0, 1e-9);
}

TEST(EnergyModelTest, SleepSlashesIdleEnergy) {
  NodeRadioStats sleeper;
  sleeper.sleep_ms = 9'000.0;
  const double awake = NodeEnergyMj(NodeRadioStats{}, 10'000);
  const double asleep = NodeEnergyMj(sleeper, 10'000);
  EXPECT_LT(asleep, 0.15 * awake);
}

TEST(EnergyModelTest, AverageAndMaxOverLedger) {
  RadioLedger ledger(3);
  ledger.ChargeTransmit(1, MessageClass::kResult, 100.0, false);
  ledger.AddSleep(2, 900.0);
  const double avg = AverageSensorEnergyMj(ledger, 1000);
  const double worst = MaxSensorEnergyMj(ledger, 1000);
  EXPECT_GT(worst, avg);
  // Node 1 (transmitting) outspends node 2 (sleeping).
  EXPECT_DOUBLE_EQ(worst, NodeEnergyMj(ledger.StatsOf(1), 1000));
}

TEST(EnergyIntegrationTest, SleepModeSavesRealEnergy) {
  // A sparse query leaves most nodes idle; with sleep enabled their energy
  // must drop while answers stay identical (covered elsewhere).
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 950 EPOCH DURATION 8192");
  double energy[2];
  for (int i = 0; i < 2; ++i) {
    RunConfig config;
    config.grid_side = 5;
    config.mode = OptimizationMode::kInNetworkOnly;
    config.duration_ms = 20 * 8192;
    config.seed = 4;
    config.innet.enable_sleep = i == 0;
    const RunResult run = RunExperiment(config, StaticSchedule({q}));
    // Reconstruct energy from the summary's fractions.
    const auto elapsed = static_cast<double>(config.duration_ms);
    const EnergyParams params;
    const double tx_ms =
        run.summary.avg_transmission_fraction * elapsed;
    const double sleep_ms = run.summary.avg_sleep_fraction * elapsed;
    energy[i] = (params.transmit_mw * tx_ms +
                 params.listen_mw * (elapsed - tx_ms - sleep_ms) +
                 params.sleep_mw * sleep_ms) /
                1000.0;
  }
  EXPECT_LT(energy[0], energy[1]) << "sleep must save energy";
}

TEST(EnergyIntegrationTest, TtmqoLowersTheLifetimeBottleneck) {
  // The node that transmits most dies first; TTMQO lowers its bill too.
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT light EPOCH DURATION 4096"),
      ParseQuery(3, "SELECT light, temp EPOCH DURATION 8192"),
      ParseQuery(4, "SELECT MAX(light) EPOCH DURATION 4096"),
  };
  const Topology topology = Topology::Grid(4);
  const auto field = MakeFieldModel(FieldKind::kCorrelated, 6);
  double worst[2];
  int i = 0;
  for (OptimizationMode mode :
       {OptimizationMode::kTwoTier, OptimizationMode::kBaseline}) {
    RunConfig config;
    config.grid_side = 4;
    config.mode = mode;
    config.duration_ms = 20 * 8192;
    config.seed = 6;
    RunExperiment(config, StaticSchedule(queries));
    // Re-run manually to access the ledger.
    Network network(topology, config.radio, config.channel, config.seed);
    ResultLog log;
    TtmqoOptions options;
    options.mode = mode;
    TtmqoEngine engine(network, *field, &log, options);
    for (const Query& q : queries) engine.SubmitQuery(q);
    network.sim().RunUntil(config.duration_ms);
    worst[i++] = MaxSensorEnergyMj(network.ledger(), config.duration_ms);
  }
  EXPECT_LT(worst[0], worst[1]);
}

}  // namespace
}  // namespace ttmqo
