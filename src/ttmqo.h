// Umbrella header: the full public API of the TTMQO library.
//
// Typical use:
//
//   #include "ttmqo.h"
//
//   ttmqo::Topology topology = ttmqo::Topology::Grid(8);
//   ttmqo::Network network(topology, {}, {}, seed);
//   ttmqo::CorrelatedFieldModel field(seed, {});
//   ttmqo::ResultLog results;
//   ttmqo::TtmqoEngine engine(network, field, &results,
//                             {.mode = ttmqo::OptimizationMode::kTwoTier});
//   engine.SubmitQuery(ttmqo::ParseQuery(1, "SELECT ... EPOCH DURATION ..."));
//   network.sim().RunUntil(duration_ms);
//
// Individual subsystem headers can be included directly instead; see
// DESIGN.md for the module map.
#pragma once

#include "core/bs/cost_model.h"        // Eq. 1-3 transmission cost model
#include "core/bs/integration.h"       // query merge & coverage rules
#include "core/bs/result_mapper.h"     // synthetic -> user result mapping
#include "core/bs/rewriter.h"          // Algorithm 1 & 2 (tier 1)
#include "core/innet/innet_engine.h"   // tier-2 engine
#include "core/ttmqo_engine.h"         // the user-facing facade
#include "metrics/csv.h"               // result export
#include "metrics/energy.h"            // radio energy model
#include "metrics/run_summary.h"       // the paper's measurements
#include "metrics/table.h"             // report formatting
#include "metrics/trace.h"             // radio event tracing
#include "net/network.h"               // the simulated radio network
#include "net/topology.h"              // deployments
#include "query/engine.h"              // engine interface
#include "query/parser.h"              // the TinyDB SQL dialect
#include "query/query.h"               // queries, predicates, aggregates
#include "query/result.h"              // answer streams
#include "routing/routing_tree.h"      // fixed tree + level DAG
#include "routing/semantic_tree.h"     // SRT pruning
#include "sensing/field_model.h"       // synthetic environments
#include "stats/selectivity.h"         // selectivity estimation
#include "tinydb/tinydb_engine.h"      // the TinyDB baseline
#include "workload/generator.h"        // workload models
#include "workload/runner.h"           // the experiment harness
#include "workload/static_workloads.h" // WORKLOAD_A/B/C
