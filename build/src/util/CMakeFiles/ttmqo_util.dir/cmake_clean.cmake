file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_util.dir/flags.cc.o"
  "CMakeFiles/ttmqo_util.dir/flags.cc.o.d"
  "CMakeFiles/ttmqo_util.dir/interval.cc.o"
  "CMakeFiles/ttmqo_util.dir/interval.cc.o.d"
  "CMakeFiles/ttmqo_util.dir/logging.cc.o"
  "CMakeFiles/ttmqo_util.dir/logging.cc.o.d"
  "CMakeFiles/ttmqo_util.dir/mathx.cc.o"
  "CMakeFiles/ttmqo_util.dir/mathx.cc.o.d"
  "CMakeFiles/ttmqo_util.dir/rng.cc.o"
  "CMakeFiles/ttmqo_util.dir/rng.cc.o.d"
  "CMakeFiles/ttmqo_util.dir/time.cc.o"
  "CMakeFiles/ttmqo_util.dir/time.cc.o.d"
  "libttmqo_util.a"
  "libttmqo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
