// TinyDB-style continuous queries.
//
// A query is either a *data acquisition* query (projects raw attributes) or
// an *aggregation* query (computes aggregates); exactly one of
// `attribute_list` / `agg_list` is non-empty (Section 3.1.1).  Every query
// carries a conjunction of range predicates and an epoch duration that sets
// how often the network is sampled.
#pragma once

#include <string>
#include <vector>

#include "query/aggregate.h"
#include "query/predicate.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Whether a query returns raw tuples or aggregate values.
enum class QueryKind { kAcquisition, kAggregation };

/// Name of a query kind for logs ("acquisition"/"aggregation").
std::string_view QueryKindName(QueryKind kind);

/// An immutable continuous query.
class Query {
 public:
  /// Builds a data acquisition query projecting `attributes`.  `nodeid` is
  /// always included in the projection (TinyDB result tuples carry their
  /// source).  Throws on an invalid epoch or empty attribute list.
  static Query Acquisition(QueryId id, std::vector<Attribute> attributes,
                           PredicateSet predicates, SimDuration epoch);

  /// Builds an aggregation query computing `aggregates`.  Throws on an
  /// invalid epoch or empty aggregate list.
  static Query Aggregation(QueryId id, std::vector<AggregateSpec> aggregates,
                           PredicateSet predicates, SimDuration epoch);

  /// The query's unique identifier.
  QueryId id() const { return id_; }

  /// Acquisition or aggregation.
  QueryKind kind() const { return kind_; }

  /// Projected attributes (sorted, unique; empty for aggregation queries).
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Requested aggregates (sorted, unique; empty for acquisition queries).
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

  /// The WHERE conjunction.
  const PredicateSet& predicates() const { return predicates_; }

  /// The epoch duration in milliseconds.
  SimDuration epoch() const { return epoch_; }

  /// How long the query runs after submission (TinyDB's lifetime clause,
  /// `FOR <ms>`); 0 = continuous until explicitly terminated.
  SimDuration lifetime() const { return lifetime_; }

  /// Returns a copy with the given lifetime (0 = continuous).  A non-zero
  /// lifetime must cover at least one epoch.
  Query WithLifetime(SimDuration lifetime) const;

  /// Attributes a sensor must physically sample to evaluate this query:
  /// the projection (or aggregate inputs) plus every predicate attribute.
  std::vector<Attribute> AcquiredAttributes() const;

  /// Payload bytes of one result row: attribute values for acquisition
  /// queries, partial state records for aggregation queries.
  std::size_t ResultPayloadBytes() const;

  /// Returns a copy with a different id (used when synthesizing queries).
  Query WithId(QueryId id) const;

  /// The query rendered in the TinyDB SQL dialect, e.g.
  /// "SELECT MAX(light) FROM sensors WHERE temp >= 20 EPOCH DURATION 4096".
  std::string ToSql() const;

 private:
  Query() = default;

  QueryId id_ = kInvalidQueryId;
  QueryKind kind_ = QueryKind::kAcquisition;
  std::vector<Attribute> attributes_;
  std::vector<AggregateSpec> aggregates_;
  PredicateSet predicates_;
  SimDuration epoch_ = kMinEpochDurationMs;
  SimDuration lifetime_ = 0;
};

}  // namespace ttmqo
