// Quickstart: stand up a simulated sensor network, run two queries under
// the full two-tier optimizer, and print the answers that reach the base
// station.
//
//   $ quickstart
//
// Walks through the core API: Topology -> Network -> FieldModel ->
// TtmqoEngine -> ResultSink.
#include <cstdio>

#include "core/ttmqo_engine.h"
#include "metrics/run_summary.h"
#include "net/topology.h"
#include "query/parser.h"
#include "sensing/field_model.h"

namespace {

// Results arrive epoch by epoch through a ResultSink.
class PrintingSink final : public ttmqo::ResultSink {
 public:
  void OnResult(const ttmqo::EpochResult& result) override {
    std::printf("  [%6.1fs] %s\n",
                static_cast<double>(result.epoch_time) / 1000.0,
                result.ToString().c_str());
  }
};

}  // namespace

int main() {
  using namespace ttmqo;

  // 1. A 4x4 grid of motes, 20 ft apart, 50 ft radio range — the paper's
  //    deployment.  Node 0 is the base station.
  const Topology topology = Topology::Grid(4);

  // 2. The radio network: default Mica2-class timing, lossless channel.
  Network network(topology, RadioParams{}, ChannelParams{}, /*seed=*/42);

  // 3. A synthetic environment with spatially/temporally correlated light
  //    and temperature readings.
  const CorrelatedFieldModel field(/*seed=*/7, {});

  // 4. The engine: both optimization tiers enabled.
  PrintingSink sink;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, &sink, options);

  // 5. Submit TinyDB-style queries.  These two overlap, so tier 1 rewrites
  //    them into a single synthetic query; the network runs one query and
  //    the base station answers both users.
  std::printf("submitting:\n");
  const Query q1 = ParseQuery(
      1, "SELECT light FROM sensors WHERE light > 400 EPOCH DURATION 4096");
  const Query q2 = ParseQuery(
      2, "SELECT MAX(light) FROM sensors WHERE light > 500 "
         "EPOCH DURATION 8192");
  std::printf("  q1: %s\n  q2: %s\n\nresults:\n", q1.ToSql().c_str(),
              q2.ToSql().c_str());
  engine.SubmitQuery(q1);
  engine.SubmitQuery(q2);

  // 6. Run 30 simulated seconds.
  network.sim().RunUntil(30'000);

  // 7. Inspect what the optimizer did and what the radio paid.
  std::printf("\nnetwork queries running: %zu (for %zu user queries)\n",
              engine.NumNetworkQueries(), engine.NumUserQueries());
  std::printf("tier-1 benefit ratio: %.0f%%\n", engine.BenefitRatio() * 100);
  std::printf("radio: %s\n",
              RunSummary::FromLedger(network.ledger(), 30'000)
                  .ToString()
                  .c_str());
  return 0;
}
