// Lightweight runtime checking.
//
// The simulator is deterministic, so invariant violations are programming
// errors; we fail fast with a descriptive exception rather than corrupting an
// experiment silently.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ttmqo {

/// Raised when a `Check`/`CheckArg` invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Verifies an internal invariant; throws `CheckFailure` with the call site
/// location when `condition` is false.
inline void Check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckFailure(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": check failed: " +
                       std::string(message));
  }
}

/// Verifies a precondition on a public API argument; throws
/// `std::invalid_argument` when `condition` is false.
inline void CheckArg(bool condition, std::string_view message) {
  if (!condition) {
    throw std::invalid_argument(std::string(message));
  }
}

}  // namespace ttmqo
