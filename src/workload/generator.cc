#include "workload/generator.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {

RandomQueryModel::RandomQueryModel(QueryModelParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  CheckArg(!params_.attributes.empty(),
           "RandomQueryModel: need candidate attributes");
  CheckArg(!params_.operators.empty(),
           "RandomQueryModel: need candidate operators");
  CheckArg(!params_.epochs.empty(), "RandomQueryModel: need candidate epochs");
  for (SimDuration e : params_.epochs) {
    CheckArg(IsValidEpochDuration(e), "RandomQueryModel: invalid epoch");
  }
  CheckArg(params_.predicate_selectivity > 0.0 &&
               params_.predicate_selectivity <= 1.0,
           "RandomQueryModel: selectivity must be in (0, 1]");
}

PredicateSet RandomQueryModel::RandomPredicates() {
  PredicateSet predicates;
  if (!rng_.Bernoulli(params_.predicate_probability)) return predicates;
  const std::size_t count =
      params_.max_predicates <= 1
          ? 1
          : static_cast<std::size_t>(rng_.UniformInt(
                1, static_cast<std::int64_t>(params_.max_predicates)));
  for (std::size_t i = 0; i < count; ++i) {
    double coverage = params_.predicate_selectivity;
    if (params_.randomize_selectivity) {
      coverage = rng_.Uniform(0.1, params_.predicate_selectivity);
    }
    if (coverage >= 1.0) continue;
    // A random attribute constrained to a random window covering the
    // requested fraction of its physical range (Section 4.3).  Repeated
    // attributes intersect, which keeps the conjunction satisfiable only
    // when the windows overlap — both cases are worth generating.
    const Attribute attr =
        params_.attributes[rng_.Index(params_.attributes.size())];
    const Interval range = AttributeRange(attr);
    const double width = range.Length() * coverage;
    const double lo = rng_.Uniform(range.lo(), range.hi() - width);
    predicates.Constrain(attr, Interval(lo, lo + width));
  }
  return predicates;
}

Query RandomQueryModel::Next(QueryId id) {
  if (params_.template_pool > 0) {
    // Lazily build the pool, then draw with an 80/20 skew: most arrivals
    // repeat one of the few hot templates.
    while (templates_.size() < params_.template_pool) {
      templates_.push_back(
          FreshQuery(static_cast<QueryId>(templates_.size() + 1)));
    }
    const std::size_t hot = std::max<std::size_t>(
        1, params_.template_pool / 5);
    const std::size_t pick = rng_.Bernoulli(0.8)
                                 ? rng_.Index(hot)
                                 : rng_.Index(params_.template_pool);
    return templates_[pick].WithId(id);
  }
  return FreshQuery(id);
}

Query RandomQueryModel::FreshQuery(QueryId id) {
  const SimDuration epoch = params_.epochs[rng_.Index(params_.epochs.size())];
  PredicateSet predicates = RandomPredicates();
  if (rng_.Bernoulli(params_.aggregation_fraction)) {
    const AggregateOp op =
        params_.operators[rng_.Index(params_.operators.size())];
    const Attribute attr =
        params_.attributes[rng_.Index(params_.attributes.size())];
    return Query::Aggregation(id, {AggregateSpec{op, attr}},
                              std::move(predicates), epoch);
  }
  std::vector<Attribute> attrs;
  if (params_.acquisition_selects_all) {
    attrs.assign(params_.attributes.begin(), params_.attributes.end());
  } else {
    attrs.push_back(params_.attributes[rng_.Index(params_.attributes.size())]);
    if (params_.attributes.size() > 1 && rng_.Bernoulli(0.5)) {
      attrs.push_back(
          params_.attributes[rng_.Index(params_.attributes.size())]);
    }
  }
  return Query::Acquisition(id, std::move(attrs), std::move(predicates),
                            epoch);
}

std::vector<WorkloadEvent> DynamicSchedule(RandomQueryModel& model,
                                           std::size_t count,
                                           double mean_interarrival_ms,
                                           double mean_duration_ms,
                                           std::uint64_t seed,
                                           QueryId first_id) {
  CheckArg(mean_interarrival_ms > 0 && mean_duration_ms > 0,
           "DynamicSchedule: means must be positive");
  Rng rng(seed);
  std::vector<WorkloadEvent> events;
  events.reserve(2 * count);
  double arrival = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    arrival += rng.Exponential(mean_interarrival_ms);
    const QueryId id = first_id + static_cast<QueryId>(i);
    Query query = model.Next(id);
    const double raw_duration = rng.Exponential(mean_duration_ms);
    const auto duration = std::max<SimDuration>(
        static_cast<SimDuration>(raw_duration),
        2 * query.epoch());  // run for at least two epochs

    WorkloadEvent submit;
    submit.time = static_cast<SimTime>(arrival);
    submit.kind = WorkloadEvent::Kind::kSubmit;
    submit.id = id;
    submit.query = std::move(query);

    WorkloadEvent terminate;
    terminate.time = submit.time + duration;
    terminate.kind = WorkloadEvent::Kind::kTerminate;
    terminate.id = id;

    events.push_back(std::move(submit));
    events.push_back(std::move(terminate));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const WorkloadEvent& a, const WorkloadEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::vector<WorkloadEvent> StaticSchedule(const std::vector<Query>& queries,
                                          SimTime at) {
  std::vector<WorkloadEvent> events;
  events.reserve(queries.size());
  for (const Query& query : queries) {
    WorkloadEvent submit;
    submit.time = at;
    submit.kind = WorkloadEvent::Kind::kSubmit;
    submit.id = query.id();
    submit.query = query;
    events.push_back(std::move(submit));
  }
  return events;
}

}  // namespace ttmqo
