#include "reliable/arq.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {

SimDuration ArqRto(const ArqOptions& options, int backoff_exponent,
                   Rng& rng) {
  CheckArg(backoff_exponent >= 0, "ArqRto: negative backoff exponent");
  SimDuration rto = options.base_rto_ms;
  for (int i = 0; i < backoff_exponent && rto < options.max_rto_ms; ++i) {
    rto *= 2;
  }
  rto = std::min(rto, options.max_rto_ms);
  if (options.jitter_ms > 0) {
    rto += rng.UniformInt(0, options.jitter_ms);
  }
  return rto;
}

Rng ArqJitterRng(std::uint64_t seed, NodeId sender, std::uint32_t seq) {
  return Rng(seed).Fork((static_cast<std::uint64_t>(sender) << 32) |
                        static_cast<std::uint64_t>(seq));
}

ArqTransport::ArqTransport(Network& network, ArqOptions options)
    : network_(network),
      options_(options),
      upper_(network.topology().size()),
      next_seq_(network.topology().size(), 0),
      live_(network.topology().size()),
      seen_(network.topology().size()),
      quarantine_(network.topology().size()) {
  CheckArg(options_.base_rto_ms > 0 && options_.max_rto_ms >= options_.base_rto_ms,
           "ArqTransport: bad RTO bounds");
  CheckArg(options_.max_attempts >= 1, "ArqTransport: need >= 1 attempt");
}

void ArqTransport::Attach(NodeId node, Network::Receiver upper) {
  upper_[node] = std::move(upper);
  network_.SetReceiver(node, [this, node](const Message& msg,
                                          bool addressed) {
    OnReceive(node, msg, addressed);
  });
}

void ArqTransport::Send(Message msg, SimTime deadline, int reroutes) {
  CheckArg(msg.mode != AddressMode::kBroadcast,
           "ArqTransport::Send: broadcasts are fire-and-forget");
  const NodeId sender = msg.sender;
  const std::uint32_t seq = next_seq_[sender]++;

  const std::uint32_t index = AcquireSlot();
  PendingSlot& slot = slots_[index];
  slot.seq = seq;
  slot.deadline = deadline;
  slot.attempt = 1;
  slot.reroutes = reroutes;
  slot.rng = ArqJitterRng(options_.seed, sender, seq);
  slot.unacked = msg.destinations;
  slot.msg = std::move(msg);
  slot.msg.payload = std::make_shared<ArqDataPayload>(
      seq, std::move(slot.msg.payload));
  slot.msg.payload_bytes += kArqHeaderBytes;
  live_[sender].emplace(seq, index);
  ++sends_;

  // Give-up re-routes and repair traffic fire from timers, when the
  // sender may have dozed off between epochs; the radio insists on an
  // awake sender for every transmission.
  if (network_.IsAsleep(sender)) network_.SetAsleep(sender, false);
  network_.Send(slot.msg);
  ScheduleTimeout(index);
}

void ArqTransport::ScheduleTimeout(std::uint32_t index) {
  PendingSlot& slot = slots_[index];
  const SimDuration rto = ArqRto(options_, slot.attempt - 1, slot.rng);
  const auto fire = [this, index, generation = slot.generation]() {
    OnTimeout(index, generation);
  };
  static_assert(Simulator::EventFn::kFitsInline<decltype(fire)>,
                "ARQ retry timers must stay in the pooled inline slab");
  network_.sim().ScheduleAfter(rto, fire);
}

void ArqTransport::OnTimeout(std::uint32_t index, std::uint32_t generation) {
  PendingSlot& slot = slots_[index];
  if (!slot.in_use || slot.generation != generation) return;  // acked/stale
  const SimTime now = network_.sim().Now();
  const NodeId sender = slot.msg.sender;

  if (slot.attempt >= options_.max_attempts || now >= slot.deadline) {
    // Budget spent: strike every silent destination, hand the original
    // payload to the engine (it may re-route), and recycle the slot.
    ++give_ups_;
    for (NodeId dest : slot.unacked) Strike(sender, dest);
    if (give_up_) {
      const auto* data =
          static_cast<const ArqDataPayload*>(slot.msg.payload.get());
      GiveUpInfo info;
      info.cls = slot.msg.cls;
      info.sender = sender;
      info.inner = data->inner;
      info.inner_bytes = slot.msg.payload_bytes - kArqHeaderBytes;
      info.unacked = std::move(slot.unacked);
      info.deadline = slot.deadline;
      info.reroutes = slot.reroutes;
      ReleaseSlot(index);
      give_up_(info);
      return;
    }
    ReleaseSlot(index);
    return;
  }

  // Retransmit to the silent subset only.
  ++retransmits_;
  ++slot.attempt;
  Message retry = slot.msg;
  retry.destinations = slot.unacked;
  retry.mode = retry.destinations.size() == 1 ? AddressMode::kUnicast
                                              : AddressMode::kMulticast;
  if (network_.IsAsleep(sender)) network_.SetAsleep(sender, false);
  network_.Send(std::move(retry));
  ScheduleTimeout(index);
}

void ArqTransport::OnReceive(NodeId self, const Message& msg,
                             bool addressed) {
  if (const auto* data =
          dynamic_cast<const ArqDataPayload*>(msg.payload.get())) {
    // Reconstruct the application-level message so the engine sees exactly
    // what it would without the transport (overhearing included).
    Message inner;
    inner.cls = msg.cls;
    inner.mode = msg.mode;
    inner.sender = msg.sender;
    inner.destinations = msg.destinations;
    inner.payload_bytes = msg.payload_bytes - kArqHeaderBytes;
    inner.payload = data->inner;
    if (!addressed) {
      if (upper_[self]) upper_[self](inner, false);
      return;
    }
    // Ack every addressed copy — re-acking duplicates is what resolves the
    // ack-was-lost ambiguity on the sender side.
    SendAck(self, msg.sender, data->seq);
    SeenWindow& window = seen_[self][msg.sender];
    const bool below_window =
        window.max_seen > options_.dedup_window &&
        data->seq < window.max_seen - options_.dedup_window;
    if (below_window || !window.seqs.insert(data->seq).second) {
      ++duplicates_dropped_;
      return;
    }
    if (data->seq > window.max_seen) {
      window.max_seen = data->seq;
      // Slide the window: sequence numbers too old to be live duplicates
      // are forgotten, bounding the table for long-lived runs.
      if (window.max_seen > options_.dedup_window) {
        const std::uint32_t floor = window.max_seen - options_.dedup_window;
        window.seqs.erase(window.seqs.begin(),
                          window.seqs.lower_bound(floor));
      }
    }
    if (upper_[self]) upper_[self](inner, true);
    return;
  }

  if (const auto* ack =
          dynamic_cast<const ArqAckPayload*>(msg.payload.get())) {
    if (addressed) {
      auto& live = live_[self];
      const auto it = live.find(ack->seq);
      if (it != live.end()) {
        PendingSlot& slot = slots_[it->second];
        std::erase(slot.unacked, msg.sender);
        ClearStrikes(self, msg.sender);
        if (slot.unacked.empty()) ReleaseSlot(it->second);
      }
    }
    // Fall through to the engine: an overheard ack is still proof of life
    // for its sender (the engine's liveness tracking sees every message).
    if (upper_[self]) upper_[self](msg, addressed);
    return;
  }

  if (upper_[self]) upper_[self](msg, addressed);
}

void ArqTransport::SendAck(NodeId self, NodeId to, std::uint32_t seq) {
  if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
  // Recycle a pool entry whose previous network copy has been released;
  // mutating it is safe once this transport holds the only reference.
  std::shared_ptr<ArqAckPayload> payload;
  for (auto& pooled : ack_pool_) {
    if (pooled.use_count() == 1) {
      pooled->seq = seq;
      payload = pooled;
      break;
    }
  }
  if (payload == nullptr) {
    payload = std::make_shared<ArqAckPayload>(seq);
    if (ack_pool_.size() < 64) ack_pool_.push_back(payload);
  }
  Message ack;
  ack.cls = MessageClass::kControl;
  ack.mode = AddressMode::kUnicast;
  ack.sender = self;
  ack.destinations.push_back(to);
  ack.payload_bytes = kArqAckBytes;
  ack.payload = std::move(payload);
  ++acks_sent_;
  network_.Send(std::move(ack));
}

bool ArqTransport::IsQuarantined(NodeId self, NodeId neighbor) const {
  const auto& per_node = quarantine_[self];
  const auto it = per_node.find(neighbor);
  return it != per_node.end() && network_.sim().Now() < it->second.until;
}

void ArqTransport::Strike(NodeId self, NodeId neighbor) {
  Quarantine& q = quarantine_[self][neighbor];
  if (++q.strikes < options_.quarantine_threshold) return;
  q.strikes = 0;
  q.backoff = q.backoff == 0
                  ? options_.quarantine_base_ms
                  : std::min(q.backoff * 2, options_.quarantine_max_ms);
  q.until = network_.sim().Now() + q.backoff;
  ++quarantines_;
  if (quarantine_hook_) quarantine_hook_(self, neighbor, q.until);
}

void ArqTransport::ClearStrikes(NodeId self, NodeId neighbor) {
  const auto it = quarantine_[self].find(neighbor);
  if (it == quarantine_[self].end()) return;
  Quarantine& q = it->second;
  q.strikes = 0;
  q.until = 0;
  // Hysteresis: one good ack halves the backoff instead of erasing it, so
  // a flapping neighbor earns trust back gradually.
  q.backoff /= 2;
  if (q.backoff == 0) quarantine_[self].erase(it);
}

std::uint32_t ArqTransport::AcquireSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    slots_[index].in_use = true;
    return index;
  }
  slots_.emplace_back();
  slots_.back().in_use = true;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ArqTransport::ReleaseSlot(std::uint32_t index) {
  PendingSlot& slot = slots_[index];
  live_[slot.msg.sender].erase(slot.seq);
  slot.in_use = false;
  ++slot.generation;
  slot.msg = Message{};
  slot.unacked.clear();
  free_slots_.push_back(index);
}

}  // namespace ttmqo
