# Empty dependencies file for multicast_split_test.
# This may be replaced when dependencies are built.
