#include "net/topology.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace ttmqo {

Topology::Topology(std::vector<Position> positions, double range_feet)
    : positions_(std::move(positions)), range_feet_(range_feet) {
  CheckArg(!positions_.empty(), "Topology: need at least one node");
  CheckArg(positions_.size() <= std::numeric_limits<NodeId>::max(),
           "Topology: too many nodes for the NodeId type");
  CheckArg(range_feet > 0, "Topology: range must be positive");

  // One O(n^2) distance pass derives both relations: communication
  // (<= range) and interference (<= 2x range, CSR + bitset).
  const std::size_t n = positions_.size();
  const double interference_feet = kInterferenceRangeFactor * range_feet_;
  neighbors_.resize(n);
  bits_stride_ = (n + 63) / 64;
  interference_bits_.assign(n * bits_stride_, 0);
  std::vector<std::vector<NodeId>> interferers(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d = Distance(positions_[a], positions_[b]);
      if (d <= range_feet_) {
        neighbors_[a].push_back(static_cast<NodeId>(b));
        neighbors_[b].push_back(static_cast<NodeId>(a));
      }
      if (d <= interference_feet) {
        interferers[a].push_back(static_cast<NodeId>(b));
        interferers[b].push_back(static_cast<NodeId>(a));
        interference_bits_[a * bits_stride_ + b / 64] |= 1ULL << (b % 64);
        interference_bits_[b * bits_stride_ + a / 64] |= 1ULL << (a % 64);
      }
    }
  }
  // Pushing ascending ids keeps every per-node list sorted already.
  interference_offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    interference_offsets_[i + 1] =
        interference_offsets_[i] +
        static_cast<std::uint32_t>(interferers[i].size());
  }
  interference_flat_.reserve(interference_offsets_[n]);
  for (const auto& list : interferers) {
    interference_flat_.insert(interference_flat_.end(), list.begin(),
                              list.end());
  }

  // BFS from the base station for hop levels.
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  levels_.assign(positions_.size(), kUnreached);
  levels_[kBaseStationId] = 0;
  std::deque<NodeId> frontier{kBaseStationId};
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    for (NodeId next : neighbors_[node]) {
      if (levels_[next] == kUnreached) {
        levels_[next] = levels_[node] + 1;
        frontier.push_back(next);
      }
    }
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    CheckArg(levels_[i] != kUnreached,
             "Topology: node unreachable from the base station");
    max_depth_ = std::max(max_depth_, levels_[i]);
  }
  nodes_per_level_.assign(max_depth_ + 1, 0);
  for (std::size_t level : levels_) ++nodes_per_level_[level];
}

Topology Topology::Grid(std::size_t side, double spacing_feet,
                        double range_feet) {
  CheckArg(side > 0, "Topology::Grid: side must be positive");
  std::vector<Position> positions;
  positions.reserve(side * side);
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      positions.push_back(Position{static_cast<double>(col) * spacing_feet,
                                   static_cast<double>(row) * spacing_feet});
    }
  }
  return Topology(std::move(positions), range_feet);
}

Topology Topology::RandomUniform(std::size_t num_nodes, double side_feet,
                                 double range_feet, std::uint64_t seed) {
  CheckArg(num_nodes > 0, "Topology::RandomUniform: need at least one node");
  Rng rng(seed);
  for (int attempt = 0; attempt < 256; ++attempt) {
    std::vector<Position> positions;
    positions.reserve(num_nodes);
    positions.push_back(Position{0.0, 0.0});  // base station at the corner
    for (std::size_t i = 1; i < num_nodes; ++i) {
      positions.push_back(Position{rng.Uniform(0.0, side_feet),
                                   rng.Uniform(0.0, side_feet)});
    }
    try {
      return Topology(std::move(positions), range_feet);
    } catch (const std::invalid_argument&) {
      continue;  // disconnected sample; redraw
    }
  }
  throw std::invalid_argument(
      "Topology::RandomUniform: could not draw a connected deployment; "
      "increase range or density");
}

const Position& Topology::PositionOf(NodeId node) const {
  CheckArg(node < positions_.size(), "Topology: node id out of range");
  return positions_[node];
}

const std::vector<NodeId>& Topology::NeighborsOf(NodeId node) const {
  CheckArg(node < neighbors_.size(), "Topology: node id out of range");
  return neighbors_[node];
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  const auto& list = NeighborsOf(a);
  return std::binary_search(list.begin(), list.end(), b);
}

std::span<const NodeId> Topology::InterferersOf(NodeId node) const {
  CheckArg(node < positions_.size(), "Topology: node id out of range");
  return {interference_flat_.data() + interference_offsets_[node],
          interference_flat_.data() + interference_offsets_[node + 1]};
}

std::vector<NodeId> Topology::AllNodes() const {
  std::vector<NodeId> nodes(positions_.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<NodeId>(i);
  }
  return nodes;
}

}  // namespace ttmqo
