// The discrete-event simulation core.
//
// A single-threaded event loop with a totally ordered queue: events fire in
// (time, insertion-sequence) order, so equal-time events run in the order
// they were scheduled and every run is exactly reproducible.
//
// Internals are built for an allocation-free steady state:
//   - The priority queue is a hand-rolled binary heap of 24-byte
//     `QueuedEvent` records (time, sequence, slot) — sifting moves plain
//     integers, never callables.
//   - Callables live in a slab of pooled `EventFn` slots recycled through a
//     free list; `EventFn` stores small captures inline (see
//     `InlineCallable`), so scheduling and firing a radio event performs no
//     heap allocation once the slab and heap have reached their high-water
//     marks.  Events are moved through the pipeline, never copied.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/inline_callable.h"
#include "util/time.h"

namespace ttmqo {

/// The event loop.  Not thread-safe (by design: determinism).
class Simulator {
 public:
  /// An event handler.  The inline capacity is sized for the radio hot
  /// path's largest capture (a `Message` plus attempt counter, start time,
  /// and network pointer — see the static_asserts in network.cc); bigger
  /// captures still work but fall back to one heap allocation.
  using EventFn = InlineCallable<104>;

  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= Now()).
  void ScheduleAt(SimTime t, EventFn fn);

  /// Schedules `fn` `delay` ms from now (delay >= 0).
  void ScheduleAfter(SimDuration delay, EventFn fn);

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`; afterwards Now() == `until` (events at exactly `until` run).
  void RunUntil(SimTime until);

  /// Runs a single event; returns false when the queue is empty.
  bool Step();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return events_executed_; }

  /// Number of events waiting.
  std::size_t pending() const { return heap_.size(); }

 private:
  /// One heap record.  The callable itself stays put in `slab_[slot]`
  /// while this trivially-copyable triple percolates through the heap.
  struct QueuedEvent {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool Earlier(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  /// Min-heap on (time, seq).
  std::vector<QueuedEvent> heap_;
  /// Pooled callable storage indexed by `QueuedEvent::slot`.
  std::vector<EventFn> slab_;
  /// Recycled slab slots.
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace ttmqo
