#!/usr/bin/env python3
"""Strips the machine-dependent fields from a bench artifact.

CI regenerates committed bench JSON (BENCH_bsopt.json) and diffs it against
the checked-in copy.  Decision counts must match exactly — they are
deterministic in the workload seed — but wall-clock timings, derived rates,
and build provenance differ per host and per commit, so both sides of the
diff pass through this filter first.

Usage: strip_bench_timings.py FILE  (filtered JSON on stdout)
"""
import json
import sys

VOLATILE_KEYS = {
    "seconds",
    "inserts_per_sec",
    "speedup_x",
    "build",
    # Hotpath/sweep artifacts: wall clock, derived rates, and host shape
    # vary per machine; event and decision counts must not.
    "wall_ms",
    "serial_wall_ms",
    "per_run_wall_ms",
    "events_per_sec",
    "serial_events_per_sec",
    "runs_per_sec",
    "speedup",
    "speedup_vs_baseline",
    "batch_speedup",
    "aggregate_speedup",
    "hardware_concurrency",
}


def strip(node):
    if isinstance(node, dict):
        return {
            key: strip(value)
            for key, value in node.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(node, list):
        return [strip(item) for item in node]
    return node


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as fp:
        artifact = json.load(fp)
    json.dump(strip(artifact), sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
