// Tests of the TtmqoEngine facade: mode wiring, user-level result
// delivery, dynamic insertion/termination through both tiers.
#include <gtest/gtest.h>

#include "core/ttmqo_engine.h"
#include "query/parser.h"
#include "test_helpers.h"

namespace ttmqo {
namespace {

using ::ttmqo::testing::FillOracle;

class TtmqoEngineTest : public ::testing::TestWithParam<OptimizationMode> {
 protected:
  TtmqoEngineTest()
      : topology_(Topology::Grid(4)),
        network_(topology_, RadioParams{}, ChannelParams{}, 42),
        field_(7) {}

  TtmqoEngine MakeEngine() {
    TtmqoOptions options;
    options.mode = GetParam();
    return TtmqoEngine(network_, field_, &log_, options);
  }

  Topology topology_;
  Network network_;
  UniformFieldModel field_;
  ResultLog log_;
};

TEST_P(TtmqoEngineTest, SingleQueryMatchesOracleInEveryMode) {
  TtmqoEngine engine = MakeEngine();
  const Query q = ParseQuery(
      1, "SELECT light WHERE light > 250 EPOCH DURATION 4096");
  engine.SubmitQuery(q);
  network_.sim().RunUntil(8 * 4096);
  ResultLog oracle;
  FillOracle(oracle, q, 8 * 4096, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_P(TtmqoEngineTest, OverlappingQueriesBothAnswered) {
  TtmqoEngine engine = MakeEngine();
  const Query a =
      ParseQuery(1, "SELECT light WHERE light > 200 EPOCH DURATION 4096");
  const Query b =
      ParseQuery(2, "SELECT light WHERE light > 400 EPOCH DURATION 8192");
  engine.SubmitQuery(a);
  engine.SubmitQuery(b);
  network_.sim().RunUntil(8 * 8192);
  ResultLog oracle;
  FillOracle(oracle, a, 8 * 8192, field_, topology_);
  FillOracle(oracle, b, 8 * 8192, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {a, b});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_P(TtmqoEngineTest, LateArrivalStartsAtItsOwnFirstEpoch) {
  TtmqoEngine engine = MakeEngine();
  engine.SubmitQuery(
      ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network_.sim().ScheduleAt(3 * 4096 + 50, [&] {
    engine.SubmitQuery(
        ParseQuery(2, "SELECT light WHERE light > 100 EPOCH DURATION 4096"));
  });
  network_.sim().RunUntil(8 * 4096);
  // Query 2 must not receive answers for epochs before its submission —
  // even when it is covered by the already-running query 1.
  EXPECT_EQ(log_.Find(2, 2 * 4096), nullptr);
  EXPECT_EQ(log_.Find(2, 3 * 4096), nullptr);
  EXPECT_NE(log_.Find(2, 5 * 4096), nullptr);
}

TEST_P(TtmqoEngineTest, TerminationStopsUserResults) {
  TtmqoEngine engine = MakeEngine();
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  engine.SubmitQuery(
      ParseQuery(2, "SELECT light WHERE light > 300 EPOCH DURATION 4096"));
  network_.sim().ScheduleAt(4 * 4096 + 100, [&] { engine.TerminateQuery(2); });
  network_.sim().RunUntil(10 * 4096);
  // Query 1 keeps flowing; query 2 stops after its termination.
  EXPECT_NE(log_.Find(1, 8 * 4096), nullptr);
  EXPECT_EQ(log_.Find(2, 6 * 4096), nullptr);
  EXPECT_NE(log_.Find(2, 3 * 4096), nullptr);
  EXPECT_EQ(engine.NumUserQueries(), 1u);
}

TEST_P(TtmqoEngineTest, DuplicateAndUnknownIdsRejected) {
  TtmqoEngine engine = MakeEngine();
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  EXPECT_THROW(
      engine.SubmitQuery(ParseQuery(1, "SELECT temp EPOCH DURATION 4096")),
      std::invalid_argument);
  EXPECT_THROW(engine.TerminateQuery(99), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TtmqoEngineTest,
    ::testing::Values(OptimizationMode::kBaseline,
                      OptimizationMode::kBaseStationOnly,
                      OptimizationMode::kInNetworkOnly,
                      OptimizationMode::kTwoTier),
    [](const ::testing::TestParamInfo<OptimizationMode>& param_info) {
      switch (param_info.param) {
        case OptimizationMode::kBaseline:
          return "Baseline";
        case OptimizationMode::kBaseStationOnly:
          return "BsOnly";
        case OptimizationMode::kInNetworkOnly:
          return "InNetOnly";
        default:
          return "TwoTier";
      }
    });

TEST(TtmqoEngineModeTest, RewritingModesExposeTheOptimizer) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(1);
  for (OptimizationMode mode :
       {OptimizationMode::kBaseline, OptimizationMode::kInNetworkOnly}) {
    Network network(topology, RadioParams{}, ChannelParams{}, 1);
    TtmqoOptions options;
    options.mode = mode;
    TtmqoEngine engine(network, field, nullptr, options);
    EXPECT_EQ(engine.optimizer(), nullptr);
    EXPECT_DOUBLE_EQ(engine.BenefitRatio(), 0.0);
  }
  for (OptimizationMode mode : {OptimizationMode::kBaseStationOnly,
                                OptimizationMode::kTwoTier}) {
    Network network(topology, RadioParams{}, ChannelParams{}, 1);
    TtmqoOptions options;
    options.mode = mode;
    TtmqoEngine engine(network, field, nullptr, options);
    EXPECT_NE(engine.optimizer(), nullptr);
  }
}

TEST(TtmqoEngineModeTest, CoveredQueryCausesNoNetworkTraffic) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(1);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, &log, options);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network.sim().RunUntil(2 * 4096);
  const auto prop_before =
      network.ledger().TotalSent(MessageClass::kQueryPropagation);
  // Covered by the running query: no new flood, no abort.
  engine.SubmitQuery(
      ParseQuery(2, "SELECT light WHERE light > 500 EPOCH DURATION 8192"));
  network.sim().RunUntil(4 * 4096);
  EXPECT_EQ(network.ledger().TotalSent(MessageClass::kQueryPropagation),
            prop_before);
  EXPECT_EQ(network.ledger().TotalSent(MessageClass::kQueryAbort), 0u);
  EXPECT_EQ(engine.NumNetworkQueries(), 1u);
  EXPECT_EQ(engine.NumUserQueries(), 2u);
  EXPECT_GT(engine.BenefitRatio(), 0.0);
}

TEST(TtmqoEngineModeTest, BenefitRatioGrowsWithSimilarQueries) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(1);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, nullptr, options);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  const double before = engine.BenefitRatio();
  for (QueryId i = 2; i <= 6; ++i) {
    engine.SubmitQuery(ParseQuery(
        i, "SELECT light WHERE light > 300 EPOCH DURATION 8192"));
  }
  EXPECT_GT(engine.BenefitRatio(), before);
  EXPECT_EQ(engine.NumNetworkQueries(), 1u);
}

}  // namespace
}  // namespace ttmqo

namespace lifetime_tests {
using namespace ttmqo;

TEST(LifetimeTest, ForClauseSelfTerminates) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(1);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, &log, options);
  engine.SubmitQuery(
      ParseQuery(1, "SELECT light EPOCH DURATION 4096 FOR 20480"));
  engine.SubmitQuery(ParseQuery(2, "SELECT temp EPOCH DURATION 4096"));
  network.sim().RunUntil(12 * 4096);
  // Query 1 ran for its lifetime; query 2 keeps running.  (The epoch whose
  // close coincides with the lifetime boundary is suppressed: the
  // termination event was scheduled first and wins the tie.)
  EXPECT_EQ(engine.NumUserQueries(), 1u);
  EXPECT_NE(log.Find(1, 3 * 4096), nullptr);
  EXPECT_EQ(log.Find(1, 5 * 4096), nullptr);
  EXPECT_EQ(log.Find(1, 6 * 4096), nullptr);
  EXPECT_NE(log.Find(2, 10 * 4096), nullptr);
}

TEST(LifetimeTest, ManualTerminationBeforeLifetimeIsSafe) {
  const Topology topology = Topology::Grid(4);
  UniformFieldModel field(1);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kBaseline;
  TtmqoEngine engine(network, field, &log, options);
  engine.SubmitQuery(
      ParseQuery(1, "SELECT light EPOCH DURATION 4096 FOR 40960"));
  network.sim().ScheduleAt(4096 + 10, [&] { engine.TerminateQuery(1); });
  // The auto-termination event fires later and must be a no-op.
  network.sim().RunUntil(12 * 4096);
  EXPECT_EQ(engine.NumUserQueries(), 0u);
}

}  // namespace lifetime_tests
