// Small numeric helpers shared across the project.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>

#include "util/check.h"
#include "util/time.h"

namespace ttmqo {

/// Greatest common divisor of two positive durations.
constexpr SimDuration Gcd(SimDuration a, SimDuration b) {
  return std::gcd(a, b);
}

/// GCD over a non-empty range of positive durations.  Used by the in-network
/// tier to derive the shared clock period (Section 3.2.1).
SimDuration GcdAll(std::span<const SimDuration> values);

/// Least common multiple of two positive durations (the hyper-period of two
/// epoch clocks).
constexpr SimDuration Lcm(SimDuration a, SimDuration b) {
  return std::lcm(a, b);
}

/// Rounds `t` up to the next multiple of `step` (returns `t` when already
/// aligned).  Used to phase-align query epoch starts (Section 3.2.1).
constexpr SimTime AlignUp(SimTime t, SimDuration step) {
  const SimTime rem = t % step;
  return rem == 0 ? t : t + (step - rem);
}

/// True iff `a` divides `b` exactly.
constexpr bool Divides(SimDuration a, SimDuration b) {
  return a > 0 && b % a == 0;
}

}  // namespace ttmqo
