// Golden-run regression suite: three pinned scenarios whose canonical
// fingerprints (see sweep/fingerprint.h) are stored under tests/golden/.
// Any change to simulated behavior — row counts, message totals,
// transmission time, delivery completeness — fails here with a diffable
// before/after, so refactors that were supposed to be behavior-preserving
// prove it and intentional changes update the goldens consciously.
//
// To refresh after an intentional behavior change:
//
//   TTMQO_UPDATE_GOLDEN=1 ctest --test-dir build -R GoldenRegression
//
// then review `git diff tests/golden/` line by line before committing —
// every changed line is a behavior change you are signing off on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/innet/innet_engine.h"
#include "fault/fault_plan.h"
#include "metrics/run_summary.h"
#include "query/parser.h"
#include "sensing/field_model.h"
#include "sweep/fingerprint.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

#ifndef TTMQO_GOLDEN_DIR
#error "TTMQO_GOLDEN_DIR must point at tests/golden (set in CMakeLists)"
#endif

namespace ttmqo {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(TTMQO_GOLDEN_DIR) + "/" + name;
}

// Compares `fingerprint` against the stored golden, or rewrites the
// golden when TTMQO_UPDATE_GOLDEN is set in the environment.
void CheckGolden(const std::string& name, const std::string& fingerprint) {
  const std::string path = GoldenPath(name);
  if (std::getenv("TTMQO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << fingerprint;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << "; generate it with TTMQO_UPDATE_GOLDEN=1";
  std::ostringstream stored;
  stored << in.rdbuf();
  EXPECT_EQ(stored.str(), fingerprint)
      << "behavior drifted from " << path
      << "; if intentional, refresh with TTMQO_UPDATE_GOLDEN=1 and review "
         "the diff";
}

// The Figure 2 field: a fixed far-corner cluster holds elevated light
// readings (mirrors fig2_scenario_test.cc).
class ClusterField final : public FieldModel {
 public:
  explicit ClusterField(std::set<NodeId> hot) : hot_(std::move(hot)) {}

  double Sample(NodeId node, const Position&, Attribute attr,
                SimTime time) const override {
    if (attr == Attribute::kNodeId) return node;
    const double base = hot_.contains(node) ? 900.0 : 100.0;
    return base + static_cast<double>((node * 7 + time / 2048) % 50);
  }

 private:
  std::set<NodeId> hot_;
};

// Scenario 1: the paper's Figure 2 — two overlapping acquisition queries
// answered by a spatial cluster through the in-network tier alone.
TEST(GoldenRegressionTest, Fig2Scenario) {
  const Topology topology = Topology::Grid(4);
  const ClusterField field({10, 11, 14, 15, 13});
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  InNetworkEngine engine(network, field, &log);
  engine.SubmitQuery(
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096"));
  engine.SubmitQuery(
      ParseQuery(2, "SELECT light WHERE light > 890 EPOCH DURATION 4096"));
  network.sim().RunUntil(8 * 4096);

  CheckGolden("fig2_scenario.txt",
              FingerprintRun(log, RunSummary::FromLedger(network.ledger(),
                                                         8 * 4096)));
}

// Scenario 2: a full TTMQO run — WORKLOAD_C on a 6x6 grid through the
// complete two-tier stack and experiment harness.
TEST(GoldenRegressionTest, TtmqoSixBySix) {
  RunConfig config;
  config.grid_side = 6;
  config.mode = OptimizationMode::kTwoTier;
  config.field = FieldKind::kCorrelated;
  config.duration_ms = 8 * 12288;
  config.seed = 42;
  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadC()));
  CheckGolden("ttmqo_6x6.txt", FingerprintRun(run));
}

// Scenario 3: reliability behavior — a crash, a transient outage, and a
// degraded link on a 4x4 TTMQO run.  Pins retransmission counts and
// delivery completeness, not just answers.
TEST(GoldenRegressionTest, FaultPlanRun) {
  FaultPlan plan;
  plan.AddCrash(/*node=*/5, /*at=*/3 * 12288);
  plan.AddOutage(/*node=*/10, /*from=*/2 * 12288, /*until=*/4 * 12288);
  plan.AddLinkLoss(/*a=*/1, /*b=*/2, /*prob=*/0.3, /*from=*/12288);

  RunConfig config;
  config.grid_side = 4;
  config.mode = OptimizationMode::kTwoTier;
  config.field = FieldKind::kCorrelated;
  config.duration_ms = 8 * 12288;
  config.seed = 7;
  config.faults = plan;
  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadA()));
  CheckGolden("fault_plan_4x4.txt", FingerprintRun(run));
}

// Scenario 4: dense contention — nonzero collision probability, a lossy
// link, and WORKLOAD_C's multicast-heavy two-tier traffic on a 5x5 grid.
// The earlier scenarios run on clean channels, so they never exercise the
// retry, interference-counting, or link-loss hot paths; this one pins all
// three (the fingerprint includes retransmission totals and event counts).
TEST(GoldenRegressionTest, DenseContentionRun) {
  FaultPlan plan;
  plan.AddLinkLoss(/*a=*/1, /*b=*/2, /*prob=*/0.25, /*from=*/12288);

  RunConfig config;
  config.grid_side = 5;
  config.mode = OptimizationMode::kTwoTier;
  config.field = FieldKind::kCorrelated;
  config.channel.collision_prob = 0.08;
  config.duration_ms = 8 * 12288;
  config.seed = 11;
  config.faults = plan;
  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadC()));
  // The scenario must actually generate contention, or the golden would
  // silently pin a clean-channel run.
  EXPECT_GT(run.summary.retransmissions, 0u);
  CheckGolden("dense_contention_5x5.txt", FingerprintRun(run));
}

}  // namespace
}  // namespace ttmqo
