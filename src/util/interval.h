// Closed numeric intervals.
//
// Query predicates in the paper are range predicates `(attribute, min, max)`
// (Section 3.1.1); the base-station rewriter unions and intersects them when
// integrating queries and when estimating selectivity.  `Interval` models a
// closed range [lo, hi] over doubles, with an explicit empty state.
#pragma once

#include <algorithm>
#include <optional>
#include <string>

namespace ttmqo {

/// A closed interval [lo, hi] over doubles.  An interval with lo > hi is
/// normalized to the canonical empty interval.
class Interval {
 public:
  /// The empty interval.
  Interval() = default;

  /// Builds [lo, hi]; if lo > hi the result is empty.
  Interval(double lo, double hi);

  /// The interval covering every representable value.
  static Interval All();

  /// True iff no value lies inside.
  bool empty() const { return empty_; }

  /// Lower bound; only meaningful when not empty.
  double lo() const { return lo_; }

  /// Upper bound; only meaningful when not empty.
  double hi() const { return hi_; }

  /// Width (hi - lo); 0 for empty intervals.
  double Length() const { return empty_ ? 0.0 : hi_ - lo_; }

  /// True iff `v` lies within the interval.
  bool Contains(double v) const { return !empty_ && v >= lo_ && v <= hi_; }

  /// True iff every point of `other` lies within this interval.  The empty
  /// interval is covered by everything.
  bool Covers(const Interval& other) const;

  /// True iff the intervals share at least one point.
  bool Intersects(const Interval& other) const;

  /// The common part of the two intervals (possibly empty).
  Interval Intersect(const Interval& other) const;

  /// The smallest single interval containing both inputs.  This is the
  /// *convex hull*, not a set union: integrating predicates `[100,300]` and
  /// `[280,600]` yields `[100,600]` as in the paper's worked example.
  Interval Hull(const Interval& other) const;

  /// Fraction of this interval's length that `other` overlaps; 0 when either
  /// is empty or this interval has zero length.
  double OverlapFraction(const Interval& other) const;

  bool operator==(const Interval& other) const = default;

  /// "[lo, hi]" or "(empty)".
  std::string ToString() const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  bool empty_ = true;
};

}  // namespace ttmqo
