# Empty dependencies file for fig3_workloads.
# This may be replaced when dependencies are built.
