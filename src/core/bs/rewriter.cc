#include "core/bs/rewriter.h"

#include <algorithm>
#include <bit>
#include <tuple>

#include "obs/span.h"
#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {
namespace {

// Memo caches are cleared wholesale at this size; the cap only matters for
// adversarial workloads (normal runs dedupe to a few thousand structures).
constexpr std::size_t kMemoCapacity = std::size_t{1} << 20;

// Relative slack applied before pruning on the benefit-rate upper bound.
// The bound is admissible in real arithmetic; the slack absorbs the few ULPs
// by which floating-point evaluation of the bound and the exact rate can
// disagree, so a candidate tied with the current best is never pruned.
constexpr double kPruneSlack = 1e-12;

// Structural equality of two network queries, ignoring the id.
bool SameRequest(const Query& a, const Query& b) {
  return a.kind() == b.kind() && a.epoch() == b.epoch() &&
         a.attributes() == b.attributes() && a.aggregates() == b.aggregates() &&
         a.predicates() == b.predicates();
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendDouble(std::string& out, double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 onto +0.0: they compare equal
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

// Signature of a predicate conjunction.  PredicateSet normalizes to at most
// one non-vacuous interval per attribute, so two sets compare equal iff
// their signatures match byte-for-byte (empty intervals all encode as 'E',
// signed zeros are folded above).
std::string PredicateKey(const PredicateSet& predicates) {
  std::string key;
  const auto list = predicates.AsList();
  key.push_back(static_cast<char>(list.size()));
  for (const Predicate& p : list) {
    key.push_back(static_cast<char>(AttributeIndex(p.attribute)));
    if (p.range.empty()) {
      key.push_back('E');
      continue;
    }
    key.push_back('I');
    AppendDouble(key, p.range.lo());
    AppendDouble(key, p.range.hi());
  }
  return key;
}

// Structural identity of a query as the cost model sees it: kind, epoch,
// attribute/aggregate lists, predicates.  Ids and lifetimes do not enter
// Eq. 1-3, so structurally equal queries share memo entries.
std::string StructuralKey(const Query& q) {
  std::string key;
  key.push_back(q.kind() == QueryKind::kAggregation ? 'G' : 'A');
  AppendU64(key, static_cast<std::uint64_t>(q.epoch()));
  key.push_back(static_cast<char>(q.attributes().size()));
  for (Attribute attr : q.attributes()) {
    key.push_back(static_cast<char>(AttributeIndex(attr)));
  }
  key.push_back(static_cast<char>(q.aggregates().size()));
  for (const AggregateSpec& spec : q.aggregates()) {
    key.push_back(static_cast<char>(spec.op));
    key.push_back(static_cast<char>(AttributeIndex(spec.attribute)));
  }
  key += PredicateKey(q.predicates());
  return key;
}

std::uint32_t AttributeMask(const std::vector<Attribute>& attrs) {
  std::uint32_t mask = 0;
  for (Attribute attr : attrs) {
    mask |= std::uint32_t{1} << AttributeIndex(attr);
  }
  return mask;
}

}  // namespace

BaseStationOptimizer::BaseStationOptimizer(const CostModel& cost,
                                           Options options)
    : cost_(&cost),
      options_(options),
      next_synthetic_id_(options.first_synthetic_id),
      stats_version_(cost.StatsVersion()) {
  CheckArg(options.alpha >= 0.0, "BaseStationOptimizer: alpha must be >= 0");
}

double BaseStationOptimizer::BenefitRate(const Query& qi,
                                         const SyntheticQuery& qj) const {
  if (Covers(qj.query, qi)) return 1.0;
  if (!IsRewritable(qj.query, qi)) return 0.0;
  const Query members[] = {qj.query, qi};
  const Query integrated = BuildNetworkQuery(qj.query.id(), members);
  const double cost_qi = cost_->Cost(qi);
  if (cost_qi <= 0.0) return 0.0;
  const double rate =
      cost_->Benefit(qi, qj.query, integrated) / cost_qi;
  // Exactly 1.0 is reserved for structural coverage; a non-covering merge
  // always changes the network query, so keep it strictly below.
  return std::min(rate, 1.0 - 1e-9);
}

double BaseStationOptimizer::CostOf(const Query& query) {
  if (!options_.use_index) return cost_->Cost(query);
  std::string key = StructuralKey(query);
  const auto it = cost_memo_.find(key);
  if (it != cost_memo_.end()) {
    ++istats_.memo_hits;
    return it->second;
  }
  const double cost = cost_->Cost(query);
  if (cost_memo_.size() >= kMemoCapacity) cost_memo_.clear();
  cost_memo_.emplace(std::move(key), cost);
  return cost;
}

double BaseStationOptimizer::RateOf(const Query& qi, const std::string& qi_key,
                                    QueryId sid, const SyntheticQuery& sq) {
  const auto key_it = synthetic_key_.find(sid);
  CheckArg(key_it != synthetic_key_.end(),
           "BaseStationOptimizer: synthetic missing from the key index");
  std::pair<std::string, std::string> memo_key(qi_key, key_it->second);
  const auto it = rate_memo_.find(memo_key);
  if (it != rate_memo_.end()) {
    ++istats_.memo_hits;
    return it->second;
  }
  ++istats_.exact_evaluations;
  const double rate = BenefitRate(qi, sq);
  if (rate_memo_.size() >= kMemoCapacity) rate_memo_.clear();
  rate_memo_.emplace(std::move(memo_key), rate);
  return rate;
}

void BaseStationOptimizer::SyncStatsVersion() {
  if (!options_.use_index) return;
  const std::uint64_t version = cost_->StatsVersion();
  if (version == stats_version_) return;
  stats_version_ = version;
  cost_memo_.clear();
  rate_memo_.clear();
  RebuildCostOrder();
}

void BaseStationOptimizer::RebuildCostOrder() {
  acq_order_.clear();
  agg_order_.clear();
  indexed_cost_.clear();
  for (const auto& [sid, sq] : synthetics_) {
    const double cost = CostOf(sq.query);
    indexed_cost_.emplace(sid, cost);
    (sq.query.kind() == QueryKind::kAcquisition ? acq_order_ : agg_order_)
        .insert({cost, sid});
  }
  if (!synthetics_.empty()) ++istats_.index_rebuilds;
}

void BaseStationOptimizer::IndexAdd(QueryId sid, const SyntheticQuery& sq) {
  if (!options_.use_index) return;
  const Query& q = sq.query;
  if (q.kind() == QueryKind::kAcquisition) {
    acq_buckets_[q.epoch()][AttributeMask(q.attributes())].insert(sid);
  } else {
    agg_buckets_[{PredicateKey(q.predicates()), q.epoch()}].insert(sid);
  }
  const double cost = CostOf(q);
  indexed_cost_.emplace(sid, cost);
  (q.kind() == QueryKind::kAcquisition ? acq_order_ : agg_order_)
      .insert({cost, sid});
  synthetic_key_.emplace(sid, StructuralKey(q));
}

void BaseStationOptimizer::IndexRemove(QueryId sid, const SyntheticQuery& sq) {
  if (!options_.use_index) return;
  const Query& q = sq.query;
  if (q.kind() == QueryKind::kAcquisition) {
    const auto epoch_it = acq_buckets_.find(q.epoch());
    CheckArg(epoch_it != acq_buckets_.end(),
             "BaseStationOptimizer: synthetic missing from coverage index");
    auto& masks = epoch_it->second;
    const auto mask_it = masks.find(AttributeMask(q.attributes()));
    CheckArg(mask_it != masks.end(),
             "BaseStationOptimizer: synthetic missing from coverage index");
    mask_it->second.erase(sid);
    if (mask_it->second.empty()) masks.erase(mask_it);
    if (masks.empty()) acq_buckets_.erase(epoch_it);
  } else {
    const auto it =
        agg_buckets_.find({PredicateKey(q.predicates()), q.epoch()});
    CheckArg(it != agg_buckets_.end(),
             "BaseStationOptimizer: synthetic missing from coverage index");
    it->second.erase(sid);
    if (it->second.empty()) agg_buckets_.erase(it);
  }
  const auto cost_it = indexed_cost_.find(sid);
  CheckArg(cost_it != indexed_cost_.end(),
           "BaseStationOptimizer: synthetic missing from cost order");
  (q.kind() == QueryKind::kAcquisition ? acq_order_ : agg_order_)
      .erase({cost_it->second, sid});
  indexed_cost_.erase(cost_it);
  synthetic_key_.erase(sid);
}

std::optional<QueryId> BaseStationOptimizer::CoverageLookup(
    const Query& net_query) const {
  bool found = false;
  QueryId best = kInvalidQueryId;
  const auto consider = [&](const std::set<QueryId>& ids) {
    for (QueryId sid : ids) {  // ascending, so the first cover is the min
      if (found && sid >= best) break;
      if (Covers(synthetics_.at(sid).query, net_query)) {
        best = sid;
        found = true;
        break;
      }
    }
  };
  // Acquisition synthetics can cover either kind, provided they carry every
  // attribute the covered query acquires (integration.cc).
  const std::uint32_t need = AttributeMask(net_query.AcquiredAttributes());
  for (const auto& [epoch, masks] : acq_buckets_) {
    if (epoch > net_query.epoch()) break;  // larger epochs cannot divide
    if (!Divides(epoch, net_query.epoch())) continue;
    for (const auto& [mask, ids] : masks) {
      if ((mask & need) != need) continue;
      consider(ids);
    }
  }
  // Aggregation synthetics only cover aggregation queries with exactly
  // equal predicates, so the bucket key pins the predicate signature.
  if (net_query.kind() == QueryKind::kAggregation) {
    const std::string pred_key = PredicateKey(net_query.predicates());
    for (auto it = agg_buckets_.lower_bound({pred_key, SimDuration{0}});
         it != agg_buckets_.end() && it->first.first == pred_key; ++it) {
      const SimDuration epoch = it->first.second;
      if (epoch > net_query.epoch()) break;
      if (!Divides(epoch, net_query.epoch())) continue;
      consider(it->second);
    }
  }
  if (!found) return std::nullopt;
  return best;
}

BaseStationOptimizer::Best BaseStationOptimizer::FindBestNaive(
    const Query& net_query) {
  // Algorithm 1, lines 4-10: score every synthetic query, ascending by id;
  // the strict `>` keeps the lowest id among equal rates, and the `>= 1.0`
  // break lands on the lowest-id covering synthetic.
  Best best;
  for (const auto& [id, sq] : synthetics_) {
    const double rate = BenefitRate(net_query, sq);
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.benefit_estimate")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("candidate", static_cast<std::int64_t>(id))
                       .With("rate", rate));
    }
    if (rate > best.rate) {
      best.rate = rate;
      best.id = id;
      if (rate >= 1.0) break;  // covered; cannot do better
    }
  }
  return best;
}

BaseStationOptimizer::Best BaseStationOptimizer::FindBestIndexed(
    const Query& net_query) {
  Best best;
  // Coverage first: the naive scan's `rate >= 1.0` break always selects the
  // lowest-id covering synthetic, which is exactly what the bucket lookup
  // returns.  Merge rates are clamped strictly below 1, so no merge can
  // outrank a cover.
  if (const auto cover = CoverageLookup(net_query)) {
    ++istats_.coverage_hits;
    best.rate = 1.0;
    best.id = *cover;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.benefit_estimate")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("candidate", static_cast<std::int64_t>(best.id))
                       .With("rate", 1.0));
    }
    return best;
  }

  const double cost_qi = CostOf(net_query);
  if (cost_qi <= 0.0) return best;  // BenefitRate is 0 for every merge

  // Admissible upper bounds on the merge benefit rate
  // (cost_qi + cost_sq - cost_merged) / cost_qi, from lower bounds on
  // cost_merged (DESIGN.md note 20 carries the monotonicity argument):
  //  * acquisition-form merges cost at least as much as any acquisition
  //    member and at least the acquisition-ization of any aggregation
  //    member (`qi_floor` below covers the inserted side);
  //  * aggregation-form merges (both sides aggregation, equal predicates)
  //    cost at least max of the two members.
  const bool qi_agg = net_query.kind() == QueryKind::kAggregation;
  const double qi_floor =
      qi_agg ? CostOf(Query::Acquisition(net_query.id(),
                                         net_query.AcquiredAttributes(),
                                         net_query.predicates(),
                                         net_query.epoch()))
             : cost_qi;
  const auto ub_acq = [&](double c) {  // candidate is an acquisition query
    return (cost_qi + c - std::max(c, qi_floor)) / cost_qi;
  };
  const auto ub_agg = [&](double c) {  // candidate is an aggregation query
    return qi_agg ? (cost_qi + c - std::max(c, cost_qi)) / cost_qi
                  : c / cost_qi;
  };

  const std::string qi_key = StructuralKey(net_query);
  // The naive ascending-id scan keeps the first of equal rates, i.e. the
  // lowest id; these scans run in cost/bucket order, so ties are broken
  // explicitly.  Candidate sets are disjoint and jointly exhaustive over
  // every synthetic with a nonzero rate, so the winner matches the oracle.
  const auto consider = [&](QueryId sid, const SyntheticQuery& sq) {
    const double rate = RateOf(net_query, qi_key, sid, sq);
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.benefit_estimate")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("candidate", static_cast<std::int64_t>(sid))
                       .With("rate", rate));
    }
    if (rate > best.rate ||
        (rate == best.rate && rate > 0.0 && sid < best.id)) {
      best.rate = rate;
      best.id = sid;
    }
  };
  // The bound is nondecreasing in the candidate cost, so once it fails in a
  // cost-descending scan, every remaining (cheaper) candidate fails too.
  const auto scan = [&](const auto& order, const auto& bound) {
    std::size_t scanned = 0;
    for (const auto& [cost_sq, sid] : order) {
      ++scanned;
      if (bound(cost_sq) * (1.0 + kPruneSlack) < best.rate) {
        istats_.pruned_candidates += order.size() - scanned + 1;
        break;
      }
      const SyntheticQuery& sq = synthetics_.at(sid);
      if (!IsRewritable(sq.query, net_query)) continue;  // rate would be 0
      consider(sid, sq);
    }
  };
  // Acquisition synthetics can merge with either kind of query.
  scan(acq_order_, ub_acq);
  if (qi_agg) {
    // Aggregation synthetics only merge with aggregation queries carrying
    // exactly equal predicates (integration.cc), which is precisely the
    // agg_buckets_ signature range — no need to scan the rest.
    const std::string pred_key = PredicateKey(net_query.predicates());
    for (auto it = agg_buckets_.lower_bound({pred_key, SimDuration{0}});
         it != agg_buckets_.end() && it->first.first == pred_key; ++it) {
      for (QueryId sid : it->second) {
        consider(sid, synthetics_.at(sid));
      }
    }
  } else {
    scan(agg_order_, ub_agg);
  }
  return best;
}

void BaseStationOptimizer::InsertBundle(Query net_query,
                                        std::map<QueryId, Query> members,
                                        Actions& actions) {
  // Algorithm 1, iterated: a merge feeds the merged bundle back into the
  // candidate search instead of recursing (chained rewrites can run
  // thousands deep at scale; see the depth regression test).
  for (;;) {
    const Best best = options_.use_index ? FindBestIndexed(net_query)
                                         : FindBestNaive(net_query);

    if (best.rate >= 1.0) {
      // Lines 11-12: covered — absorb the members, network unchanged.
      ++decisions_.covered;
      if (trace_ != nullptr) {
        trace_->Emit(
            TraceEvent("tier1.insert")
                .With("query", static_cast<std::int64_t>(net_query.id()))
                .With("action", std::string("covered"))
                .With("synthetic", static_cast<std::int64_t>(best.id))
                .With("rate", best.rate));
      }
      SyntheticQuery& sq = synthetics_.at(best.id);
      // When every absorbed id extends the ascending member order, the
      // running sum continues with the same op sequence a full recompute
      // would execute — O(new members) instead of O(all members).
      const bool append = options_.use_index && sq.member_cost_valid &&
                          sq.member_cost_version == stats_version_ &&
                          !members.empty() &&
                          members.begin()->first > sq.member_cost_last_uid;
      for (auto& [uid, uq] : members) {
        user_to_synthetic_[uid] = best.id;
        if (append) {
          sq.member_cost_sum += CostOf(uq);
          sq.member_cost_last_uid = uid;
        }
        sq.members.emplace(uid, std::move(uq));
      }
      if (append) {
        sq.benefit = sq.member_cost_sum - CostOf(sq.query);
      } else {
        RecomputeBenefit(sq);
      }
      return;
    }

    if (best.rate > 0.0) {
      ++decisions_.merged;
      if (trace_ != nullptr) {
        trace_->Emit(
            TraceEvent("tier1.insert")
                .With("query", static_cast<std::int64_t>(net_query.id()))
                .With("action", std::string("merged"))
                .With("synthetic", static_cast<std::int64_t>(best.id))
                .With("rate", best.rate)
                .With("members", static_cast<std::int64_t>(members.size())));
      }
      // Lines 13-14: integrate with the best synthetic query, then re-run
      // the search with the merged bundle to exploit chained rewrites.
      auto node = synthetics_.extract(best.id);
      SyntheticQuery& sq = node.mapped();
      IndexRemove(best.id, sq);
      actions.abort.push_back(best.id);
      for (auto& [uid, uq] : sq.members) {
        members.emplace(uid, std::move(uq));
      }
      std::vector<Query> member_queries;
      member_queries.reserve(members.size());
      for (const auto& [uid, uq] : members) member_queries.push_back(uq);
      net_query = BuildNetworkQuery(NextSyntheticId(), member_queries);
      continue;
    }

    // Lines 15-16 (and 1-2): no beneficial rewrite — run the bundle as its
    // own synthetic query.
    const QueryId sid =
        net_query.id() >= options_.first_synthetic_id
            ? net_query.id()
            : NextSyntheticId();
    ++decisions_.standalone;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.insert")
                       .With("query", static_cast<std::int64_t>(net_query.id()))
                       .With("action", std::string("standalone"))
                       .With("synthetic", static_cast<std::int64_t>(sid))
                       .With("members",
                             static_cast<std::int64_t>(members.size())));
    }
    SyntheticQuery sq(net_query.WithId(sid));
    for (auto& [uid, uq] : members) {
      user_to_synthetic_[uid] = sid;
      sq.members.emplace(uid, std::move(uq));
    }
    RecomputeBenefit(sq);
    actions.inject.push_back(sq.query);
    const auto [it, inserted] = synthetics_.emplace(sid, std::move(sq));
    IndexAdd(sid, it->second);
    return;
  }
}

BaseStationOptimizer::Actions BaseStationOptimizer::InsertUserQuery(
    const Query& query) {
  TTMQO_SPAN("tier1.insert");
  CheckArg(query.id() < options_.first_synthetic_id,
           "InsertUserQuery: user id collides with the synthetic id space");
  CheckArg(!user_to_synthetic_.contains(query.id()),
           "InsertUserQuery: duplicate user query id");
  SyncStatsVersion();
  Actions actions;
  std::map<QueryId, Query> members;
  members.emplace(query.id(), query);
  InsertBundle(query, std::move(members), actions);
  Deduplicate(actions);
  return actions;
}

std::vector<std::pair<QueryId, BaseStationOptimizer::Actions>>
BaseStationOptimizer::InsertBatch(const std::vector<Query>& queries) {
  TTMQO_SPAN("tier1.insert_batch");
  // Sort arrivals by (epoch, structural signature, id): structurally
  // identical queries become adjacent, and the ascending-id order within a
  // group keeps the covered path's running benefit sum on the exact
  // floating-point op sequence the one-at-a-time inserts would execute.
  struct Arrival {
    SimDuration epoch;
    std::string key;
    QueryId id;
    std::size_t index;
  };
  std::vector<Arrival> order;
  order.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    order.push_back(
        {queries[i].epoch(), StructuralKey(queries[i]), queries[i].id(), i});
  }
  std::sort(order.begin(), order.end(),
            [](const Arrival& a, const Arrival& b) {
              return std::tie(a.epoch, a.key, a.id) <
                     std::tie(b.epoch, b.key, b.id);
            });

  std::vector<std::pair<QueryId, Actions>> out;
  out.reserve(queries.size());
  // Why the sharing is sound: after a group member's full insert, let S be
  // the synthetic serving it.  When S structurally covers a later member
  // (checked at runtime), sequential insertion would take the covered
  // branch with exactly S: a cover scores exactly 1.0 and beats every
  // merge (clamped strictly below 1), and S is the lowest-id cover of the
  // signature — if the full insert was itself covered, S is the lowest-id
  // cover the ascending scan found, which the next member's scan would
  // find again; otherwise nothing covered the signature before (a cover
  // would have made that insert covered) and the insert only removed
  // merged-away synthetics, leaving S as the unique cover.  When S does
  // NOT cover the member, sequential insertion would run the full search —
  // coverage is asymmetric (an acquisition whose predicate reads an
  // unselected attribute never covers even its own duplicates; such
  // arrivals merge instead) — so the batch falls back to exactly that, and
  // the fallback's synthetic serves the rest of the group.
  const std::string* group_key = nullptr;
  QueryId group_first = kInvalidQueryId;
  for (const Arrival& a : order) {
    const Query& query = queries[a.index];
    if (group_key != nullptr && *group_key == a.key) {
      const QueryId sid = user_to_synthetic_.at(group_first);
      if (Covers(synthetics_.at(sid).query, query)) {
        out.emplace_back(query.id(), InsertCovered(query, sid));
        continue;
      }
    }
    out.emplace_back(query.id(), InsertUserQuery(query));
    group_key = &a.key;
    group_first = query.id();
  }
  return out;
}

BaseStationOptimizer::Actions BaseStationOptimizer::InsertCovered(
    const Query& query, QueryId sid) {
  TTMQO_SPAN("tier1.insert");
  CheckArg(query.id() < options_.first_synthetic_id,
           "InsertUserQuery: user id collides with the synthetic id space");
  CheckArg(!user_to_synthetic_.contains(query.id()),
           "InsertUserQuery: duplicate user query id");
  SyncStatsVersion();
  // Precondition (checked by InsertBatch): Covers(sq.query, query).
  SyntheticQuery& sq = synthetics_.at(sid);
  ++istats_.batch_shared_probes;
  if (options_.use_index) ++istats_.coverage_hits;
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("tier1.benefit_estimate")
                     .With("query", static_cast<std::int64_t>(query.id()))
                     .With("candidate", static_cast<std::int64_t>(sid))
                     .With("rate", 1.0));
  }
  // The covered branch of InsertBundle, specialized to a single member.
  ++decisions_.covered;
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("tier1.insert")
                     .With("query", static_cast<std::int64_t>(query.id()))
                     .With("action", std::string("covered"))
                     .With("synthetic", static_cast<std::int64_t>(sid))
                     .With("rate", 1.0));
  }
  const bool append = options_.use_index && sq.member_cost_valid &&
                      sq.member_cost_version == stats_version_ &&
                      query.id() > sq.member_cost_last_uid;
  user_to_synthetic_[query.id()] = sid;
  if (append) {
    sq.member_cost_sum += CostOf(query);
    sq.member_cost_last_uid = query.id();
  }
  sq.members.emplace(query.id(), query);
  if (append) {
    sq.benefit = sq.member_cost_sum - CostOf(sq.query);
  } else {
    RecomputeBenefit(sq);
  }
  return Actions{};
}

BaseStationOptimizer::Actions BaseStationOptimizer::TerminateUserQuery(
    QueryId user) {
  TTMQO_SPAN("tier1.terminate");
  const auto user_it = user_to_synthetic_.find(user);
  CheckArg(user_it != user_to_synthetic_.end(),
           "TerminateUserQuery: unknown user query");
  SyncStatsVersion();
  const QueryId sid = user_it->second;
  SyntheticQuery& sq = synthetics_.at(sid);

  Actions actions;
  const Query leaving = sq.members.at(user);
  user_to_synthetic_.erase(user_it);
  sq.members.erase(user);

  if (sq.members.empty()) {
    // Last member gone: retire the synthetic query.
    ++decisions_.retired;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEvent("tier1.terminate")
                       .With("query", static_cast<std::int64_t>(user))
                       .With("action", std::string("retire"))
                       .With("synthetic", static_cast<std::int64_t>(sid)));
    }
    actions.abort.push_back(sid);
    IndexRemove(sid, sq);
    synthetics_.erase(sid);
    Deduplicate(actions);
    return actions;
  }

  // "Some count decreased to 0" <=> the canonical query of the remaining
  // members no longer requests everything the running one does.
  std::vector<Query> remaining;
  remaining.reserve(sq.members.size());
  for (const auto& [uid, uq] : sq.members) remaining.push_back(uq);
  const Query rebuilt = BuildNetworkQuery(sq.query.id(), remaining);
  const bool requirements_shrank = !SameRequest(rebuilt, sq.query);

  // Algorithm 2, line 5: rebuild only when the leaving query's cost
  // outweighs the synthetic query's benefit, scaled by alpha.
  const double leaving_cost = CostOf(leaving);
  const bool rebuild =
      requirements_shrank && leaving_cost > sq.benefit * options_.alpha;
  if (rebuild) {
    ++decisions_.rebuilt;
  } else {
    ++decisions_.kept;
  }
  if (trace_ != nullptr) {
    trace_->Emit(TraceEvent("tier1.terminate")
                     .With("query", static_cast<std::int64_t>(user))
                     .With("action",
                           std::string(rebuild ? "rebuild" : "keep"))
                     .With("synthetic", static_cast<std::int64_t>(sid))
                     .With("leaving_cost", leaving_cost)
                     .With("benefit", sq.benefit)
                     .With("alpha", options_.alpha)
                     .With("shrank", requirements_shrank));
  }
  if (rebuild) {
    actions.abort.push_back(sid);
    IndexRemove(sid, sq);
    auto node = synthetics_.extract(sid);
    for (auto& [uid, uq] : node.mapped().members) {
      user_to_synthetic_.erase(uid);
      std::map<QueryId, Query> members;
      members.emplace(uid, uq);
      InsertBundle(uq, std::move(members), actions);
    }
    Deduplicate(actions);
    return actions;
  }

  // Keep the (possibly over-wide) synthetic query; just update its benefit.
  RecomputeBenefit(sq);
  return actions;
}

void BaseStationOptimizer::RecomputeBenefit(SyntheticQuery& sq) {
  double member_cost = 0.0;
  QueryId last = kInvalidQueryId;
  for (const auto& [uid, uq] : sq.members) {
    member_cost += CostOf(uq);
    last = uid;
  }
  sq.benefit = member_cost - CostOf(sq.query);
  sq.member_cost_sum = member_cost;
  sq.member_cost_last_uid = last;
  sq.member_cost_version = stats_version_;
  sq.member_cost_valid = options_.use_index;
}

const SyntheticQuery* BaseStationOptimizer::SyntheticOf(QueryId user) const {
  const auto it = user_to_synthetic_.find(user);
  if (it == user_to_synthetic_.end()) return nullptr;
  return &synthetics_.at(it->second);
}

const SyntheticQuery* BaseStationOptimizer::FindSynthetic(QueryId id) const {
  const auto it = synthetics_.find(id);
  return it == synthetics_.end() ? nullptr : &it->second;
}

std::vector<const SyntheticQuery*> BaseStationOptimizer::Synthetics() const {
  std::vector<const SyntheticQuery*> out;
  out.reserve(synthetics_.size());
  for (const auto& [id, sq] : synthetics_) out.push_back(&sq);
  return out;
}

double BaseStationOptimizer::TotalUserCost() const {
  double total = 0.0;
  for (const auto& [id, sq] : synthetics_) {
    for (const auto& [uid, uq] : sq.members) total += cost_->Cost(uq);
  }
  return total;
}

double BaseStationOptimizer::TotalBenefit() const {
  double total = 0.0;
  for (const auto& [id, sq] : synthetics_) {
    double member_cost = 0.0;
    for (const auto& [uid, uq] : sq.members) member_cost += cost_->Cost(uq);
    total += member_cost - cost_->Cost(sq.query);
  }
  return total;
}

void BaseStationOptimizer::Deduplicate(Actions& actions) {
  // A synthetic query injected and aborted within the same call never
  // reaches the network; cancel the pair.
  for (auto it = actions.inject.begin(); it != actions.inject.end();) {
    const auto abort_it = std::find(actions.abort.begin(),
                                    actions.abort.end(), it->id());
    if (abort_it != actions.abort.end()) {
      actions.abort.erase(abort_it);
      it = actions.inject.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ttmqo
