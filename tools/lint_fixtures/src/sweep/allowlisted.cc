// Fixture: contains a wall-clock violation but is listed in
// allow/wall-clock.allow, so it must produce zero findings when the
// fixture allowlist dir is passed (and one finding when it is not).
#include <chrono>

namespace fixture {

inline auto Timestamp() { return std::chrono::steady_clock::now(); }

}  // namespace fixture
