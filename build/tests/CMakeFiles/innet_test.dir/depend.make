# Empty dependencies file for innet_test.
# This may be replaced when dependencies are built.
