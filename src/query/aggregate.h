// Aggregation operators and TAG-style partial aggregation state.
//
// Aggregation queries carry a list of `(operator, attribute)` pairs (Section
// 3.1.1).  In-network aggregation merges *partial state records* at interior
// routing nodes (Madden et al., TAG); `PartialAggregate` is that record:
// MAX/MIN carry the extremum, SUM/COUNT carry running totals, and AVG carries
// (sum, count) so merging stays exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sensing/attribute.h"

namespace ttmqo {

/// An aggregation operator supported by the query language.  VAR is the
/// population variance, merged exactly via (sum, sum-of-squares, count)
/// partial state as in TAG's decomposable-aggregate framework.
enum class AggregateOp : std::uint8_t { kMax, kMin, kSum, kAvg, kCount, kVar };

/// Upper-case SQL name of the operator ("MAX", ...).
std::string_view AggregateOpName(AggregateOp op);

/// Parses an operator name (case-insensitive); nullopt when unknown.
std::optional<AggregateOp> ParseAggregateOp(std::string_view name);

/// One aggregate requested by a query, e.g. `MAX(light)`.
struct AggregateSpec {
  AggregateOp op = AggregateOp::kMax;
  Attribute attribute = Attribute::kLight;

  /// "MAX(light)".
  std::string ToString() const;

  bool operator==(const AggregateSpec&) const = default;
  auto operator<=>(const AggregateSpec&) const = default;
};

/// A mergeable partial state record for one aggregate.  The empty record
/// (count 0) is the identity of `Merge`.
class PartialAggregate {
 public:
  /// The identity element for `spec`.
  explicit PartialAggregate(AggregateSpec spec);

  /// The record for a single observed value.
  static PartialAggregate OfValue(AggregateSpec spec, double value);

  /// Folds one observed value into the record.
  void Accumulate(double value);

  /// Merges another partial record (must be for the same spec).
  void Merge(const PartialAggregate& other);

  /// Final aggregate value; nullopt when no value contributed and the
  /// operator has no empty-set answer (MAX/MIN/SUM/AVG).  COUNT of an empty
  /// set is 0.
  std::optional<double> Finalize() const;

  /// The aggregate this record computes.
  const AggregateSpec& spec() const { return spec_; }

  /// Number of readings folded in so far.
  std::int64_t count() const { return count_; }

  /// Payload bytes this record occupies in a radio message: MAX/MIN/SUM/
  /// COUNT need one field, AVG needs (sum, count).
  std::size_t SerializedSizeBytes() const;

  bool operator==(const PartialAggregate&) const = default;

 private:
  AggregateSpec spec_;
  double acc_ = 0.0;       // extremum or running sum
  double acc_sq_ = 0.0;    // running sum of squares (VAR only)
  std::int64_t count_ = 0; // readings folded in
};

}  // namespace ttmqo
