file(REMOVE_RECURSE
  "libttmqo_stats.a"
)
