# Empty compiler generated dependencies file for ttmqo_stats.
# This may be replaced when dependencies are built.
