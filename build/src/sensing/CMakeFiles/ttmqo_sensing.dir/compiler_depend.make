# Empty compiler generated dependencies file for ttmqo_sensing.
# This may be replaced when dependencies are built.
