file(REMOVE_RECURSE
  "libttmqo_sensing.a"
)
