#include "net/ledger.h"

#include <numeric>

namespace ttmqo {

double NodeRadioStats::TotalTransmitMs() const {
  double total = retransmit_ms;
  for (double ms : transmit_ms_by_class) total += ms;
  return total;
}

RadioLedger::RadioLedger(std::size_t num_nodes) : stats_(num_nodes) {
  CheckArg(num_nodes > 0, "RadioLedger: need at least one node");
}

void RadioLedger::ChargeTransmit(NodeId node, MessageClass cls,
                                 double duration_ms, bool is_retransmission) {
  NodeRadioStats& s = stats_.at(node);
  if (is_retransmission) {
    s.retransmit_ms += duration_ms;
    ++s.retransmissions;
  } else {
    s.transmit_ms_by_class[static_cast<std::size_t>(cls)] += duration_ms;
    ++s.sent_by_class[static_cast<std::size_t>(cls)];
  }
}

void RadioLedger::CountDrop(NodeId node) { ++stats_.at(node).drops; }

void RadioLedger::CountReceive(NodeId node) { ++stats_.at(node).received; }

void RadioLedger::AddSleep(NodeId node, double duration_ms) {
  stats_.at(node).sleep_ms += duration_ms;
}

const NodeRadioStats& RadioLedger::StatsOf(NodeId node) const {
  return stats_.at(node);
}

double RadioLedger::AverageTransmissionTime(SimDuration elapsed,
                                            bool include_base_station) const {
  CheckArg(elapsed > 0, "AverageTransmissionTime: elapsed must be positive");
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (!include_base_station && i == kBaseStationId) continue;
    sum += stats_[i].TotalTransmitMs() / static_cast<double>(elapsed);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double RadioLedger::TotalTransmitMs() const {
  double total = 0.0;
  for (const NodeRadioStats& s : stats_) total += s.TotalTransmitMs();
  return total;
}

std::uint64_t RadioLedger::TotalSent(MessageClass cls) const {
  std::uint64_t total = 0;
  for (const NodeRadioStats& s : stats_) {
    total += s.sent_by_class[static_cast<std::size_t>(cls)];
  }
  return total;
}

std::uint64_t RadioLedger::TotalRetransmissions() const {
  std::uint64_t total = 0;
  for (const NodeRadioStats& s : stats_) total += s.retransmissions;
  return total;
}

std::uint64_t RadioLedger::TotalMessages() const {
  std::uint64_t total = 0;
  for (const NodeRadioStats& s : stats_) {
    for (std::uint64_t n : s.sent_by_class) total += n;
  }
  return total;
}

void RadioLedger::Reset() {
  for (NodeRadioStats& s : stats_) s = NodeRadioStats{};
}

}  // namespace ttmqo
