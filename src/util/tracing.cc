#include "util/tracing.h"

#include <cmath>
#include <cstdio>

namespace ttmqo {

std::size_t CollectingTraceSink::CountKind(std::string_view kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void JsonEscape(std::string_view raw, std::string& out) {
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void WriteJsonString(std::ostream& out, std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size() + 2);
  JsonEscape(raw, escaped);
  out << '"' << escaped << '"';
}

void WriteJsonValue(std::ostream& out, const TraceValue& value) {
  std::visit(
      [&out](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, bool>) {
          out << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::string>) {
          WriteJsonString(out, v);
        } else if constexpr (std::is_same_v<T, double>) {
          // JSON has no inf/nan literals.
          if (std::isfinite(v)) {
            out << v;
          } else {
            out << "null";
          }
        } else {
          out << v;
        }
      },
      value);
}

void WriteTraceEventJson(std::ostream& out, const TraceEvent& event) {
  out << "{\"event\":";
  WriteJsonString(out, event.kind);
  out << ",\"t\":" << event.time;
  for (const auto& [key, value] : event.fields) {
    out << ',';
    WriteJsonString(out, key);
    out << ':';
    WriteJsonValue(out, value);
  }
  out << '}';
}

}  // namespace ttmqo
