#include "core/ttmqo_engine.h"

#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {

std::string_view OptimizationModeName(OptimizationMode mode) {
  switch (mode) {
    case OptimizationMode::kBaseline:
      return "baseline";
    case OptimizationMode::kBaseStationOnly:
      return "bs-only";
    case OptimizationMode::kInNetworkOnly:
      return "innet-only";
    case OptimizationMode::kTwoTier:
      return "ttmqo";
  }
  Check(false, "unknown optimization mode");
  return "";
}

TtmqoEngine::TtmqoEngine(Network& network, const FieldModel& field,
                         ResultSink* user_sink, TtmqoOptions options)
    : network_(network),
      user_sink_(user_sink),
      options_(options),
      selectivity_(options.selectivity_bins),
      cost_model_(network.topology(), network.radio(), selectivity_),
      network_sink_(this),
      trace_(network.sim()) {
  if (Rewriting()) {
    BaseStationOptimizer::Options opt;
    opt.alpha = options_.alpha;
    opt.use_index = options_.tier1_use_index;
    optimizer_ =
        std::make_unique<BaseStationOptimizer>(cost_model_, opt);
  }
  const bool innet = options_.mode == OptimizationMode::kInNetworkOnly ||
                     options_.mode == OptimizationMode::kTwoTier;
  if (innet) {
    inner_ = std::make_unique<InNetworkEngine>(network, field, &network_sink_,
                                               options_.innet);
  } else {
    inner_ = std::make_unique<TinyDbEngine>(network, field, &network_sink_,
                                            options_.tinydb);
  }
}

std::string_view TtmqoEngine::name() const {
  return OptimizationModeName(options_.mode);
}

void TtmqoEngine::SetTraceSink(TraceSink* sink) {
  trace_.SetDownstream(sink);
  // The optimizer checks its sink pointer before building events; leave it
  // null when tracing is off so the hot insert path pays nothing.
  if (optimizer_ != nullptr) {
    optimizer_->SetTraceSink(sink != nullptr ? &trace_ : nullptr);
  }
  inner_->SetTraceSink(sink);
}

void TtmqoEngine::SubmitQuery(const Query& query) {
  obs::RecordFlight("engine.submit", network_.sim().Now(),
                    static_cast<std::int64_t>(query.id()));
  CheckArg(!users_.contains(query.id()), "TtmqoEngine: duplicate user query");
  UserState state(query);
  state.submitted_at = network_.sim().Now();
  users_.emplace(query.id(), std::move(state));
  if (trace_.downstream() != nullptr) {
    trace_.Emit(TraceEvent("engine.user_submit")
                    .With("query", static_cast<std::int64_t>(query.id()))
                    .With("epoch_ms", static_cast<std::int64_t>(query.epoch()))
                    .With("active_users",
                          static_cast<std::int64_t>(users_.size())));
  }

  // The lifetime clause (FOR <ms>) self-terminates the query.
  if (query.lifetime() > 0) {
    const QueryId id = query.id();
    network_.sim().ScheduleAfter(query.lifetime(), [this, id]() {
      if (users_.contains(id)) TerminateQuery(id);
    });
  }

  if (!Rewriting()) {
    inner_->SubmitQuery(query);
    return;
  }
  ApplyActions(optimizer_->InsertUserQuery(query));
}

void TtmqoEngine::TerminateQuery(QueryId id) {
  obs::RecordFlight("engine.terminate", network_.sim().Now(),
                    static_cast<std::int64_t>(id));
  const auto it = users_.find(id);
  CheckArg(it != users_.end(), "TtmqoEngine: terminating unknown user query");
  users_.erase(it);
  if (trace_.downstream() != nullptr) {
    trace_.Emit(TraceEvent("engine.user_terminate")
                    .With("query", static_cast<std::int64_t>(id))
                    .With("active_users",
                          static_cast<std::int64_t>(users_.size())));
  }

  if (!Rewriting()) {
    inner_->TerminateQuery(id);
    return;
  }
  ApplyActions(optimizer_->TerminateUserQuery(id));
}

void TtmqoEngine::ApplyActions(const BaseStationOptimizer::Actions& actions) {
  // Dissemination: retiring superseded synthetic queries from the network
  // and flooding their replacements.
  TTMQO_SPAN("tier2.disseminate");
  // Abort superseded synthetic queries before injecting replacements so the
  // channel is never loaded with both.
  const bool tracing = trace_.downstream() != nullptr;
  for (QueryId id : actions.abort) {
    if (tracing) {
      trace_.Emit(TraceEvent("engine.synthetic_abort")
                      .With("synthetic", static_cast<std::int64_t>(id)));
    }
    inner_->TerminateQuery(id);
  }
  for (const Query& query : actions.inject) {
    if (tracing) {
      trace_.Emit(TraceEvent("engine.synthetic_inject")
                      .With("synthetic", static_cast<std::int64_t>(query.id()))
                      .With("epoch_ms",
                            static_cast<std::int64_t>(query.epoch())));
    }
    inner_->SubmitQuery(query);
  }
}

std::size_t TtmqoEngine::NumNetworkQueries() const {
  if (Rewriting()) return optimizer_->NumSynthetic();
  return users_.size();
}

double TtmqoEngine::BenefitRatio() const {
  if (!Rewriting()) return 0.0;
  const double user_cost = optimizer_->TotalUserCost();
  if (user_cost <= 0.0) return 0.0;
  return optimizer_->TotalBenefit() / user_cost;
}

void TtmqoEngine::OnNetworkResult(const EpochResult& result) {
  if (options_.learn_statistics && Rewriting() &&
      result.kind == QueryKind::kAcquisition) {
    const SyntheticQuery* sq = optimizer_->FindSynthetic(result.query);
    if (sq != nullptr) {
      for (const Reading& row : result.rows) {
        Reading unbiased(row.node(), row.time());
        for (Attribute attr : kSensedAttributes) {
          // A constrained attribute's observed values are a filtered
          // sample; skip them to keep the histogram unbiased.
          if (!row.Has(attr)) continue;
          if (sq->query.predicates().ConstraintOn(attr).has_value()) continue;
          unbiased.Set(attr, row.GetOrThrow(attr));
        }
        selectivity_.shared().Observe(unbiased);
        // Also maintain the per-routing-level distributions of Section
        // 3.1.2 (the paper's experiments collapse them into one; keeping
        // both costs little and sharpens Eq. 1 when fields are spatially
        // correlated).
        selectivity_
            .ForLevel(network_.topology().HopLevels()[row.node()])
            .Observe(unbiased);
      }
    }
  }
  if (!Rewriting()) {
    // Network queries are the user queries; deliver directly (the inner
    // engine already closed the epoch at t + epoch).
    if (users_.contains(result.query)) EmitToUser(result);
    return;
  }
  const SyntheticQuery* sq = optimizer_->FindSynthetic(result.query);
  if (sq == nullptr) return;  // result raced with an abort
  for (EpochResult& mapped : MapSyntheticResult(result, *sq)) {
    const auto user_it = users_.find(mapped.query);
    if (user_it == users_.end()) continue;
    const UserState& user = user_it->second;
    // Skip epochs from before the user existed: a covered query joining an
    // already-running synthetic query must not receive past answers.
    if (mapped.epoch_time <
        AlignUp(user.submitted_at + 1, user.query.epoch())) {
      continue;
    }
    // The user observes its answer at the end of its own epoch, exactly as
    // under the baseline (the synthetic query may close earlier because it
    // runs at the GCD of the member epochs).
    const SimTime deliver_at = mapped.epoch_time + user.query.epoch();
    const QueryId uid = mapped.query;
    if (deliver_at <= network_.sim().Now()) {
      EmitToUser(std::move(mapped));
      continue;
    }
    network_.sim().ScheduleAt(
        deliver_at, [this, uid, mapped = std::move(mapped)]() mutable {
          if (!users_.contains(uid)) return;  // terminated meanwhile
          EmitToUser(std::move(mapped));
        });
  }
}

void TtmqoEngine::EmitToUser(EpochResult result) {
  if (user_sink_ != nullptr) user_sink_->OnResult(result);
}

}  // namespace ttmqo
