# Empty compiler generated dependencies file for fig4_adaptive.
# This may be replaced when dependencies are built.
