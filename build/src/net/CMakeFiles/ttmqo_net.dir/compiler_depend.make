# Empty compiler generated dependencies file for ttmqo_net.
# This may be replaced when dependencies are built.
