#include "core/innet/payloads.h"

#include <algorithm>
#include <set>

#include "sensing/attribute.h"

namespace ttmqo {
namespace {

// Epoch tag (2) + source node id (2).
constexpr std::size_t kSharedEnvelopeBytes = 4;

// Extra header bytes per additional multicast destination (address + query
// bitmap offset).
constexpr std::size_t kPerExtraDestinationBytes = 2;

std::size_t QueryCount(
    const std::map<NodeId, std::vector<QueryId>>& dest_queries) {
  std::set<QueryId> queries;
  for (const auto& [dest, qs] : dest_queries) {
    queries.insert(qs.begin(), qs.end());
  }
  return queries.size();
}

std::size_t MulticastOverhead(
    const std::map<NodeId, std::vector<QueryId>>& dest_queries) {
  return dest_queries.size() <= 1
             ? 0
             : kPerExtraDestinationBytes * (dest_queries.size() - 1);
}

}  // namespace

std::size_t RepairRequestBytes(const RepairRequestPayload& payload) {
  // Query id (2) + epoch tag (2) + deadline delta (2) + target list.
  return 6 + 2 * payload.targets.size();
}

std::size_t RepairReplyBytes(const RepairReplyPayload& payload) {
  // Query id (2) + epoch tag (2) + node id (2) + flags (1).
  std::size_t bytes = 7;
  if (payload.has_row) {
    for (Attribute attr : kAllAttributes) {
      if (attr == Attribute::kNodeId) continue;
      if (payload.row.Has(attr)) bytes += AttributeSizeBytes(attr);
    }
  }
  return bytes;
}

std::size_t SharedRowBytes(const SharedRowPayload& payload) {
  std::size_t bytes = kSharedEnvelopeBytes;
  bytes += 2 * QueryCount(payload.dest_queries);  // query id list
  for (const RowEntry& entry : payload.entries) {
    bytes += 2;  // source node id
    for (Attribute attr : kAllAttributes) {
      if (attr == Attribute::kNodeId) continue;  // counted above
      if (entry.row.Has(attr)) bytes += AttributeSizeBytes(attr);
    }
  }
  bytes += MulticastOverhead(payload.dest_queries);
  return bytes;
}

std::size_t SharedAggBytes(const SharedAggPayload& payload) {
  std::size_t bytes = kSharedEnvelopeBytes;
  bytes += 2 * payload.partials.size();  // query id list
  // Identical partial vectors are serialized once and referenced by the
  // other queries.
  std::vector<const std::vector<PartialAggregate>*> unique;
  for (const auto& [query, partials] : payload.partials) {
    const bool seen = std::any_of(
        unique.begin(), unique.end(),
        [&](const auto* existing) { return *existing == partials; });
    if (seen) continue;
    unique.push_back(&partials);
    for (const PartialAggregate& p : partials) {
      bytes += p.SerializedSizeBytes();
    }
  }
  bytes += MulticastOverhead(payload.dest_queries);
  return bytes;
}

}  // namespace ttmqo
