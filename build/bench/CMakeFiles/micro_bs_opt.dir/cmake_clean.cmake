file(REMOVE_RECURSE
  "CMakeFiles/micro_bs_opt.dir/micro_bs_opt.cc.o"
  "CMakeFiles/micro_bs_opt.dir/micro_bs_opt.cc.o.d"
  "micro_bs_opt"
  "micro_bs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
