// Simulation time primitives.
//
// All simulator clocks are integral milliseconds.  TinyDB-era motes schedule
// epochs as multiples of a base timer tick; the paper fixes the smallest
// allowed epoch duration at 2048 ms and requires every epoch duration to be
// divisible by it (Section 3.2.1).  Using integral milliseconds keeps GCD
// arithmetic on epochs exact and the event queue totally ordered.
#pragma once

#include <cstdint>
#include <string>

namespace ttmqo {

/// A point in simulated time, in milliseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in milliseconds.
using SimDuration = std::int64_t;

/// The smallest epoch duration TinyDB-style motes support (Section 3.2.1).
/// Every query epoch duration must be a positive multiple of this value.
inline constexpr SimDuration kMinEpochDurationMs = 2048;

/// Formats a simulation time as "12.345s" for logs and reports.
std::string FormatSimTime(SimTime t);

/// True iff `epoch` is a legal epoch duration: positive and divisible by
/// `kMinEpochDurationMs`.
constexpr bool IsValidEpochDuration(SimDuration epoch) {
  return epoch > 0 && epoch % kMinEpochDurationMs == 0;
}

}  // namespace ttmqo
