// The sweep driver: expands a declarative sweep spec into its cartesian
// run matrix, simulates every cell on a worker-thread pool, and writes
// one aggregated report.
//
//   $ run_sweep                                  # default scalability sweep
//   $ run_sweep --spec="grids=4,8 workloads=A,C modes=baseline,ttmqo seeds=2"
//   $ run_sweep --spec=@sweep.spec --jobs=8 --out=sweep.json --csv=sweep.csv
//   $ run_sweep --bench-out=BENCH_sweep.json     # perf trajectory artifact
//
// Flags:
//   --spec=<text|@file>  axes in the spec mini-language (see spec.h); @file
//                        reads the text from a file
//   --jobs=N             worker threads (0 = hardware concurrency; default)
//   --batch-seeds=N      run up to N consecutive same-cell-different-seed
//                        rows through one lockstep batched event loop
//                        (execution detail like --jobs: reports are
//                        byte-identical; default 1, max 64)
//   --out=p.json         aggregated report as JSON
//   --csv=p.csv          aggregated report as CSV
//   --metrics-out=p.json shared MetricsRegistry across all runs, every
//                        series labeled with its cell's coordinates
//   --no-timing          omit wall-clock fields from --out/--csv, making
//                        the report canonical (byte-identical across job
//                        counts; what the determinism suite compares)
//   --bench-out=p.json   run the spec twice — jobs=1 and jobs=N — verify
//                        the two reports agree byte-for-byte, and write a
//                        BENCH_*.json perf artifact (wall clock, runs/sec,
//                        events/sec, speedup)
//   --trace-chrome=p.json  profiling spans of the whole sweep as Chrome
//                        trace-event JSON (one track per worker thread)
//   --postmortem-dir=DIR arm the flight recorder; a task's invariant
//                        failure or a fatal signal dumps a postmortem
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "metrics/table.h"
#include "obs/build_info.h"
#include "obs/session.h"
#include "sweep/spec.h"
#include "util/flags.h"

namespace ttmqo {
namespace {

std::string LoadSpecText(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  if (!in) {
    throw std::runtime_error("cannot open spec file: " + arg.substr(1));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::ofstream OpenOutput(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open output file: " + path);
  return out;
}

void PrintSummary(const SweepReport& report) {
  TablePrinter table({"grid", "workload", "mode", "fault", "rel", "rep",
                      "avg tx %", "messages", "results", "wall ms"});
  for (const SweepRow& row : report.rows) {
    table.AddRow(
        {std::to_string(row.grid_side), row.workload, row.mode, row.fault,
         row.reliability, std::to_string(row.replicate),
         TablePrinter::Num(row.run.summary.avg_transmission_fraction * 100.0,
                           4),
         std::to_string(row.run.summary.total_messages),
         std::to_string(row.run.results.size()),
         TablePrinter::Num(row.wall_ms, 1)});
  }
  table.Print(std::cout);
  std::printf("%zu runs in %.1f ms (%.2f runs/sec, %.0f events/sec, "
              "jobs=%u)\n",
              report.rows.size(), report.wall_ms,
              static_cast<double>(report.rows.size()) * 1000.0 /
                  report.wall_ms,
              static_cast<double>(report.TotalEvents()) * 1000.0 /
                  report.wall_ms,
              report.jobs);
  if (!report.pool.workers.empty()) {
    std::printf("pool utilization %.0f%%:", report.pool.Utilization() * 100);
    for (const WorkerStat& w : report.pool.workers) {
      std::printf(" w%u=%llu tasks/%.0f ms", w.worker,
                  static_cast<unsigned long long>(w.tasks), w.busy_ms);
    }
    std::printf("\n");
  }
  const std::vector<std::size_t> stragglers = report.Stragglers();
  if (!stragglers.empty()) {
    std::printf("stragglers (> 3x median wall time):");
    for (const std::size_t index : stragglers) {
      std::printf(" #%zu (%.0f ms)", index, report.rows[index].wall_ms);
    }
    std::printf("\n");
  }
}

int WriteBenchArtifact(const SweepSpec& spec, unsigned jobs,
                       std::size_t batch_seeds, const std::string& path) {
  // At least 2 workers even on a single-core host, so the serial-vs-
  // parallel byte comparison below always crosses real threads (no
  // speedup is expected there, but the determinism check must be real).
  const unsigned parallel_jobs =
      jobs == 0 ? std::max(2u, HardwareJobs()) : jobs;
  obs::WarnIfSingleCore(std::cerr);
  std::printf("bench: running %zu tasks at jobs=1...\n", spec.TaskCount());
  const SweepReport serial = RunSweep(spec, 1);
  std::printf("bench: running %zu tasks at jobs=%u...\n", spec.TaskCount(),
              parallel_jobs);
  const SweepReport parallel = RunSweep(spec, parallel_jobs);
  std::printf("bench: running %zu tasks at jobs=1 batch-seeds=%zu...\n",
              spec.TaskCount(), batch_seeds);
  const SweepReport batched =
      RunSweep(spec, 1, /*registry=*/nullptr, batch_seeds);

  // The parallel path must reproduce the serial results exactly; a
  // mismatch is a determinism bug and poisons every number below.
  if (serial.Canonical() != parallel.Canonical()) {
    std::fprintf(stderr,
                 "bench: jobs=1 and jobs=%u reports differ — determinism "
                 "violation\n",
                 parallel_jobs);
    return 1;
  }
  // So must the lockstep batched path — that is its hard contract.
  if (serial.Canonical() != batched.Canonical()) {
    std::fprintf(stderr,
                 "bench: batch-seeds=1 and batch-seeds=%zu reports differ — "
                 "lockstep batching broke per-seed determinism\n",
                 batch_seeds);
    return 1;
  }

  const auto runs_per_sec = [](const SweepReport& r) {
    return static_cast<double>(r.rows.size()) * 1000.0 / r.wall_ms;
  };
  const auto events_per_sec = [](const SweepReport& r) {
    return static_cast<double>(r.TotalEvents()) * 1000.0 / r.wall_ms;
  };
  std::ofstream out = OpenOutput(path);
  out << "{\n";
  out << "  \"bench\": \"sweep\",\n";
  out << "  \"spec\": \"" << spec.ToString() << "\",\n";
  out << "  \"tasks\": " << serial.rows.size() << ",\n";
  out << "  \"hardware_concurrency\": " << HardwareJobs() << ",\n";
  out << "  \"build\": ";
  obs::WriteBuildInfoJson(out);
  out << ",\n";
  out << "  \"events_executed\": " << serial.TotalEvents() << ",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"serial\": {\"jobs\": 1, \"wall_ms\": %.1f, "
                "\"runs_per_sec\": %.4f, \"events_per_sec\": %.0f},\n",
                serial.wall_ms, runs_per_sec(serial),
                events_per_sec(serial));
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"parallel\": {\"jobs\": %u, \"wall_ms\": %.1f, "
                "\"runs_per_sec\": %.4f, \"events_per_sec\": %.0f},\n",
                parallel.jobs, parallel.wall_ms, runs_per_sec(parallel),
                events_per_sec(parallel));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"speedup\": %.3f,\n",
                serial.wall_ms / parallel.wall_ms);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"batched\": {\"jobs\": 1, \"batch_seeds\": %zu, "
                "\"wall_ms\": %.1f, \"runs_per_sec\": %.4f, "
                "\"events_per_sec\": %.0f},\n",
                batch_seeds, batched.wall_ms, runs_per_sec(batched),
                events_per_sec(batched));
  out << buf;
  std::snprintf(buf, sizeof(buf), "  \"batch_speedup\": %.3f,\n",
                serial.wall_ms / batched.wall_ms);
  out << buf;
  out << "  \"per_run_wall_ms\": [";
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    if (i > 0) out << ", ";
    std::snprintf(buf, sizeof(buf), "%.1f", serial.rows[i].wall_ms);
    out << buf;
  }
  out << "],\n";
  out << "  \"deterministic_across_jobs\": true\n";
  out << "}\n";
  std::printf("bench: serial %.1f ms, parallel %.1f ms (x%.2f at jobs=%u), "
              "batched %.1f ms (x%.2f at batch-seeds=%zu); wrote %s\n",
              serial.wall_ms, parallel.wall_ms,
              serial.wall_ms / parallel.wall_ms, parallel.jobs,
              batched.wall_ms, serial.wall_ms / batched.wall_ms, batch_seeds,
              path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  // Default: the scalability matrix (network-size axis x both schemes).
  const std::string spec_arg = flags.GetString(
      "spec",
      "grids=4,6,8,10 workloads=C modes=baseline,ttmqo seeds=1 "
      "duration-ms=245760 collisions=0.02");
  const auto jobs = static_cast<unsigned>(flags.GetInt("jobs", 0));
  const auto batch_seeds =
      static_cast<std::size_t>(flags.GetInt("batch-seeds", 1));
  const auto out_path = flags.GetOptional("out");
  const auto csv_path = flags.GetOptional("csv");
  const auto metrics_path = flags.GetOptional("metrics-out");
  const bool no_timing = flags.GetBool("no-timing", false);
  const auto bench_out = flags.GetOptional("bench-out");
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  const SweepSpec spec = SweepSpec::Parse(LoadSpecText(spec_arg));
  std::printf("sweep: %s\n%zu tasks\n\n", spec.ToString().c_str(),
              spec.TaskCount());

  if (bench_out.has_value()) {
    return WriteBenchArtifact(spec, jobs, std::max<std::size_t>(batch_seeds, 8),
                              *bench_out);
  }

  MetricsRegistry registry;
  const SweepReport report = RunSweep(
      spec, jobs, metrics_path.has_value() ? &registry : nullptr, batch_seeds);
  PrintSummary(report);
  if (metrics_path.has_value()) {
    std::ofstream out = OpenOutput(*metrics_path);
    registry.WriteJson(out);
    out << "\n";
    std::printf("wrote metrics JSON to %s\n", metrics_path->c_str());
  }
  if (out_path.has_value()) {
    std::ofstream out = OpenOutput(*out_path);
    report.WriteJson(out, /*include_timing=*/!no_timing);
    out << "\n";
    std::printf("wrote JSON report to %s\n", out_path->c_str());
  }
  if (csv_path.has_value()) {
    std::ofstream out = OpenOutput(*csv_path);
    report.WriteCsv(out, /*include_timing=*/!no_timing);
    std::printf("wrote CSV report to %s\n", csv_path->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) {
  try {
    return ttmqo::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_sweep: %s\n", e.what());
    return 1;
  }
}
