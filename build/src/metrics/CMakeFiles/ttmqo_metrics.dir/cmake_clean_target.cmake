file(REMOVE_RECURSE
  "libttmqo_metrics.a"
)
