# Empty dependencies file for ttmqo_workload.
# This may be replaced when dependencies are built.
