// Tests for mapping synthetic-query results back to user queries.
#include <gtest/gtest.h>

#include "core/bs/result_mapper.h"
#include "query/parser.h"

namespace ttmqo {
namespace {

Reading Row(NodeId node, SimTime t, double light, double temp) {
  Reading r(node, t);
  r.Set(Attribute::kLight, light);
  r.Set(Attribute::kTemp, temp);
  return r;
}

class ResultMapperTest : public ::testing::Test {
 protected:
  // A synthetic acquisition query serving three members.
  ResultMapperTest()
      : sq_(Query::Acquisition(
            1000, {Attribute::kLight, Attribute::kTemp},
            PredicateSet::Of({{Attribute::kLight, Interval(100, 800)}}),
            4096)) {
    sq_.members.emplace(
        1, ParseQuery(1, "SELECT light WHERE light BETWEEN 100 AND 400 "
                         "EPOCH DURATION 4096"));
    sq_.members.emplace(
        2, ParseQuery(2, "SELECT light, temp WHERE light BETWEEN 300 AND "
                         "800 EPOCH DURATION 8192"));
    sq_.members.emplace(
        3, ParseQuery(3, "SELECT MAX(temp) WHERE light BETWEEN 100 AND 800 "
                         "EPOCH DURATION 8192"));
  }

  EpochResult SyntheticResult(SimTime t) {
    EpochResult r;
    r.query = 1000;
    r.epoch_time = t;
    r.kind = QueryKind::kAcquisition;
    r.rows = {Row(1, t, 150, 30), Row(2, t, 350, 40), Row(3, t, 700, 10)};
    return r;
  }

  SyntheticQuery sq_;
};

TEST_F(ResultMapperTest, MembersGetReFilteredAndProjected) {
  const auto mapped = MapSyntheticResult(SyntheticResult(8192), sq_);
  ASSERT_EQ(mapped.size(), 3u);

  const auto* q1 = &mapped[0];
  ASSERT_EQ(q1->query, 1u);
  ASSERT_EQ(q1->rows.size(), 2u);  // light 150 and 350 are in [100,400]
  EXPECT_EQ(q1->rows[0].node(), 1);
  EXPECT_EQ(q1->rows[1].node(), 2);
  // q1 projects only light (+ nodeid) — temp must be stripped.
  EXPECT_FALSE(q1->rows[0].Has(Attribute::kTemp));
  EXPECT_TRUE(q1->rows[0].Has(Attribute::kLight));

  const auto* q2 = &mapped[1];
  ASSERT_EQ(q2->rows.size(), 2u);  // light 350 and 700 in [300,800]
  EXPECT_TRUE(q2->rows[0].Has(Attribute::kTemp));
}

TEST_F(ResultMapperTest, AggregationComputedFromRawRows) {
  const auto mapped = MapSyntheticResult(SyntheticResult(8192), sq_);
  const auto* q3 = &mapped[2];
  ASSERT_EQ(q3->query, 3u);
  ASSERT_EQ(q3->aggregates.size(), 1u);
  ASSERT_TRUE(q3->aggregates[0].second.has_value());
  EXPECT_DOUBLE_EQ(*q3->aggregates[0].second, 40.0);  // MAX(temp)
}

TEST_F(ResultMapperTest, EpochFilteringHonorsMemberEpochs) {
  // At t = 4096 only the 4096-epoch member fires; the 8192 members wait.
  const auto mapped = MapSyntheticResult(SyntheticResult(4096), sq_);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped[0].query, 1u);
}

TEST_F(ResultMapperTest, EmptySyntheticRowsYieldEmptyAnswers) {
  EpochResult empty;
  empty.query = 1000;
  empty.epoch_time = 8192;
  empty.kind = QueryKind::kAcquisition;
  const auto mapped = MapSyntheticResult(empty, sq_);
  ASSERT_EQ(mapped.size(), 3u);
  EXPECT_TRUE(mapped[0].rows.empty());
  // MAX over the empty set is null.
  EXPECT_FALSE(mapped[2].aggregates[0].second.has_value());
}

TEST(ResultMapperAggTest, AggregateSubsetExtraction) {
  SyntheticQuery sq(Query::Aggregation(
      1000,
      {AggregateSpec{AggregateOp::kMax, Attribute::kLight},
       AggregateSpec{AggregateOp::kMin, Attribute::kLight}},
      PredicateSet::Of({{Attribute::kTemp, Interval(0, 50)}}), 4096));
  sq.members.emplace(
      1, ParseQuery(1, "SELECT MIN(light) WHERE temp <= 50 "
                       "EPOCH DURATION 8192"));
  EpochResult synthetic;
  synthetic.query = 1000;
  synthetic.epoch_time = 8192;
  synthetic.kind = QueryKind::kAggregation;
  synthetic.aggregates = {
      {AggregateSpec{AggregateOp::kMax, Attribute::kLight}, 900.0},
      {AggregateSpec{AggregateOp::kMin, Attribute::kLight}, 50.0},
  };
  const auto mapped = MapSyntheticResult(synthetic, sq);
  ASSERT_EQ(mapped.size(), 1u);
  ASSERT_EQ(mapped[0].aggregates.size(), 1u);
  EXPECT_EQ(mapped[0].aggregates[0].first.op, AggregateOp::kMin);
  EXPECT_DOUBLE_EQ(*mapped[0].aggregates[0].second, 50.0);
}

}  // namespace
}  // namespace ttmqo
