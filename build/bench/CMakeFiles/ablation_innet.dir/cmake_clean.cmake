file(REMOVE_RECURSE
  "CMakeFiles/ablation_innet.dir/ablation_innet.cc.o"
  "CMakeFiles/ablation_innet.dir/ablation_innet.cc.o.d"
  "ablation_innet"
  "ablation_innet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_innet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
