// Cross-cutting integration cases that do not fit a single module:
// node-id query rewriting, unsatisfiable predicates, maintenance traffic
// under sleep/failures, and propagation-size accounting.
#include <gtest/gtest.h>

#include "core/bs/rewriter.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

TEST(NodeIdRewriteTest, NodeIdQueriesMergeByHull) {
  const Topology topology = Topology::Grid(4);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost);
  (void)optimizer.InsertUserQuery(
      ParseQuery(1, "SELECT light WHERE nodeid = 5 EPOCH DURATION 4096"));
  (void)optimizer.InsertUserQuery(
      ParseQuery(2, "SELECT light WHERE nodeid = 7 EPOCH DURATION 4096"));
  // Whether they merge is a cost decision; either way both users must be
  // served and any merged query's nodeid hull covers both.
  ASSERT_NE(optimizer.SyntheticOf(1), nullptr);
  ASSERT_NE(optimizer.SyntheticOf(2), nullptr);
  if (optimizer.NumSynthetic() == 1) {
    const auto ids =
        optimizer.SyntheticOf(1)->query.predicates().ConstraintOn(
            Attribute::kNodeId);
    ASSERT_TRUE(ids.has_value());
    EXPECT_TRUE(ids->Contains(5));
    EXPECT_TRUE(ids->Contains(7));
  }
}

TEST(NodeIdRewriteTest, MergedNodeIdQueriesAnswerExactly) {
  // End-to-end: two node-id queries through the full two-tier stack; the
  // mapper must re-filter the hull back to each user's exact node.
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light WHERE nodeid = 5 EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT light WHERE nodeid = 7 EPOCH DURATION 4096"),
  };
  RunConfig config;
  config.grid_side = 4;
  config.duration_ms = 6 * 4096;
  config.seed = 3;
  config.mode = OptimizationMode::kBaseline;
  const RunResult baseline = RunExperiment(config, StaticSchedule(queries));
  config.mode = OptimizationMode::kTwoTier;
  const RunResult two_tier = RunExperiment(config, StaticSchedule(queries));
  const auto diff =
      CompareResultLogs(baseline.results, two_tier.results, queries);
  EXPECT_FALSE(diff.has_value()) << *diff;
  for (const EpochResult* r : two_tier.results.ResultsFor(1)) {
    for (const Reading& row : r->rows) EXPECT_EQ(row.node(), 5);
  }
}

TEST(UnsatisfiableQueryTest, RunsAndReturnsEmptyEpochs) {
  const Query q = ParseQuery(
      1, "SELECT light WHERE light > 600 AND light < 100 EPOCH DURATION "
         "4096");
  EXPECT_TRUE(q.predicates().IsUnsatisfiable());
  for (OptimizationMode mode :
       {OptimizationMode::kBaseline, OptimizationMode::kTwoTier}) {
    RunConfig config;
    config.grid_side = 4;
    config.duration_ms = 4 * 4096;
    config.mode = mode;
    const RunResult run = RunExperiment(config, StaticSchedule({q}));
    const auto results = run.results.ResultsFor(1);
    ASSERT_FALSE(results.empty());
    for (const EpochResult* r : results) EXPECT_TRUE(r->rows.empty());
  }
}

TEST(MaintenanceTest, BeaconsStopForFailedAndSleepingNodes) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 2);
  network.StartMaintenanceBeacons(1000, 6);
  network.sim().ScheduleAt(3000, [&] { network.FailNode(4); });
  network.sim().ScheduleAt(3000, [&] { network.SetAsleep(5, true); });
  network.sim().RunUntil(10'000);
  const auto& failed_stats = network.ledger().StatsOf(4);
  const auto& asleep_stats = network.ledger().StatsOf(5);
  const auto& alive_stats = network.ledger().StatsOf(3);
  const auto maint =
      static_cast<std::size_t>(MessageClass::kMaintenance);
  EXPECT_LT(failed_stats.sent_by_class[maint],
            alive_stats.sent_by_class[maint]);
  EXPECT_LT(asleep_stats.sent_by_class[maint],
            alive_stats.sent_by_class[maint]);
}

TEST(PropagationSizeTest, AggregationQueriesEncodeOpAndAttribute) {
  const Query acq = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  const Query agg =
      ParseQuery(2, "SELECT MAX(light), MIN(light) EPOCH DURATION 4096");
  // Two aggregates (2 bytes each) vs two projected attributes (1 each).
  EXPECT_GT(PropagationPayloadBytes(agg), PropagationPayloadBytes(acq));
}

TEST(WithLifetimeTest, ValidationAndPreservation) {
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  EXPECT_THROW(q.WithLifetime(1000), std::invalid_argument);
  const Query limited = q.WithLifetime(8192);
  EXPECT_EQ(limited.lifetime(), 8192);
  // WithId keeps the lifetime.
  EXPECT_EQ(limited.WithId(9).lifetime(), 8192);
}

}  // namespace
}  // namespace ttmqo
