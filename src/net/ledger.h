// Per-node radio accounting.
//
// The evaluation metric is *average transmission time*: "the average
// percentage of transmission time spent on each node for all running
// queries over the simulation time" (Section 4.1), counting result,
// propagation/abort, maintenance, and retransmission traffic.  The channel
// charges every transmission attempt (including failed ones) to the
// sender's ledger.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/check.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Accumulated radio activity for one node.
struct NodeRadioStats {
  /// Milliseconds spent transmitting, per message class (first attempts).
  std::array<double, kNumMessageClasses> transmit_ms_by_class{};
  /// Milliseconds spent on retransmission attempts (all classes).
  double retransmit_ms = 0.0;
  /// Successful first-attempt transmissions per class.
  std::array<std::uint64_t, kNumMessageClasses> sent_by_class{};
  /// Retransmission attempts.
  std::uint64_t retransmissions = 0;
  /// Messages abandoned after exhausting retries.
  std::uint64_t drops = 0;
  /// Messages delivered to this node (addressed to it).
  std::uint64_t received = 0;
  /// Milliseconds this node spent in sleep mode.
  double sleep_ms = 0.0;

  /// Total transmit milliseconds including retransmissions.
  double TotalTransmitMs() const;
};

/// The ledger for a whole deployment.
class RadioLedger {
 public:
  explicit RadioLedger(std::size_t num_nodes);

  /// Charges one transmission attempt of `duration_ms` to `node`.
  /// `is_retransmission` routes the charge to the retransmission bucket.
  void ChargeTransmit(NodeId node, MessageClass cls, double duration_ms,
                      bool is_retransmission);

  /// Records a message abandoned after exhausting retries.
  void CountDrop(NodeId node);

  /// Records a delivery addressed to `node`.
  void CountReceive(NodeId node);

  /// Adds time spent asleep (spans may not overlap for one node).
  void AddSleep(NodeId node, double duration_ms);

  /// Stats of one node.
  const NodeRadioStats& StatsOf(NodeId node) const;

  /// Number of nodes tracked.
  std::size_t size() const { return stats_.size(); }

  /// The paper's metric: mean over *sensor* nodes of
  /// (total transmit time / elapsed), as a fraction in [0, 1].  The base
  /// station is excluded when `include_base_station` is false (its mains
  /// power is not the constrained resource).
  double AverageTransmissionTime(SimDuration elapsed,
                                 bool include_base_station = false) const;

  /// Sum over nodes of total transmit milliseconds.
  double TotalTransmitMs() const;

  /// Sum over nodes of first-attempt message counts for `cls`.
  std::uint64_t TotalSent(MessageClass cls) const;

  /// Sum of retransmission attempts over all nodes.
  std::uint64_t TotalRetransmissions() const;

  /// Total messages sent (first attempts, all classes).
  std::uint64_t TotalMessages() const;

  /// Resets every counter (used between measurement windows).
  void Reset();

 private:
  std::vector<NodeRadioStats> stats_;
};

}  // namespace ttmqo
