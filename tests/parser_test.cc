// Unit tests for the TinyDB SQL dialect parser.
#include <gtest/gtest.h>

#include "query/parser.h"

namespace ttmqo {
namespace {

TEST(ParserTest, SimpleAcquisition) {
  const Query q =
      ParseQuery(1, "SELECT light FROM sensors EPOCH DURATION 4096");
  EXPECT_EQ(q.id(), 1u);
  EXPECT_EQ(q.kind(), QueryKind::kAcquisition);
  EXPECT_EQ(q.epoch(), 4096);
  EXPECT_TRUE(q.predicates().IsUnconstrained());
}

TEST(ParserTest, FromClauseIsOptional) {
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 2048");
  EXPECT_EQ(q.kind(), QueryKind::kAcquisition);
}

TEST(ParserTest, PaperExampleQueries) {
  // The three queries of the Section 3.1.3 worked example.
  const Query q1 = ParseQuery(
      1, "select light where 280 < light and light < 600 epoch duration 4096");
  EXPECT_EQ(q1.predicates().ConstraintOn(Attribute::kLight),
            Interval(280, 600));
  const Query q2 = ParseQuery(
      2, "select light where 100 < light and light < 300 epoch duration 8192");
  EXPECT_EQ(q2.predicates().ConstraintOn(Attribute::kLight),
            Interval(100, 300));
}

TEST(ParserTest, BetweenSyntax) {
  const Query q = ParseQuery(
      1, "SELECT temp WHERE temp BETWEEN 10 AND 40 EPOCH DURATION 4096");
  EXPECT_EQ(q.predicates().ConstraintOn(Attribute::kTemp), Interval(10, 40));
}

TEST(ParserTest, ReversedComparison) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE 500 >= light EPOCH DURATION 4096");
  const auto c = q.predicates().ConstraintOn(Attribute::kLight);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->hi(), 500.0);
}

TEST(ParserTest, EqualityPredicate) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE nodeid = 5 EPOCH DURATION 4096");
  EXPECT_EQ(q.predicates().ConstraintOn(Attribute::kNodeId), Interval(5, 5));
}

TEST(ParserTest, AggregationQuery) {
  const Query q = ParseQuery(
      7, "SELECT MAX(light), MIN(temp) FROM sensors EPOCH DURATION 8192");
  EXPECT_EQ(q.kind(), QueryKind::kAggregation);
  ASSERT_EQ(q.aggregates().size(), 2u);
}

TEST(ParserTest, SelectStarProjectsAllSensedAttributes) {
  const Query q = ParseQuery(1, "SELECT * EPOCH DURATION 4096");
  EXPECT_EQ(q.attributes().size(), kSensedAttributes.size() + 1);  // + nodeid
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_NO_THROW(
      ParseQuery(1, "select Max(Light) from SENSORS epoch duration 4096"));
}

TEST(ParserTest, RejectsMixedProjection) {
  EXPECT_THROW(
      ParseQuery(1, "SELECT light, MAX(temp) EPOCH DURATION 4096"),
      ParseError);
}

TEST(ParserTest, RejectsBadEpoch) {
  EXPECT_THROW(ParseQuery(1, "SELECT light EPOCH DURATION 1000"), ParseError);
  EXPECT_THROW(ParseQuery(1, "SELECT light EPOCH DURATION -2048"), ParseError);
  EXPECT_THROW(ParseQuery(1, "SELECT light EPOCH DURATION 2048.5"),
               ParseError);
}

TEST(ParserTest, RejectsUnknownNames) {
  EXPECT_THROW(ParseQuery(1, "SELECT bogus EPOCH DURATION 2048"), ParseError);
  EXPECT_THROW(ParseQuery(1, "SELECT MEDIAN(light) EPOCH DURATION 2048"),
               ParseError);
  EXPECT_THROW(
      ParseQuery(1, "SELECT light FROM other_table EPOCH DURATION 2048"),
      ParseError);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_THROW(ParseQuery(1, "SELECT light EPOCH DURATION 2048 extra"),
               ParseError);
}

TEST(ParserTest, RejectsMissingEpoch) {
  EXPECT_THROW(ParseQuery(1, "SELECT light"), ParseError);
}

TEST(ParserTest, RejectsMalformedComparison) {
  EXPECT_THROW(ParseQuery(1, "SELECT light WHERE light << 5 EPOCH DURATION "
                             "2048"),
               ParseError);
  EXPECT_THROW(
      ParseQuery(1, "SELECT light WHERE light < temp EPOCH DURATION 2048"),
      ParseError);
}

// Runs the parser on malformed input and returns the diagnostic; empty
// when the input unexpectedly parses.  Lets the edge-case tests assert
// the error *names the mistake* instead of merely throwing.
std::string ParseErrorMessage(const std::string& sql) {
  try {
    ParseQuery(1, sql);
  } catch (const ParseError& e) {
    return e.what();
  }
  return {};
}

TEST(ParserTest, EmptySelectListIsDiagnosed) {
  EXPECT_NE(ParseErrorMessage("SELECT FROM sensors EPOCH DURATION 4096")
                .find("SELECT list must not be empty"),
            std::string::npos);
  EXPECT_NE(ParseErrorMessage("SELECT EPOCH DURATION 4096")
                .find("SELECT list must not be empty"),
            std::string::npos);
  EXPECT_NE(ParseErrorMessage("SELECT WHERE light < 5 EPOCH DURATION 4096")
                .find("SELECT list must not be empty"),
            std::string::npos);
  EXPECT_NE(ParseErrorMessage("SELECT").find("SELECT list must not be empty"),
            std::string::npos);
}

TEST(ParserTest, WhitespaceOnlyInputIsDiagnosed) {
  EXPECT_FALSE(ParseErrorMessage("").empty());
  EXPECT_FALSE(ParseErrorMessage("   \t\n  ").empty());
  EXPECT_NE(ParseErrorMessage("  \n ").find("SELECT"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateAttributes) {
  EXPECT_NE(
      ParseErrorMessage("SELECT light, light FROM sensors EPOCH DURATION 4096")
          .find("duplicate attribute 'LIGHT'"),
      std::string::npos);
  EXPECT_NE(
      ParseErrorMessage("SELECT light, temp, light EPOCH DURATION 4096")
          .find("duplicate attribute"),
      std::string::npos);
  // Distinct attributes still parse.
  EXPECT_NO_THROW(ParseQuery(1, "SELECT light, temp EPOCH DURATION 4096"));
}

TEST(ParserTest, RejectsDuplicateAggregates) {
  EXPECT_NE(
      ParseErrorMessage("SELECT MAX(light), MAX(light) EPOCH DURATION 4096")
          .find("duplicate aggregate"),
      std::string::npos);
  // Same attribute under a different op is a different aggregate.
  EXPECT_NO_THROW(
      ParseQuery(1, "SELECT MAX(light), MIN(light) EPOCH DURATION 4096"));
}

TEST(ParserTest, RejectsZeroEpoch) {
  EXPECT_NE(ParseErrorMessage("SELECT light EPOCH DURATION 0")
                .find("epoch duration"),
            std::string::npos);
}

TEST(ParserTest, RejectsOutOfRangeNodeIds) {
  EXPECT_NE(
      ParseErrorMessage(
          "SELECT light WHERE nodeid = 70000 EPOCH DURATION 4096")
          .find("outside"),
      std::string::npos);
  EXPECT_NE(
      ParseErrorMessage("SELECT light WHERE nodeid = -1 EPOCH DURATION 4096")
          .find("outside"),
      std::string::npos);
  EXPECT_NE(
      ParseErrorMessage(
          "SELECT light WHERE nodeid BETWEEN 0 AND 99999 EPOCH DURATION 4096")
          .find("outside"),
      std::string::npos);
  // The reversed `constant op attr` form is validated too.
  EXPECT_NE(
      ParseErrorMessage(
          "SELECT light WHERE 70000 = nodeid EPOCH DURATION 4096")
          .find("outside"),
      std::string::npos);
  // Boundary values are addresses, not errors.
  EXPECT_NO_THROW(ParseQuery(
      1, "SELECT light WHERE nodeid = 65535 EPOCH DURATION 4096"));
  EXPECT_NO_THROW(
      ParseQuery(1, "SELECT light WHERE nodeid = 0 EPOCH DURATION 4096"));
}

TEST(ParserTest, RejectsFractionalNodeIds) {
  EXPECT_NE(
      ParseErrorMessage("SELECT light WHERE nodeid = 2.5 EPOCH DURATION 4096")
          .find("integer"),
      std::string::npos);
  // Continuous attributes keep fractional constants.
  EXPECT_NO_THROW(
      ParseQuery(1, "SELECT light WHERE temp < 21.5 EPOCH DURATION 4096"));
}

TEST(ParserTest, MultiplePredicatesOnOneAttributeIntersect) {
  const Query q = ParseQuery(
      1,
      "SELECT light WHERE light > 100 AND light < 600 AND temp < 50 "
      "EPOCH DURATION 4096");
  EXPECT_EQ(q.predicates().ConstraintOn(Attribute::kLight),
            Interval(100, 600));
  const auto temp = q.predicates().ConstraintOn(Attribute::kTemp);
  ASSERT_TRUE(temp.has_value());
  EXPECT_DOUBLE_EQ(temp->hi(), 50.0);
}

}  // namespace
}  // namespace ttmqo

namespace lifetime_tests {

TEST(ParserLifetimeTest, ForClauseParsed) {
  const ttmqo::Query q = ttmqo::ParseQuery(
      1, "SELECT light EPOCH DURATION 4096 FOR 40960");
  EXPECT_EQ(q.lifetime(), 40960);
  EXPECT_NE(q.ToSql().find("FOR 40960"), std::string::npos);
}

TEST(ParserLifetimeTest, DefaultIsContinuous) {
  const ttmqo::Query q =
      ttmqo::ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  EXPECT_EQ(q.lifetime(), 0);
  EXPECT_EQ(q.ToSql().find("FOR"), std::string::npos);
}

TEST(ParserLifetimeTest, RejectsBadLifetimes) {
  EXPECT_THROW(
      ttmqo::ParseQuery(1, "SELECT light EPOCH DURATION 4096 FOR 2048"),
      ttmqo::ParseError);  // shorter than one epoch
  EXPECT_THROW(
      ttmqo::ParseQuery(1, "SELECT light EPOCH DURATION 4096 FOR -1"),
      ttmqo::ParseError);
  EXPECT_THROW(
      ttmqo::ParseQuery(1, "SELECT light EPOCH DURATION 4096 FOR x"),
      ttmqo::ParseError);
}

}  // namespace lifetime_tests
