
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ledger.cc" "src/net/CMakeFiles/ttmqo_net.dir/ledger.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/ledger.cc.o.d"
  "/root/repo/src/net/link_quality.cc" "src/net/CMakeFiles/ttmqo_net.dir/link_quality.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/link_quality.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/ttmqo_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/message.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/ttmqo_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/network.cc.o.d"
  "/root/repo/src/net/simulator.cc" "src/net/CMakeFiles/ttmqo_net.dir/simulator.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/simulator.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/ttmqo_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/ttmqo_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
