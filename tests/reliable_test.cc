// Unit tests for the ARQ transport (reliable/arq.h): backoff arithmetic,
// per-(sender, seq) jitter streams, ack/retransmit bookkeeping over a
// lossless grid, deadline budgets, and the quarantine hysteresis that
// makes flapping neighbors progressively more expensive to re-trust.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "reliable/arq.h"
#include "reliable/profile.h"
#include "util/rng.h"

namespace ttmqo {
namespace {

struct ProbePayload final : Payload {
  explicit ProbePayload(int v) : value(v) {}
  int value;
};

ArqOptions TestOptions() {
  ArqOptions options;
  options.enabled = true;
  options.seed = 99;
  return options;
}

// ---------------------------------------------------------------------------
// Backoff arithmetic.

TEST(ArqRtoTest, DoublesPerAttemptAndCapsWithoutJitter) {
  ArqOptions options = TestOptions();
  options.jitter_ms = 0;
  Rng rng(1);
  EXPECT_EQ(ArqRto(options, 0, rng), 256);
  EXPECT_EQ(ArqRto(options, 1, rng), 512);
  EXPECT_EQ(ArqRto(options, 2, rng), 1024);
  EXPECT_EQ(ArqRto(options, 3, rng), 2048);
  EXPECT_EQ(ArqRto(options, 4, rng), 4096);
  EXPECT_EQ(ArqRto(options, 5, rng), 4096) << "growth must cap at max_rto";
  EXPECT_EQ(ArqRto(options, 30, rng), 4096)
      << "large exponents must not overflow past the cap";
}

TEST(ArqRtoTest, JitterIsBoundedAndDeterministicInTheStream) {
  const ArqOptions options = TestOptions();
  Rng a = ArqJitterRng(options.seed, 7, 3);
  Rng b = ArqJitterRng(options.seed, 7, 3);
  for (int exponent = 0; exponent < 8; ++exponent) {
    const SimDuration first = ArqRto(options, exponent, a);
    const SimDuration second = ArqRto(options, exponent, b);
    EXPECT_EQ(first, second)
        << "same (seed, sender, seq) must give the same retry schedule";
    const SimDuration base =
        std::min(options.base_rto_ms << std::min(exponent, 20),
                 options.max_rto_ms);
    EXPECT_GE(first, base);
    EXPECT_LE(first, base + options.jitter_ms);
  }
}

TEST(ArqJitterRngTest, StreamsAreIndependentPerSenderAndSeq) {
  // Different (sender, seq) pairs must draw different jitter so retry
  // bursts de-synchronize; equal pairs must collide exactly.
  const auto draws = [](NodeId sender, std::uint32_t seq) {
    Rng rng = ArqJitterRng(42, sender, seq);
    std::vector<std::int64_t> out;
    for (int i = 0; i < 4; ++i) out.push_back(rng.UniformInt(0, 1 << 20));
    return out;
  };
  EXPECT_EQ(draws(3, 1), draws(3, 1));
  EXPECT_NE(draws(3, 1), draws(3, 2));
  EXPECT_NE(draws(3, 1), draws(4, 1));
}

// ---------------------------------------------------------------------------
// Transport behavior on a small lossless grid.

class ArqTransportTest : public ::testing::Test {
 protected:
  ArqTransportTest()
      : topology_(Topology::Grid(3)),
        network_(topology_, RadioParams{}, ChannelParams{}, 11),
        arq_(network_, TestOptions()),
        delivered_(topology_.size()) {
    for (NodeId n = 0; n < topology_.size(); ++n) {
      arq_.Attach(n, [this, n](const Message& msg, bool addressed) {
        if (addressed) delivered_[n].push_back(msg);
      });
    }
    arq_.SetGiveUpHook([this](const ArqTransport::GiveUpInfo& info) {
      give_ups_.push_back(info);
    });
    arq_.SetQuarantineHook([this](NodeId self, NodeId neighbor,
                                  SimTime until) {
      quarantine_spans_.push_back(until - network_.sim().Now());
      (void)self;
      (void)neighbor;
    });
  }

  Message Probe(NodeId from, std::vector<NodeId> to, int value) {
    Message msg;
    msg.cls = MessageClass::kResult;
    msg.mode = to.size() == 1 ? AddressMode::kUnicast
                              : AddressMode::kMulticast;
    msg.sender = from;
    msg.destinations = std::move(to);
    msg.payload_bytes = 8;
    msg.payload = std::make_shared<ProbePayload>(value);
    return msg;
  }

  Topology topology_;
  Network network_;
  ArqTransport arq_;
  std::vector<std::vector<Message>> delivered_;
  std::vector<ArqTransport::GiveUpInfo> give_ups_;
  std::vector<SimDuration> quarantine_spans_;
};

TEST_F(ArqTransportTest, LosslessUnicastDeliversOnceWithoutRetries) {
  arq_.Send(Probe(4, {1}, 17), /*deadline=*/1'000'000);
  network_.sim().RunUntil(20'000);

  ASSERT_EQ(delivered_[1].size(), 1u);
  // The receiver sees the reconstructed application message, not the
  // ARQ wrapper.
  const auto* probe =
      dynamic_cast<const ProbePayload*>(delivered_[1][0].payload.get());
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->value, 17);
  EXPECT_EQ(delivered_[1][0].payload_bytes, 8u);

  EXPECT_EQ(arq_.sends(), 1u);
  EXPECT_EQ(arq_.retransmits(), 0u) << "the ack must cancel the timer";
  EXPECT_EQ(arq_.acks_sent(), 1u);
  EXPECT_EQ(arq_.duplicates_dropped(), 0u);
  EXPECT_EQ(arq_.give_ups(), 0u);
  EXPECT_TRUE(give_ups_.empty());
}

TEST_F(ArqTransportTest, MulticastRetransmitsOnlyToTheSilentSubset) {
  network_.SetDown(3);  // silent outage: receives nothing, sends nothing
  arq_.Send(Probe(4, {1, 3}, 5), /*deadline=*/1'000'000);
  network_.sim().RunUntil(60'000);

  // The live destination got exactly one copy despite the retries (they
  // were addressed to node 3 only), the dead one struck out.
  EXPECT_EQ(delivered_[1].size(), 1u);
  EXPECT_TRUE(delivered_[3].empty());
  EXPECT_EQ(arq_.retransmits(), 3u) << "max_attempts=4 means 3 retries";
  EXPECT_EQ(arq_.duplicates_dropped(), 0u)
      << "retries must re-address the silent subset, not every destination";
  ASSERT_EQ(give_ups_.size(), 1u);
  EXPECT_EQ(give_ups_[0].sender, 4);
  EXPECT_EQ(give_ups_[0].unacked, (std::vector<NodeId>{3}));
  const auto* probe =
      dynamic_cast<const ProbePayload*>(give_ups_[0].inner.get());
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->value, 5) << "the hook must hand back the inner payload";
}

TEST_F(ArqTransportTest, DeadlineCutsTheRetryBudgetShort) {
  network_.SetDown(1);
  // The deadline passes before the first timeout fires, so the slot gives
  // up without spending any of its retransmissions.
  arq_.Send(Probe(4, {1}, 9), /*deadline=*/network_.sim().Now() + 100);
  network_.sim().RunUntil(20'000);

  EXPECT_EQ(arq_.give_ups(), 1u);
  EXPECT_EQ(arq_.retransmits(), 0u);
  ASSERT_EQ(give_ups_.size(), 1u);
  EXPECT_EQ(give_ups_[0].unacked, (std::vector<NodeId>{1}));
}

TEST_F(ArqTransportTest, RetrySchedulesAreDeterministicAcrossTransports) {
  // Two transports over identical networks must time out on exactly the
  // same schedule: the jitter is a pure function of (seed, sender, seq).
  Network other(topology_, RadioParams{}, ChannelParams{}, 11);
  ArqTransport arq2(other, TestOptions());
  for (NodeId n = 0; n < topology_.size(); ++n) {
    arq2.Attach(n, [](const Message&, bool) {});
  }
  network_.SetDown(1);
  other.SetDown(1);

  std::vector<SimTime> first, second;
  arq_.SetGiveUpHook([&](const ArqTransport::GiveUpInfo&) {
    first.push_back(network_.sim().Now());
  });
  arq2.SetGiveUpHook([&](const ArqTransport::GiveUpInfo&) {
    second.push_back(other.sim().Now());
  });
  arq_.Send(Probe(4, {1}, 1), 1'000'000);
  arq2.Send(Probe(4, {1}, 1), 1'000'000);
  network_.sim().RunUntil(60'000);
  other.sim().RunUntil(60'000);

  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first, second);
}

TEST_F(ArqTransportTest, QuarantineBackoffDoublesThenHysteresisHalves) {
  const ArqOptions options = TestOptions();
  network_.SetDown(3);

  // Two give-ups (= quarantine_threshold strikes) trigger the first
  // quarantine; sends are spaced far enough apart that each budget is
  // fully spent before the next begins.
  auto strike_out = [&](SimTime at, int value) {
    network_.sim().ScheduleAt(at, [this, value] {
      arq_.Send(Probe(4, {3}, value), /*deadline=*/1'000'000);
    });
  };
  strike_out(0, 1);
  strike_out(8'192, 2);
  // Stop inside the quarantine window (give-up 2 lands around t=12.2s,
  // the quarantine holds for 4096 ms after it).
  network_.sim().RunUntil(14'000);

  ASSERT_EQ(quarantine_spans_.size(), 1u);
  EXPECT_EQ(quarantine_spans_[0], options.quarantine_base_ms);
  EXPECT_TRUE(arq_.IsQuarantined(4, 3));
  EXPECT_FALSE(arq_.IsQuarantined(3, 4)) << "quarantine is directional";

  // A second pair of give-ups doubles the backoff (4096 -> 8192): the
  // neighbor flapped once already, so it is distrusted for longer.
  strike_out(24'576, 3);
  strike_out(32'768, 4);
  network_.sim().RunUntil(45'056);
  ASSERT_EQ(quarantine_spans_.size(), 2u);
  EXPECT_EQ(quarantine_spans_[1], 2 * options.quarantine_base_ms);

  // Recovery: one good ack halves the backoff instead of erasing it.  The
  // next quarantine therefore doubles from 4096 again, not from 8192.
  network_.sim().ScheduleAt(45'056, [this] { network_.Recover(3); });
  strike_out(49'152, 5);
  network_.sim().RunUntil(57'344);
  EXPECT_EQ(delivered_[3].size(), 1u);
  EXPECT_FALSE(arq_.IsQuarantined(4, 3)) << "a good ack lifts quarantine";

  network_.sim().ScheduleAt(57'344, [this] { network_.SetDown(3); });
  strike_out(61'440, 6);
  strike_out(69'632, 7);
  network_.sim().RunUntil(81'920);
  ASSERT_EQ(quarantine_spans_.size(), 3u);
  EXPECT_EQ(quarantine_spans_[2], 2 * options.quarantine_base_ms)
      << "hysteresis: the halved backoff doubles back to 8192, not 16384";

  // Quarantine expires on its own once the backoff elapses.
  network_.sim().RunUntil(200'000);
  EXPECT_FALSE(arq_.IsQuarantined(4, 3));
}

// ---------------------------------------------------------------------------
// Profile parsing.

TEST(ReliabilityProfileTest, NamesRoundTrip) {
  EXPECT_EQ(ParseReliabilityProfile("off"), ReliabilityProfile::kOff);
  EXPECT_EQ(ParseReliabilityProfile("harden"), ReliabilityProfile::kHarden);
  EXPECT_EQ(ParseReliabilityProfile("arq"), ReliabilityProfile::kArq);
  EXPECT_EQ(ReliabilityProfileName(ReliabilityProfile::kOff), "off");
  EXPECT_EQ(ReliabilityProfileName(ReliabilityProfile::kHarden), "harden");
  EXPECT_EQ(ReliabilityProfileName(ReliabilityProfile::kArq), "arq");
  EXPECT_THROW(ParseReliabilityProfile("maximal"), std::invalid_argument);
}

}  // namespace
}  // namespace ttmqo
