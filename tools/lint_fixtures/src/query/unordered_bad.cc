// Fixture: both declarations must trigger `unordered-container`.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Report {
  std::unordered_map<std::string, int> counters;
  std::unordered_set<int> seen;
};

}  // namespace fixture
