// Tests for the obs layer: span recording (nesting, sampling, the runtime
// kill switch), Chrome trace-event export (structure checked with the mini
// JSON parser), build provenance, the flight-recorder ring, and the
// check-failure postmortem pipeline end to end.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_checker.h"
#include "net/simulator.h"
#include "obs/build_info.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/session.h"
#include "obs/span.h"
#include "util/check.h"

namespace ttmqo {
namespace {

using obs::CollectFlightRecords;
using obs::CollectSpans;
using obs::FlightEntry;
using obs::SpanRecord;
using obs::SpanSnapshot;
using obs::SpanStat;
using ttmqo::testing::IsValidJson;

/// Spins until the monotonic clock has visibly advanced, so span durations
/// in these tests are strictly positive even on coarse clocks.
void BurnWallTime() {
  const std::uint64_t start = obs::NowNs();
  while (obs::NowNs() - start < 50'000) {  // 50 us
  }
}

const SpanStat* FindStat(const SpanSnapshot& snapshot, const char* name) {
  for (const SpanStat& stat : snapshot.totals) {
    if (stat.name == name) return &stat;
  }
  return nullptr;
}

std::vector<SpanRecord> AllRecords(const SpanSnapshot& snapshot,
                                   const char* name) {
  std::vector<SpanRecord> records;
  for (const auto& thread : snapshot.threads) {
    for (const SpanRecord& r : thread.records) {
      if (std::strcmp(r.name, name) == 0) records.push_back(r);
    }
  }
  return records;
}

/// Splits the top-level `{...}` elements of the first JSON array stored
/// under `"key":[...]`.  Assumes the document is valid JSON (checked by the
/// caller first), so brace matching only needs to respect strings.
std::vector<std::string> ArrayObjects(const std::string& json,
                                      const std::string& key) {
  std::vector<std::string> objects;
  const std::size_t anchor = json.find("\"" + key + "\"");
  if (anchor == std::string::npos) return objects;
  std::size_t pos = json.find('[', anchor);
  if (pos == std::string::npos) return objects;
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (++pos; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (in_string) {
      if (c == '\\') ++pos;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth == 0) start = pos;
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) objects.push_back(json.substr(start, pos - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return objects;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::filesystem::path FreshTempDir(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (std::string("ttmqo_obs_test_") + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------------- spans --

TEST(SpanTest, RecordsAndAggregates) {
  obs::ResetSpans();
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.basic");
    BurnWallTime();
  }
  const SpanSnapshot snapshot = CollectSpans();
  const SpanStat* stat = FindStat(snapshot, "obs.test.basic");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 1u);
  EXPECT_EQ(stat->records, 1u);
  EXPECT_GT(stat->total_ns, 0u);
  EXPECT_EQ(stat->estimated_total_ns, stat->total_ns);  // unsampled
}

TEST(SpanTest, NestedSpansCarryDepth) {
  obs::ResetSpans();
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.outer");
    TTMQO_SPAN("obs.test.inner");
    BurnWallTime();
  }
  const SpanSnapshot snapshot = CollectSpans();
  const auto outer = AllRecords(snapshot, "obs.test.outer");
  const auto inner = AllRecords(snapshot, "obs.test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(inner[0].depth, 1u);
  // The inner span is contained in the outer one.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].dur_ns, outer[0].dur_ns);
}

TEST(SpanTest, RuntimeKillSwitchStopsRecording) {
  obs::ResetSpans();
  obs::SetSpansEnabled(false);
  {
    TTMQO_SPAN("obs.test.disabled");
  }
  obs::SetSpansEnabled(true);
  const SpanSnapshot snapshot = CollectSpans();
  EXPECT_EQ(FindStat(snapshot, "obs.test.disabled"), nullptr);
}

TEST(SpanTest, SampledSiteScalesCountsBack) {
  obs::ResetSpans();
  obs::SetSpansEnabled(true);
  // 256 executions at shift 4: exactly 16 are timed regardless of the
  // site's tick phase, and the aggregate count is scaled back to 256.
  for (int i = 0; i < 256; ++i) {
    TTMQO_SPAN_SAMPLED("obs.test.sampled", 4);
  }
  const SpanSnapshot snapshot = CollectSpans();
  const SpanStat* stat = FindStat(snapshot, "obs.test.sampled");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->records, 16u);
  EXPECT_EQ(stat->count, 256u);
  EXPECT_EQ(stat->estimated_total_ns, stat->total_ns * 16);
}

TEST(SpanTest, PhaseSpanMeasuresThreadCpu) {
  obs::ResetSpans();
  obs::SetSpansEnabled(true);
  {
    TTMQO_PHASE_SPAN("obs.test.phase");
    BurnWallTime();  // busy wait: wall time is CPU time here
  }
  const SpanSnapshot snapshot = CollectSpans();
  const auto records = AllRecords(snapshot, "obs.test.phase");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].has_cpu);
  EXPECT_GT(records[0].cpu_ns, 0u);
}

TEST(SpanTest, ResetDiscardsEverything) {
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.discarded");
  }
  obs::ResetSpans();
  const SpanSnapshot snapshot = CollectSpans();
  EXPECT_EQ(FindStat(snapshot, "obs.test.discarded"), nullptr);
}

// ------------------------------------------------------ chrome trace --

TEST(ChromeTraceTest, EveryEventCarriesRequiredFields) {
  obs::ResetSpans();
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.trace_outer");
    TTMQO_SPAN("obs.test.trace_inner");
    BurnWallTime();
  }
  for (int i = 0; i < 64; ++i) {
    TTMQO_SPAN_SAMPLED("obs.test.trace_sampled", 6);
  }
  std::ostringstream out;
  obs::WriteChromeTrace(out, CollectSpans());
  const std::string json = out.str();
  ASSERT_TRUE(IsValidJson(json)) << json;

  const std::vector<std::string> events = ArrayObjects(json, "traceEvents");
  ASSERT_GE(events.size(), 3u);  // 2+ slices and a thread_name metadata
  bool saw_complete = false;
  bool saw_metadata = false;
  bool saw_sampled_args = false;
  for (const std::string& event : events) {
    // The required trace-event fields, on every single event.
    EXPECT_NE(event.find("\"ph\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"pid\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"tid\":"), std::string::npos) << event;
    EXPECT_NE(event.find("\"name\":"), std::string::npos) << event;
    if (event.find("\"ph\": \"X\"") != std::string::npos) {
      saw_complete = true;
      EXPECT_NE(event.find("\"ts\":"), std::string::npos) << event;
      EXPECT_NE(event.find("\"dur\":"), std::string::npos) << event;
    }
    if (event.find("\"ph\": \"M\"") != std::string::npos) saw_metadata = true;
    if (event.find("\"sampled_1_of\": 64") != std::string::npos) {
      saw_sampled_args = true;
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_sampled_args);
}

TEST(ChromeTraceTest, SessionWritesTraceFileOnFinish) {
  const std::filesystem::path dir = FreshTempDir("trace");
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "trace.json").string();

  obs::ObsSession::Options options;
  options.trace_chrome_path = path;
  obs::ObsSession session(options);
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.session_span");
  }
  session.Finish();
  session.Finish();  // idempotent

  const std::string json = ReadFile(path);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("obs.test.session_span"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeTraceTest, FileExportThrowsOnBadPath) {
  EXPECT_THROW(obs::WriteChromeTraceFile("/nonexistent_dir_7q/trace.json"),
               std::invalid_argument);
}

TEST(ObsSessionTest, ConstructionFailsFastOnUnwritableTracePath) {
  // The constructor probes the trace path so a bad --trace-chrome aborts
  // before the run, from code that can still turn it into exit 1 — never
  // from the destructor (a throwing destructor would std::terminate).
  obs::ObsSession::Options options;
  options.trace_chrome_path = "/nonexistent_dir_7q/trace.json";
  EXPECT_THROW(obs::ObsSession session(std::move(options)),
               std::runtime_error);
}

TEST(ObsSessionTest, ConstructionClearsStaleState) {
  obs::SetSpansEnabled(true);
  {
    TTMQO_SPAN("obs.test.stale");
  }
  obs::ObsSession session(obs::ObsSession::Options{});
  EXPECT_EQ(FindStat(CollectSpans(), "obs.test.stale"), nullptr);
  EXPECT_TRUE(CollectFlightRecords().empty());
}

// -------------------------------------------------------- build info --

TEST(BuildInfoTest, PopulatedAndSerializable) {
  const obs::BuildInfo& info = obs::GetBuildInfo();
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_GE(info.hardware_concurrency, 1u);

  std::ostringstream out;
  obs::WriteBuildInfoJson(out);
  EXPECT_TRUE(IsValidJson(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"git_sha\""), std::string::npos);
  EXPECT_NE(out.str().find("\"hardware_concurrency\""), std::string::npos);
}

TEST(BuildInfoTest, SingleCoreWarningMatchesHardware) {
  std::ostringstream err;
  const bool fired = obs::WarnIfSingleCore(err);
  EXPECT_EQ(fired, obs::GetBuildInfo().hardware_concurrency <= 1);
  EXPECT_EQ(fired, !err.str().empty());
}

// --------------------------------------------------- flight recorder --

TEST(FlightTest, DisarmedRecordsNothing) {
  obs::DisarmFlightRecorder();
  obs::ClearFlightRecords();
  obs::RecordFlight("obs.test.unarmed", 1);
  EXPECT_TRUE(CollectFlightRecords().empty());
}

TEST(FlightTest, RecordsInOrderAndTruncatesStrings) {
  obs::ClearFlightRecords();
  obs::ArmFlightRecorder();
  obs::RecordFlight("obs.test.k1", 5, 1, 2, 3, "hello");
  obs::RecordFlight("a_kind_name_far_longer_than_the_inline_field", 6, 4, 5,
                    6,
                    "a detail string far longer than the inline capacity of "
                    "the flight entry");
  obs::DisarmFlightRecorder();

  const std::vector<FlightEntry> records = CollectFlightRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].seq, records[1].seq);
  EXPECT_STREQ(records[0].kind, "obs.test.k1");
  EXPECT_EQ(records[0].sim_time, 5);
  EXPECT_EQ(records[0].a, 1);
  EXPECT_EQ(records[0].b, 2);
  EXPECT_EQ(records[0].c, 3);
  EXPECT_STREQ(records[0].detail, "hello");
  // Over-long strings truncate (never overflow) and stay NUL-terminated.
  EXPECT_EQ(std::strlen(records[1].kind), FlightEntry::kKindLen - 1);
  EXPECT_EQ(std::strlen(records[1].detail), FlightEntry::kDetailLen - 1);
}

TEST(FlightTest, RingKeepsTheNewestRecords) {
  obs::ClearFlightRecords();
  obs::ArmFlightRecorder();
  for (int i = 0; i < 300; ++i) {
    obs::RecordFlight("obs.test.wrap", i, i);
  }
  obs::DisarmFlightRecorder();

  const std::vector<FlightEntry> records = CollectFlightRecords();
  ASSERT_FALSE(records.empty());
  ASSERT_LT(records.size(), 300u);  // the ring wrapped
  EXPECT_EQ(records.back().a, 299);
  EXPECT_EQ(records.front().a,
            300 - static_cast<std::int64_t>(records.size()));
}

TEST(FlightTest, SimulatorTeardownClearsThisThreadsRing) {
  obs::ClearFlightRecords();
  obs::ArmFlightRecorder();
  {
    Simulator sim;
    sim.ScheduleAt(1, [] {});
    sim.ScheduleAt(2, [] {});
    sim.RunUntil(10);
    EXPECT_FALSE(CollectFlightRecords().empty());  // sim.event was recorded
  }
  // The destructor must clear the thread's ring so a back-to-back
  // in-process run can't interleave this run's tail into its postmortem.
  EXPECT_TRUE(CollectFlightRecords().empty());
  obs::DisarmFlightRecorder();
}

// ---------------------------------------------------------- postmortem --

TEST(PostmortemTest, CheckFailureDumpsLastSimulatorEvents) {
  const std::filesystem::path dir = FreshTempDir("check");
  obs::ArmPostmortem(dir.string());
  {
    Simulator sim;
    for (SimTime t = 1; t <= 5; ++t) sim.ScheduleAt(t, [] {});
    sim.RunUntil(3);  // records sim.event entries while armed
    EXPECT_THROW(Check(false, "induced for obs_test"), CheckFailure);
    sim.RunUntil(10);
  }
  obs::DisarmFlightRecorder();
  obs::ClearFlightRecords();

  std::vector<std::filesystem::path> dumps;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    dumps.push_back(entry.path());
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].filename().string().find("postmortem_"),
            std::string::npos);
  const std::string json = ReadFile(dumps[0].string());
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("induced for obs_test"), std::string::npos);
  // The dump preserves the simulator events leading up to the failure.
  EXPECT_NE(json.find("\"sim.event\""), std::string::npos);
  const std::vector<std::string> entries = ArrayObjects(json, "records");
  ASSERT_GE(entries.size(), 3u);
  for (const std::string& entry : entries) {
    EXPECT_NE(entry.find("\"seq\":"), std::string::npos) << entry;
    EXPECT_NE(entry.find("\"kind\":"), std::string::npos) << entry;
  }
}

TEST(PostmortemTest, ManualDumpReturnsPath) {
  const std::filesystem::path dir = FreshTempDir("manual");
  obs::ArmPostmortem(dir.string());
  obs::RecordFlight("obs.test.manual", 7, 42);
  const std::string path = obs::DumpPostmortem("manual_reason");
  obs::DisarmFlightRecorder();
  obs::ClearFlightRecords();

  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).parent_path(), dir);
  const std::string json = ReadFile(path);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("manual_reason"), std::string::npos);
  EXPECT_NE(json.find("obs.test.manual"), std::string::npos);
}

}  // namespace
}  // namespace ttmqo
