
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/routing_tree.cc" "src/routing/CMakeFiles/ttmqo_routing.dir/routing_tree.cc.o" "gcc" "src/routing/CMakeFiles/ttmqo_routing.dir/routing_tree.cc.o.d"
  "/root/repo/src/routing/semantic_tree.cc" "src/routing/CMakeFiles/ttmqo_routing.dir/semantic_tree.cc.o" "gcc" "src/routing/CMakeFiles/ttmqo_routing.dir/semantic_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ttmqo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
