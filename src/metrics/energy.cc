#include "metrics/energy.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {

double NodeEnergyMj(const NodeRadioStats& stats, SimDuration elapsed,
                    const EnergyParams& params) {
  CheckArg(elapsed > 0, "NodeEnergyMj: elapsed must be positive");
  const double tx_ms = stats.TotalTransmitMs();
  const double sleep_ms =
      std::min(stats.sleep_ms, static_cast<double>(elapsed) - tx_ms);
  const double listen_ms =
      std::max(0.0, static_cast<double>(elapsed) - tx_ms - sleep_ms);
  // mW * ms = uJ; divide by 1000 for mJ.
  return (params.transmit_mw * tx_ms + params.listen_mw * listen_ms +
          params.sleep_mw * sleep_ms) /
         1000.0;
}

double AverageSensorEnergyMj(const RadioLedger& ledger, SimDuration elapsed,
                             const EnergyParams& params) {
  double total = 0.0;
  for (NodeId n = 1; n < ledger.size(); ++n) {
    total += NodeEnergyMj(ledger.StatsOf(n), elapsed, params);
  }
  return ledger.size() > 1 ? total / static_cast<double>(ledger.size() - 1)
                           : 0.0;
}

double MaxSensorEnergyMj(const RadioLedger& ledger, SimDuration elapsed,
                         const EnergyParams& params) {
  double worst = 0.0;
  for (NodeId n = 1; n < ledger.size(); ++n) {
    worst = std::max(worst, NodeEnergyMj(ledger.StatsOf(n), elapsed, params));
  }
  return worst;
}

}  // namespace ttmqo
