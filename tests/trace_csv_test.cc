// Tests for the trace observer and CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "core/innet/innet_engine.h"
#include "metrics/csv.h"
#include "metrics/trace.h"
#include "query/parser.h"

namespace ttmqo {
namespace {

TEST(TraceTest, JsonlWriterRecordsTransmissionsAndLifecycle) {
  const Topology topology = Topology::Grid(3);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  std::ostringstream trace;
  JsonlTraceWriter writer(trace);
  network.SetObserver(&writer);

  Message msg;
  msg.mode = AddressMode::kUnicast;
  msg.sender = 4;
  msg.destinations = {0};
  msg.payload_bytes = 12;
  network.Send(std::move(msg));
  network.SetAsleep(5, true);
  network.FailNode(7);
  network.sim().RunUntil(1000);

  const std::string text = trace.str();
  EXPECT_NE(text.find("\"event\":\"tx\""), std::string::npos);
  EXPECT_NE(text.find("\"from\":4"), std::string::npos);
  EXPECT_NE(text.find("\"dests\":[0]"), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"sleep\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"fail\""), std::string::npos);
  EXPECT_EQ(writer.events(), 3u);
  // One JSON object per line.
  EXPECT_EQ(static_cast<std::uint64_t>(
                std::count(text.begin(), text.end(), '\n')),
            writer.events());
}

TEST(TraceTest, CountingObserverSeesEngineTraffic) {
  const Topology topology = Topology::Grid(4);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  CountingObserver counter;
  network.SetObserver(&counter);
  UniformFieldModel field(2);
  ResultLog log;
  InNetworkEngine engine(network, field, &log);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network.sim().RunUntil(4 * 4096);
  EXPECT_EQ(counter.transmissions, network.ledger().TotalMessages() +
                                       network.ledger().TotalRetransmissions());
  EXPECT_EQ(counter.retransmissions, 0u);
}

TEST(TraceTest, RetransmissionsAreFlagged) {
  const Topology topology = Topology::Grid(3);
  ChannelParams channel;
  channel.collision_prob = 0.5;
  Network network(topology, RadioParams{}, channel, 7);
  CountingObserver counter;
  network.SetObserver(&counter);
  for (NodeId n = 0; n < topology.size(); ++n) {
    Message msg;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = n;
    msg.payload_bytes = 24;
    network.Send(std::move(msg));
  }
  network.sim().RunUntil(20'000);
  EXPECT_GT(counter.retransmissions, 0u);
  EXPECT_EQ(counter.retransmissions,
            network.ledger().TotalRetransmissions());
}

TEST(CsvTest, ExportsRowsAndAggregates) {
  ResultLog log;
  EpochResult acq;
  acq.query = 1;
  acq.epoch_time = 4096;
  acq.kind = QueryKind::kAcquisition;
  Reading row(5, 4096);
  row.Set(Attribute::kLight, 321.5);
  acq.rows.push_back(row);
  log.OnResult(acq);

  EpochResult agg;
  agg.query = 2;
  agg.epoch_time = 8192;
  agg.kind = QueryKind::kAggregation;
  agg.aggregates = {
      {AggregateSpec{AggregateOp::kMax, Attribute::kTemp}, 42.0},
      {AggregateSpec{AggregateOp::kMin, Attribute::kTemp}, std::nullopt},
  };
  log.OnResult(agg);

  std::ostringstream out;
  WriteResultsCsv(log, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("query,epoch_ms,kind,source,field,value"),
            std::string::npos);
  EXPECT_NE(text.find("1,4096,row,5,light,321.5"), std::string::npos);
  EXPECT_NE(text.find("2,8192,agg,,MAX(temp),42"), std::string::npos);
  EXPECT_NE(text.find("2,8192,agg,,MIN(temp),\n"), std::string::npos);
}

TEST(CsvTest, AllReturnsEverythingInOrder) {
  ResultLog log;
  for (QueryId q : {2u, 1u}) {
    for (SimTime t : {8192, 4096}) {
      EpochResult r;
      r.query = q;
      r.epoch_time = t;
      log.OnResult(r);
    }
  }
  const auto all = log.All();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->query, 1u);
  EXPECT_EQ(all[0]->epoch_time, 4096);
  EXPECT_EQ(all[3]->query, 2u);
  EXPECT_EQ(all[3]->epoch_time, 8192);
}

}  // namespace
}  // namespace ttmqo
