file(REMOVE_RECURSE
  "CMakeFiles/result_mapper_test.dir/result_mapper_test.cc.o"
  "CMakeFiles/result_mapper_test.dir/result_mapper_test.cc.o.d"
  "result_mapper_test"
  "result_mapper_test.pdb"
  "result_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
