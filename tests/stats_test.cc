// Unit tests for histograms and selectivity estimation.
#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/selectivity.h"

namespace ttmqo {
namespace {

TEST(HistogramTest, UniformPriorWithoutObservations) {
  Histogram h(Interval(0, 100), 10);
  EXPECT_DOUBLE_EQ(h.SelectivityOf(Interval(0, 50)), 0.5);
  EXPECT_DOUBLE_EQ(h.SelectivityOf(Interval(0, 100)), 1.0);
  EXPECT_DOUBLE_EQ(h.SelectivityOf(Interval(200, 300)), 0.0);
}

TEST(HistogramTest, ObservationsShiftTheEstimate) {
  Histogram h(Interval(0, 100), 10);
  for (int i = 0; i < 100; ++i) h.Add(5.0);  // all mass in the first bucket
  EXPECT_NEAR(h.SelectivityOf(Interval(0, 10)), 1.0, 1e-9);
  EXPECT_NEAR(h.SelectivityOf(Interval(50, 100)), 0.0, 1e-9);
}

TEST(HistogramTest, PartialBucketOverlapInterpolates) {
  Histogram h(Interval(0, 100), 10);
  for (int i = 0; i < 100; ++i) h.Add(5.0);
  // Half of the populated bucket [0,10) overlaps [5,10].
  EXPECT_NEAR(h.SelectivityOf(Interval(5, 10)), 0.5, 1e-9);
}

TEST(HistogramTest, OutOfDomainValuesClampToBoundaryBuckets) {
  Histogram h(Interval(0, 100), 10);
  h.Add(-50.0);
  h.Add(500.0);
  EXPECT_DOUBLE_EQ(h.TotalWeight(), 2.0);
  EXPECT_NEAR(h.SelectivityOf(Interval(0, 10)), 0.5, 1e-9);
  EXPECT_NEAR(h.SelectivityOf(Interval(90, 100)), 0.5, 1e-9);
}

TEST(HistogramTest, DecayAgesOutOldMass) {
  Histogram h(Interval(0, 100), 10);
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  for (int i = 0; i < 200; ++i) h.AddDecayed(95.0, 0.9);
  EXPECT_GT(h.SelectivityOf(Interval(90, 100)), 0.95);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(Interval(), 4), std::invalid_argument);
  EXPECT_THROW(Histogram(Interval(0, 10), 0), std::invalid_argument);
  EXPECT_THROW(Histogram(Interval(5, 5), 4), std::invalid_argument);
}

TEST(AttributeDistributionTest, UniformPriorMatchesRangeFractions) {
  AttributeDistribution dist;
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  // light range is [0, 1000]: fraction 0.5.
  EXPECT_NEAR(dist.Selectivity(preds), 0.5, 1e-9);
}

TEST(AttributeDistributionTest, ConjunctionsMultiply) {
  AttributeDistribution dist;
  PredicateSet preds = PredicateSet::Of({
      {Attribute::kLight, Interval(0, 500)},   // 0.5
      {Attribute::kTemp, Interval(0, 25)},     // 0.25
  });
  EXPECT_NEAR(dist.Selectivity(preds), 0.125, 1e-9);
}

TEST(AttributeDistributionTest, ObservationsUpdateEstimates) {
  AttributeDistribution dist;
  for (int i = 0; i < 100; ++i) {
    Reading r(1, 0);
    r.Set(Attribute::kLight, 100.0);
    dist.Observe(r);
  }
  PredicateSet low = PredicateSet::Of({{Attribute::kLight, Interval(0, 200)}});
  EXPECT_GT(dist.Selectivity(low), 0.9);
}

TEST(SelectivityEstimatorTest, PerLevelFallsBackToShared) {
  SelectivityEstimator est;
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kLight, Interval(0, 250)}});
  EXPECT_NEAR(est.Selectivity(preds, 3), 0.25, 1e-9);
  // Train level 3 away from uniform.
  for (int i = 0; i < 200; ++i) {
    Reading r(1, 0);
    r.Set(Attribute::kLight, 900.0);
    est.ForLevel(3).Observe(r);
  }
  EXPECT_LT(est.Selectivity(preds, 3), 0.05);
  // Other levels still use the shared (uniform) distribution.
  EXPECT_NEAR(est.Selectivity(preds, 1), 0.25, 1e-9);
}

TEST(SelectivityEstimatorTest, UnconstrainedPredicateIsSelectivityOne) {
  SelectivityEstimator est;
  EXPECT_DOUBLE_EQ(est.Selectivity(PredicateSet()), 1.0);
}

}  // namespace
}  // namespace ttmqo
