# Empty dependencies file for micro_bs_opt.
# This may be replaced when dependencies are built.
