// End-to-end reliability-profile tests: under a lossy, crashing grid the
// arq profile must hold near-complete delivery where best-effort degrades,
// annotate every epoch with its coverage, repair gaps via NACKs, and stay
// bit-for-bit deterministic — both across repeated runs and across sweep
// worker counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metrics/registry.h"
#include "query/parser.h"
#include "sweep/fingerprint.h"
#include "sweep/spec.h"
#include "sweep/sweep.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;
constexpr SimDuration kDuration = 24 * kEpoch;

// A lossy deployment with two mid-grid crashes: the first strikes in the
// middle of a collection round (epoch 6 and a half), the canonical
// lost-partial-aggregate moment the NACK repair path exists for.
RunConfig LossyConfig(ReliabilityProfile profile) {
  RunConfig config;
  config.grid_side = 6;
  config.mode = OptimizationMode::kTwoTier;
  config.reliability = profile;
  config.duration_ms = kDuration;
  config.seed = 7;
  config.faults.SetDefaultLinkLoss(0.1);
  config.faults.AddCrash(14, 6 * kEpoch + kEpoch / 2)
      .AddCrash(22, 12 * kEpoch);
  return config;
}

std::vector<WorkloadEvent> AcquisitionSchedule() {
  return StaticSchedule({ParseQuery(
      1, "SELECT light WHERE light > 300 EPOCH DURATION 4096")});
}

TEST(ReliabilityE2eTest, ArqMeetsDeliveryFloorWhereBestEffortDegrades) {
  const auto schedule = AcquisitionSchedule();
  const RunResult off =
      RunExperiment(LossyConfig(ReliabilityProfile::kOff), schedule);
  const RunResult arq =
      RunExperiment(LossyConfig(ReliabilityProfile::kArq), schedule);

  EXPECT_GE(arq.summary.AvgDeliveryCompleteness(), 0.99)
      << "the acceptance floor of the arq profile";
  EXPECT_LT(off.summary.AvgDeliveryCompleteness(),
            arq.summary.AvgDeliveryCompleteness() - 0.02)
      << "losses must actually bite under this plan, or the floor proves "
         "nothing";

  // Reliability costs messages; the point of the profile split is that
  // the paper's best-effort numbers stay untouched while arq pays for its
  // guarantee explicitly.
  EXPECT_GT(arq.summary.total_messages, off.summary.total_messages);
}

TEST(ReliabilityE2eTest, EveryArqEpochCarriesACoverageAnnotation) {
  const auto schedule = AcquisitionSchedule();
  const RunResult off =
      RunExperiment(LossyConfig(ReliabilityProfile::kOff), schedule);
  const RunResult arq =
      RunExperiment(LossyConfig(ReliabilityProfile::kArq), schedule);

  ASSERT_FALSE(arq.results.All().empty());
  for (const EpochResult* epoch : arq.results.All()) {
    EXPECT_GE(epoch->coverage, 0.0)
        << "unannotated arq epoch at t=" << epoch->epoch_time;
    EXPECT_LE(epoch->coverage, 1.0);
    EXPECT_GE(epoch->contributing_nodes, 0);
  }
  // The summary aggregates the annotations.
  const auto it = arq.summary.coverage.find(1);
  ASSERT_NE(it, arq.summary.coverage.end());
  EXPECT_EQ(it->second.epochs,
            static_cast<std::uint64_t>(arq.results.All().size()));
  EXPECT_GT(arq.summary.AvgCoverage(), 0.9);

  // Best-effort runs stay annotation-free: the goldens of the seeded
  // pipeline must not grow new fields.
  for (const EpochResult* epoch : off.results.All()) {
    EXPECT_EQ(epoch->coverage, -1.0);
    EXPECT_EQ(epoch->contributing_nodes, -1);
  }
  EXPECT_TRUE(off.summary.coverage.empty());
}

TEST(ReliabilityE2eTest, NackRepairFiresUnderLossAndMidRoundCrash) {
  RunConfig config = LossyConfig(ReliabilityProfile::kArq);
  MetricsRegistry registry;
  config.obs.registry = &registry;
  const RunResult run = RunExperiment(config, AcquisitionSchedule());

  // The base station must have both asked for missing rows and received
  // repaired ones — otherwise the 0.99 floor is luck, not protocol.
  EXPECT_GT(registry.GetCounter("arq_repair_requests_total").Value(), 0.0);
  EXPECT_GT(registry.GetCounter("arq_repair_replies_total").Value(), 0.0);
  EXPECT_GT(registry.GetCounter("arq_retransmits_total").Value(), 0.0);
  EXPECT_GT(registry.GetCounter("arq_acks_sent_total").Value(), 0.0);
  EXPECT_GE(run.summary.AvgDeliveryCompleteness(), 0.99);
}

TEST(ReliabilityE2eTest, RepeatedArqRunsAreByteIdentical) {
  const auto schedule = AcquisitionSchedule();
  const RunResult first =
      RunExperiment(LossyConfig(ReliabilityProfile::kArq), schedule);
  const RunResult second =
      RunExperiment(LossyConfig(ReliabilityProfile::kArq), schedule);
  EXPECT_EQ(FingerprintRun(first), FingerprintRun(second))
      << "retry schedules must depend only on the run configuration";
}

TEST(ReliabilityE2eTest, SweepReliabilityAxisDeterministicAcrossJobCounts) {
  const SweepSpec spec = SweepSpec::Parse(
      "grids=4 workloads=A modes=ttmqo reliability=off,harden,arq "
      "faults=transient seeds=2 duration-ms=36864");
  const SweepReport serial = RunSweep(spec, 1);
  const SweepReport parallel = RunSweep(spec, 4);
  ASSERT_EQ(serial.rows.size(), spec.TaskCount());
  EXPECT_EQ(serial.Canonical(), parallel.Canonical());
}

}  // namespace
}  // namespace ttmqo
