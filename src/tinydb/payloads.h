// Typed radio payloads of the acquisitional query substrate.
//
// Both the TinyDB baseline and the TTMQO in-network tier are built on these
// message types: query propagation/abort floods, raw result rows, and
// partial-aggregate records.  The TTMQO tier adds shared (multi-query)
// variants in core/innet.
#pragma once

#include <vector>

#include "net/message.h"
#include "query/aggregate.h"
#include "query/query.h"
#include "sensing/reading.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Floods a new query from the base station into the network.
struct QueryPropagationPayload final : Payload {
  explicit QueryPropagationPayload(Query q) : query(std::move(q)) {}
  Query query;
};

/// Floods the termination of a query.
struct QueryAbortPayload final : Payload {
  explicit QueryAbortPayload(QueryId q) : query(q) {}
  QueryId query;
};

/// One acquisition result row for one query, forwarded hop by hop.
struct RowPayload final : Payload {
  RowPayload(QueryId q, SimTime epoch, Reading r)
      : query(q), epoch_time(epoch), row(std::move(r)) {}
  QueryId query;
  SimTime epoch_time;
  Reading row;
};

/// Partial aggregation state for one query and epoch, merged on the way up.
struct AggPayload final : Payload {
  AggPayload(QueryId q, SimTime epoch, std::vector<PartialAggregate> p)
      : query(q), epoch_time(epoch), partials(std::move(p)) {}
  QueryId query;
  SimTime epoch_time;
  std::vector<PartialAggregate> partials;
};

/// Payload bytes of a partial-aggregate record (epoch tag + each partial).
std::size_t AggPayloadBytes(const std::vector<PartialAggregate>& partials);

}  // namespace ttmqo
