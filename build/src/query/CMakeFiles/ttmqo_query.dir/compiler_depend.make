# Empty compiler generated dependencies file for ttmqo_query.
# This may be replaced when dependencies are built.
