// Synthetic physical-field models.
//
// The paper's motes sample a real environment; we substitute deterministic
// synthetic fields.  A field model is a *pure function* of (node, position,
// attribute, time): sampling the same point twice yields the same value.
// This matters for correctness testing — under multi-query optimization a
// single shared acquisition replaces several per-query acquisitions, and the
// answer streams must stay identical (DESIGN.md, decision 7).
//
// Three models are provided:
//  * `UniformFieldModel` — i.i.d. uniform per (node, attr, epoch); matches
//    the uniform-distribution assumption of the paper's cost analysis
//    (Section 3.1.3).
//  * `CorrelatedFieldModel` — spatially smooth gradient plus temporal
//    oscillation plus small noise; matches the spatio-temporal correlation
//    the in-network tier exploits (Section 3.2.2, Discussion).
//  * `HotspotFieldModel` — a correlated field with a moving circular hotspot;
//    used by the example applications.
#pragma once

#include <cstdint>
#include <memory>

#include "sensing/attribute.h"
#include "sensing/reading.h"
#include "util/geometry.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Interface of a deterministic synthetic field.
class FieldModel {
 public:
  virtual ~FieldModel() = default;

  /// The value of `attr` at node `node` located at `pos`, at instant `time`.
  /// Pure: equal arguments always yield equal results.  Values lie within
  /// `AttributeRange(attr)`.
  virtual double Sample(NodeId node, const Position& pos, Attribute attr,
                        SimTime time) const = 0;

  /// Samples every attribute in `attrs` into a `Reading`.
  template <typename AttrRange>
  Reading SampleReading(NodeId node, const Position& pos,
                        const AttrRange& attrs, SimTime time) const {
    Reading reading(node, time);
    for (Attribute attr : attrs) {
      reading.Set(attr, Sample(node, pos, attr, time));
    }
    return reading;
  }
};

/// I.i.d. uniform readings, re-drawn every `resample_period` ms.
class UniformFieldModel final : public FieldModel {
 public:
  /// `seed` fixes the field; `resample_period` quantizes time so that all
  /// samples within one base epoch observe the same value.
  explicit UniformFieldModel(std::uint64_t seed,
                             SimDuration resample_period = kMinEpochDurationMs);

  double Sample(NodeId node, const Position& pos, Attribute attr,
                SimTime time) const override;

 private:
  std::uint64_t seed_;
  SimDuration resample_period_;
};

/// Spatially and temporally correlated field: a planar gradient whose
/// direction drifts slowly with time, plus deterministic per-node noise.
class CorrelatedFieldModel final : public FieldModel {
 public:
  struct Params {
    /// Fraction of the attribute range spanned by the spatial gradient.
    double spatial_amplitude = 0.5;
    /// Fraction of the attribute range spanned by the temporal oscillation.
    double temporal_amplitude = 0.2;
    /// Oscillation period of the temporal component.
    SimDuration temporal_period = 1 << 20;  // ~17.5 minutes
    /// Fraction of the attribute range occupied by per-sample noise.
    double noise_amplitude = 0.05;
    /// Spatial extent (feet) over which the gradient spans its amplitude.
    double field_extent_feet = 200.0;
  };

  CorrelatedFieldModel(std::uint64_t seed, Params params);

  double Sample(NodeId node, const Position& pos, Attribute attr,
                SimTime time) const override;

 private:
  std::uint64_t seed_;
  Params params_;
};

/// A correlated field overlaid with a circular hotspot that orbits the
/// deployment center; inside the hotspot, values are pushed toward the top
/// of the attribute range.  Used by example applications to create
/// spatially-connected query answer sets.
class HotspotFieldModel final : public FieldModel {
 public:
  struct Params {
    Position center{70.0, 70.0};  ///< Orbit center (feet).
    double orbit_radius_feet = 40.0;
    double hotspot_radius_feet = 45.0;
    SimDuration orbit_period = 1 << 22;  ///< Time of one full orbit.
    /// Fraction of the attribute range added at the hotspot center.
    double intensity = 0.6;
  };

  HotspotFieldModel(std::uint64_t seed, Params params);

  double Sample(NodeId node, const Position& pos, Attribute attr,
                SimTime time) const override;

 private:
  CorrelatedFieldModel base_;
  Params params_;
};

}  // namespace ttmqo
