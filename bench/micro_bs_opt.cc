// Google-benchmark microbenchmarks for the tier-1 optimizer: cost model
// evaluation, benefit-rate computation, and Algorithm 1/2 throughput as the
// synthetic query list grows.
//
//   micro_bs_opt                         # the gbench microbenchmarks
//   micro_bs_opt --curve-out=PATH        # insert-throughput curve artifact
//       [--max-queries=1000000]          # largest indexed curve point
//       [--naive-max-queries=10000]      # largest naive (oracle) curve point
//       [--naive-budget-ms=120000]       # per-point naive safety budget
//
// Curve mode inserts 10^2..10^6 user queries into a fresh optimizer, once
// with the synthetic-query index (Options::use_index, the default) and once
// with the seed's naive scan, over two workload profiles: "mixed"
// (coverage-heavy: acquisition merges quickly form wide synthetics that
// cover most arrivals) and "distinct-aggs" (population-heavy: aggregation
// queries with distinct predicates cannot merge, so the synthetic set grows
// linearly).  The naive curve stops at --naive-max-queries — a fixed,
// deterministic cap, so the committed artifact's decision counts never
// depend on host speed — with --naive-budget-ms as a safety abort.  Both
// paths must agree exactly on every decision count; the binary exits
// non-zero on divergence.  The JSON artifact (BENCH_bsopt.json) carries
// BuildInfo provenance; ci.sh regenerates it and diffs the counts.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/bs/cost_model.h"
#include "core/bs/rewriter.h"
#include "obs/build_info.h"
#include "util/flags.h"
#include "workload/generator.h"

namespace ttmqo {
namespace {

QueryModelParams BenchModelParams() {
  QueryModelParams params;
  params.aggregation_fraction = 0.5;
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  return params;
}

void BM_CostModelEvaluate(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  RandomQueryModel model(BenchModelParams(), 1);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= 64; ++i) queries.push_back(model.Next(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.Cost(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_BenefitRate(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost);
  RandomQueryModel model(BenchModelParams(), 2);
  for (QueryId i = 1; i <= 8; ++i) {
    (void)optimizer.InsertUserQuery(model.Next(i));
  }
  const Query probe = model.Next(1000);
  const SyntheticQuery* sq = optimizer.Synthetics().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.BenefitRate(probe, *sq));
  }
}
BENCHMARK(BM_BenefitRate);

// Insert `range(0)` user queries into a fresh optimizer; reports the cost
// of Algorithm 1 as the workload grows.  `range(1)` selects the candidate
// search: 1 = indexed (default), 0 = the naive oracle scan.
void BM_InsertQueries(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  const auto count = static_cast<std::size_t>(state.range(0));
  BaseStationOptimizer::Options options;
  options.use_index = state.range(1) != 0;
  RandomQueryModel model(BenchModelParams(), 3);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
  for (auto _ : state) {
    BaseStationOptimizer optimizer(cost, options);
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.InsertUserQuery(q));
    }
    state.counters["synthetics"] =
        static_cast<double>(optimizer.NumSynthetic());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_InsertQueries)
    ->Args({8, 1})
    ->Args({32, 1})
    ->Args({128, 1})
    ->Args({512, 1})
    ->Args({512, 0});

// Full churn: insert then terminate every query (Algorithm 1 + 2).
void BM_InsertTerminateChurn(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  const auto count = static_cast<std::size_t>(state.range(0));
  RandomQueryModel model(BenchModelParams(), 4);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
  for (auto _ : state) {
    BaseStationOptimizer optimizer(cost);
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.InsertUserQuery(q));
    }
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.TerminateUserQuery(q.id()));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * count));
}
BENCHMARK(BM_InsertTerminateChurn)->Arg(8)->Arg(64)->Arg(256);

void BM_IntegrateQueries(benchmark::State& state) {
  RandomQueryModel model(BenchModelParams(), 5);
  const Query a = model.Next(1);
  Query b = model.Next(2);
  while (!IsRewritable(a, b)) b = model.Next(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Integrate(100, a, b));
  }
}
BENCHMARK(BM_IntegrateQueries);

// ---------------------------------------------------------------------------
// Curve mode (--curve-out): the BENCH_bsopt.json artifact.

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Result of inserting the first `inserted` queries of a profile stream.
struct InsertRun {
  bool complete = false;      ///< false: the naive safety budget fired
  std::size_t inserted = 0;
  double seconds = 0.0;
  std::size_t synthetics = 0;
  BaseStationOptimizer::DecisionStats decisions;
  BaseStationOptimizer::IndexStats index;
};

/// Inserts `count` queries drawn from a fresh model (seed 3, ids 1..count)
/// into a fresh optimizer.  Query generation happens in untimed chunks so
/// `seconds` measures only InsertUserQuery.  `budget_seconds` <= 0 means
/// unlimited.
InsertRun RunInserts(const CostModel& cost, const QueryModelParams& params,
                     std::size_t count, bool use_index,
                     double budget_seconds) {
  BaseStationOptimizer::Options options;
  options.use_index = use_index;
  BaseStationOptimizer optimizer(cost, options);
  RandomQueryModel model(params, 3);
  constexpr std::size_t kChunk = 8192;
  std::vector<Query> chunk;
  chunk.reserve(kChunk);
  InsertRun run;
  QueryId next_id = 1;
  while (run.inserted < count) {
    chunk.clear();
    const std::size_t n = std::min(kChunk, count - run.inserted);
    for (std::size_t i = 0; i < n; ++i) chunk.push_back(model.Next(next_id++));
    const auto start = Clock::now();
    for (const Query& q : chunk) {
      benchmark::DoNotOptimize(optimizer.InsertUserQuery(q));
    }
    run.seconds += SecondsSince(start);
    run.inserted += n;
    if (budget_seconds > 0.0 && run.seconds > budget_seconds) break;
  }
  run.complete = run.inserted == count;
  run.synthetics = optimizer.NumSynthetic();
  run.decisions = optimizer.decision_stats();
  run.index = optimizer.index_stats();
  return run;
}

void WriteRunJson(std::ostream& out, const char* name, const InsertRun& run,
                  bool with_index_stats) {
  const double qps =
      run.seconds > 0.0 ? static_cast<double>(run.inserted) / run.seconds
                        : 0.0;
  out << "      \"" << name << "\": {\"complete\": "
      << (run.complete ? "true" : "false") << ", \"inserted\": "
      << run.inserted << ", \"seconds\": ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", run.seconds);
  out << buf << ", \"inserts_per_sec\": ";
  std::snprintf(buf, sizeof(buf), "%.0f", qps);
  out << buf << ",\n        \"synthetics\": " << run.synthetics
      << ", \"covered\": " << run.decisions.covered << ", \"merged\": "
      << run.decisions.merged << ", \"standalone\": "
      << run.decisions.standalone;
  if (with_index_stats) {
    out << ",\n        \"coverage_hits\": " << run.index.coverage_hits
        << ", \"memo_hits\": " << run.index.memo_hits
        << ", \"pruned_candidates\": " << run.index.pruned_candidates
        << ", \"exact_evaluations\": " << run.index.exact_evaluations;
  }
  out << "}";
}

bool SameDecisions(const InsertRun& a, const InsertRun& b) {
  return a.synthetics == b.synthetics &&
         a.decisions.covered == b.decisions.covered &&
         a.decisions.merged == b.decisions.merged &&
         a.decisions.standalone == b.decisions.standalone;
}

int RunCurve(const std::string& out_path, std::size_t max_queries,
             std::size_t naive_max_queries, double naive_budget_ms) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);

  struct Profile {
    const char* name;
    QueryModelParams params;
  };
  QueryModelParams distinct = BenchModelParams();
  distinct.aggregation_fraction = 1.0;
  const Profile profiles[] = {
      {"mixed", BenchModelParams()},
      {"distinct-aggs", distinct},
  };

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"bs_opt_insert_curve\",\n"
      << "  \"grid_side\": 8,\n  \"model_seed\": 3,\n"
      << "  \"naive_max_queries\": " << naive_max_queries << ",\n"
      << "  \"build\": ";
  obs::WriteBuildInfoJson(out, 4);
  out << ",\n  \"profiles\": [\n";

  bool first_profile = true;
  for (const Profile& profile : profiles) {
    if (!first_profile) out << ",\n";
    first_profile = false;
    out << "   {\"workload\": \"" << profile.name << "\",\n    \"curve\": [\n";
    bool first_point = true;
    for (std::size_t count : {std::size_t{100}, std::size_t{1000},
                              std::size_t{10000}, std::size_t{100000},
                              std::size_t{1000000}}) {
      if (count > max_queries) break;
      std::fprintf(stderr, "curve: %s n=%zu indexed...\n", profile.name,
                   count);
      const InsertRun indexed =
          RunInserts(cost, profile.params, count, /*use_index=*/true, 0.0);
      if (!first_point) out << ",\n";
      first_point = false;
      out << "     {\"queries\": " << count << ",\n";
      WriteRunJson(out, "indexed", indexed, /*with_index_stats=*/true);
      if (count <= naive_max_queries) {
        std::fprintf(stderr, "curve: %s n=%zu naive...\n", profile.name,
                     count);
        const InsertRun naive =
            RunInserts(cost, profile.params, count, /*use_index=*/false,
                       naive_budget_ms / 1000.0);
        out << ",\n";
        WriteRunJson(out, "naive", naive, /*with_index_stats=*/false);
        if (naive.complete && !SameDecisions(indexed, naive)) {
          std::cerr << "FATAL: indexed and naive decisions diverge at "
                    << profile.name << " n=" << count << "\n";
          return 1;
        }
        if (naive.complete && naive.seconds > 0.0 && indexed.seconds > 0.0) {
          const double speedup = naive.seconds / indexed.seconds;
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.2f", speedup);
          out << ",\n      \"speedup_x\": " << buf;
        }
      }
      out << "}";
    }
    out << "\n    ]}";
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "curve: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) {
  // Curve mode bypasses google-benchmark entirely (its flag parser rejects
  // ours and vice versa).
  bool curve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--curve-out", 0) == 0) curve = true;
  }
  if (curve) {
    const ttmqo::Flags flags = ttmqo::Flags::Parse(argc, argv);
    const std::string out = flags.GetString("curve-out", "BENCH_bsopt.json");
    const auto max_queries =
        static_cast<std::size_t>(flags.GetInt("max-queries", 1000000));
    const auto naive_max = static_cast<std::size_t>(
        flags.GetInt("naive-max-queries", 10000));
    const double naive_budget_ms =
        flags.GetDouble("naive-budget-ms", 120000.0);
    if (ttmqo::ReportUnreadFlags(flags)) return 2;
    return ttmqo::RunCurve(out, max_queries, naive_max, naive_budget_ms);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
