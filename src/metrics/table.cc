#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace ttmqo {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CheckArg(!headers_.empty(), "TablePrinter: need at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CheckArg(cells.size() == headers_.size(),
           "TablePrinter: row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total + 2 * (headers_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ttmqo
