// Parallel execution of independent simulation runs.
//
// Every experiment in this repo reduces to a set of independent
// `RunConfig -> RunResult` simulations (a grid of sizes x workloads x
// modes x seeds); this module fans such a set out over a pool of worker
// threads.  Each task constructs its own `Simulator`/`Network`/engine
// stack and derives every random stream from the task's own seed, so the
// collected results are byte-identical regardless of thread count or
// completion order: results are stored by task index, never by finish
// time.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "workload/runner.h"

namespace ttmqo {

/// Number of worker threads "--jobs=0" resolves to: the hardware
/// concurrency, at least 1.
unsigned HardwareJobs();

/// Runs `fn(0) .. fn(count-1)` on up to `jobs` worker threads (`jobs == 0`
/// means `HardwareJobs()`; `jobs == 1` runs inline).  Tasks are claimed
/// from a shared counter, so callers must make each invocation independent
/// of execution order.  The first exception thrown by any task is
/// rethrown on the calling thread after all workers finish.
void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn);

/// `ParallelFor` that also passes the claiming worker's index
/// (`0 .. NumPoolWorkers(count, jobs) - 1`) so callers can keep per-worker
/// tallies without synchronization.
void ParallelForWorkers(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t, unsigned)>& fn);

/// Number of worker threads `ParallelFor(count, jobs, ...)` actually uses.
unsigned NumPoolWorkers(std::size_t count, unsigned jobs);

/// Per-worker utilization of one `RunMany` execution.
struct WorkerStat {
  unsigned worker = 0;
  std::uint64_t tasks = 0;   ///< tasks this worker claimed
  double busy_ms = 0.0;      ///< wall time spent inside tasks
};

/// Pool-level observability of a `RunMany` call; feeds the sweep report's
/// utilization and straggler diagnostics.
struct PoolReport {
  double wall_ms = 0.0;  ///< the whole pool, start to join
  std::vector<WorkerStat> workers;

  /// busy / (workers * wall): 1.0 = perfectly load-balanced pool.
  double Utilization() const;
};

/// One independent simulation of a sweep: a full run configuration plus
/// its workload schedule.  The label names the task in reports
/// ("grid=8 workload=C mode=ttmqo seed=3").
struct RunUnit {
  std::string label;
  RunConfig config;
  std::vector<WorkloadEvent> schedule;
};

/// A run's measurements plus the wall-clock time the simulation took.
struct TimedRunResult {
  RunResult run;
  double wall_ms = 0.0;
};

/// Simulates every unit on up to `jobs` threads and returns the results
/// in unit order.  Each unit gets a private engine stack; nothing is
/// shared between concurrent tasks except `RunObservability` hooks the
/// caller put into the configs (a `MetricsRegistry` is safe, a trace
/// writer is not — serialize trace-capturing sweeps with `jobs = 1`).
/// When `pool` is non-null it receives per-worker task counts and busy
/// time.
///
/// `batch_lanes > 1` runs up to that many consecutive `BatchCompatible`
/// units through one lockstep batched event loop (DESIGN.md note 21) —
/// an execution detail, like `jobs`: per-unit results are byte-identical
/// to `batch_lanes = 1`.  A batched group's wall time is split evenly
/// across its rows.
std::vector<TimedRunResult> RunMany(const std::vector<RunUnit>& units,
                                    unsigned jobs,
                                    PoolReport* pool = nullptr,
                                    std::size_t batch_lanes = 1);

}  // namespace ttmqo
