// Scalability study (extension): how the savings of each tier scale with
// network size.  The paper evaluates 16 and 64 nodes; this sweep extends
// the axis to 144 nodes and adds a query-count axis (8..32 concurrent
// static queries drawn from the random model).
//
// All (grid, mode) and (query count, mode) cells are independent
// simulations; they are fanned out over the sweep orchestrator's thread
// pool and collected by task index, so the printed tables are identical
// for any --jobs value.
//
// Usage: scalability [--duration-ms=N] [--seed=N] [--collisions=P]
//                    [--jobs=N]  (0 = hardware concurrency)
#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

constexpr OptimizationMode kModes[] = {OptimizationMode::kBaseline,
                                       OptimizationMode::kTwoTier};

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const SimDuration duration = flags.GetInt("duration-ms", 20 * 12288);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 77));
  const double collisions = flags.GetDouble("collisions", 0.02);
  const auto jobs = static_cast<unsigned>(flags.GetInt("jobs", 0));
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  std::printf("Scalability of TTMQO savings (WORKLOAD_C, collisions=%.3f, "
              "%lld ms)\n\n",
              collisions, static_cast<long long>(duration));

  const auto base_config = [&](std::size_t side, OptimizationMode mode) {
    RunConfig config;
    config.grid_side = side;
    config.mode = mode;
    config.duration_ms = duration;
    config.seed = seed;
    config.channel.collision_prob = collisions;
    return config;
  };

  // Axis 1: network size.  Axis 2: number of concurrent static queries on
  // an 8x8 grid.  Both axes go into one task list so the pool stays busy.
  const std::size_t sides[] = {4, 6, 8, 10, 12};
  const std::size_t counts[] = {4, 8, 16, 32};
  std::vector<RunUnit> units;
  for (const std::size_t side : sides) {
    for (const OptimizationMode mode : kModes) {
      RunUnit unit;
      unit.config = base_config(side, mode);
      unit.schedule = StaticSchedule(WorkloadC());
      units.push_back(std::move(unit));
    }
  }
  for (const std::size_t count : counts) {
    QueryModelParams params;
    params.predicate_selectivity = 1.0;
    params.randomize_selectivity = true;
    RandomQueryModel model(params, seed);
    std::vector<Query> queries;
    for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
    for (const OptimizationMode mode : kModes) {
      RunUnit unit;
      unit.config = base_config(8, mode);
      unit.schedule = StaticSchedule(queries);
      units.push_back(std::move(unit));
    }
  }

  const std::vector<TimedRunResult> results = RunMany(units, jobs);

  std::size_t next = 0;
  {
    TablePrinter table({"nodes", "baseline avg tx %", "ttmqo avg tx %",
                        "savings %"});
    for (const std::size_t side : sides) {
      const double baseline =
          results[next++].run.summary.avg_transmission_fraction * 100.0;
      const double ttmqo =
          results[next++].run.summary.avg_transmission_fraction * 100.0;
      table.AddRow({std::to_string(side * side),
                    TablePrinter::Num(baseline, 4),
                    TablePrinter::Num(ttmqo, 4),
                    TablePrinter::Num(SavingsPercent(baseline, ttmqo), 1)});
    }
    std::printf("--- savings vs network size ---\n");
    table.Print(std::cout);
    std::printf("\n");
  }
  {
    TablePrinter table({"queries", "baseline avg tx %", "ttmqo avg tx %",
                        "savings %", "synthetic queries"});
    for (const std::size_t count : counts) {
      const double baseline =
          results[next++].run.summary.avg_transmission_fraction * 100.0;
      const RunResult& ttmqo_run = results[next++].run;
      const double ttmqo =
          ttmqo_run.summary.avg_transmission_fraction * 100.0;
      table.AddRow({std::to_string(count), TablePrinter::Num(baseline, 4),
                    TablePrinter::Num(ttmqo, 4),
                    TablePrinter::Num(SavingsPercent(baseline, ttmqo), 1),
                    TablePrinter::Num(ttmqo_run.avg_network_queries, 2)});
    }
    std::printf("--- savings vs concurrent queries (8x8 grid) ---\n");
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
