#include "routing/routing_tree.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {

RoutingTree::RoutingTree(const Topology& topology,
                         const LinkQualityMap& quality) {
  const std::size_t n = topology.size();
  parent_.resize(n);
  children_.resize(n);
  depth_.resize(n);
  parent_[kBaseStationId] = kBaseStationId;
  depth_[kBaseStationId] = 0;

  const auto& levels = topology.HopLevels();
  for (NodeId node = 1; node < n; ++node) {
    NodeId best = node;  // sentinel: no candidate yet
    double best_quality = -1.0;
    for (NodeId neighbor : topology.NeighborsOf(node)) {
      if (levels[neighbor] + 1 != levels[node]) continue;
      const double q = quality.Quality(node, neighbor);
      if (q > best_quality) {
        best_quality = q;
        best = neighbor;
      }
    }
    Check(best != node, "RoutingTree: node has no upper-level neighbor");
    parent_[node] = best;
    depth_[node] = levels[node];
    children_[best].push_back(node);
  }

  bottom_up_.resize(n);
  for (std::size_t i = 0; i < n; ++i) bottom_up_[i] = static_cast<NodeId>(i);
  std::sort(bottom_up_.begin(), bottom_up_.end(), [&](NodeId a, NodeId b) {
    if (depth_[a] != depth_[b]) return depth_[a] > depth_[b];
    return a < b;
  });
}

NodeId RoutingTree::ParentOf(NodeId node) const { return parent_.at(node); }

const std::vector<NodeId>& RoutingTree::ChildrenOf(NodeId node) const {
  return children_.at(node);
}

std::size_t RoutingTree::DepthOf(NodeId node) const { return depth_.at(node); }

double RoutingTree::AverageDepth() const {
  if (depth_.size() <= 1) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < depth_.size(); ++i) {
    sum += static_cast<double>(depth_[i]);
  }
  return sum / static_cast<double>(depth_.size() - 1);
}

LevelGraph::LevelGraph(const Topology& topology) {
  const std::size_t n = topology.size();
  upper_.resize(n);
  lower_.resize(n);
  levels_ = topology.HopLevels();
  for (NodeId node = 0; node < n; ++node) {
    for (NodeId neighbor : topology.NeighborsOf(node)) {
      if (levels_[neighbor] + 1 == levels_[node]) {
        upper_[node].push_back(neighbor);
      } else if (levels_[neighbor] == levels_[node] + 1) {
        lower_[node].push_back(neighbor);
      }
    }
  }
}

const std::vector<NodeId>& LevelGraph::UpperNeighbors(NodeId node) const {
  return upper_.at(node);
}

const std::vector<NodeId>& LevelGraph::LowerNeighbors(NodeId node) const {
  return lower_.at(node);
}

}  // namespace ttmqo
