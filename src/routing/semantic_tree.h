// Semantic Routing Tree (SRT).
//
// For value-based queries the answer set is unknown in advance and the
// query must be flooded; but "if the query is a region-based query or a
// node-id based query, the set of answer nodes are known in advance, and
// more efficient techniques such as SRT can be used" (Section 3.2.2,
// citing TinyDB).  The SRT annotates every routing-tree node with the
// ranges of the *constant* attributes (node id, position) covered by its
// subtree; query dissemination then descends only into subtrees that can
// contain answer nodes.
#pragma once

#include "net/topology.h"
#include "query/predicate.h"
#include "routing/routing_tree.h"
#include "util/interval.h"

namespace ttmqo {

/// Per-subtree constant-attribute ranges over a fixed routing tree.
class SemanticRoutingTree {
 public:
  /// Builds subtree annotations bottom-up over `tree`.
  SemanticRoutingTree(const Topology& topology, const RoutingTree& tree);

  /// The node-id range covered by `node`'s subtree (including itself).
  const Interval& SubtreeIds(NodeId node) const;

  /// The bounding box of `node`'s subtree positions.
  const Interval& SubtreeX(NodeId node) const;
  const Interval& SubtreeY(NodeId node) const;

  /// True iff some node in `node`'s subtree (including itself) can satisfy
  /// the *constant* constraints of `predicates` (currently the nodeid
  /// range; sensed attributes are ignored — their values are unknown in
  /// advance).
  bool SubtreeMayMatch(NodeId node, const PredicateSet& predicates) const;

  /// True iff `predicates` constrain any constant attribute at all — i.e.
  /// the query is node-id or region based and SRT-prunable.  Value-based
  /// queries must be flooded.
  static bool IsPrunable(const PredicateSet& predicates);

 private:
  std::vector<Interval> ids_;
  std::vector<Interval> xs_;
  std::vector<Interval> ys_;
};

/// True iff a node at `pos` can ever satisfy the constant constraints of
/// `predicates` (used by engines to decide whether to run a query at all).
bool NodeMayMatch(NodeId node, const Position& pos,
                  const PredicateSet& predicates);

}  // namespace ttmqo
