#include "util/rng.h"

#include "util/check.h"

namespace ttmqo {
namespace {

// SplitMix64 step; used to decorrelate fork salts from the parent seed.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(Mix(seed)) {}

Rng Rng::Fork(std::uint64_t salt) const {
  return Rng(Mix(seed_ ^ Mix(salt)));
}

double Rng::Uniform(double lo, double hi) {
  CheckArg(lo <= hi, "Rng::Uniform: lo must be <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  CheckArg(lo <= hi, "Rng::UniformInt: lo must be <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  CheckArg(mean > 0, "Rng::Exponential: mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  CheckArg(p >= 0.0 && p <= 1.0, "Rng::Bernoulli: p must be in [0,1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::Index(std::size_t n) {
  CheckArg(n > 0, "Rng::Index: n must be positive");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

}  // namespace ttmqo
