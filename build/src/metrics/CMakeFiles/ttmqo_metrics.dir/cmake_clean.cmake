file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_metrics.dir/csv.cc.o"
  "CMakeFiles/ttmqo_metrics.dir/csv.cc.o.d"
  "CMakeFiles/ttmqo_metrics.dir/energy.cc.o"
  "CMakeFiles/ttmqo_metrics.dir/energy.cc.o.d"
  "CMakeFiles/ttmqo_metrics.dir/run_summary.cc.o"
  "CMakeFiles/ttmqo_metrics.dir/run_summary.cc.o.d"
  "CMakeFiles/ttmqo_metrics.dir/table.cc.o"
  "CMakeFiles/ttmqo_metrics.dir/table.cc.o.d"
  "CMakeFiles/ttmqo_metrics.dir/trace.cc.o"
  "CMakeFiles/ttmqo_metrics.dir/trace.cc.o.d"
  "libttmqo_metrics.a"
  "libttmqo_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
