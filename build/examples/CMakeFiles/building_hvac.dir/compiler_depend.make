# Empty compiler generated dependencies file for building_hvac.
# This may be replaced when dependencies are built.
