file(REMOVE_RECURSE
  "libttmqo_util.a"
)
