// Google-benchmark microbenchmarks for the simulation substrate: event
// loop throughput, channel transmissions, topology/routing construction,
// and full end-to-end engine epochs.
#include <benchmark/benchmark.h>

#include "core/ttmqo_engine.h"
#include "net/network.h"
#include "query/parser.h"
#include "routing/routing_tree.h"
#include "sensing/field_model.h"

namespace ttmqo {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    sim.RunUntil(1000);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_GridConstruction(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Topology::Grid(side));
  }
}
BENCHMARK(BM_GridConstruction)->Arg(4)->Arg(8)->Arg(16);

void BM_RoutingTreeConstruction(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const LinkQualityMap quality(topology, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingTree(topology, quality));
  }
}
BENCHMARK(BM_RoutingTreeConstruction);

void BM_BroadcastDelivery(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  std::uint64_t received = 0;
  for (NodeId n : topology.AllNodes()) {
    network.SetReceiver(n, [&received](const Message&, bool) { ++received; });
  }
  for (auto _ : state) {
    Message msg;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = 27;  // interior node
    msg.payload_bytes = 20;
    network.Send(std::move(msg));
    network.sim().RunUntil(network.sim().Now() + 100);
  }
  benchmark::DoNotOptimize(received);
}
BENCHMARK(BM_BroadcastDelivery);

void BM_FieldSampling(benchmark::State& state) {
  const CorrelatedFieldModel field(1, CorrelatedFieldModel::Params{});
  SimTime t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        field.Sample(5, Position{40, 60}, Attribute::kLight, t));
    t += 2048;
  }
}
BENCHMARK(BM_FieldSampling);

// Simulated seconds per wall second for the full two-tier stack.
void BM_EndToEndEpochs(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const Topology topology = Topology::Grid(side);
    Network network(topology, RadioParams{}, ChannelParams{}, 1);
    UniformFieldModel field(2);
    ResultLog log;
    TtmqoOptions options;
    options.mode = OptimizationMode::kTwoTier;
    TtmqoEngine engine(network, field, &log, options);
    engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
    engine.SubmitQuery(
        ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192"));
    state.ResumeTiming();
    network.sim().RunUntil(16 * 4096);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_EndToEndEpochs)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ttmqo

BENCHMARK_MAIN();
