// The three static workloads of Section 4.2.
//
// WORKLOAD_A exercises the savings both tiers can realize (heavily
// overlapping acquisition queries with compatible epochs, aggregation
// queries with identical predicates).  WORKLOAD_B exercises what only the
// in-network tier can share (aggregation queries with pairwise different
// predicates, acquisition queries with epoch durations whose GCD merge is
// not beneficial, e.g. 4096 vs 6144 ms).  WORKLOAD_C mixes both, including
// aggregation queries whose answers derive from an acquisition query (the
// base station suppresses them entirely).
#pragma once

#include <vector>

#include "query/query.h"

namespace ttmqo {

/// Queries of WORKLOAD_A (ids 1..8).
std::vector<Query> WorkloadA();

/// Queries of WORKLOAD_B (ids 1..8).
std::vector<Query> WorkloadB();

/// Queries of WORKLOAD_C (ids 1..8).
std::vector<Query> WorkloadC();

/// Workload by name ("A", "B" or "C").
std::vector<Query> WorkloadByName(std::string_view name);

}  // namespace ttmqo
