
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/scalability.cc" "bench/CMakeFiles/scalability.dir/scalability.cc.o" "gcc" "bench/CMakeFiles/scalability.dir/scalability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ttmqo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ttmqo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tinydb/CMakeFiles/ttmqo_tinydb.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ttmqo_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ttmqo_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ttmqo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ttmqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/ttmqo_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
