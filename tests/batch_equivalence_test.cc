// The lockstep batch engine's hard contract (DESIGN.md note 21): every
// lane of `RunExperimentBatch` is byte-identical to the same config run
// alone through `RunExperiment` — including when one lane diverges hard
// (a crash fault) while its siblings stay healthy.  Fingerprints cover
// answer-row counts, the message-class table, ledger totals, delivery
// completeness, and the simulator event count, so "byte-identical" here
// is the same bar the golden regression suite applies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/fingerprint.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

RunConfig BaseConfig(std::uint64_t seed) {
  RunConfig config;
  config.grid_side = 4;
  config.mode = OptimizationMode::kTwoTier;
  config.seed = seed;
  config.channel.collision_prob = 0.02;
  config.duration_ms = 24 * 4096;
  return config;
}

std::vector<WorkloadEvent> MakeSchedule(std::uint64_t seed) {
  QueryModelParams params;
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  RandomQueryModel model(params, seed);
  return DynamicSchedule(model, /*count=*/10, /*mean_interarrival_ms=*/3000.0,
                         /*mean_duration_ms=*/30000.0, seed);
}

// All lanes of a batch share one duration; stretch every config to cover
// the longest schedule (plus settle time for the final epochs).
void FitDuration(std::vector<RunConfig>& configs,
                 const std::vector<std::vector<WorkloadEvent>>& schedules) {
  SimTime last = 0;
  for (const auto& schedule : schedules) {
    for (const WorkloadEvent& event : schedule) {
      last = std::max(last, event.time);
    }
  }
  for (RunConfig& config : configs) config.duration_ms = last + 6 * 4096;
}

// Runs every lane serially, then the whole set as one batch, and demands
// per-lane fingerprint equality.
void ExpectBatchMatchesSerial(
    const std::vector<RunConfig>& configs,
    const std::vector<std::vector<WorkloadEvent>>& schedules) {
  std::vector<RunResult> serial;
  serial.reserve(configs.size());
  for (std::size_t l = 0; l < configs.size(); ++l) {
    serial.push_back(RunExperiment(configs[l], schedules[l]));
  }
  const std::vector<RunResult> batch = RunExperimentBatch(configs, schedules);
  ASSERT_EQ(batch.size(), configs.size());
  for (std::size_t l = 0; l < configs.size(); ++l) {
    EXPECT_EQ(FingerprintRun(batch[l]), FingerprintRun(serial[l]))
        << "lane " << l << " of " << configs.size();
    EXPECT_EQ(batch[l].events_executed, serial[l].events_executed)
        << "lane " << l << " of " << configs.size();
  }
}

// N in {1, 4, 8}: different seeds, different workloads, and alternating
// optimization modes across the lanes of one batch.
TEST(BatchEquivalenceTest, LanesMatchSerialAtOneFourAndEightSeeds) {
  for (const std::size_t lanes : {1u, 4u, 8u}) {
    std::vector<RunConfig> configs;
    std::vector<std::vector<WorkloadEvent>> schedules;
    for (std::size_t l = 0; l < lanes; ++l) {
      RunConfig config = BaseConfig(/*seed=*/11 + l);
      config.mode = (l % 2 == 0) ? OptimizationMode::kTwoTier
                                 : OptimizationMode::kBaseline;
      configs.push_back(config);
      schedules.push_back(MakeSchedule(/*seed=*/11 + l));
    }
    FitDuration(configs, schedules);
    ExpectBatchMatchesSerial(configs, schedules);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Divergence isolation: four lanes with the SAME seed and workload, but
// lane 2 crashes a relay mid-run.  The healthy lanes must stay
// byte-identical to each other and to the serial healthy run, while the
// faulted lane matches the serial faulted run — the crash must not leak
// into sibling lanes through the shared event loop.
TEST(BatchEquivalenceTest, CrashedLaneDivergesWithoutCorruptingSiblings) {
  const std::vector<WorkloadEvent> schedule = MakeSchedule(/*seed=*/7);
  std::vector<RunConfig> configs(4, BaseConfig(/*seed=*/7));
  configs[2].faults.AddCrash(/*node=*/5, /*at=*/8 * 4096);
  const std::vector<std::vector<WorkloadEvent>> schedules(4, schedule);
  FitDuration(configs, schedules);

  ExpectBatchMatchesSerial(configs, schedules);
  if (::testing::Test::HasFatalFailure()) return;

  const std::vector<RunResult> batch = RunExperimentBatch(configs, schedules);
  const std::string healthy = FingerprintRun(batch[0]);
  EXPECT_EQ(FingerprintRun(batch[1]), healthy);
  EXPECT_EQ(FingerprintRun(batch[3]), healthy);
  EXPECT_NE(FingerprintRun(batch[2]), healthy)
      << "the crash fault did not change the faulted lane at all";
}

}  // namespace
}  // namespace ttmqo
