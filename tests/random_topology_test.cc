// Equivalence and sanity on random (non-grid) deployments: nothing in the
// scheme depends on the grid structure.
#include <gtest/gtest.h>

#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

class RandomTopologyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologyTest, AnswersMatchBaselineOnRandomDeployments) {
  RunConfig config;
  config.topology = TopologyKind::kRandom;
  config.random_nodes = 24;
  config.random_side_feet = 120;
  config.duration_ms = 6 * 12288;
  config.seed = static_cast<std::uint64_t>(GetParam());

  const auto schedule = StaticSchedule(WorkloadC());
  config.mode = OptimizationMode::kBaseline;
  const RunResult baseline = RunExperiment(config, schedule);
  config.mode = OptimizationMode::kTwoTier;
  const RunResult optimized = RunExperiment(config, schedule);

  ASSERT_GT(baseline.results.size(), 0u);
  const auto diff = CompareResultLogs(baseline.results, optimized.results,
                                      WorkloadC(), 1e-6);
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_LT(optimized.summary.total_transmit_ms,
            baseline.summary.total_transmit_ms);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest, ::testing::Range(1, 6));

TEST(RandomTopologyTest2, RunnerIsDeterministicOnRandomDeployments) {
  RunConfig config;
  config.topology = TopologyKind::kRandom;
  config.random_nodes = 20;
  config.random_side_feet = 110;
  config.duration_ms = 4 * 8192;
  config.seed = 7;
  const auto schedule = StaticSchedule(WorkloadA());
  const RunResult a = RunExperiment(config, schedule);
  const RunResult b = RunExperiment(config, schedule);
  EXPECT_EQ(a.summary.total_messages, b.summary.total_messages);
  EXPECT_DOUBLE_EQ(a.summary.total_transmit_ms, b.summary.total_transmit_ms);
}

}  // namespace
}  // namespace ttmqo
