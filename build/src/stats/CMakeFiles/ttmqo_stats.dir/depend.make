# Empty dependencies file for ttmqo_stats.
# This may be replaced when dependencies are built.
