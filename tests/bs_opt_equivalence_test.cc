// Differential suite for the tier-1 candidate-search index (DESIGN.md note
// 20): the indexed path (`Options::use_index`, the default) must be
// observationally identical to the seed's naive scan — byte-identical
// Actions for every insert/terminate, equal decision counters, bit-equal
// benefits, and identical end-to-end run fingerprints.  The naive scan is
// the oracle; the index is only allowed to find the same answers faster.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/bs/cost_model.h"
#include "core/bs/rewriter.h"
#include "metrics/registry.h"
#include "query/parser.h"
#include "sweep/fingerprint.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

// Renders everything observable about a query; two queries with equal
// renderings are interchangeable for the network.
std::string Render(const Query& q) {
  return std::to_string(q.id()) + "|" + q.ToSql() + "|L" +
         std::to_string(q.lifetime());
}

std::string Render(const BaseStationOptimizer::Actions& actions) {
  std::string out = "abort[";
  for (QueryId id : actions.abort) out += std::to_string(id) + ",";
  out += "] inject[";
  for (const Query& q : actions.inject) out += Render(q) + ";";
  out += "]";
  return out;
}

// Full observable optimizer state: every synthetic query (id, network
// query, member ids) and its benefit rendered bit-exactly.
std::string Render(const BaseStationOptimizer& opt) {
  std::string out;
  for (const SyntheticQuery* sq : opt.Synthetics()) {
    char benefit[40];
    std::snprintf(benefit, sizeof(benefit), "%a", sq->benefit);
    out += Render(sq->query) + " benefit=" + benefit + " members[";
    for (const auto& [uid, uq] : sq->members) out += std::to_string(uid) + ",";
    out += "]\n";
  }
  return out;
}

std::string Render(const BaseStationOptimizer::DecisionStats& d) {
  return "covered=" + std::to_string(d.covered) +
         " merged=" + std::to_string(d.merged) +
         " standalone=" + std::to_string(d.standalone) +
         " retired=" + std::to_string(d.retired) +
         " rebuilt=" + std::to_string(d.rebuilt) +
         " kept=" + std::to_string(d.kept);
}

class BsOptEquivalenceTest : public ::testing::Test {
 protected:
  BsOptEquivalenceTest()
      : topology_(Topology::Grid(4)),
        estimator_(),
        cost_(topology_, RadioParams{}, estimator_) {}

  BaseStationOptimizer Make(bool use_index) {
    BaseStationOptimizer::Options options;
    options.use_index = use_index;
    return BaseStationOptimizer(cost_, options);
  }

  // Feeds `count` queries from the model into an indexed and a naive
  // optimizer; every third insert also terminates an earlier live query.
  // Every action pair and the final populations must match byte for byte.
  void RunDifferential(const QueryModelParams& params, std::uint64_t seed,
                       std::size_t count) {
    BaseStationOptimizer indexed = Make(true);
    BaseStationOptimizer naive = Make(false);
    RandomQueryModel model(params, seed);
    std::vector<QueryId> live;
    for (QueryId id = 1; id <= count; ++id) {
      const Query q = model.Next(id);
      const auto ai = indexed.InsertUserQuery(q);
      const auto an = naive.InsertUserQuery(q);
      ASSERT_EQ(Render(ai), Render(an))
          << "insert " << id << " seed " << seed << ": " << q.ToSql();
      live.push_back(id);
      if (id % 3 == 0) {
        const std::size_t pick = (id * 7) % live.size();
        const QueryId gone = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        const auto ti = indexed.TerminateUserQuery(gone);
        const auto tn = naive.TerminateUserQuery(gone);
        ASSERT_EQ(Render(ti), Render(tn))
            << "terminate " << gone << " seed " << seed;
      }
    }
    ASSERT_EQ(Render(indexed), Render(naive)) << "seed " << seed;
    ASSERT_EQ(Render(indexed.decision_stats()),
              Render(naive.decision_stats()))
        << "seed " << seed;
    EXPECT_EQ(naive.index_stats().coverage_hits, 0u)
        << "the oracle must not touch the index";
    EXPECT_EQ(naive.index_stats().exact_evaluations, 0u);
  }

  // Feeds `count` queries in batches of `batch_size` through `InsertBatch`
  // and, on a twin optimizer, one at a time in the exact order the batch
  // reports back (its sorted processing order).  Every Actions pair, the
  // final populations, the decision counters, and every index counter
  // except `batch_shared_probes` must match.
  void RunBatchDifferential(const QueryModelParams& params,
                            std::uint64_t seed, std::size_t count,
                            std::size_t batch_size, bool use_index) {
    BaseStationOptimizer batched = Make(use_index);
    BaseStationOptimizer sequential = Make(use_index);
    RandomQueryModel model(params, seed);
    QueryId next_id = 1;
    for (std::size_t done = 0; done < count; done += batch_size) {
      std::vector<Query> group;
      std::map<QueryId, Query> by_id;
      for (std::size_t i = 0; i < batch_size && done + i < count; ++i) {
        const Query q = model.Next(next_id++);
        by_id.emplace(q.id(), q);
        group.push_back(q);
      }
      const auto results = batched.InsertBatch(group);
      ASSERT_EQ(results.size(), group.size());
      for (const auto& [qid, actions] : results) {
        const auto expected = sequential.InsertUserQuery(by_id.at(qid));
        ASSERT_EQ(Render(actions), Render(expected))
            << "query " << qid << " seed " << seed
            << " use_index=" << use_index;
      }
    }
    ASSERT_EQ(Render(batched), Render(sequential))
        << "seed " << seed << " use_index=" << use_index;
    ASSERT_EQ(Render(batched.decision_stats()),
              Render(sequential.decision_stats()))
        << "seed " << seed << " use_index=" << use_index;
    const auto& bi = batched.index_stats();
    const auto& si = sequential.index_stats();
    EXPECT_EQ(bi.coverage_hits, si.coverage_hits);
    EXPECT_EQ(bi.memo_hits, si.memo_hits);
    EXPECT_EQ(bi.pruned_candidates, si.pruned_candidates);
    EXPECT_EQ(bi.exact_evaluations, si.exact_evaluations);
    EXPECT_EQ(si.batch_shared_probes, 0u);
  }

  Topology topology_;
  SelectivityEstimator estimator_;
  CostModel cost_;
};

// 20 seeds x 4 workload shapes: mixed, acquisition-only (coverage and
// chained acquisition merges), aggregation-only (distinct predicates stay
// standalone, equal predicates merge), and a skewed template pool
// (coverage-dominated).
TEST_F(BsOptEquivalenceTest, TwentySeedsAcrossFourShapesAgree) {
  QueryModelParams mixed;
  mixed.predicate_selectivity = 1.0;
  mixed.randomize_selectivity = true;

  QueryModelParams acq_only = mixed;
  acq_only.aggregation_fraction = 0.0;

  QueryModelParams agg_only = mixed;
  agg_only.aggregation_fraction = 1.0;

  QueryModelParams skewed = mixed;
  skewed.template_pool = 8;

  const QueryModelParams* shapes[] = {&mixed, &acq_only, &agg_only, &skewed};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const QueryModelParams* shape : shapes) {
      RunDifferential(*shape, seed, 120);
      if (HasFatalFailure()) return;
    }
  }
}

// InsertBatch vs one-at-a-time inserts, both index modes, across the same
// workload shapes the sequential differential uses.  The skewed template
// pool makes structurally identical arrivals common, so batches actually
// exercise the shared-probe path.
TEST_F(BsOptEquivalenceTest, BatchInsertMatchesSequentialSortedOrder) {
  QueryModelParams mixed;
  mixed.predicate_selectivity = 1.0;
  mixed.randomize_selectivity = true;

  QueryModelParams skewed = mixed;
  skewed.template_pool = 8;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const QueryModelParams* shape : {&mixed, &skewed}) {
      for (const bool use_index : {true, false}) {
        RunBatchDifferential(*shape, seed, /*count=*/90, /*batch_size=*/30,
                             use_index);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// A handcrafted batch with known duplicate groups: the probe-sharing
// arithmetic is pinned exactly — one search per group, every other member
// resolved without one.  The groups use the ThousandDeep shape (kMax
// aggregations over pairwise-distinct predicates), which never merge with
// each other, so every group's first insert is standalone.
TEST_F(BsOptEquivalenceTest, BatchSharesProbesAcrossDuplicateGroups) {
  const auto agg = [](QueryId qid, double hi) {
    return Query::Aggregation(
        qid, {{AggregateOp::kMax, Attribute::kLight}},
        PredicateSet::Of({{Attribute::kTemp, Interval(0.0, hi)}}), 8192);
  };
  BaseStationOptimizer opt = Make(true);
  // Three groups: {1,4,6} at hi=5, {2,5} at hi=10, {3} at hi=15.
  const std::vector<Query> batch = {agg(1, 5.0),  agg(2, 10.0), agg(3, 15.0),
                                    agg(4, 5.0),  agg(5, 10.0), agg(6, 5.0)};
  const auto results = opt.InsertBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& [qid, actions] : results) {
    EXPECT_TRUE(actions.abort.empty()) << "query " << qid;
  }
  // One standalone insert (and injection) per group; every other member is
  // a shared-probe coverage with no actions at all.
  EXPECT_EQ(opt.decision_stats().standalone, 3u);
  EXPECT_EQ(opt.decision_stats().covered, 3u);
  EXPECT_EQ(opt.index_stats().batch_shared_probes, 3u);
  EXPECT_EQ(opt.index_stats().coverage_hits, 3u);
  EXPECT_EQ(opt.NumSynthetic(), 3u);
  EXPECT_EQ(opt.NumUserQueries(), 6u);
}

// Coverage is asymmetric: an acquisition whose predicate reads an
// unselected attribute does not cover even an exact duplicate of itself
// (the duplicate's acquired set includes the predicate attribute, the
// synthetic's reported columns do not).  Sequential insertion merges such
// arrivals; the batch path must fall back to the full search and match it
// byte for byte instead of shortcutting.
TEST_F(BsOptEquivalenceTest, BatchFallsBackWhenSyntheticCannotCoverDuplicates) {
  const auto acq = [](QueryId qid) {
    return Query::Acquisition(
        qid, {Attribute::kTemp},
        PredicateSet::Of({{Attribute::kLight, Interval(100, 400)}}), 4096);
  };
  for (const bool use_index : {true, false}) {
    BaseStationOptimizer batched = Make(use_index);
    BaseStationOptimizer sequential = Make(use_index);
    const std::vector<Query> batch = {acq(1), acq(2), acq(3)};
    const auto results = batched.InsertBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (const auto& [qid, actions] : results) {
      const auto expected =
          sequential.InsertUserQuery(acq(qid));
      ASSERT_EQ(Render(actions), Render(expected))
          << "query " << qid << " use_index=" << use_index;
    }
    ASSERT_EQ(Render(batched), Render(sequential)) << "use_index=" << use_index;
    ASSERT_EQ(Render(batched.decision_stats()),
              Render(sequential.decision_stats()))
        << "use_index=" << use_index;
    // q1 stands alone; q2 is NOT covered by q1's synthetic (the fallback
    // under test) and merges with it — and the merged synthetic acquires
    // the predicate attribute too, so it covers q3 and the shortcut
    // legitimately fires once.
    EXPECT_EQ(batched.index_stats().batch_shared_probes, 1u);
    EXPECT_EQ(batched.decision_stats().merged, 1u);
    EXPECT_EQ(batched.decision_stats().covered, 1u);
  }
}

// The paper's q1/q2/q3 chained-merge example replayed at shifted ranges,
// with terminations interleaved between the chains, so the index sees
// merge -> abort -> re-insert cycles with live coverage members in the
// middle of them.
TEST_F(BsOptEquivalenceTest, InterleavedChainedMergesAgree) {
  BaseStationOptimizer indexed = Make(true);
  BaseStationOptimizer naive = Make(false);
  const auto step = [&](const char* what, auto&& fn) {
    const auto ai = fn(indexed);
    const auto an = fn(naive);
    ASSERT_EQ(Render(ai), Render(an)) << what;
  };
  QueryId id = 1;
  std::vector<QueryId> chain_tails;
  for (int rep = 0; rep < 6; ++rep) {
    const double base = 50.0 * rep;
    const QueryId q1 = id++, q2 = id++, q3 = id++, probe = id++;
    auto acq = [&](QueryId qid, double lo, double hi, SimDuration epoch) {
      return Query::Acquisition(
          qid, {Attribute::kLight},
          PredicateSet::Of({{Attribute::kLight, Interval(lo, hi)}}), epoch);
    };
    step("q1", [&](auto& o) { return o.InsertUserQuery(acq(q1, base + 280, base + 600, 4096)); });
    step("q2", [&](auto& o) { return o.InsertUserQuery(acq(q2, base + 100, base + 300, 8192)); });
    // q3 merges with q2's synthetic, and the merged query re-integrates
    // with q1's — the chained rewrite.
    step("q3", [&](auto& o) { return o.InsertUserQuery(acq(q3, base + 150, base + 500, 8192)); });
    // A covered arrival on the freshly chained synthetic.
    step("probe", [&](auto& o) { return o.InsertUserQuery(acq(probe, base + 200, base + 400, 8192)); });
    ASSERT_EQ(indexed.NumSynthetic(), naive.NumSynthetic());
    chain_tails.push_back(q2);
    // Terminate the middle member of the previous chain while this one is
    // live, forcing Algorithm 2 rebuild/keep decisions between chains.
    if (rep >= 1) {
      const QueryId gone = chain_tails[static_cast<std::size_t>(rep) - 1];
      step("chain-terminate", [&](auto& o) { return o.TerminateUserQuery(gone); });
    }
  }
  ASSERT_EQ(Render(indexed), Render(naive));
  ASSERT_EQ(Render(indexed.decision_stats()), Render(naive.decision_stats()));
  EXPECT_GT(indexed.decision_stats().merged, 0u);
  EXPECT_GT(indexed.decision_stats().covered, 0u);
}

// End-to-end: whole simulated runs (engine, network, results) fingerprint
// identically with the index on and off, and the indexed run actually
// exercises the index (registry counters move).
TEST_F(BsOptEquivalenceTest, RunFingerprintsMatchAcrossModes) {
  for (const std::uint64_t seed : {1u, 5u}) {
    RunConfig config;
    config.grid_side = 4;
    config.mode = OptimizationMode::kTwoTier;
    config.seed = seed;

    QueryModelParams params;
    params.predicate_selectivity = 1.0;
    params.randomize_selectivity = true;
    RandomQueryModel model(params, seed);
    const auto schedule =
        DynamicSchedule(model, 24, /*mean_interarrival_ms=*/4000.0,
                        /*mean_duration_ms=*/40000.0, seed);
    SimTime last_event = 0;
    for (const WorkloadEvent& event : schedule) {
      last_event = std::max(last_event, event.time);
    }
    config.duration_ms = last_event + 8 * 4096;

    MetricsRegistry registry;
    config.tier1_use_index = true;
    config.obs.registry = &registry;
    const RunResult indexed = RunExperiment(config, schedule);

    config.tier1_use_index = false;
    config.obs.registry = nullptr;
    const RunResult naive = RunExperiment(config, schedule);

    EXPECT_EQ(FingerprintRun(indexed), FingerprintRun(naive))
        << "seed " << seed;
    EXPECT_GT(
        registry.GetCounter("tier1_index_exact_evaluations_total").Value() +
            registry.GetCounter("tier1_index_coverage_hits_total").Value(),
        0.0)
        << "the indexed run must actually use the index";
  }
}

// Regression for the recursive InsertBundle the index replaced: a chain
// that re-integrates 1000 times in one insert call.  1000 aggregation
// queries with pairwise-distinct predicates are all standalone; one
// acquisition query then merges with them one at a time (aggregations
// never cover acquisitions, and every merge keeps a positive rate), so the
// old implementation recursed 1000 deep.  The iterative loop must complete
// in both modes with exactly pinned decisions.
TEST_F(BsOptEquivalenceTest, ThousandDeepMergeChainCompletes) {
  constexpr QueryId kAggs = 1000;
  for (const bool use_index : {true, false}) {
    BaseStationOptimizer opt = Make(use_index);
    for (QueryId i = 1; i <= kAggs; ++i) {
      // Thresholds stay strictly inside temp's physical range [0, 100]:
      // a predicate spanning the whole range is vacuous and dropped, which
      // would make the queries identical (and mergeable).
      const Query agg = Query::Aggregation(
          i, {{AggregateOp::kMax, Attribute::kLight}},
          PredicateSet::Of(
              {{Attribute::kTemp,
                Interval(0.0, 0.05 * static_cast<double>(i))}}),
          8192);
      (void)opt.InsertUserQuery(agg);
    }
    ASSERT_EQ(opt.NumSynthetic(), kAggs) << "use_index=" << use_index;

    const Query absorber = Query::Acquisition(
        kAggs + 1, {Attribute::kLight, Attribute::kTemp}, PredicateSet(),
        4096);
    const auto actions = opt.InsertUserQuery(absorber);
    EXPECT_EQ(opt.NumSynthetic(), 1u) << "use_index=" << use_index;
    EXPECT_EQ(actions.abort.size(), kAggs);
    EXPECT_EQ(actions.inject.size(), 1u);

    const auto& d = opt.decision_stats();
    EXPECT_EQ(d.standalone, kAggs + 1) << "use_index=" << use_index;
    EXPECT_EQ(d.merged, kAggs) << "use_index=" << use_index;
    EXPECT_EQ(d.covered, 0u) << "use_index=" << use_index;
  }
}

}  // namespace
}  // namespace ttmqo
