// Hot-path benchmark for the discrete-event core, in three parts:
//
//   A. sweep     — the committed BENCH_sweep.json spec at jobs=1; reports
//                  serial events/sec and the speedup against the baseline
//                  recorded before the allocation-free engine landed.
//   B. dense     — a synthetic worst case the figure sweeps never reach:
//                  a 10x10 grid where every node multicasts to all of its
//                  neighbors on a fast period over a colliding (p=0.1),
//                  lossy (p=0.05) channel, so the interference-counting,
//                  retry, and per-destination loss paths dominate.
//   C. probe     — the allocation counter: a broadcast-only steady state
//                  runs a warmup (vectors reach capacity, the event slab
//                  reaches its high-water mark), then the same workload
//                  runs again under a global operator-new counter.  The
//                  engine's contract is zero heap allocations per event in
//                  steady state; the probe measures it rather than trusts
//                  it.
//   D. batched   — the lockstep multi-seed engine (DESIGN.md note 21):
//                  eight beacon-driven 10x10 runs, first back-to-back
//                  through eight solo event loops, then as one 8-lane
//                  `BatchedNetwork`.  Every lane must reproduce its solo
//                  run exactly (event counts and ledger totals, bit for
//                  bit); the aggregate events/sec ratio is the batch
//                  speedup the artifact commits.
//
//   $ hotpath                         # full artifact -> BENCH_hotpath.json
//   $ hotpath --spec="grids=4 ..." --dense-ms=5000 --probe-ms=5000
//
// Flags:
//   --spec=<text|@...>  sweep spec for part A (default: the committed
//                       BENCH_sweep.json spec)
//   --out=p.json        artifact path (default BENCH_hotpath.json)
//   --baseline=N        pre-overhaul serial events/sec to compare against
//                       (default 735962, from the committed BENCH_sweep.json)
//   --baseline-from=p   read the baseline from an existing artifact's
//                       "baseline_events_per_sec" field instead (CI points
//                       this at the committed BENCH_hotpath.json, so the
//                       number lives in exactly one place); overrides
//                       --baseline
//   --dense-ms=N        simulated duration of part B (default 60000)
//   --probe-ms=N        simulated warmup and measurement duration of part C
//                       (default 60000 each)
//   --batch-ms=N        simulated duration of part D (default 60000)
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/batched_network.h"
#include "net/network.h"
#include "obs/build_info.h"
#include "obs/session.h"
#include "sweep/spec.h"
#include "util/flags.h"

// ---------------------------------------------------------------------------
// Global allocation counter.  Every path into the heap in this binary goes
// through these replaceable operators; part C reads the counter around a
// measured simulation window to prove the steady-state event loop never
// touches the allocator.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ttmqo {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

double EventsPerSec(std::uint64_t events, double wall_ms) {
  return static_cast<double>(events) * 1000.0 / wall_ms;
}

/// A node that re-sends the same message shape on a fixed period through a
/// pooled, inline-captured event — the traffic generator for parts B and C.
struct NodeTicker {
  Network* net = nullptr;
  NodeId node = 0;
  SimDuration period = 0;
  AddressMode mode = AddressMode::kBroadcast;
  std::size_t payload_bytes = 0;

  void Tick() {
    Message msg;
    msg.cls = MessageClass::kMaintenance;
    msg.mode = mode;
    msg.sender = node;
    if (mode == AddressMode::kMulticast) {
      msg.destinations = net->topology().NeighborsOf(node);
    }
    msg.payload_bytes = payload_bytes;
    net->Send(std::move(msg));
    net->sim().ScheduleAfter(period, [this] { Tick(); });
  }
};

/// Starts one ticker per non-sink node, staggered by node index so the
/// radios do not phase-lock.
void StartTickers(std::vector<NodeTicker>& tickers, Network& net,
                  SimDuration period, AddressMode mode,
                  std::size_t payload_bytes) {
  const std::size_t n = net.topology().size();
  tickers.resize(n);
  for (NodeId node = 1; node < n; ++node) {
    tickers[node] = NodeTicker{&net, node, period, mode, payload_bytes};
    NodeTicker* ticker = &tickers[node];
    net.sim().ScheduleAt(static_cast<SimTime>(node) % period,
                         [ticker] { ticker->Tick(); });
  }
}

struct SweepResult {
  std::size_t tasks = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
};

SweepResult RunSweepPart(const SweepSpec& spec) {
  std::printf("hotpath: part A — sweep, %zu tasks at jobs=1...\n",
              spec.TaskCount());
  const SweepReport report = RunSweep(spec, 1);
  return {report.rows.size(), report.TotalEvents(), report.wall_ms};
}

struct DenseResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t link_drops = 0;
};

DenseResult RunDensePart(SimDuration duration_ms) {
  std::printf("hotpath: part B — dense contention, %lld sim ms...\n",
              static_cast<long long>(duration_ms));
  const Topology topology = Topology::Grid(10);
  ChannelParams channel;
  channel.collision_prob = 0.1;
  Network net(topology, RadioParams{}, channel, /*seed=*/1);
  net.SetDefaultLinkLoss(0.05);
  // Per-receiver loss is only rolled for neighbors that could actually
  // receive, so the lossy path needs installed receivers to be exercised.
  for (NodeId node = 0; node < topology.size(); ++node) {
    net.SetReceiver(node, [](const Message&, bool) {});
  }
  std::vector<NodeTicker> tickers;
  StartTickers(tickers, net, /*period=*/128, AddressMode::kMulticast,
               /*payload_bytes=*/24);
  const auto start = Clock::now();
  net.sim().RunUntil(duration_ms);
  DenseResult result;
  result.wall_ms = ElapsedMs(start);
  result.events = net.sim().events_executed();
  result.retransmissions = net.ledger().TotalRetransmissions();
  result.link_drops = net.link_drops();
  return result;
}

struct ProbeResult {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::uint64_t allocations = 0;
};

ProbeResult RunProbePart(SimDuration probe_ms) {
  std::printf("hotpath: part C — allocation probe, %lld + %lld sim ms...\n",
              static_cast<long long>(probe_ms),
              static_cast<long long>(probe_ms));
  // Clean channel, no receivers: every event is pure hot path (tick, send,
  // begin, complete, deliver-to-nobody), so any allocation counted below
  // is the event engine's own.
  const Topology topology = Topology::Grid(4);
  Network net(topology, RadioParams{}, ChannelParams{}, /*seed=*/1);
  const auto tx_ms = static_cast<SimDuration>(
      std::ceil(net.radio().TransmitDurationMs(24)));
  std::vector<NodeTicker> tickers;
  // Period >> transmit time, so the per-node radio never backlogs and the
  // pending-event count stays flat after warmup.
  StartTickers(tickers, net, /*period=*/8 * tx_ms, AddressMode::kBroadcast,
               /*payload_bytes=*/24);

  // Warmup: the event slab, free list, and per-sender flight vectors grow
  // to their high-water marks here, not in the measured window.
  net.sim().RunUntil(probe_ms);

  const std::uint64_t events_before = net.sim().events_executed();
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  net.sim().RunUntil(2 * probe_ms);
  ProbeResult result;
  result.wall_ms = ElapsedMs(start);
  result.events = net.sim().events_executed() - events_before;
  result.allocations =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  return result;
}

struct BatchedResult {
  std::size_t lanes = 0;
  std::uint64_t events = 0;       ///< batch total across all lanes
  double wall_ms = 0.0;           ///< one 8-lane RunUntil
  double serial_wall_ms = 0.0;    ///< eight solo RunUntils, summed
  bool lanes_match = true;        ///< per-lane equality vs the solo runs
};

BatchedResult RunBatchedPart(SimDuration duration_ms) {
  constexpr std::size_t kLanes = 8;
  std::printf("hotpath: part D — lockstep batch, %zu lanes, %lld sim ms...\n",
              kLanes, static_cast<long long>(duration_ms));
  const Topology topology = Topology::Grid(10);
  ChannelParams channel;
  channel.collision_prob = 0.02;  // modest: the retry/split path runs too

  BatchedResult result;
  result.lanes = kLanes;

  // Serial reference: the same eight seeds through eight solo event loops.
  // Beacon-driven with no receivers, so every event is scheduler dispatch
  // plus radio accounting — exactly the cost lockstep batching amortizes.
  std::uint64_t solo_events[kLanes];
  double solo_tx_ms[kLanes];
  std::uint64_t solo_retx[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    Network net(topology, RadioParams{}, channel, /*seed=*/1 + l);
    net.StartMaintenanceBeacons(/*period=*/128, /*payload_bytes=*/24);
    const auto start = Clock::now();
    net.sim().RunUntil(duration_ms);
    result.serial_wall_ms += ElapsedMs(start);
    solo_events[l] = net.sim().events_executed();
    solo_tx_ms[l] = net.ledger().TotalTransmitMs();
    solo_retx[l] = net.ledger().TotalRetransmissions();
  }

  std::vector<std::uint64_t> seeds;
  for (std::size_t l = 0; l < kLanes; ++l) seeds.push_back(1 + l);
  BatchedNetwork batch(topology, RadioParams{}, channel, seeds);
  batch.StartMaintenanceBeacons(/*period=*/128, /*payload_bytes=*/24);
  const auto start = Clock::now();
  batch.RunUntil(duration_ms);
  result.wall_ms = ElapsedMs(start);

  for (std::size_t l = 0; l < kLanes; ++l) {
    Network& lane = batch.lane(static_cast<std::uint32_t>(l));
    const std::uint64_t events = lane.sim().events_executed();
    result.events += events;
    // Bit-exact, not approximate: byte-identical per-seed results are the
    // batch engine's hard contract, and the bench enforces it on every run.
    if (events != solo_events[l] ||
        lane.ledger().TotalTransmitMs() != solo_tx_ms[l] ||
        lane.ledger().TotalRetransmissions() != solo_retx[l]) {
      result.lanes_match = false;
      std::fprintf(stderr,
                   "hotpath: lane %zu diverged from its solo run "
                   "(events %llu vs %llu, retx %llu vs %llu)\n",
                   l, static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(solo_events[l]),
                   static_cast<unsigned long long>(
                       lane.ledger().TotalRetransmissions()),
                   static_cast<unsigned long long>(solo_retx[l]));
    }
  }
  return result;
}

// Reads "baseline_events_per_sec" back out of a previously written
// artifact, so the committed BENCH_hotpath.json is the single home of the
// pre-overhaul number.
double LoadBaselineFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline file: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string key = "\"baseline_events_per_sec\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    throw std::runtime_error("no baseline_events_per_sec in " + path);
  }
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

std::string LoadSpecText(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream in(arg.substr(1));
  if (!in) throw std::runtime_error("cannot open spec file: " + arg.substr(1));
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const std::string spec_arg = flags.GetString(
      "spec",
      "grids=4,6,8,10 workloads=C modes=baseline,ttmqo faults=none seeds=1 "
      "base-seed=1 duration-ms=245760 collisions=0.02 alpha=0.6");
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");
  const auto baseline_from = flags.GetOptional("baseline-from");
  const double baseline = baseline_from.has_value()
                              ? LoadBaselineFrom(*baseline_from)
                              : flags.GetDouble("baseline", 735962.0);
  const auto dense_ms = static_cast<SimDuration>(
      flags.GetInt("dense-ms", 60'000));
  const auto probe_ms = static_cast<SimDuration>(
      flags.GetInt("probe-ms", 60'000));
  const auto batch_ms = static_cast<SimDuration>(
      flags.GetInt("batch-ms", 60'000));
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  obs::WarnIfSingleCore(std::cerr);

  const SweepSpec spec = SweepSpec::Parse(LoadSpecText(spec_arg));
  const SweepResult sweep = RunSweepPart(spec);
  const double sweep_eps = EventsPerSec(sweep.events, sweep.wall_ms);
  const DenseResult dense = RunDensePart(dense_ms);
  const ProbeResult probe = RunProbePart(probe_ms);
  const BatchedResult batched = RunBatchedPart(batch_ms);
  const double batched_eps = EventsPerSec(batched.events, batched.wall_ms);
  const double batched_serial_eps =
      EventsPerSec(batched.events, batched.serial_wall_ms);
  const double allocs_per_event =
      static_cast<double>(probe.allocations) /
      static_cast<double>(probe.events);

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open output file: " + out_path);
  char buf[512];
  out << "{\n";
  out << "  \"bench\": \"hotpath\",\n";
  out << "  \"spec\": \"" << spec.ToString() << "\",\n";
  out << "  \"build\": ";
  obs::WriteBuildInfoJson(out);
  out << ",\n";
  std::snprintf(buf, sizeof(buf), "  \"baseline_events_per_sec\": %.0f,\n",
                baseline);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"sweep\": {\"tasks\": %zu, \"events_executed\": %llu, "
      "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
      "\"speedup_vs_baseline\": %.3f},\n",
      sweep.tasks, static_cast<unsigned long long>(sweep.events),
      sweep.wall_ms, sweep_eps, sweep_eps / baseline);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"dense\": {\"sim_ms\": %lld, \"events_executed\": %llu, "
      "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
      "\"retransmissions\": %llu, \"link_drops\": %llu},\n",
      static_cast<long long>(dense_ms),
      static_cast<unsigned long long>(dense.events), dense.wall_ms,
      EventsPerSec(dense.events, dense.wall_ms),
      static_cast<unsigned long long>(dense.retransmissions),
      static_cast<unsigned long long>(dense.link_drops));
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"alloc_probe\": {\"sim_ms\": %lld, \"events_measured\": %llu, "
      "\"allocations\": %llu, \"allocs_per_event\": %g},\n",
      static_cast<long long>(probe_ms),
      static_cast<unsigned long long>(probe.events),
      static_cast<unsigned long long>(probe.allocations), allocs_per_event);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"batched\": {\"lanes\": %zu, \"sim_ms\": %lld, "
      "\"events_executed\": %llu, \"wall_ms\": %.1f, "
      "\"events_per_sec\": %.0f, \"serial_wall_ms\": %.1f, "
      "\"serial_events_per_sec\": %.0f, \"aggregate_speedup\": %.3f, "
      "\"lanes_match\": %s}\n",
      batched.lanes, static_cast<long long>(batch_ms),
      static_cast<unsigned long long>(batched.events), batched.wall_ms,
      batched_eps, batched.serial_wall_ms, batched_serial_eps,
      batched_eps / batched_serial_eps,
      batched.lanes_match ? "true" : "false");
  out << buf;
  out << "}\n";

  std::printf(
      "hotpath: sweep %.0f events/sec (x%.2f vs baseline %.0f); dense %.0f "
      "events/sec, %llu retransmissions, %llu link drops; probe %llu allocs "
      "over %llu events (%g/event); batched %.0f events/sec (x%.2f vs %.0f "
      "solo, %zu lanes); wrote %s\n",
      sweep_eps, sweep_eps / baseline, baseline,
      EventsPerSec(dense.events, dense.wall_ms),
      static_cast<unsigned long long>(dense.retransmissions),
      static_cast<unsigned long long>(dense.link_drops),
      static_cast<unsigned long long>(probe.allocations),
      static_cast<unsigned long long>(probe.events), allocs_per_event,
      batched_eps, batched_eps / batched_serial_eps, batched_serial_eps,
      batched.lanes, out_path.c_str());
  if (!batched.lanes_match) {
    std::fprintf(stderr,
                 "hotpath: FAILED — lockstep batch diverged from the solo "
                 "runs (see lane report above)\n");
    return 1;
  }
  if (probe.allocations != 0) {
    std::fprintf(stderr,
                 "hotpath: WARNING — steady state allocated (%llu allocs); "
                 "an event capture likely outgrew the inline buffer\n",
                 static_cast<unsigned long long>(probe.allocations));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) {
  try {
    return ttmqo::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hotpath: %s\n", e.what());
    return 1;
  }
}
