// Fixture: a file that must produce zero findings.  Destructors that do
// not throw, ordered containers, no ambient clocks.  The phrase
// "steady_clock" in this comment and the string below must not count.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Tidy {
  ~Tidy() { cache_.clear(); }
  std::map<std::string, int> cache_;
  std::set<int> seen_;
};

inline const char* Describe() {
  return "sim time only; no system_clock, no rand(), no getenv()";
}

}  // namespace fixture
