# Empty compiler generated dependencies file for region_query_test.
# This may be replaced when dependencies are built.
